//! Micro-benchmarks of the distance kernels (B-LOCAL) — the inner loop of
//! every machine's round-0 local computation.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use knn_points::{Metric, Point, ScalarPoint, VecPoint};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn bench_scalar(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 1usize << 16;
    let points: Vec<ScalarPoint> = (0..n).map(|_| ScalarPoint(rng.random())).collect();
    let q = ScalarPoint(rng.random());

    let mut group = c.benchmark_group("distance-scalar");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("abs-diff-sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &points {
                acc ^= p.distance(&q, Metric::Euclidean).as_u64();
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_vector(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance-vector");
    for &dims in &[4usize, 32, 128] {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 1usize << 12;
        let points: Vec<VecPoint> = (0..n)
            .map(|_| {
                VecPoint::new((0..dims).map(|_| rng.random_range(-1.0..1.0)).collect::<Vec<f64>>())
            })
            .collect();
        let q = VecPoint::new((0..dims).map(|_| rng.random_range(-1.0..1.0)).collect::<Vec<f64>>());
        group.throughput(Throughput::Elements(n as u64));
        for metric in [Metric::Euclidean, Metric::SquaredEuclidean, Metric::Manhattan] {
            group.bench_with_input(
                BenchmarkId::new(format!("{metric:?}"), dims),
                &points,
                |b, points| {
                    b.iter(|| {
                        let mut worst = knn_points::Dist::ZERO;
                        for p in points {
                            worst = worst.max(p.distance(&q, metric));
                        }
                        black_box(worst)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scalar, bench_vector);
criterion_main!(benches);
