//! Micro-benchmarks of the k-d tree substrate (B-LOCAL): bulk build and
//! ℓ-NN queries against the linear-scan oracle.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use knn_kdtree::KdTree;
use knn_points::{brute_force_knn, IdAssigner, Metric, PointId, Record, VecPoint};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn records(n: usize, dims: usize, seed: u64) -> Vec<Record<VecPoint>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = IdAssigner::new(seed);
    (0..n)
        .map(|_| Record {
            id: ids.next_id(),
            point: VecPoint::new(
                (0..dims).map(|_| rng.random_range(-100.0..100.0)).collect::<Vec<f64>>(),
            ),
            label: None,
        })
        .collect()
}

fn points(n: usize, dims: usize, seed: u64) -> Vec<(PointId, Box<[f64]>)> {
    records(n, dims, seed).into_iter().map(|r| (r.id, r.point.0)).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree-build");
    for &n in &[1usize << 12, 1 << 15] {
        let input = points(n, 3, 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| black_box(KdTree::build(input.clone())));
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree-query");
    let n = 1usize << 15;
    let recs = records(n, 3, 2);
    let tree = KdTree::from_records(&recs);
    let mut rng = StdRng::seed_from_u64(3);
    let queries: Vec<Vec<f64>> =
        (0..64).map(|_| (0..3).map(|_| rng.random_range(-100.0..100.0)).collect()).collect();

    for &ell in &[1usize, 16, 128] {
        group.bench_with_input(BenchmarkId::new("kdtree", ell), &queries, |b, queries| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % queries.len();
                black_box(tree.knn(&queries[i], ell, Metric::Euclidean))
            });
        });
    }
    group.bench_with_input(BenchmarkId::new("linear-scan", 16usize), &queries, |b, queries| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            black_box(brute_force_knn(
                &recs,
                &VecPoint::new(queries[i].clone()),
                16,
                Metric::Euclidean,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
