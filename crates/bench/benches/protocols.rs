//! Micro-benchmarks of the distributed protocols on the exact (sync)
//! engine: simulation throughput of Algorithm 1, Algorithm 2, and the
//! baselines at a fixed workload. These measure *simulator* cost, not the
//! model's round complexity (that's `rounds_table`); they guard against
//! regressions in the engine hot path.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmachine::{engine::run_sync, NetConfig};
use knn_core::protocols::knn::{KnnParams, KnnProtocol};
use knn_core::protocols::selection::SelectProtocol;
use knn_core::protocols::simple::SimpleProtocol;
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn shards(k: usize, per_machine: usize, seed: u64) -> Vec<Vec<u64>> {
    (0..k)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32);
            (0..per_machine).map(|_| rng.random()).collect()
        })
        .collect()
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync-engine");
    let k = 16;
    let per_machine = 1usize << 12;
    let ell = 256u64;
    let data = shards(k, per_machine, 7);

    group.bench_with_input(BenchmarkId::new("algorithm1", k), &data, |b, data| {
        b.iter(|| {
            let cfg = NetConfig::new(k).with_seed(3);
            let protos: Vec<SelectProtocol<u64>> = data
                .iter()
                .enumerate()
                .map(|(i, local)| SelectProtocol::new(i, k, 0, ell, local.clone()))
                .collect();
            black_box(run_sync(&cfg, protos).unwrap().metrics.rounds)
        });
    });

    group.bench_with_input(BenchmarkId::new("algorithm2", k), &data, |b, data| {
        b.iter(|| {
            let cfg = NetConfig::new(k).with_seed(3);
            let protos: Vec<KnnProtocol<'_, u64>> = data
                .iter()
                .enumerate()
                .map(|(i, local)| {
                    KnnProtocol::from_keys(i, k, 0, ell, KnnParams::default(), local.clone())
                })
                .collect();
            black_box(run_sync(&cfg, protos).unwrap().metrics.rounds)
        });
    });

    group.bench_with_input(BenchmarkId::new("simple", k), &data, |b, data| {
        b.iter(|| {
            let cfg = NetConfig::new(k).with_seed(3);
            let protos: Vec<SimpleProtocol<'_, u64>> = data
                .iter()
                .enumerate()
                .map(|(i, local)| SimpleProtocol::from_keys(i, 0, ell, 3, local.clone()))
                .collect();
            black_box(run_sync(&cfg, protos).unwrap().metrics.rounds)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
