//! Micro-benchmarks of the sequential selection substrate (B-LOCAL):
//! quickselect vs deterministic median-of-medians vs bounded-heap top-ℓ vs
//! the full-sort reference — the per-machine "local computation" whose
//! parallelization the paper's Figure 2 speedup comes from.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use knn_selection::{floyd_rivest_select, median_of_medians, quickselect, smallest_k};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn data(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random()).collect()
}

fn bench_select_median(c: &mut Criterion) {
    let mut group = c.benchmark_group("select-median");
    for &n in &[1usize << 14, 1 << 17] {
        let input = data(n, 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("quickselect", n), &input, |b, input| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let mut v = input.clone();
                quickselect(&mut v, n / 2, &mut rng);
                black_box(v[n / 2])
            });
        });
        group.bench_with_input(BenchmarkId::new("floyd-rivest", n), &input, |b, input| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let mut v = input.clone();
                floyd_rivest_select(&mut v, n / 2, &mut rng);
                black_box(v[n / 2])
            });
        });
        group.bench_with_input(BenchmarkId::new("median-of-medians", n), &input, |b, input| {
            b.iter(|| {
                let mut v = input.clone();
                black_box(median_of_medians(&mut v, n / 2))
            });
        });
        group.bench_with_input(BenchmarkId::new("full-sort", n), &input, |b, input| {
            b.iter(|| {
                let mut v = input.clone();
                v.sort_unstable();
                black_box(v[n / 2])
            });
        });
    }
    group.finish();
}

fn bench_top_ell(c: &mut Criterion) {
    let mut group = c.benchmark_group("top-ell");
    let n = 1usize << 17;
    let input = data(n, 3);
    for &ell in &[16usize, 256, 4096] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("bounded-heap", ell), &input, |b, input| {
            b.iter(|| black_box(smallest_k(input.iter().copied(), ell)));
        });
        group.bench_with_input(BenchmarkId::new("select-then-sort", ell), &input, |b, input| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| {
                let mut v = input.clone();
                quickselect(&mut v, ell - 1, &mut rng);
                v.truncate(ell);
                v.sort_unstable();
                black_box(v)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_select_median, bench_top_ell);
criterion_main!(benches);
