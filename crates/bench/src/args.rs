//! A tiny `--flag value` argument parser (keeps the harness free of CLI
//! dependencies; every binary documents its flags with `--help`).

use std::collections::BTreeMap;

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse `std::env::args()`, treating `--key value` as a flag and a
    /// bare `--key` (followed by another flag or nothing) as a switch.
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn from_tokens(iter: impl IntoIterator<Item = String>) -> Self {
        let tokens: Vec<String> = iter.into_iter().collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            let Some(key) = t.strip_prefix("--") else {
                panic!("unexpected positional argument {t:?}");
            };
            if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                args.flags.insert(key.to_string(), tokens[i + 1].clone());
                i += 2;
            } else {
                args.switches.push(key.to_string());
                i += 1;
            }
        }
        args
    }

    /// A switch like `--full`.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// A numeric flag with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.flags.get(key).map_or(default, |v| {
            v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
        })
    }

    /// A u64 flag with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.flags.get(key).map_or(default, |v| {
            v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
        })
    }

    /// A float flag with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.flags.get(key).map_or(default, |v| {
            v.parse().unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}"))
        })
    }

    /// A string flag with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// A comma-separated list of integers.
    pub fn get_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        self.flags.get(key).map_or_else(
            || default.to_vec(),
            |v| {
                v.split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("--{key} expects integers, got {s:?}"))
                    })
                    .collect()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_tokens(s.split_whitespace().map(String::from))
    }

    #[test]
    fn flags_switches_lists() {
        let a = parse("--k 8 --full --ells 1,2,4");
        assert_eq!(a.get_usize("k", 0), 8);
        assert!(a.has("full"));
        assert!(!a.has("quick"));
        assert_eq!(a.get_list("ells", &[9]), vec![1, 2, 4]);
        assert_eq!(a.get_list("ks", &[9]), vec![9]);
        assert_eq!(a.get_u64("seed", 7), 7);
        assert_eq!(a.get_f64("alpha", 0.5), 0.5);
        assert_eq!(parse("--engines sync,event").get_str("engines", "sync"), "sync,event");
        assert_eq!(parse("").get_str("engines", "sync"), "sync");
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_value_panics() {
        let a = parse("--k banana");
        let _ = a.get_usize("k", 0);
    }
}
