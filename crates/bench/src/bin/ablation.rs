//! **Ablation of the paper's sampling constants** (12 and 21).
//!
//! Algorithm 2 samples `12·log₂ ℓ` candidates per machine and prunes at
//! the sample of rank `21·log₂ ℓ`. Lemma 2.3's proof needs the ratio and
//! magnitudes to make both tails small; this experiment sweeps both
//! factors and measures what actually breaks:
//!
//! * **rank/sample ratio too small** (≈1) — the threshold undershoots, too
//!   few candidates survive, and the hardening fallback (rollback to the
//!   unpruned sets) fires, wasting the sampling rounds;
//! * **factors too large** — the sampling transfer itself costs extra
//!   rounds (`samples·keybits / B` per machine) with no accuracy benefit;
//! * the paper's (12, 21) sits in the cheap-and-never-rolls-back corner.
//!
//! ```text
//! cargo run -p knn-bench --release --bin ablation
//!     [--trials 50] [--k 16] [--ell 256]
//! ```

use kmachine::{engine::run_sync, NetConfig};
use knn_bench::args::Args;
use knn_bench::stats::Summary;
use knn_bench::table::Table;
use knn_bench::{write_csv, write_json};
use knn_core::protocols::knn::{KnnParams, KnnProtocol};
use rand::{rngs::StdRng, RngExt, SeedableRng};

#[derive(Debug, serde::Serialize)]
struct Row {
    sample_factor: u32,
    rank_factor: u32,
    rollback_rate: f64,
    survivors_over_ell: f64,
    rounds_mean: f64,
    messages_mean: f64,
}

fn main() {
    let args = Args::parse();
    let trials = args.get_u64("trials", 50);
    let k = args.get_usize("k", 16);
    let ell = args.get_usize("ell", 256);
    let per_machine = 4 * ell;

    println!(
        "== Ablation of Algorithm 2's sampling constants  (k = {k}, ell = {ell}, {trials} trials) =="
    );
    println!("paper's values: sample_factor = 12, rank_factor = 21\n");

    let mut table =
        Table::new(&["sample", "rank", "rollback rate", "survivors/ell", "rounds", "messages"]);
    let mut rows = Vec::new();

    for &sample_factor in &[2u32, 6, 12, 24] {
        for &rank_factor in &[0u32, 1, 2] {
            // rank = ratio * sample, approximately: test ratios 1.0, 1.75, 3.0
            let rank_factor = match rank_factor {
                0 => sample_factor,           // ratio 1.0 — tight
                1 => (sample_factor * 7) / 4, // ratio 1.75 — the paper's
                _ => sample_factor * 3,       // ratio 3.0 — loose
            };
            let params = KnnParams { sample_factor, rank_factor, harden: true };
            let mut rollbacks = 0u64;
            let mut ratios = Vec::new();
            let mut rounds = Vec::new();
            let mut msgs = Vec::new();
            for t in 0..trials {
                let cfg = NetConfig::new(k).with_seed(t);
                let protos: Vec<KnnProtocol<'_, u64>> = (0..k)
                    .map(|i| {
                        let mut rng = StdRng::seed_from_u64(
                            t ^ ((i as u64) << 20) ^ ((sample_factor as u64) << 40),
                        );
                        let keys: Vec<u64> = (0..per_machine).map(|_| rng.random()).collect();
                        KnnProtocol::from_keys(i, k, 0, ell as u64, params, keys)
                    })
                    .collect();
                let out = run_sync(&cfg, protos).expect("ablation run");
                let stats = out.outputs[0].stats.expect("stats");
                rollbacks += u64::from(stats.rolled_back);
                ratios.push(stats.survivors as f64 / ell as f64);
                rounds.push(out.metrics.rounds);
                msgs.push(out.metrics.messages);
            }
            let row = Row {
                sample_factor,
                rank_factor,
                rollback_rate: rollbacks as f64 / trials as f64,
                survivors_over_ell: Summary::of(&ratios).mean,
                rounds_mean: Summary::of_u64(&rounds).mean,
                messages_mean: Summary::of_u64(&msgs).mean,
            };
            table.row(vec![
                sample_factor.to_string(),
                rank_factor.to_string(),
                format!("{:.2}", row.rollback_rate),
                format!("{:.2}", row.survivors_over_ell),
                format!("{:.1}", row.rounds_mean),
                format!("{:.0}", row.messages_mean),
            ]);
            rows.push(row);
        }
    }
    table.print();
    println!(
        "\nreading the table: ratio 1.0 rows roll back often (wasted rounds); ratio 3.0\n\
         rows survive ~3x ell candidates into the selection phase; larger sample factors\n\
         pay more sampling rounds. The paper's 12/21 never rolled back at tiny overhead."
    );

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sample_factor.to_string(),
                r.rank_factor.to_string(),
                format!("{:.3}", r.rollback_rate),
                format!("{:.3}", r.survivors_over_ell),
                format!("{:.2}", r.rounds_mean),
                format!("{:.1}", r.messages_mean),
            ]
        })
        .collect();
    let csv = write_csv(
        "ablation",
        &[
            "sample_factor",
            "rank_factor",
            "rollback_rate",
            "survivors_over_ell",
            "rounds",
            "messages",
        ],
        &csv_rows,
    );
    let json = write_json("ablation", &rows);
    println!("\nwrote {} and {}", csv.display(), json.display());
}
