//! **Baselines comparison** — every algorithm the paper discusses, on the
//! same workload, with exact round / message / bit accounting.
//!
//! * Algorithm 2 (the paper) — `O(log ℓ)` rounds, `O(k log ℓ)` messages.
//! * Simple method (§3) — `Θ(ℓ)` rounds, `Θ(kℓ)` messages.
//! * Saukas–Song \[16\] — deterministic, `O(log(kℓ))` rounds.
//! * Value-domain binary search \[3, 18\] — `O(log V)` rounds.
//! * Distributed k-d tree \[14\] — construction cost reported separately
//!   (its point: amortization over many queries vs a huge build bill).
//!
//! ```text
//! cargo run -p knn-bench --release --bin baselines
//!     [--ks 8,32,128] [--ells 16,128,1024] [--seeds 10]
//! ```

use kmachine::{engine::run_sync, NetConfig};
use knn_bench::args::Args;
use knn_bench::stats::Summary;
use knn_bench::table::Table;
use knn_bench::{write_csv, write_json};
use knn_core::protocols::kdtree_dist::KdBuildProtocol;
use knn_core::runner::{run_query, Algorithm, QueryOptions};
use knn_points::{IdAssigner, Record, ScalarPoint, VecPoint};
use knn_workloads::ScalarWorkload;
use rand::{rngs::StdRng, RngExt, SeedableRng};

#[derive(Debug, serde::Serialize)]
struct Row {
    algorithm: String,
    k: usize,
    ell: usize,
    rounds: f64,
    messages: f64,
    kilobits: f64,
}

fn main() {
    let args = Args::parse();
    let ks = args.get_list("ks", &[8, 32, 128]);
    let ells = args.get_list("ells", &[16, 128, 1024]);
    let seeds = args.get_u64("seeds", 10);
    let per_machine = 1usize << 14;

    println!("== Baselines: rounds / messages / bits per query  ({seeds} seeds) ==\n");
    let mut table = Table::new(&["algorithm", "k", "ell", "rounds", "messages", "kilobits"]);
    let mut rows = Vec::new();

    for &k in &ks {
        let shards = ScalarWorkload { per_machine, lo: 0, hi: 1 << 32 }.generate(k, 99);
        for &ell in &ells {
            for algo in Algorithm::ALL {
                let mut rounds = Vec::new();
                let mut msgs = Vec::new();
                let mut bits = Vec::new();
                for s in 0..seeds {
                    let opts = QueryOptions { seed: s, ..Default::default() };
                    let mut rng = StdRng::seed_from_u64(s ^ 0xF00D);
                    let q = ScalarPoint(rng.random_range(0..1u64 << 32));
                    let out = run_query(&shards, &q, ell, algo, &opts).expect("baseline run");
                    rounds.push(out.metrics.rounds);
                    msgs.push(out.metrics.messages);
                    bits.push(out.metrics.bits);
                }
                let r = Summary::of_u64(&rounds);
                let m = Summary::of_u64(&msgs);
                let b = Summary::of_u64(&bits);
                table.row(vec![
                    algo.name().to_string(),
                    k.to_string(),
                    ell.to_string(),
                    r.pm(),
                    format!("{:.0}", m.mean),
                    format!("{:.1}", b.mean / 1000.0),
                ]);
                rows.push(Row {
                    algorithm: algo.name().to_string(),
                    k,
                    ell,
                    rounds: r.mean,
                    messages: m.mean,
                    kilobits: b.mean / 1000.0,
                });
            }
        }
    }
    table.print();

    // ---- Distributed k-d tree: one-time construction bill ----
    println!("\n== Distributed k-d tree (PANDA-like [14]): construction cost ==\n");
    let mut t2 = Table::new(&["k", "points", "rounds", "messages", "kilobits"]);
    for &k in &ks {
        let n = per_machine.min(1 << 12); // keep the all-to-all tractable
        let mut ids = IdAssigner::new(5);
        let mut rng = StdRng::seed_from_u64(5);
        let records: Vec<Record<VecPoint>> = (0..n * k)
            .map(|_| Record {
                id: ids.next_id(),
                point: VecPoint::new(vec![rng.random_range(-1e6..1e6)]),
                label: None,
            })
            .collect();
        let shards: Vec<Vec<Record<VecPoint>>> = records.chunks(n).map(|c| c.to_vec()).collect();
        let cfg = NetConfig::new(k).with_seed(1);
        let protos: Vec<KdBuildProtocol> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| KdBuildProtocol::new(i, k, 0, 64, 4, local))
            .collect();
        let out = run_sync(&cfg, protos).expect("kd build");
        t2.row(vec![
            k.to_string(),
            (n * k).to_string(),
            out.metrics.rounds.to_string(),
            out.metrics.messages.to_string(),
            format!("{:.0}", out.metrics.bits as f64 / 1000.0),
        ]);
        rows.push(Row {
            algorithm: "kdtree-build".into(),
            k,
            ell: 0,
            rounds: out.metrics.rounds as f64,
            messages: out.metrics.messages as f64,
            kilobits: out.metrics.bits as f64 / 1000.0,
        });
    }
    t2.print();
    println!(
        "\nthe paper's qualitative claims, measured: Algorithm 2's rounds barely move with\n\
         ell or k; the simple method's grow linearly in ell; Saukas-Song sits between;\n\
         binary search depends on the value domain; and the k-d tree build moves the\n\
         whole dataset before the first query is ever answered."
    );

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.clone(),
                r.k.to_string(),
                r.ell.to_string(),
                format!("{:.1}", r.rounds),
                format!("{:.1}", r.messages),
                format!("{:.1}", r.kilobits),
            ]
        })
        .collect();
    let csv = write_csv(
        "baselines",
        &["algorithm", "k", "ell", "rounds", "messages", "kilobits"],
        &csv_rows,
    );
    let json = write_json("baselines", &rows);
    println!("\nwrote {} and {}", csv.display(), json.display());
}
