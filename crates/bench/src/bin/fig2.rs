//! **Figure 2 reproduction** — "Run-time performance of our Algorithm 2
//! compared to the simple method."
//!
//! Paper setup (§3): k ∈ \[2, 128\] processes on a cluster, 2²² uniform u32
//! points per process, random queries, y-axis = time(simple) / time(Alg 2),
//! x-axis = ℓ. The ratio grows with ℓ and with k (80× at k = 128).
//!
//! Our substitution (DESIGN.md §6): the threaded engine runs one OS thread
//! per machine with a synthetic per-round latency. On a host with fewer
//! cores than simulated machines the *local-computation* part of the
//! speedup saturates at the core count, so alongside the wall-clock ratio
//! we report the hardware-independent **round ratio** from the exact
//! engine — the paper's own explanation of the effect ("the number of
//! rounds does not depend on the number of machines … the speed up
//! [in wall clock] is due to local computation").
//!
//! ```text
//! cargo run -p knn-bench --release --bin fig2 [--full]
//!     [--ks 2,4,8,16] [--ells 16,64,256,1024,4096]
//!     [--per-machine 65536] [--reps 3] [--latency-us 50] [--seed 1]
//! ```

use std::time::Duration;

use kmachine::Engine;
use knn_bench::args::Args;
use knn_bench::stats::Summary;
use knn_bench::table::Table;
use knn_bench::{write_csv, write_json};
use knn_core::runner::{run_query, Algorithm, QueryOptions};
use knn_points::ScalarPoint;
use knn_workloads::{query::scalar_queries, ScalarWorkload};

#[derive(Debug, serde::Serialize)]
struct Cell {
    k: usize,
    ell: usize,
    wall_simple_ms: f64,
    wall_knn_ms: f64,
    wall_ratio: f64,
    rounds_simple: f64,
    rounds_knn: f64,
    round_ratio: f64,
}

fn main() {
    let args = Args::parse();
    let full = args.has("full");
    let ks = args.get_list("ks", if full { &[2, 4, 8, 16, 32, 64] } else { &[2, 4, 8, 16] });
    let ells = args.get_list(
        "ells",
        if full { &[16, 64, 256, 1024, 4096, 16384] } else { &[16, 64, 256, 1024, 4096] },
    );
    let per_machine = args.get_usize("per-machine", if full { 1 << 18 } else { 1 << 16 });
    let reps = args.get_usize("reps", if full { 10 } else { 3 });
    let latency = Duration::from_micros(args.get_u64("latency-us", 50));
    let seed = args.get_u64("seed", 1);

    println!("Figure 2 reproduction: time(simple) / time(Algorithm 2)");
    println!(
        "per-machine points = {per_machine}, reps = {reps}, round latency = {latency:?}, host cores = {}",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    println!();

    let mut table = Table::new(&[
        "k",
        "ell",
        "simple ms",
        "alg2 ms",
        "wall ratio",
        "simple rounds",
        "alg2 rounds",
        "round ratio",
    ]);
    let mut cells = Vec::new();

    for &k in &ks {
        let shards = ScalarWorkload { per_machine, lo: 0, hi: 1 << 32 }.generate(k, seed);
        let queries = scalar_queries(reps, 0, 1 << 32, seed ^ 0xABCD);
        for &ell in &ells {
            let mut wall = [Vec::new(), Vec::new()];
            let mut rounds = [Vec::new(), Vec::new()];
            for (rep, q) in queries.iter().enumerate() {
                for (slot, algo) in [Algorithm::Simple, Algorithm::Knn].into_iter().enumerate() {
                    let opts = QueryOptions {
                        engine: Engine::Threaded,
                        seed: seed.wrapping_add(rep as u64),
                        round_latency: latency,
                        ..Default::default()
                    };
                    let out =
                        run_query(&shards, &ScalarPoint(q.0), ell, algo, &opts).expect("fig2 run");
                    wall[slot].push(out.wall.as_secs_f64() * 1e3);
                    rounds[slot].push(out.metrics.rounds as f64);
                }
            }
            let ws = Summary::of(&wall[0]);
            let wk = Summary::of(&wall[1]);
            let rs = Summary::of(&rounds[0]);
            let rk = Summary::of(&rounds[1]);
            let cell = Cell {
                k,
                ell,
                wall_simple_ms: ws.mean,
                wall_knn_ms: wk.mean,
                wall_ratio: ws.mean / wk.mean,
                rounds_simple: rs.mean,
                rounds_knn: rk.mean,
                round_ratio: rs.mean / rk.mean,
            };
            table.row(vec![
                k.to_string(),
                ell.to_string(),
                format!("{:.2}", cell.wall_simple_ms),
                format!("{:.2}", cell.wall_knn_ms),
                format!("{:.2}x", cell.wall_ratio),
                format!("{:.0}", cell.rounds_simple),
                format!("{:.0}", cell.rounds_knn),
                format!("{:.2}x", cell.round_ratio),
            ]);
            cells.push(cell);
        }
    }

    table.print();
    let csv = write_csv(
        "fig2",
        &[
            "k",
            "ell",
            "wall_simple_ms",
            "wall_knn_ms",
            "wall_ratio",
            "rounds_simple",
            "rounds_knn",
            "round_ratio",
        ],
        &cells
            .iter()
            .map(|c| {
                vec![
                    c.k.to_string(),
                    c.ell.to_string(),
                    format!("{:.4}", c.wall_simple_ms),
                    format!("{:.4}", c.wall_knn_ms),
                    format!("{:.4}", c.wall_ratio),
                    format!("{:.1}", c.rounds_simple),
                    format!("{:.1}", c.rounds_knn),
                    format!("{:.4}", c.round_ratio),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let json = write_json("fig2", &cells);
    println!("\nwrote {} and {}", csv.display(), json.display());
    println!(
        "\npaper's claim: the ratio grows with ell (and, with enough physical cores, with k);\n\
         Algorithm 2 wins by orders of magnitude once ell is past the crossover."
    );
}
