//! **Engine hot path + real parallelism** — the wall-clock bench backing
//! the work-stealing rayon shim, the allocation-lean engine loop, and the
//! barrier-free event engine.
//!
//! Three sections, one JSON report (`results/hotpath.{csv,json}`):
//!
//! 1. **Workload-generation speedup vs pool size.** The same
//!    [`ScalarWorkload`] is generated under each requested pool size
//!    (`--pools`, default `1,2,4`); the datasets are asserted bit-identical
//!    (pool size may only change the wall clock, never the bytes) and the
//!    speedup over pool size 1 is reported, after an untimed warm-up run so
//!    cold caches cannot masquerade as parallel speedup. Speedup assertions
//!    are gated on the **recorded** host CPU count: a ≥ 2× speedup at pool
//!    ≥ 4 is enforced only when the host actually offers ≥ 4 CPUs (you
//!    cannot buy parallelism the kernel doesn't offer, and a 1-CPU runner
//!    must not assert impossible parallelism).
//! 2. **Engine × delivery-mode loop rounds/sec + allocations.** A
//!    bandwidth-bound all-pairs streaming protocol is pushed through all
//!    three engines — sync, threaded (k OS threads, 3 barriers/round), and
//!    event (per-link dependency scheduling on a worker pool, one row per
//!    `--pools` entry) — with the event engine measured under **both
//!    delivery modes** (exact lockstep-equivalent delivery, and relaxed
//!    PANDA-style quiescence promises). Each row reports simulated rounds
//!    per second (best of `ENGINE_REPS` repetitions) and — via a counting
//!    global allocator — heap allocations per round. Asserted: the event
//!    engine at one worker stays within 10% of sync (the scheduler must
//!    cost only watermark bookkeeping), at pool ≥ 2 it beats the threaded
//!    engine's rounds/sec (the whole point of removing the barrier), and
//!    relaxed delivery stays within 10% of exact at every pool (promise
//!    bookkeeping must be ~free even when the workload offers little to
//!    pipeline).
//! 3. **Transport micro: dense lattice vs `HashMap` links.** The engines'
//!    per-round transport loop is replayed over the dense `Vec<LinkFifo>`
//!    lattice the engines use and over the `HashMap<(dst, src), LinkFifo>`
//!    they used before; the lattice must be no worse (10% noise margin).
//!
//! `--paper-full` additionally runs the §3 full-scale path from
//! `tests/scale_paper_full.rs` — generate 4×2²² points, load the cluster,
//! answer one Simple query — and records the generation + load wall time
//! once and the query wall time **per engine**.
//!
//! ```text
//! cargo run -p knn-bench --release --bin hotpath --
//!     [--k 8] [--per-machine 262144] [--pools 1,2,4] [--stream 2048]
//!     [--waves 64] [--seed 7] [--paper-full]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use kmachine::{
    engine::{run_event, run_sync, run_threaded},
    BandwidthMode, Ctx, DeliveryMode, Envelope, LinkFifo, NetConfig, Payload, Protocol, Step,
};
use knn_bench::args::Args;
use knn_bench::table::Table;
use knn_bench::{write_csv, write_json};
use knn_core::cluster::KnnCluster;
use knn_core::runner::Algorithm;
use knn_points::ScalarPoint;
use knn_workloads::ScalarWorkload;
use rayon::ThreadPoolBuilder;

/// Repetitions per engine row; the minimum is reported, since scheduler
/// noise on shared 1-CPU CI runners dominates single measurements.
const ENGINE_REPS: usize = 5;

/// System allocator wrapped with an allocation counter, so the engine rows
/// can report allocations per simulated round.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter has no safety impact.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Every machine streams `n` 64-bit values to every other machine under an
/// enforced per-link budget — the bandwidth-bound all-pairs traffic shape
/// that keeps every FIFO of the lattice busy for many rounds.
struct AllPairsStream {
    n: u64,
    expected: u64,
    received: u64,
    checksum: u64,
}

#[derive(Debug, Clone)]
struct Word(u64);

impl Payload for Word {
    fn size_bits(&self) -> u64 {
        64
    }
}

impl Protocol for AllPairsStream {
    type Msg = Word;
    type Output = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Word>) -> Step<u64> {
        if ctx.round() == 0 {
            for v in 0..self.n {
                for dst in 0..ctx.k() {
                    if dst != ctx.id() {
                        ctx.send(dst, Word(v));
                    }
                }
            }
        }
        for env in ctx.inbox() {
            self.received += 1;
            self.checksum = self.checksum.wrapping_add(env.msg.0);
        }
        if self.received == self.expected {
            Step::Done(self.checksum)
        } else {
            Step::Continue
        }
    }
}

#[derive(Debug)]
struct GenRow {
    pool: usize,
    seconds: f64,
    speedup_vs_pool1: f64,
}

#[derive(Debug)]
struct EngineRow {
    engine: String,
    delivery: String,
    pool: usize,
    rounds: u64,
    seconds: f64,
    rounds_per_sec: f64,
    allocs_per_round: f64,
}

#[derive(Debug)]
struct TransportRow {
    links: String,
    rounds: u64,
    seconds: f64,
    rounds_per_sec: f64,
}

#[derive(Debug)]
struct PaperFullQueryRow {
    engine: String,
    seconds: f64,
    rounds: u64,
}

// Consumed through its `Debug` form by the serde shim's `write_json`.
#[allow(dead_code)]
#[derive(Debug)]
struct PaperFullReport {
    gen_seconds: f64,
    load_seconds: f64,
    total_points: usize,
    query: Vec<PaperFullQueryRow>,
}

// Consumed through its `Debug` form by the serde shim's `write_json`.
#[allow(dead_code)]
#[derive(Debug)]
struct Report {
    k: usize,
    per_machine: usize,
    /// CPUs the kernel offers this process, detected once at startup; every
    /// parallel-speedup assertion below gates on this recorded value.
    host_cpus: usize,
    /// Whether the generation-speedup bar was enforced (host_cpus ≥ 4) or
    /// merely reported.
    gen_speedup_enforced: bool,
    generation: Vec<GenRow>,
    engine: Vec<EngineRow>,
    transport: Vec<TransportRow>,
    paper_full: Option<PaperFullReport>,
}

/// Drain-until-empty over the dense lattice the engines use.
fn transport_lattice(k: usize, waves: usize, per_link: usize, budget: u64) -> (u64, f64) {
    let mut links: Vec<LinkFifo<Word>> = (0..k * k).map(|_| LinkFifo::default()).collect();
    let mut out: Vec<Envelope<Word>> = Vec::new();
    let mut rounds = 0u64;
    let start = Instant::now();
    for _ in 0..waves {
        push_wave_lattice(&mut links, k, per_link);
        loop {
            let mut busy = false;
            for dst in 0..k {
                for link in &mut links[dst * k..(dst + 1) * k] {
                    if link.is_empty() {
                        continue;
                    }
                    link.drain_round(budget, &mut out);
                    busy = true;
                }
            }
            out.clear();
            if !busy {
                break;
            }
            rounds += 1;
        }
    }
    (rounds, start.elapsed().as_secs_f64())
}

fn push_wave_lattice(links: &mut [LinkFifo<Word>], k: usize, per_link: usize) {
    for src in 0..k {
        for dst in 0..k {
            if dst == src {
                continue;
            }
            for seq in 0..per_link {
                let env = Envelope {
                    src,
                    dst,
                    sent_round: 0,
                    seq: seq as u64,
                    digest: 0,
                    msg: Word(seq as u64),
                };
                links[dst * k + src].push(env, 64);
            }
        }
    }
}

/// The same drain loop over the `HashMap<(dst, src), LinkFifo>` the engines
/// used before the dense lattice — the recorded baseline.
fn transport_hashmap(k: usize, waves: usize, per_link: usize, budget: u64) -> (u64, f64) {
    let mut links: HashMap<(usize, usize), LinkFifo<Word>> = HashMap::new();
    let mut out: Vec<Envelope<Word>> = Vec::new();
    let mut rounds = 0u64;
    let start = Instant::now();
    for _ in 0..waves {
        for src in 0..k {
            for dst in 0..k {
                if dst == src {
                    continue;
                }
                for seq in 0..per_link {
                    let env = Envelope {
                        src,
                        dst,
                        sent_round: 0,
                        seq: seq as u64,
                        digest: 0,
                        msg: Word(seq as u64),
                    };
                    links.entry((dst, src)).or_default().push(env, 64);
                }
            }
        }
        loop {
            let mut busy = false;
            for link in links.values_mut() {
                if link.is_empty() {
                    continue;
                }
                link.drain_round(budget, &mut out);
                busy = true;
            }
            out.clear();
            links.retain(|_, l| !l.is_empty());
            if !busy {
                break;
            }
            rounds += 1;
        }
    }
    (rounds, start.elapsed().as_secs_f64())
}

fn main() {
    let args = Args::parse();
    let k = args.get_usize("k", 8);
    let per_machine = args.get_usize("per-machine", 1 << 18);
    let pools = args.get_list("pools", &[1, 2, 4]);
    let stream = args.get_u64("stream", 2048);
    let waves = args.get_usize("waves", 64);
    let seed = args.get_u64("seed", 7);
    let paper_full = args.has("paper-full");
    // Detected exactly once; recorded in the report and used to gate every
    // parallel-speedup assertion below.
    let host_cpus = knn_bench::host_cpus();

    println!(
        "== Engine hot path: k = {k}, {per_machine} pts/machine, host CPUs = {host_cpus} ==\n"
    );

    // -- Section 1: generation speedup vs pool size --------------------------
    // Speedups are always relative to pool size 1, so the reference run is
    // prepended when the requested list omits it.
    let mut pools = pools;
    if pools.first() != Some(&1) {
        pools.retain(|&p| p != 1);
        pools.insert(0, 1);
    }
    let workload = ScalarWorkload { per_machine, lo: 0, hi: 1 << 32 };
    // Warm-up: page in the allocator and caches before the timed pool-1
    // reference, so first-touch costs don't inflate later pools' "speedup".
    let _ = workload.generate(k, seed);
    let mut gen_rows: Vec<GenRow> = Vec::new();
    let mut reference = None;
    let mut t1 = None;
    for &pool in &pools {
        let handle = ThreadPoolBuilder::new().num_threads(pool).build().expect("pool");
        // Min of three repetitions: scoped-thread startup and scheduler
        // noise on shared CI runners would otherwise dominate the ratio.
        let mut seconds = f64::INFINITY;
        let mut shards = None;
        for _ in 0..3 {
            let start = Instant::now();
            shards = Some(handle.install(|| workload.generate(k, seed)));
            seconds = seconds.min(start.elapsed().as_secs_f64());
        }
        let shards = shards.expect("three repetitions ran");
        match &reference {
            None => {
                t1 = Some(seconds);
                reference = Some(shards);
            }
            Some(reference) => assert_eq!(
                reference, &shards,
                "generation must be bit-identical at every pool size (pool {pool})"
            ),
        }
        let speedup = t1.expect("first pool row recorded") / seconds.max(1e-12);
        gen_rows.push(GenRow { pool, seconds, speedup_vs_pool1: speedup });
    }

    let mut gen_table = Table::new(&["pool", "seconds", "speedup"]);
    for r in &gen_rows {
        gen_table.row(vec![
            r.pool.to_string(),
            format!("{:.3}", r.seconds),
            format!("{:.2}x", r.speedup_vs_pool1),
        ]);
    }
    println!("-- workload generation ({k} machines x {per_machine} points) --");
    gen_table.print();

    // The speedup bar: >= 2x at pool >= 4, enforceable only when the
    // recorded host CPU count actually offers >= 4 CPUs. On smaller hosts
    // the measured ratios are reported but explicitly flagged as noise —
    // a 1-CPU runner printing a 2x "speedup" is timing jitter, not
    // parallelism.
    let gen_speedup_enforced = host_cpus >= 4;
    if let Some(best) = gen_rows
        .iter()
        .filter(|r| r.pool >= 4)
        .map(|r| r.speedup_vs_pool1)
        .fold(None, |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.max(s))))
    {
        if gen_speedup_enforced {
            assert!(
                best >= 2.0,
                "expected >= 2x generation speedup at pool >= 4 on a {host_cpus}-CPU host, \
                 got {best:.2}x"
            );
            println!("\nspeedup check: {best:.2}x at pool >= 4 (>= 2x required) -> ok");
        } else {
            println!(
                "\nspeedup check skipped: host has {host_cpus} CPU(s); pool>=4 ratio {best:.2}x \
                 recorded unenforced (ratios above the CPU count are scheduler noise)"
            );
        }
    }

    // -- Section 2: engine loop rounds/sec + allocations ---------------------
    let expected = stream * (k as u64 - 1);
    let cfg = NetConfig::new(k)
        .with_seed(seed)
        .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 512 })
        .with_max_rounds(10_000_000);
    let mk = || {
        (0..k)
            .map(|_| AllPairsStream { n: stream, expected, received: 0, checksum: 0 })
            .collect::<Vec<_>>()
    };
    // (engine name, delivery mode, pool column, config). The sync and
    // threaded engines have fixed concurrency (1 and k) and are inherently
    // exact; the event engine gets one row per requested pool size — its
    // scheduler's worker count — under each delivery mode, so the report
    // is the full engine × mode table.
    let mut engine_cfgs: Vec<(&str, DeliveryMode, usize, NetConfig)> = vec![
        ("sync", DeliveryMode::Exact, 1, cfg.clone()),
        ("threaded", DeliveryMode::Exact, k, cfg.clone()),
    ];
    for mode in [DeliveryMode::Exact, DeliveryMode::Relaxed] {
        for &pool in &pools {
            engine_cfgs.push((
                "event",
                mode,
                pool,
                cfg.clone().with_event_workers(pool).with_delivery(mode),
            ));
        }
    }
    let mut engine_rows: Vec<EngineRow> = Vec::new();
    let mut checksum: Option<Vec<u64>> = None;
    for (name, mode, pool, run_cfg) in &engine_cfgs {
        let mut seconds = f64::INFINITY;
        let mut rounds = 0;
        let mut allocs = 0;
        for rep in 0..ENGINE_REPS {
            let before = allocations();
            let start = Instant::now();
            let out = match *name {
                "sync" => run_sync(run_cfg, mk()),
                "threaded" => run_threaded(run_cfg, mk()),
                _ => run_event(run_cfg, mk()),
            }
            .unwrap_or_else(|e| panic!("{name} ({}) run failed: {e}", mode.name()));
            seconds = seconds.min(start.elapsed().as_secs_f64());
            if rep == 0 {
                allocs = allocations() - before;
                rounds = out.metrics.rounds;
                match &checksum {
                    None => checksum = Some(out.outputs),
                    Some(want) => assert_eq!(
                        &out.outputs,
                        want,
                        "engine {name} ({}, pool {pool}) diverged from the reference outputs",
                        mode.name()
                    ),
                }
            }
        }
        engine_rows.push(EngineRow {
            engine: name.to_string(),
            delivery: mode.name().to_string(),
            pool: *pool,
            rounds,
            seconds,
            rounds_per_sec: rounds as f64 / seconds.max(1e-12),
            allocs_per_round: allocs as f64 / rounds.max(1) as f64,
        });
    }

    let mut engine_table = Table::new(&[
        "engine",
        "delivery",
        "pool",
        "rounds",
        "seconds",
        "rounds/s",
        "allocs/round",
    ]);
    for r in &engine_rows {
        engine_table.row(vec![
            r.engine.clone(),
            r.delivery.clone(),
            r.pool.to_string(),
            r.rounds.to_string(),
            format!("{:.3}", r.seconds),
            format!("{:.0}", r.rounds_per_sec),
            format!("{:.1}", r.allocs_per_round),
        ]);
    }
    println!("\n-- engine loop (all-pairs stream of {stream} words, B = 512) --");
    engine_table.print();

    let rps = |name: &str, delivery: &str, pool: usize| {
        engine_rows
            .iter()
            .find(|r| r.engine == name && r.delivery == delivery && r.pool == pool)
            .map(|r| r.rounds_per_sec)
            .unwrap_or(0.0)
    };
    let sync_rps = rps("sync", "exact", 1);
    let threaded_rps = rps("threaded", "exact", k);
    // Barrier-removal bars. Neither needs multiple CPUs — a one-worker
    // event run measures pure scheduler overhead, and beating the threaded
    // engine on a small host only requires not paying 3k barrier waits per
    // round — so both are asserted on every host.
    let event_seq = rps("event", "exact", 1);
    if event_seq > 0.0 {
        assert!(
            event_seq >= sync_rps * 0.9,
            "event engine at one worker ({event_seq:.0} rounds/s) must stay within 10% of sync \
             ({sync_rps:.0} rounds/s)"
        );
        println!(
            "\nevent@1 vs sync: {:.2}x rounds/sec (>= 0.9x required) -> ok",
            event_seq / sync_rps.max(1e-12)
        );
    }
    if let Some(best_parallel) = engine_rows
        .iter()
        .filter(|r| r.engine == "event" && r.delivery == "exact" && r.pool >= 2)
        .map(|r| r.rounds_per_sec)
        .fold(None, |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.max(s))))
    {
        assert!(
            best_parallel > threaded_rps,
            "event engine at pool >= 2 ({best_parallel:.0} rounds/s) must beat the threaded \
             engine ({threaded_rps:.0} rounds/s) — removing the barrier is the whole point"
        );
        println!(
            "event@pool>=2 vs threaded: {:.2}x rounds/sec (> 1x required) -> ok",
            best_parallel / threaded_rps.max(1e-12)
        );
    }
    // Relaxed vs exact, pool by pool: promises must not tax the round
    // loop (10% noise margin, same as the other bars; on this all-pairs
    // workload every machine streams until the end, so the promise path
    // measures pure bookkeeping cost, the floor of the relaxed win).
    for &pool in &pools {
        let exact = rps("event", "exact", pool);
        let relaxed = rps("event", "relaxed", pool);
        if exact > 0.0 && relaxed > 0.0 {
            assert!(
                relaxed >= exact * 0.9,
                "relaxed delivery at pool {pool} ({relaxed:.0} rounds/s) regressed more than \
                 10% below exact ({exact:.0} rounds/s)"
            );
            println!(
                "event relaxed vs exact @{pool}: {:.2}x rounds/sec (>= 0.9x required) -> ok",
                relaxed / exact.max(1e-12)
            );
        }
    }

    // -- Section 3: transport loop, dense lattice vs HashMap baseline --------
    let budget = 512u64;
    let per_link = 64usize;
    let (hm_rounds, hm_secs) = transport_hashmap(k, waves, per_link, budget);
    let (la_rounds, la_secs) = transport_lattice(k, waves, per_link, budget);
    assert_eq!(la_rounds, hm_rounds, "both transports must simulate identical rounds");
    let transport_rows = vec![
        TransportRow {
            links: "hashmap".into(),
            rounds: hm_rounds,
            seconds: hm_secs,
            rounds_per_sec: hm_rounds as f64 / hm_secs.max(1e-12),
        },
        TransportRow {
            links: "lattice".into(),
            rounds: la_rounds,
            seconds: la_secs,
            rounds_per_sec: la_rounds as f64 / la_secs.max(1e-12),
        },
    ];
    let mut transport_table = Table::new(&["links", "rounds", "seconds", "rounds/s"]);
    for r in &transport_rows {
        transport_table.row(vec![
            r.links.clone(),
            r.rounds.to_string(),
            format!("{:.3}", r.seconds),
            format!("{:.0}", r.rounds_per_sec),
        ]);
    }
    println!("\n-- transport loop ({waves} waves x {per_link} msgs/link, B = {budget}) --");
    transport_table.print();

    let lattice_rps = transport_rows[1].rounds_per_sec;
    let hashmap_rps = transport_rows[0].rounds_per_sec;
    assert!(
        lattice_rps >= hashmap_rps * 0.9,
        "dense lattice transport ({lattice_rps:.0} rounds/s) regressed below the HashMap \
         baseline ({hashmap_rps:.0} rounds/s)"
    );
    println!(
        "\nlattice vs hashmap: {:.2}x rounds/sec -> {}",
        lattice_rps / hashmap_rps.max(1e-12),
        if lattice_rps >= hashmap_rps { "faster" } else { "within noise margin" }
    );

    // -- Optional: the paper's full-scale path, per engine -------------------
    let paper_full = paper_full.then(|| {
        let pk = 16;
        let ell = 64;
        let w = ScalarWorkload::paper_full();
        let start = Instant::now();
        let shards = w.generate(pk, seed);
        let gen_seconds = start.elapsed().as_secs_f64();
        let total_points: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total_points, pk << 22);
        let start = Instant::now();
        let mut cluster: KnnCluster = KnnCluster::builder().machines(pk).seed(seed).build();
        cluster.load_shards(shards).expect("shard count matches k");
        let load_seconds = start.elapsed().as_secs_f64();
        println!(
            "\npaper_full: generated {total_points} points ({pk} x 2^22) in {gen_seconds:.2}s, \
             loaded in {load_seconds:.2}s"
        );
        let q = ScalarPoint(1 << 31);
        let mut query = Vec::new();
        let mut reference = None;
        for engine in [kmachine::Engine::Sync, kmachine::Engine::Threaded, kmachine::Engine::Event]
        {
            cluster.set_engine(engine);
            let start = Instant::now();
            let ans = cluster.query_with(Algorithm::Simple, &q, ell).expect("query");
            let seconds = start.elapsed().as_secs_f64();
            assert_eq!(ans.neighbors.len(), ell);
            let ids: Vec<_> = ans.neighbors.iter().map(|n| n.id).collect();
            match &reference {
                None => reference = Some(ids),
                Some(want) => {
                    assert_eq!(&ids, want, "paper_full answers must be engine-invariant")
                }
            }
            println!(
                "paper_full query ({}): {seconds:.3}s, {} rounds",
                engine.name(),
                ans.metrics.rounds
            );
            query.push(PaperFullQueryRow {
                engine: engine.name().to_string(),
                seconds,
                rounds: ans.metrics.rounds,
            });
        }
        PaperFullReport { gen_seconds, load_seconds, total_points, query }
    });

    let report = Report {
        k,
        per_machine,
        host_cpus,
        gen_speedup_enforced,
        generation: gen_rows,
        engine: engine_rows,
        transport: transport_rows,
        paper_full,
    };
    let csv_rows: Vec<Vec<String>> = report
        .generation
        .iter()
        .map(|r| {
            vec![
                "generation".to_string(),
                r.pool.to_string(),
                format!("{:.4}", r.seconds),
                format!("{:.3}", r.speedup_vs_pool1),
            ]
        })
        .chain(report.engine.iter().map(|r| {
            vec![
                format!("engine-{}-{}@{}", r.engine, r.delivery, r.pool),
                r.rounds.to_string(),
                format!("{:.4}", r.seconds),
                format!("{:.1}", r.rounds_per_sec),
            ]
        }))
        .chain(report.transport.iter().map(|r| {
            vec![
                format!("transport-{}", r.links),
                r.rounds.to_string(),
                format!("{:.4}", r.seconds),
                format!("{:.1}", r.rounds_per_sec),
            ]
        }))
        .chain(report.paper_full.iter().flat_map(|pf| {
            pf.query.iter().map(|r| {
                vec![
                    format!("paper-full-{}", r.engine),
                    r.rounds.to_string(),
                    format!("{:.4}", r.seconds),
                    String::new(),
                ]
            })
        }))
        .collect();
    let csv = write_csv("hotpath", &["section", "param", "seconds", "value"], &csv_rows);
    let json = write_json("hotpath", &report);
    println!("\nwrote {} and {}", csv.display(), json.display());
}
