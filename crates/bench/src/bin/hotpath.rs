//! **Engine hot path + real parallelism** — the wall-clock bench backing
//! the work-stealing rayon shim and the allocation-lean engine loop.
//!
//! Three sections, one JSON report (`results/hotpath.{csv,json}`):
//!
//! 1. **Workload-generation speedup vs pool size.** The same
//!    [`ScalarWorkload`] is generated under each requested pool size
//!    (`--pools`, default `1,2,4`); the datasets are asserted bit-identical
//!    (pool size may only change the wall clock, never the bytes) and the
//!    speedup over pool size 1 is reported. When the host actually has ≥ 4
//!    CPUs, a ≥ 2× speedup at pool size ≥ 4 is asserted; on smaller hosts
//!    the ratio is reported but not enforced (you cannot buy parallelism
//!    the kernel doesn't offer).
//! 2. **Engine loop rounds/sec + allocations.** A bandwidth-bound all-pairs
//!    streaming protocol is pushed through both engines; the bin reports
//!    simulated rounds per second of wall clock and — via a counting global
//!    allocator — heap allocations per round, the number the dense link
//!    lattice and buffer reuse drive down.
//! 3. **Transport micro: dense lattice vs `HashMap` links.** The engines'
//!    per-round transport loop (push one wave of envelopes, drain every
//!    link at budget `B` until empty) is replayed over the dense
//!    `Vec<LinkFifo>` lattice the engines now use and over the
//!    `HashMap<(dst, src), LinkFifo>` they used before. The lattice's
//!    rounds/sec must be no worse than the recorded HashMap baseline
//!    (asserted with a 10% noise margin).
//!
//! `--paper-full` additionally generates the paper's §3 full-scale
//! configuration (2²² points per machine) and times it, proving the
//! configuration pushes through generation + load.
//!
//! ```text
//! cargo run -p knn-bench --release --bin hotpath --
//!     [--k 8] [--per-machine 262144] [--pools 1,2,4] [--stream 2048]
//!     [--waves 64] [--seed 7] [--paper-full]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use kmachine::{
    engine::{run_sync, run_threaded},
    BandwidthMode, Ctx, Envelope, LinkFifo, NetConfig, Payload, Protocol, Step,
};
use knn_bench::args::Args;
use knn_bench::table::Table;
use knn_bench::{write_csv, write_json};
use knn_workloads::ScalarWorkload;
use rayon::ThreadPoolBuilder;

/// System allocator wrapped with an allocation counter, so the engine rows
/// can report allocations per simulated round.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter has no safety impact.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Every machine streams `n` 64-bit values to every other machine under an
/// enforced per-link budget — the bandwidth-bound all-pairs traffic shape
/// that keeps every FIFO of the lattice busy for many rounds.
struct AllPairsStream {
    n: u64,
    expected: u64,
    received: u64,
    checksum: u64,
}

#[derive(Debug, Clone)]
struct Word(u64);

impl Payload for Word {
    fn size_bits(&self) -> u64 {
        64
    }
}

impl Protocol for AllPairsStream {
    type Msg = Word;
    type Output = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Word>) -> Step<u64> {
        if ctx.round() == 0 {
            for v in 0..self.n {
                for dst in 0..ctx.k() {
                    if dst != ctx.id() {
                        ctx.send(dst, Word(v));
                    }
                }
            }
        }
        for env in ctx.inbox() {
            self.received += 1;
            self.checksum = self.checksum.wrapping_add(env.msg.0);
        }
        if self.received == self.expected {
            Step::Done(self.checksum)
        } else {
            Step::Continue
        }
    }
}

#[derive(Debug)]
struct GenRow {
    pool: usize,
    seconds: f64,
    speedup_vs_pool1: f64,
}

#[derive(Debug)]
struct EngineRow {
    engine: String,
    rounds: u64,
    seconds: f64,
    rounds_per_sec: f64,
    allocs_per_round: f64,
}

#[derive(Debug)]
struct TransportRow {
    links: String,
    rounds: u64,
    seconds: f64,
    rounds_per_sec: f64,
}

// Consumed through its `Debug` form by the serde shim's `write_json`.
#[allow(dead_code)]
#[derive(Debug)]
struct Report {
    k: usize,
    per_machine: usize,
    host_cpus: usize,
    generation: Vec<GenRow>,
    engine: Vec<EngineRow>,
    transport: Vec<TransportRow>,
    paper_full_seconds: Option<f64>,
}

/// Drain-until-empty over the dense lattice the engines use.
fn transport_lattice(k: usize, waves: usize, per_link: usize, budget: u64) -> (u64, f64) {
    let mut links: Vec<LinkFifo<Word>> = (0..k * k).map(|_| LinkFifo::default()).collect();
    let mut out: Vec<Envelope<Word>> = Vec::new();
    let mut rounds = 0u64;
    let start = Instant::now();
    for _ in 0..waves {
        push_wave_lattice(&mut links, k, per_link);
        loop {
            let mut busy = false;
            for dst in 0..k {
                for link in &mut links[dst * k..(dst + 1) * k] {
                    if link.is_empty() {
                        continue;
                    }
                    link.drain_round(budget, &mut out);
                    busy = true;
                }
            }
            out.clear();
            if !busy {
                break;
            }
            rounds += 1;
        }
    }
    (rounds, start.elapsed().as_secs_f64())
}

fn push_wave_lattice(links: &mut [LinkFifo<Word>], k: usize, per_link: usize) {
    for src in 0..k {
        for dst in 0..k {
            if dst == src {
                continue;
            }
            for seq in 0..per_link {
                let env =
                    Envelope { src, dst, sent_round: 0, seq: seq as u64, msg: Word(seq as u64) };
                links[dst * k + src].push(env, 64);
            }
        }
    }
}

/// The same drain loop over the `HashMap<(dst, src), LinkFifo>` the engines
/// used before the dense lattice — the recorded baseline.
fn transport_hashmap(k: usize, waves: usize, per_link: usize, budget: u64) -> (u64, f64) {
    let mut links: HashMap<(usize, usize), LinkFifo<Word>> = HashMap::new();
    let mut out: Vec<Envelope<Word>> = Vec::new();
    let mut rounds = 0u64;
    let start = Instant::now();
    for _ in 0..waves {
        for src in 0..k {
            for dst in 0..k {
                if dst == src {
                    continue;
                }
                for seq in 0..per_link {
                    let env = Envelope {
                        src,
                        dst,
                        sent_round: 0,
                        seq: seq as u64,
                        msg: Word(seq as u64),
                    };
                    links.entry((dst, src)).or_default().push(env, 64);
                }
            }
        }
        loop {
            let mut busy = false;
            for link in links.values_mut() {
                if link.is_empty() {
                    continue;
                }
                link.drain_round(budget, &mut out);
                busy = true;
            }
            out.clear();
            links.retain(|_, l| !l.is_empty());
            if !busy {
                break;
            }
            rounds += 1;
        }
    }
    (rounds, start.elapsed().as_secs_f64())
}

fn main() {
    let args = Args::parse();
    let k = args.get_usize("k", 8);
    let per_machine = args.get_usize("per-machine", 1 << 18);
    let pools = args.get_list("pools", &[1, 2, 4]);
    let stream = args.get_u64("stream", 2048);
    let waves = args.get_usize("waves", 64);
    let seed = args.get_u64("seed", 7);
    let paper_full = args.has("paper-full");
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);

    println!(
        "== Engine hot path: k = {k}, {per_machine} pts/machine, host CPUs = {host_cpus} ==\n"
    );

    // -- Section 1: generation speedup vs pool size --------------------------
    // Speedups are always relative to pool size 1, so the reference run is
    // prepended when the requested list omits it.
    let mut pools = pools;
    if pools.first() != Some(&1) {
        pools.retain(|&p| p != 1);
        pools.insert(0, 1);
    }
    let workload = ScalarWorkload { per_machine, lo: 0, hi: 1 << 32 };
    let mut gen_rows: Vec<GenRow> = Vec::new();
    let mut reference = None;
    let mut t1 = None;
    for &pool in &pools {
        let handle = ThreadPoolBuilder::new().num_threads(pool).build().expect("pool");
        // Min of three repetitions: scoped-thread startup and scheduler
        // noise on shared CI runners would otherwise dominate the ratio.
        let mut seconds = f64::INFINITY;
        let mut shards = None;
        for _ in 0..3 {
            let start = Instant::now();
            shards = Some(handle.install(|| workload.generate(k, seed)));
            seconds = seconds.min(start.elapsed().as_secs_f64());
        }
        let shards = shards.expect("three repetitions ran");
        match &reference {
            None => {
                t1 = Some(seconds);
                reference = Some(shards);
            }
            Some(reference) => assert_eq!(
                reference, &shards,
                "generation must be bit-identical at every pool size (pool {pool})"
            ),
        }
        let speedup = t1.expect("first pool row recorded") / seconds.max(1e-12);
        gen_rows.push(GenRow { pool, seconds, speedup_vs_pool1: speedup });
    }

    let mut gen_table = Table::new(&["pool", "seconds", "speedup"]);
    for r in &gen_rows {
        gen_table.row(vec![
            r.pool.to_string(),
            format!("{:.3}", r.seconds),
            format!("{:.2}x", r.speedup_vs_pool1),
        ]);
    }
    println!("-- workload generation ({k} machines x {per_machine} points) --");
    gen_table.print();

    // The ISSUE's acceptance bar: >= 2x at pool >= 4. Only enforceable when
    // the kernel actually offers >= 4 CPUs.
    if let Some(best) = gen_rows
        .iter()
        .filter(|r| r.pool >= 4)
        .map(|r| r.speedup_vs_pool1)
        .fold(None, |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.max(s))))
    {
        if host_cpus >= 4 {
            assert!(
                best >= 2.0,
                "expected >= 2x generation speedup at pool >= 4 on a {host_cpus}-CPU host, \
                 got {best:.2}x"
            );
            println!("\nspeedup check: {best:.2}x at pool >= 4 (>= 2x required) -> ok");
        } else {
            println!(
                "\nspeedup check skipped: host has {host_cpus} CPU(s), best pool>=4 speedup \
                 {best:.2}x reported unenforced"
            );
        }
    }

    // -- Section 2: engine loop rounds/sec + allocations ---------------------
    let expected = stream * (k as u64 - 1);
    let cfg = NetConfig::new(k)
        .with_seed(seed)
        .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 512 })
        .with_max_rounds(10_000_000);
    let mk = || {
        (0..k)
            .map(|_| AllPairsStream { n: stream, expected, received: 0, checksum: 0 })
            .collect::<Vec<_>>()
    };
    let mut engine_rows: Vec<EngineRow> = Vec::new();
    for (name, threaded) in [("sync", false), ("threaded", true)] {
        let before = allocations();
        let start = Instant::now();
        let out = if threaded {
            run_threaded(&cfg, mk()).expect("threaded run")
        } else {
            run_sync(&cfg, mk()).expect("sync run")
        };
        let seconds = start.elapsed().as_secs_f64();
        let allocs = allocations() - before;
        let rounds = out.metrics.rounds;
        engine_rows.push(EngineRow {
            engine: name.to_string(),
            rounds,
            seconds,
            rounds_per_sec: rounds as f64 / seconds.max(1e-12),
            allocs_per_round: allocs as f64 / rounds.max(1) as f64,
        });
    }

    let mut engine_table = Table::new(&["engine", "rounds", "seconds", "rounds/s", "allocs/round"]);
    for r in &engine_rows {
        engine_table.row(vec![
            r.engine.clone(),
            r.rounds.to_string(),
            format!("{:.3}", r.seconds),
            format!("{:.0}", r.rounds_per_sec),
            format!("{:.1}", r.allocs_per_round),
        ]);
    }
    println!("\n-- engine loop (all-pairs stream of {stream} words, B = 512) --");
    engine_table.print();

    // -- Section 3: transport loop, dense lattice vs HashMap baseline --------
    let budget = 512u64;
    let per_link = 64usize;
    let (hm_rounds, hm_secs) = transport_hashmap(k, waves, per_link, budget);
    let (la_rounds, la_secs) = transport_lattice(k, waves, per_link, budget);
    assert_eq!(la_rounds, hm_rounds, "both transports must simulate identical rounds");
    let transport_rows = vec![
        TransportRow {
            links: "hashmap".into(),
            rounds: hm_rounds,
            seconds: hm_secs,
            rounds_per_sec: hm_rounds as f64 / hm_secs.max(1e-12),
        },
        TransportRow {
            links: "lattice".into(),
            rounds: la_rounds,
            seconds: la_secs,
            rounds_per_sec: la_rounds as f64 / la_secs.max(1e-12),
        },
    ];
    let mut transport_table = Table::new(&["links", "rounds", "seconds", "rounds/s"]);
    for r in &transport_rows {
        transport_table.row(vec![
            r.links.clone(),
            r.rounds.to_string(),
            format!("{:.3}", r.seconds),
            format!("{:.0}", r.rounds_per_sec),
        ]);
    }
    println!("\n-- transport loop ({waves} waves x {per_link} msgs/link, B = {budget}) --");
    transport_table.print();

    let lattice_rps = transport_rows[1].rounds_per_sec;
    let hashmap_rps = transport_rows[0].rounds_per_sec;
    assert!(
        lattice_rps >= hashmap_rps * 0.9,
        "dense lattice transport ({lattice_rps:.0} rounds/s) regressed below the HashMap \
         baseline ({hashmap_rps:.0} rounds/s)"
    );
    println!(
        "\nlattice vs hashmap: {:.2}x rounds/sec -> {}",
        lattice_rps / hashmap_rps.max(1e-12),
        if lattice_rps >= hashmap_rps { "faster" } else { "within noise margin" }
    );

    // -- Optional: the paper's full-scale generation -------------------------
    let paper_full_seconds = paper_full.then(|| {
        let w = ScalarWorkload::paper_full();
        let start = Instant::now();
        let shards = w.generate(k, seed);
        let seconds = start.elapsed().as_secs_f64();
        let total: usize = shards.iter().map(|s| s.len()).sum();
        println!("\npaper_full: generated {total} points ({k} x 2^22) in {seconds:.2}s");
        assert_eq!(total, k << 22);
        seconds
    });

    let report = Report {
        k,
        per_machine,
        host_cpus,
        generation: gen_rows,
        engine: engine_rows,
        transport: transport_rows,
        paper_full_seconds,
    };
    let csv_rows: Vec<Vec<String>> = report
        .generation
        .iter()
        .map(|r| {
            vec![
                "generation".to_string(),
                r.pool.to_string(),
                format!("{:.4}", r.seconds),
                format!("{:.3}", r.speedup_vs_pool1),
            ]
        })
        .chain(report.engine.iter().map(|r| {
            vec![
                format!("engine-{}", r.engine),
                r.rounds.to_string(),
                format!("{:.4}", r.seconds),
                format!("{:.1}", r.rounds_per_sec),
            ]
        }))
        .chain(report.transport.iter().map(|r| {
            vec![
                format!("transport-{}", r.links),
                r.rounds.to_string(),
                format!("{:.4}", r.seconds),
                format!("{:.1}", r.rounds_per_sec),
            ]
        }))
        .collect();
    let csv = write_csv("hotpath", &["section", "param", "seconds", "value"], &csv_rows);
    let json = write_json("hotpath", &report);
    println!("\nwrote {} and {}", csv.display(), json.display());
}
