//! **Lemma 2.3 validation** — the sampling prune leaves at most `11ℓ`
//! candidates with probability `≥ 1 − 2/ℓ²`.
//!
//! For each (k, ℓ) this runs Algorithm 2's sampling stage many times and
//! reports the distribution of `survivors / ℓ`, the empirical probability
//! of exceeding the 11ℓ bound, and how often the hardening fallback
//! (survivors < ℓ) fired.
//!
//! ```text
//! cargo run -p knn-bench --release --bin lemma23
//!     [--trials 200] [--ks 8,32,128] [--ells 16,64,256,1024]
//! ```

use kmachine::{engine::run_sync, NetConfig};
use knn_bench::args::Args;
use knn_bench::stats::Summary;
use knn_bench::table::Table;
use knn_bench::{write_csv, write_json};
use knn_core::protocols::knn::{KnnParams, KnnProtocol};
use rand::{rngs::StdRng, RngExt, SeedableRng};

#[derive(Debug, serde::Serialize)]
struct Row {
    k: usize,
    ell: usize,
    trials: u64,
    ratio_mean: f64,
    ratio_max: f64,
    exceed_11ell: u64,
    rollbacks: u64,
}

fn main() {
    let args = Args::parse();
    let trials = args.get_u64("trials", 200);
    let ks = args.get_list("ks", &[8, 32, 128]);
    let ells = args.get_list("ells", &[16, 64, 256, 1024]);
    // Enough points that every machine holds a full ℓ candidates.
    let per_machine_factor = 4;

    println!("== Lemma 2.3: survivors after pruning <= 11*ell whp  ({trials} trials) ==\n");
    let mut table = Table::new(&[
        "k",
        "ell",
        "survivors/ell (mean)",
        "survivors/ell (max)",
        "P(> 11 ell)",
        "rollback rate",
    ]);
    let mut rows = Vec::new();

    for &k in &ks {
        for &ell in &ells {
            let per_machine = ell * per_machine_factor;
            let mut ratios = Vec::new();
            let mut exceed = 0u64;
            let mut rollbacks = 0u64;
            for t in 0..trials {
                let cfg = NetConfig::new(k).with_seed(t);
                let protos: Vec<KnnProtocol<'_, u64>> = (0..k)
                    .map(|i| {
                        let mut rng = StdRng::seed_from_u64(
                            t ^ ((i as u64) << 24) ^ ((ell as u64) << 48) ^ k as u64,
                        );
                        let keys: Vec<u64> = (0..per_machine).map(|_| rng.random()).collect();
                        KnnProtocol::from_keys(i, k, 0, ell as u64, KnnParams::default(), keys)
                    })
                    .collect();
                let out = run_sync(&cfg, protos).expect("knn");
                let stats = out.outputs[0].stats.expect("leader stats");
                let ratio = stats.survivors as f64 / ell as f64;
                ratios.push(ratio);
                exceed += u64::from(stats.survivors > 11 * ell as u64);
                rollbacks += u64::from(stats.rolled_back);
            }
            let s = Summary::of(&ratios);
            table.row(vec![
                k.to_string(),
                ell.to_string(),
                format!("{:.2}", s.mean),
                format!("{:.2}", s.max),
                format!("{:.4}", exceed as f64 / trials as f64),
                format!("{:.4}", rollbacks as f64 / trials as f64),
            ]);
            rows.push(Row {
                k,
                ell,
                trials,
                ratio_mean: s.mean,
                ratio_max: s.max,
                exceed_11ell: exceed,
                rollbacks,
            });
        }
    }
    table.print();
    println!(
        "\nLemma 2.3 predicts P(survivors > 11 ell) <= 2/ell^2 — e.g. <= 0.0078 at ell = 16,\n\
         <= 0.000002 at ell = 1024. The rollback column measures the hardening fallback\n\
         (survivors < ell), which the paper's whp analysis leaves implicit."
    );

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                r.ell.to_string(),
                r.trials.to_string(),
                format!("{:.3}", r.ratio_mean),
                format!("{:.3}", r.ratio_max),
                r.exceed_11ell.to_string(),
                r.rollbacks.to_string(),
            ]
        })
        .collect();
    let csv = write_csv(
        "lemma23",
        &["k", "ell", "trials", "ratio_mean", "ratio_max", "exceed_11ell", "rollbacks"],
        &csv_rows,
    );
    let json = write_json("lemma23", &rows);
    println!("\nwrote {} and {}", csv.display(), json.display());
}
