//! **Message complexity table** — Theorem 2.4's `O(k log ℓ)` bound.
//!
//! For a grid of (k, ℓ) this reports the measured message count of
//! Algorithm 2 and the normalized ratio `messages / (k · log₂ ℓ)`, which
//! the theorem predicts to be bounded by a constant. The simple method's
//! `Θ(k·ℓ)` count is printed alongside for contrast.
//!
//! ```text
//! cargo run -p knn-bench --release --bin messages_table
//!     [--seeds 20] [--ks 4,16,64,256] [--ells 16,64,256,1024,4096]
//! ```

use kmachine::{engine::run_sync, NetConfig};
use knn_bench::args::Args;
use knn_bench::stats::Summary;
use knn_bench::table::Table;
use knn_bench::{write_csv, write_json};
use knn_core::protocols::knn::{KnnParams, KnnProtocol};
use knn_core::protocols::simple::SimpleProtocol;
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random()).collect()
}

#[derive(Debug, serde::Serialize)]
struct Row {
    k: usize,
    ell: usize,
    knn_messages: f64,
    knn_normalized: f64,
    knn_bits: f64,
    simple_messages: f64,
    simple_per_k_ell: f64,
}

fn main() {
    let args = Args::parse();
    let seeds = args.get_u64("seeds", 20);
    let ks = args.get_list("ks", &[4, 16, 64, 256]);
    let ells = args.get_list("ells", &[16, 64, 256, 1024, 4096]);
    let per_machine = 1usize << 14;

    println!("== Theorem 2.4: messages of Algorithm 2 vs k·log2(ell)  ({seeds} seeds) ==\n");
    let mut table = Table::new(&[
        "k",
        "ell",
        "alg2 msgs",
        "alg2 msgs/(k log2 ell)",
        "alg2 bits",
        "simple msgs",
        "simple msgs/(k ell)",
    ]);
    let mut rows = Vec::new();

    for &k in &ks {
        for &ell in &ells {
            let mut knn_msgs = Vec::new();
            let mut knn_bits = Vec::new();
            let mut simple_msgs = Vec::new();
            for s in 0..seeds {
                let mk_keys =
                    |i: usize| uniform_keys(per_machine, s ^ ((i as u64) << 32) ^ ell as u64);
                let cfg = NetConfig::new(k).with_seed(s);
                let protos: Vec<KnnProtocol<'_, u64>> = (0..k)
                    .map(|i| {
                        KnnProtocol::from_keys(
                            i,
                            k,
                            0,
                            ell as u64,
                            KnnParams::default(),
                            mk_keys(i),
                        )
                    })
                    .collect();
                let out = run_sync(&cfg, protos).expect("knn");
                knn_msgs.push(out.metrics.messages);
                knn_bits.push(out.metrics.bits);

                let protos: Vec<SimpleProtocol<'_, u64>> = (0..k)
                    .map(|i| SimpleProtocol::from_keys(i, 0, ell as u64, 7, mk_keys(i)))
                    .collect();
                let out = run_sync(&cfg, protos).expect("simple");
                simple_msgs.push(out.metrics.messages);
            }
            let km = Summary::of_u64(&knn_msgs);
            let kb = Summary::of_u64(&knn_bits);
            let sm = Summary::of_u64(&simple_msgs);
            let norm = km.mean / (k as f64 * (ell.max(2) as f64).log2());
            let row = Row {
                k,
                ell,
                knn_messages: km.mean,
                knn_normalized: norm,
                knn_bits: kb.mean,
                simple_messages: sm.mean,
                simple_per_k_ell: sm.mean / (k as f64 * ell as f64),
            };
            table.row(vec![
                k.to_string(),
                ell.to_string(),
                format!("{:.0}", row.knn_messages),
                format!("{:.2}", row.knn_normalized),
                format!("{:.0}", row.knn_bits),
                format!("{:.0}", row.simple_messages),
                format!("{:.3}", row.simple_per_k_ell),
            ]);
            rows.push(row);
        }
    }
    table.print();

    let max_norm = rows.iter().map(|r| r.knn_normalized).fold(0.0, f64::max);
    let min_norm = rows.iter().map(|r| r.knn_normalized).fold(f64::INFINITY, f64::min);
    println!(
        "\nnormalized Algorithm 2 messages stay within [{min_norm:.2}, {max_norm:.2}] across the\n\
         whole grid — a bounded constant, as O(k log ell) requires; the simple method's\n\
         msgs/(k*ell) column is likewise ~constant, pinning its Theta(k*ell) cost."
    );

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                r.ell.to_string(),
                format!("{:.1}", r.knn_messages),
                format!("{:.3}", r.knn_normalized),
                format!("{:.0}", r.knn_bits),
                format!("{:.1}", r.simple_messages),
                format!("{:.4}", r.simple_per_k_ell),
            ]
        })
        .collect();
    let csv = write_csv(
        "messages_table",
        &[
            "k",
            "ell",
            "knn_messages",
            "knn_normalized",
            "knn_bits",
            "simple_messages",
            "simple_per_k_ell",
        ],
        &csv_rows,
    );
    let json = write_json("messages_table", &rows);
    println!("\nwrote {} and {}", csv.display(), json.display());
}
