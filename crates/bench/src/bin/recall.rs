//! **NSW recall / latency sweep** — the graph-index quality curve that
//! backs the README's recall table and the ROADMAP's graph-index check-off.
//!
//! Builds one [`NswIndex`] per shard over the seeded Gaussian-mixture
//! vector workload (the same distribution the conformance suite pins),
//! then sweeps `m × ef`, answering each query the way a cluster serve
//! does: shard-local top-ℓ candidates merged into a global top-ℓ. Each
//! row reports against the brute-force `(distance, id)` oracle:
//!
//! * `recall` / `min_recall` — mean and worst-case recall@ℓ;
//! * `build_ms` — wall clock to build all `k` shard graphs at this `m`;
//! * `us/q` — mean per-query latency (all-shard search + merge);
//! * `speedup` — brute-force scan time over graph search time.
//!
//! Every `m` also gets an `ef = n` row: the search knob saturates at an
//! exact scan by construction, so that row must report recall 1.0 — the
//! bin asserts it, and asserts mean recall ≥ 0.95 at the default knobs
//! (`m = 12`, `ef = 64`), the acceptance floor CI smokes on every push.
//!
//! ```text
//! cargo run -p knn-bench --release --bin recall
//!     [--k 4] [--per-shard 2048] [--dims 16] [--ell 10] [--queries 64]
//!     [--ms 6,12,24] [--efs 16,32,64,128,256] [--seed 42]
//! ```
//!
//! Writes `results/recall.{csv,json}` so CI accumulates the quality
//! trajectory across commits.

use std::time::Instant;

use knn_bench::args::Args;
use knn_bench::table::Table;
use knn_bench::{write_csv, write_json};
use knn_core::local::{brute_top, recall};
use knn_core::{NswIndex, NswParams};
use knn_points::{Dataset, DistKey, IdAssigner, Metric, Record, VecPoint};
use knn_workloads::{GaussianMixture, PartitionStrategy};

#[derive(Debug, serde::Serialize)]
struct Row {
    m: usize,
    ef: usize,
    exact: bool,
    ell: usize,
    queries: usize,
    recall_mean: f64,
    recall_min: f64,
    build_ms: f64,
    micros_per_query: f64,
    speedup_vs_scan: f64,
}

/// Shard-local top-ℓ from every graph, merged into the global top-ℓ — the
/// candidate path a cluster serve uses.
fn merged_top(
    indices: &[NswIndex],
    shards: &[Vec<Record<VecPoint>>],
    query: &VecPoint,
    ell: usize,
    ef: usize,
) -> Vec<DistKey> {
    let mut merged: Vec<DistKey> = indices
        .iter()
        .zip(shards)
        .flat_map(|(index, records)| index.search(records, query, ell, ef))
        .collect();
    merged.sort_unstable();
    merged.truncate(ell);
    merged
}

fn main() {
    let args = Args::parse();
    let k = args.get_usize("k", 4);
    let per_shard = args.get_usize("per-shard", 1 << 11);
    let dims = args.get_usize("dims", 16);
    let ell = args.get_usize("ell", 10);
    let queries = args.get_usize("queries", 64);
    let ms = args.get_list("ms", &[6, 12, 24]);
    let efs = args.get_list("efs", &[16, 32, 64, 128, 256]);
    let seed = args.get_u64("seed", 42);
    let defaults = NswParams::default();

    // The conformance suite's seeded workload: labeled Gaussian mixture,
    // round-robin sharded; queries drawn from the same centers with fresh
    // noise, so they land where near neighbors exist.
    let mixture = GaussianMixture { dims, clusters: 10, spread: 1.5, range: 20.0 };
    let mut ids = IdAssigner::new(seed);
    let data = Dataset::from_labeled(mixture.generate(k * per_shard, seed), &mut ids);
    let all_records = data.records.clone();
    let shards: Vec<Vec<Record<VecPoint>>> =
        PartitionStrategy::RoundRobin.split(data.records, k, seed);
    let probes: Vec<VecPoint> =
        mixture.generate_with(queries, seed, seed ^ 0xABCD).into_iter().map(|(p, _)| p).collect();

    // Oracle answers and the scan baseline, once.
    let scan_start = Instant::now();
    let oracle: Vec<Vec<DistKey>> =
        probes.iter().map(|q| brute_top(&all_records, q, ell, Metric::Euclidean)).collect();
    let scan_us = scan_start.elapsed().as_secs_f64() * 1e6 / probes.len() as f64;

    println!(
        "NSW recall sweep: k {k}, per-shard {per_shard}, dims {dims}, ell {ell}, \
         {queries} queries, seed {seed} (brute scan: {scan_us:.1} us/q)"
    );

    let mut table =
        Table::new(&["m", "ef", "exact", "recall", "min", "build_ms", "us/q", "speedup"]);
    let mut rows: Vec<Row> = Vec::new();
    for &m in &ms {
        let params = NswParams { m, ..defaults };
        let build_start = Instant::now();
        let indices: Vec<NswIndex> = shards
            .iter()
            .map(|records| NswIndex::build(records, params, Metric::Euclidean))
            .collect();
        let build_ms = build_start.elapsed().as_secs_f64() * 1e3;

        // The saturating row: ef covering the shard degenerates to the
        // exact scan by construction.
        let mut sweep: Vec<(usize, bool)> = efs.iter().map(|&ef| (ef, false)).collect();
        sweep.push((per_shard, true));
        for (ef, exact) in sweep {
            let search_start = Instant::now();
            let answers: Vec<Vec<DistKey>> =
                probes.iter().map(|q| merged_top(&indices, &shards, q, ell, ef)).collect();
            let micros = search_start.elapsed().as_secs_f64() * 1e6 / probes.len() as f64;
            let (mut total, mut min) = (0.0f64, 1.0f64);
            for (got, want) in answers.iter().zip(&oracle) {
                let r = recall(got, want);
                total += r;
                min = min.min(r);
            }
            let mean = total / probes.len() as f64;
            if exact {
                assert!(
                    (mean - 1.0).abs() < f64::EPSILON,
                    "ef = n row must be exact, got recall {mean}"
                );
            }
            let row = Row {
                m,
                ef,
                exact,
                ell,
                queries,
                recall_mean: mean,
                recall_min: min,
                build_ms,
                micros_per_query: micros,
                speedup_vs_scan: scan_us / micros,
            };
            table.row(vec![
                row.m.to_string(),
                row.ef.to_string(),
                if row.exact { "yes".into() } else { "".into() },
                format!("{:.4}", row.recall_mean),
                format!("{:.2}", row.recall_min),
                format!("{:.0}", row.build_ms),
                format!("{:.1}", row.micros_per_query),
                format!("{:.1}x", row.speedup_vs_scan),
            ]);
            rows.push(row);
        }
    }
    table.print();

    // The acceptance floor: default knobs must clear 0.95 mean recall
    // whenever the sweep includes them.
    if let Some(default_row) = rows.iter().find(|r| r.m == defaults.m && r.ef == defaults.ef_search)
    {
        assert!(
            default_row.recall_mean >= 0.95,
            "default knobs (m {}, ef {}) fell to recall {}",
            defaults.m,
            defaults.ef_search,
            default_row.recall_mean
        );
        println!(
            "default knobs (m {}, ef {}): recall {:.4} >= 0.95 ✓",
            defaults.m, defaults.ef_search, default_row.recall_mean
        );
    }

    let csv = write_csv(
        "recall",
        &[
            "m",
            "ef",
            "exact",
            "ell",
            "queries",
            "recall_mean",
            "recall_min",
            "build_ms",
            "micros_per_query",
            "speedup_vs_scan",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.ef.to_string(),
                    r.exact.to_string(),
                    r.ell.to_string(),
                    r.queries.to_string(),
                    format!("{:.6}", r.recall_mean),
                    format!("{:.6}", r.recall_min),
                    format!("{:.3}", r.build_ms),
                    format!("{:.3}", r.micros_per_query),
                    format!("{:.3}", r.speedup_vs_scan),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let json = write_json("recall", &rows);
    println!("wrote {} and {}", csv.display(), json.display());
}
