//! **Theorems 2.2 and 2.4** — round complexity tables.
//!
//! Section 1: Algorithm 1 (distributed selection) rounds vs n for several
//! k — Theorem 2.2 says `O(log n)` whp, independent of k. A least-squares
//! fit of mean rounds against `log₂ n` is printed.
//!
//! Section 2: Algorithm 2 (ℓ-NN) rounds vs ℓ for several k — Theorem 2.4
//! says `O(log ℓ)` whp, independent of both n and k.
//!
//! ```text
//! cargo run -p knn-bench --release --bin rounds_table
//!     [--seeds 20] [--ks 4,16,64,256] [--full]
//! ```

use kmachine::{engine::run_sync, NetConfig};
use knn_bench::args::Args;
use knn_bench::stats::{linear_fit, Summary};
use knn_bench::table::Table;
use knn_bench::{write_csv, write_json};
use knn_core::protocols::knn::{KnnParams, KnnProtocol};
use knn_core::protocols::selection::SelectProtocol;
use knn_workloads::partition::split_round_robin;
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random()).collect()
}

#[derive(Debug, serde::Serialize)]
struct Row {
    section: &'static str,
    k: usize,
    n: usize,
    ell: usize,
    rounds_mean: f64,
    rounds_std: f64,
    messages_mean: f64,
}

fn main() {
    let args = Args::parse();
    let seeds = args.get_u64("seeds", if args.has("full") { 50 } else { 20 });
    let ks = args.get_list("ks", &[4, 16, 64, 256]);
    let mut rows: Vec<Row> = Vec::new();

    // ---- Section 1: Algorithm 1, rounds vs n (Theorem 2.2) ----
    println!("== Theorem 2.2: Algorithm 1 rounds vs n  (ell = n/16, {seeds} seeds) ==\n");
    let ns: Vec<usize> = (10..=20).step_by(2).map(|e| 1usize << e).collect();
    let mut t1 = Table::new(&["k", "n", "log2 n", "rounds", "messages", "msgs/k"]);
    for &k in &ks {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &n in &ns {
            let mut rounds = Vec::new();
            let mut msgs = Vec::new();
            for s in 0..seeds {
                let keys = uniform_keys(n, s.wrapping_mul(0x9E37) ^ n as u64);
                let shards = split_round_robin(keys, k);
                let cfg = NetConfig::new(k).with_seed(s);
                let protos: Vec<SelectProtocol<u64>> = shards
                    .into_iter()
                    .enumerate()
                    .map(|(i, local)| SelectProtocol::new(i, k, 0, (n / 16) as u64, local))
                    .collect();
                let out = run_sync(&cfg, protos).expect("selection");
                rounds.push(out.metrics.rounds);
                msgs.push(out.metrics.messages);
            }
            let r = Summary::of_u64(&rounds);
            let m = Summary::of_u64(&msgs);
            xs.push((n as f64).log2());
            ys.push(r.mean);
            t1.row(vec![
                k.to_string(),
                n.to_string(),
                format!("{:.0}", (n as f64).log2()),
                r.pm(),
                format!("{:.0}", m.mean),
                format!("{:.1}", m.mean / k as f64),
            ]);
            rows.push(Row {
                section: "alg1-vs-n",
                k,
                n,
                ell: n / 16,
                rounds_mean: r.mean,
                rounds_std: r.std,
                messages_mean: m.mean,
            });
        }
        let (slope, intercept, r2) = linear_fit(&xs, &ys);
        t1.row(vec![
            k.to_string(),
            "fit".into(),
            "-".into(),
            format!("{slope:.2}*log2(n) + {intercept:.1}"),
            format!("R2={r2:.3}"),
            "-".into(),
        ]);
    }
    t1.print();

    // ---- Section 2: Algorithm 2, rounds vs ell (Theorem 2.4) ----
    println!(
        "\n== Theorem 2.4: Algorithm 2 rounds vs ell  (2^16 keys/machine, {seeds} seeds) ==\n"
    );
    let ells: Vec<usize> = (2..=14).step_by(2).map(|e| 1usize << e).collect();
    let per_machine = 1usize << 16;
    let mut t2 = Table::new(&["k", "ell", "log2 ell", "rounds", "messages", "msgs/(k log2 ell)"]);
    for &k in &ks {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &ell in &ells {
            let mut rounds = Vec::new();
            let mut msgs = Vec::new();
            for s in 0..seeds {
                let cfg = NetConfig::new(k).with_seed(s);
                let protos: Vec<KnnProtocol<'_, u64>> = (0..k)
                    .map(|i| {
                        let keys = uniform_keys(
                            per_machine,
                            s ^ (i as u64) << 32 ^ (ell as u64) << 8 ^ k as u64,
                        );
                        KnnProtocol::from_keys(i, k, 0, ell as u64, KnnParams::default(), keys)
                    })
                    .collect();
                let out = run_sync(&cfg, protos).expect("knn");
                rounds.push(out.metrics.rounds);
                msgs.push(out.metrics.messages);
            }
            let r = Summary::of_u64(&rounds);
            let m = Summary::of_u64(&msgs);
            let lg = (ell as f64).log2();
            xs.push(lg);
            ys.push(r.mean);
            t2.row(vec![
                k.to_string(),
                ell.to_string(),
                format!("{lg:.0}"),
                r.pm(),
                format!("{:.0}", m.mean),
                format!("{:.1}", m.mean / (k as f64 * lg)),
            ]);
            rows.push(Row {
                section: "alg2-vs-ell",
                k,
                n: per_machine * k,
                ell,
                rounds_mean: r.mean,
                rounds_std: r.std,
                messages_mean: m.mean,
            });
        }
        let (slope, intercept, r2) = linear_fit(&xs, &ys);
        t2.row(vec![
            k.to_string(),
            "fit".into(),
            "-".into(),
            format!("{slope:.2}*log2(ell) + {intercept:.1}"),
            format!("R2={r2:.3}"),
            "-".into(),
        ]);
    }
    t2.print();

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.section.to_string(),
                r.k.to_string(),
                r.n.to_string(),
                r.ell.to_string(),
                format!("{:.2}", r.rounds_mean),
                format!("{:.2}", r.rounds_std),
                format!("{:.1}", r.messages_mean),
            ]
        })
        .collect();
    let csv = write_csv(
        "rounds_table",
        &["section", "k", "n", "ell", "rounds_mean", "rounds_std", "messages_mean"],
        &csv_rows,
    );
    let json = write_json("rounds_table", &rows);
    println!("\nwrote {} and {}", csv.display(), json.display());
}
