//! **Serving throughput** — batch size × algorithm sweep over one loaded
//! cluster, the scenario the ROADMAP's serving layer targets.
//!
//! Batch size 1 is the sequential baseline (one [`KnnCluster::query_with`]
//! call per query: an election and a full engine run each). Larger batch
//! sizes serve the *same* query sequence through
//! [`KnnCluster::query_batch_with`]: one election and one engine run per
//! batch, queries multiplexed over the shared links, candidates from the
//! per-shard indices. Reported per algorithm × batch size:
//!
//! * `qps` — queries per second of wall clock;
//! * `rounds/q` — simulated communication rounds per query;
//! * `msgs/q`, `kbits/q` — traffic per query (tag framing included);
//! * `elections` — leader elections run for the whole sweep.
//!
//! Reading the rounds column: for `alg2-knn`, `simple`, and the sequential
//! `saukas-song` path the batch>1 rows differ from batch=1 only by
//! election amortization and pipelining, since both paths feed the
//! protocols the local top-ℓ. For `binsearch` the indexed candidates
//! *additionally* shrink the bisection's value interval (the sequential
//! baseline faithfully bisects the full local key sets), so its drop
//! overstates pure batching gains.
//!
//! The `--engines` flag (comma-separated: `sync`, `threaded`, `event`,
//! `auto`; default `sync`) repeats the sweep per engine and records an
//! engine column, so the barrier-removal win of the event engine shows up
//! as qps on the same simulated workload — rounds/q, msgs/q, and kbits/q
//! are engine-invariant by the determinism contract.
//!
//! Fault and skew accounting ride every row: `--loss` (per-mille message
//! loss, seeded and engine-invariant) realizes drops and retransmissions
//! that show up in the `dropped`/`rexmit_kbits` columns, and
//! `--delivery relaxed` on the event engine records the pipelining
//! evidence (`max_skew`, `promised_rounds`). Fault-free exact rows carry
//! zeros — the columns are always present so CI diffs line up.
//!
//! Byzantine accounting rides the rows the same way: `--lie M` makes
//! machine `M` a round-0 liar and `--corrupt SRC,DST[,PERMILLE]` corrupts
//! a link (default 1000‰). The audit catches the adversary, quarantines
//! it, and re-runs on the honest survivors — the `audits`/`quarantined`
//! columns record the work, and like every simulated cost they must be
//! engine-invariant.
//!
//! ```text
//! cargo run -p knn-bench --release --bin throughput
//!     [--k 8] [--per-machine 4096] [--ell 64] [--queries 64]
//!     [--batches 1,8,64] [--engines sync] [--delivery exact]
//!     [--loss 0] [--loss-retries 64] [--lie M] [--corrupt SRC,DST[,P]]
//!     [--seed 7]
//! ```
//!
//! Writes `results/throughput.{csv,json}` so CI accumulates the perf
//! trajectory across commits.

use std::time::Instant;

use kmachine::{AdversaryPlan, DeliveryMode, Engine, FaultPlan};
use knn_bench::args::Args;
use knn_bench::table::Table;
use knn_bench::{write_csv, write_json};
use knn_core::cluster::KnnCluster;
use knn_core::runner::{Algorithm, ElectionKind};
use knn_workloads::{QueryStream, ScalarWorkload};

#[derive(Debug, serde::Serialize)]
struct Row {
    engine: String,
    algorithm: String,
    batch_size: usize,
    queries: usize,
    qps: f64,
    rounds_per_query: f64,
    messages_per_query: f64,
    kilobits_per_query: f64,
    elections: u64,
    /// Realized faults across the sweep's runs (engine-invariant).
    crashes: u64,
    dropped_messages: u64,
    retransmitted_kilobits: f64,
    /// Pipelining evidence across the sweep's runs (relaxed event runs
    /// only; zero elsewhere).
    max_skew: u64,
    promised_rounds: u64,
    /// Byzantine-audit work across the sweep's runs (engine-invariant;
    /// zero without `--lie` / `--corrupt`).
    audits_run: u64,
    integrity_violations: u64,
    suspects_quarantined: u64,
}

fn main() {
    let args = Args::parse();
    let k = args.get_usize("k", 8);
    let per_machine = args.get_usize("per-machine", 1 << 12);
    let ell = args.get_usize("ell", 64);
    let total = args.get_usize("queries", 64);
    let batches = args.get_list("batches", &[1, 8, 64]);
    let engines: Vec<Engine> = args
        .get_str("engines", "sync")
        .split(',')
        .map(|s| s.parse().unwrap_or_else(|e| panic!("--engines: {e}")))
        .collect();
    let delivery: DeliveryMode = args
        .get_str("delivery", "exact")
        .parse()
        .unwrap_or_else(|e: String| panic!("--delivery: {e}"));
    let loss = args.get_u64("loss", 0);
    let loss_retries = args.get_u64("loss-retries", 64) as u32;
    let seed = args.get_u64("seed", 7);
    let hi = 1u64 << 32;

    let mut faults = FaultPlan::default();
    if loss > 0 {
        faults = faults.with_loss(loss as u16, loss_retries);
    }
    let mut adversary = AdversaryPlan::default();
    let lie = args.get_str("lie", "");
    if !lie.is_empty() {
        let m: usize = lie.parse().unwrap_or_else(|_| panic!("--lie expects a machine id"));
        adversary = adversary.with_lie(m, 0);
    }
    let corrupt = args.get_str("corrupt", "");
    if !corrupt.is_empty() {
        let parts: Vec<u64> = corrupt
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| panic!("--corrupt expects SRC,DST[,PERMILLE]"))
            })
            .collect();
        assert!(
            (2..=3).contains(&parts.len()),
            "--corrupt expects SRC,DST[,PERMILLE], got {corrupt:?}"
        );
        let per_mille = parts.get(2).copied().unwrap_or(1000) as u16;
        adversary = adversary.with_corrupt_link(parts[0] as usize, parts[1] as usize, per_mille);
    }
    let shards = ScalarWorkload { per_machine, lo: 0, hi }.generate(k, seed);
    let mut cluster: KnnCluster = KnnCluster::builder()
        .machines(k)
        .seed(seed)
        .election(ElectionKind::Star)
        .delivery(delivery)
        .faults(faults)
        .adversary(adversary)
        .build();
    cluster.load_shards(shards).expect("shard count matches k");

    println!(
        "== Serving throughput: k = {k}, {per_machine} pts/machine, ell = {ell}, \
         {total} queries ==\n"
    );
    let mut table = Table::new(&[
        "engine",
        "algorithm",
        "batch",
        "qps",
        "rounds/q",
        "msgs/q",
        "kbits/q",
        "elections",
        "dropped",
        "skew",
        "audits",
        "quarantined",
    ]);
    let mut rows: Vec<Row> = Vec::new();

    for &engine in &engines {
        cluster.set_engine(engine);
        for algo in Algorithm::ALL {
            for &bs in &batches {
                let mut rounds = 0u64;
                let mut messages = 0u64;
                let mut bits = 0u64;
                let mut elections = 0u64;
                let mut crashes = 0u64;
                let mut dropped = 0u64;
                let mut rexmit_bits = 0u64;
                let mut max_skew = 0u64;
                let mut promised = 0u64;
                let mut audits = 0u64;
                let mut violations = 0u64;
                let mut quarantined = 0u64;
                let start = Instant::now();
                if bs <= 1 {
                    // Sequential baseline: every query pays its own
                    // election and its own engine run.
                    for batch in QueryStream::scalar(total, 1, 0, hi, seed) {
                        let ans = cluster.query_with(algo, &batch[0], ell).expect("query");
                        rounds += ans.metrics.rounds;
                        messages += ans.metrics.messages;
                        bits += ans.metrics.bits;
                        crashes += ans.faults.crashed.len() as u64;
                        dropped += ans.faults.dropped_messages;
                        rexmit_bits += ans.faults.retransmitted_bits;
                        audits += ans.audit.audits_run;
                        violations += ans.audit.integrity_violations;
                        quarantined += ans.audit.suspects_quarantined;
                        if let Some(em) = &ans.election_metrics {
                            elections += 1;
                            rounds += em.rounds;
                            messages += em.messages;
                            bits += em.bits;
                        }
                    }
                } else {
                    for batch in QueryStream::scalar(total, bs, 0, hi, seed) {
                        let out = cluster.query_batch_with(algo, &batch, ell).expect("batch");
                        rounds += out.metrics.rounds;
                        messages += out.metrics.messages;
                        bits += out.metrics.bits;
                        crashes += out.faults.crashed.len() as u64;
                        dropped += out.faults.dropped_messages;
                        rexmit_bits += out.faults.retransmitted_bits;
                        audits += out.audit.audits_run;
                        violations += out.audit.integrity_violations;
                        quarantined += out.audit.suspects_quarantined;
                        max_skew = max_skew.max(out.skew.max_skew);
                        promised += out.skew.promised_rounds;
                        if let Some(em) = &out.election_metrics {
                            elections += 1;
                            rounds += em.rounds;
                            messages += em.messages;
                            bits += em.bits;
                        }
                    }
                }
                let wall = start.elapsed().as_secs_f64();
                let row = Row {
                    engine: engine.name().to_string(),
                    algorithm: algo.name().to_string(),
                    batch_size: bs,
                    queries: total,
                    qps: total as f64 / wall.max(1e-9),
                    rounds_per_query: rounds as f64 / total as f64,
                    messages_per_query: messages as f64 / total as f64,
                    kilobits_per_query: bits as f64 / 1000.0 / total as f64,
                    elections,
                    crashes,
                    dropped_messages: dropped,
                    retransmitted_kilobits: rexmit_bits as f64 / 1000.0,
                    max_skew,
                    promised_rounds: promised,
                    audits_run: audits,
                    integrity_violations: violations,
                    suspects_quarantined: quarantined,
                };
                table.row(vec![
                    row.engine.clone(),
                    row.algorithm.clone(),
                    bs.to_string(),
                    format!("{:.0}", row.qps),
                    format!("{:.2}", row.rounds_per_query),
                    format!("{:.1}", row.messages_per_query),
                    format!("{:.2}", row.kilobits_per_query),
                    row.elections.to_string(),
                    row.dropped_messages.to_string(),
                    row.max_skew.to_string(),
                    row.audits_run.to_string(),
                    row.suspects_quarantined.to_string(),
                ]);
                rows.push(row);
            }
        }
    }
    table.print();

    // Simulated costs are engine-invariant: every engine must report the
    // same rounds/messages/bits — and the same realized faults — per
    // (algorithm, batch) cell. (Skew is deliberately excluded: it is the
    // one column that legitimately differs, recording relaxed-event
    // pipelining the lockstep engines cannot express.)
    if engines.len() > 1 {
        for r in &rows {
            let reference = rows
                .iter()
                .find(|o| o.algorithm == r.algorithm && o.batch_size == r.batch_size)
                .expect("first engine's row exists");
            assert_eq!(
                (
                    r.rounds_per_query,
                    r.messages_per_query,
                    r.kilobits_per_query,
                    r.dropped_messages,
                    r.retransmitted_kilobits,
                    r.audits_run,
                    r.integrity_violations,
                    r.suspects_quarantined,
                ),
                (
                    reference.rounds_per_query,
                    reference.messages_per_query,
                    reference.kilobits_per_query,
                    reference.dropped_messages,
                    reference.retransmitted_kilobits,
                    reference.audits_run,
                    reference.integrity_violations,
                    reference.suspects_quarantined,
                ),
                "engine {} diverged from {} on {} batch {}",
                r.engine,
                reference.engine,
                r.algorithm,
                r.batch_size
            );
        }
    }

    // The amortization headline the serving layer exists for: batching must
    // strictly reduce rounds per query for the bandwidth-bound baseline
    // (rounds are engine-invariant, so checking any one engine's rows
    // covers them all).
    let simple = |bs: usize| {
        rows.iter()
            .find(|r| r.algorithm == Algorithm::Simple.name() && r.batch_size == bs)
            .map(|r| r.rounds_per_query)
    };
    if let (Some(seq), Some(&max_batch)) = (simple(1), batches.iter().max()) {
        if let Some(batched) = simple(max_batch).filter(|_| max_batch > 1) {
            println!(
                "\namortization check (simple): sequential {seq:.2} rounds/query vs batched \
                 {batched:.2} at batch {max_batch} -> {}",
                if batched < seq { "amortized" } else { "NOT amortized" }
            );
            assert!(
                batched < seq,
                "batched rounds/query ({batched:.2}) must be strictly below sequential ({seq:.2})"
            );
        }
    }

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                r.algorithm.clone(),
                r.batch_size.to_string(),
                r.queries.to_string(),
                format!("{:.1}", r.qps),
                format!("{:.3}", r.rounds_per_query),
                format!("{:.2}", r.messages_per_query),
                format!("{:.3}", r.kilobits_per_query),
                r.elections.to_string(),
                r.crashes.to_string(),
                r.dropped_messages.to_string(),
                format!("{:.3}", r.retransmitted_kilobits),
                r.max_skew.to_string(),
                r.promised_rounds.to_string(),
                r.audits_run.to_string(),
                r.integrity_violations.to_string(),
                r.suspects_quarantined.to_string(),
            ]
        })
        .collect();
    let csv = write_csv(
        "throughput",
        &[
            "engine",
            "algorithm",
            "batch",
            "queries",
            "qps",
            "rounds_per_query",
            "messages_per_query",
            "kilobits_per_query",
            "elections",
            "crashes",
            "dropped_messages",
            "retransmitted_kilobits",
            "max_skew",
            "promised_rounds",
            "audits_run",
            "integrity_violations",
            "suspects_quarantined",
        ],
        &csv_rows,
    );
    let json = write_json("throughput", &rows);
    println!("\nwrote {} and {}", csv.display(), json.display());
}
