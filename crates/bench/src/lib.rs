//! # knn-bench — the experiment harness
//!
//! Regenerates every evaluation artifact of the paper (see EXPERIMENTS.md
//! for the mapping):
//!
//! | binary           | artifact |
//! |------------------|----------|
//! | `fig2`           | Figure 2: wall-clock ratio simple/Algorithm 2     |
//! | `rounds_table`   | Theorems 2.2 & 2.4: rounds vs n, ℓ, k             |
//! | `messages_table` | Message complexity vs `k·log₂ ℓ`                  |
//! | `lemma23`        | Lemma 2.3: survivor distribution after pruning    |
//! | `baselines`      | All algorithms: rounds / messages / bits          |
//! | `throughput`     | Serving layer: batch size × algorithm sweep       |
//! | `hotpath`        | Engine loop rounds/sec + allocations, pool-size speedup |
//! | `recall`         | NSW graph index: `m × ef` vs recall@ℓ and latency |
//!
//! plus Criterion micro-benchmarks of the sequential substrates
//! (`cargo bench -p knn-bench`).
//!
//! Each binary prints an aligned table and writes CSV + JSON under
//! `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod stats;
pub mod table;

use std::fs;
use std::path::{Path, PathBuf};

/// CPUs the kernel offers this process (cgroup/affinity aware), detected
/// via `available_parallelism`. Bench bins detect this **once**, record it
/// in their reports, and gate every parallel-speedup assertion on the
/// recorded value — a 1-CPU CI runner must never be asked to prove a
/// speedup the hardware cannot deliver (nor trusted when timing jitter
/// fakes one).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Directory where experiment outputs are written.
pub fn results_dir() -> PathBuf {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    dir.to_path_buf()
}

/// Write CSV rows (first row = header) to `results/<name>.csv`.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out).expect("write csv");
    path
}

/// Write a serde-serializable record set to `results/<name>.json`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).expect("serialize")).expect("write json");
    path
}
