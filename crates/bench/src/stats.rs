//! Summary statistics for repeated measurements.

/// Mean / standard deviation / extremes of a sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Panics on an empty slice.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, std: var.sqrt(), min, max }
    }

    /// Summarize integer samples.
    pub fn of_u64(samples: &[u64]) -> Summary {
        let floats: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&floats)
    }

    /// `mean ± std` rendering.
    pub fn pm(&self) -> String {
        format!("{:.1} ± {:.1}", self.mean, self.std)
    }
}

/// Least-squares slope and intercept of `y` against `x` — used to check
/// "rounds ∝ log₂ ℓ"-style claims. Returns `(slope, intercept, r2)`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64, f64) {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2, "need at least two points to fit");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = x.iter().zip(y).map(|(a, b)| (b - (slope * a + intercept)).powi(2)).sum();
    let ss_tot: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    (slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.pm().starts_with("2.0"));
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of_u64(&[7]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn fit_recovers_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let (slope, intercept, r2) = linear_fit(&x, &y);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_r2_degrades_with_noise() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        let (_, _, r2) = linear_fit(&x, &y);
        assert!(r2 < 1.0 && r2 > 0.0);
    }
}
