//! Aligned ASCII tables for terminal output.

/// A simple right-aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// The rows as CSV-ready data.
    pub fn csv_rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render with every column right-aligned to its widest cell.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["k", "rounds"]);
        t.row(vec!["2".into(), "10".into()]);
        t.row(vec!["128".into(), "9".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("k"));
        assert!(lines[2].ends_with("10"));
        assert!(lines[3].starts_with("128"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
