//! Semantic auditing of Byzantine answers: leader-side spot-checks of each
//! machine's claimed ℓ-NN contributions against the shard-local oracle.
//!
//! The link layer catches *transport* corruption (chained per-link digests,
//! [`kmachine::EngineError::IntegrityViolation`]); this module catches
//! *protocol-level lying* — a machine that runs the protocol faithfully but
//! announces perturbed candidate distances or ids. The auditor (the query
//! layer, standing in for the leader) holds the real shards, so it can
//! recompute what each machine *should* have contributed:
//!
//! 1. **Attribution** — a seeded sample of each machine's claimed answer
//!    keys is recomputed against that machine's true local top-ℓ. A claimed
//!    key the shard does not actually contain is sound, individual evidence
//!    of lying.
//! 2. **Census** — the claims across machines must total exactly
//!    `min(ℓ, points alive)`: the global answer size is checkable without
//!    trusting any single machine.
//! 3. **Completeness** — each machine's claims must equal its true slice of
//!    the global top-ℓ. A machine whose true members are *missing* from its
//!    claims is soundly blamed (only lying about one's own points can hide
//!    them); surplus-only mismatches carry no individual blame — a liar
//!    elsewhere can shift the selection boundary and make honest machines
//!    over-claim — so the audit then flags one deterministic suspect and
//!    lets quarantine-and-retry converge.
//!
//! The audit never certifies a wrong answer: [`AuditReport::ok`] holds iff
//! the claims are exactly the true ℓ-NN partition over the audited
//! machines. Blame quality only affects how many quarantine rounds the
//! retry loop needs, never whether a wrong answer escapes.

use kmachine::MachineId;
use knn_points::{Dist, DistKey};

/// Claimed answer keys spot-recomputed per machine by each audit pass.
pub const AUDIT_SAMPLE: usize = 8;

/// Domain separation for the lying-input perturbation stream (distinct
/// from the wire-tamper and link-corruption salts in `kmachine`).
const LIE_SALT: u64 = 0x11E5_0F7E_11E5_0F7E;

/// SplitMix64 finalizer — the same pure stream the fault layer draws from,
/// so audits and lies are deterministic on every engine and pool size.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministically perturb a lying machine's materialized local
/// distances — the canonical *source-level* lie a round-0
/// [`kmachine::AdversaryPlan`] liar (or an equivocator) tells.
///
/// Every key's distance is inflated by a nonzero seeded offset keyed on
/// `(seed, machine, point id)`, so the lie is pure: byte-identical on every
/// engine, across retries, and across the sequential and batched paths.
/// Inflation (rather than arbitrary flips) keeps the lie *order-safe* —
/// encodings only grow, which both distance families order correctly — and
/// keeps blame *sound*: the liar's true nearest points vanish from the
/// global answer, and only the machine owning those points could have made
/// them vanish.
pub fn perturb_input(mut keys: Vec<DistKey>, seed: u64, machine: MachineId) -> Vec<DistKey> {
    for key in &mut keys {
        let w = splitmix64(
            seed ^ LIE_SALT
                ^ (machine as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ key.id.0.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        // Nonzero, bounded offset: the lie always changes the encoding and
        // never wraps the ordered domain.
        let offset = (w >> 32) | 1;
        key.dist = Dist::from_encoding(key.dist.encoding().saturating_add(offset));
    }
    keys
}

/// Verdict of one audit pass over a run's claimed answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// True iff the claims are exactly the true ℓ-NN partition over the
    /// audited machines — the answer is certified correct.
    pub ok: bool,
    /// Machines (indices into the audited slice) to quarantine before
    /// retrying. Empty iff `ok`. When sound individual evidence exists
    /// (attribution failures, hidden own points) every such machine is
    /// listed; otherwise exactly one deterministic suspect is, so the
    /// retry loop always shrinks the cluster and terminates.
    pub suspects: Vec<MachineId>,
}

/// Audit one run's claimed answer against the shard-local oracles.
///
/// * `local_truth[m]` — machine `m`'s **true** local top-ℓ (what the
///   auditor recomputes from the real shard; empty for machines that
///   crashed in-run and legitimately contributed nothing).
/// * `claims[m]` — the answer keys machine `m` reported.
/// * `ell` — the query's ℓ.
/// * `seed` — drives the attribution sampling (pure, engine-invariant).
///
/// Returns [`AuditReport::ok`] iff the claims partition the true global
/// top-ℓ over the audited machines exactly.
pub fn audit_claims(
    local_truth: &[Vec<DistKey>],
    claims: &[Vec<DistKey>],
    ell: usize,
    seed: u64,
) -> AuditReport {
    assert_eq!(local_truth.len(), claims.len(), "one truth oracle per audited machine");
    let k = claims.len();

    // The true global top-ℓ, partitioned by owner. The global answer is a
    // subset of the union of local top-ℓs, so the oracles suffice.
    let mut pool: Vec<(DistKey, usize)> = local_truth
        .iter()
        .enumerate()
        .flat_map(|(m, keys)| keys.iter().map(move |&key| (key, m)))
        .collect();
    pool.sort_unstable();
    pool.truncate(ell);
    let mut true_slice: Vec<Vec<DistKey>> = vec![Vec::new(); k];
    for &(key, m) in &pool {
        true_slice[m].push(key);
    }

    let mut sound: Vec<MachineId> = Vec::new(); // individually-blamable liars
    let mut mismatched: Vec<MachineId> = Vec::new(); // wrong but blame-free
    for m in 0..k {
        // Attribution spot-check: a seeded sample of the claims must exist
        // in the machine's true local top-ℓ.
        let truth = &local_truth[m];
        let n = claims[m].len();
        let fabricated = (0..AUDIT_SAMPLE.min(n)).any(|j| {
            let pick = splitmix64(seed ^ ((m as u64) << 32) ^ j as u64) as usize % n;
            truth.binary_search(&claims[m][pick]).is_err()
        });
        // Completeness: claims must equal the machine's true slice of the
        // global answer.
        let mut sorted_claims = claims[m].clone();
        sorted_claims.sort_unstable();
        let hides_own = true_slice[m].iter().any(|t| sorted_claims.binary_search(t).is_err());
        if fabricated || hides_own {
            sound.push(m);
        } else if sorted_claims != true_slice[m] {
            mismatched.push(m);
        }
    }

    // Census: the claims must total exactly the true answer size.
    let census_ok = claims.iter().map(Vec::len).sum::<usize>() == pool.len();

    let ok = census_ok && sound.is_empty() && mismatched.is_empty();
    let suspects = if !sound.is_empty() {
        sound
    } else if !mismatched.is_empty() {
        // No individual evidence (a wire-level lie shifted the boundary
        // under everyone): quarantine one deterministic suspect per pass.
        vec![mismatched[0]]
    } else {
        Vec::new()
    };
    debug_assert!(ok == suspects.is_empty(), "a failed audit always names a suspect");
    AuditReport { ok, suspects }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_points::PointId;

    fn key(d: u64, id: u64) -> DistKey {
        DistKey::new(Dist::from_u64(d), PointId(id))
    }

    /// Sorted local top-ℓ oracles for three machines, ten points each.
    fn truth() -> Vec<Vec<DistKey>> {
        (0..3u64).map(|m| (0..10u64).map(|i| key(3 * i + m, 100 * m + i)).collect()).collect()
    }

    /// The honest claims: each machine's slice of the global top-ℓ.
    fn honest_claims(local_truth: &[Vec<DistKey>], ell: usize) -> Vec<Vec<DistKey>> {
        let mut pool: Vec<(DistKey, usize)> = local_truth
            .iter()
            .enumerate()
            .flat_map(|(m, ks)| ks.iter().map(move |&key| (key, m)))
            .collect();
        pool.sort_unstable();
        pool.truncate(ell);
        let mut out = vec![Vec::new(); local_truth.len()];
        for (key, m) in pool {
            out[m].push(key);
        }
        out
    }

    #[test]
    fn honest_claims_pass() {
        let t = truth();
        let report = audit_claims(&t, &honest_claims(&t, 7), 7, 42);
        assert!(report.ok);
        assert!(report.suspects.is_empty());
    }

    #[test]
    fn crashed_machines_with_empty_truth_and_claims_pass() {
        let mut t = truth();
        t[1] = Vec::new(); // crashed in-run: contributes nothing, owes nothing
        let report = audit_claims(&t, &honest_claims(&t, 7), 7, 42);
        assert!(report.ok);
    }

    #[test]
    fn fabricated_keys_blame_the_fabricator() {
        let t = truth();
        let mut claims = honest_claims(&t, 7);
        claims[2] = vec![key(0, 999), key(1, 998)]; // keys shard 2 does not hold
        let report = audit_claims(&t, &claims, 7, 42);
        assert!(!report.ok);
        assert!(report.suspects.contains(&2), "{:?}", report.suspects);
    }

    #[test]
    fn hiding_own_points_blames_the_hider() {
        let t = truth();
        let mut claims = honest_claims(&t, 9);
        assert!(!claims[0].is_empty(), "machine 0 owns global winners");
        claims[0].clear(); // machine 0 hides its members of the answer
        let report = audit_claims(&t, &claims, 9, 42);
        assert!(!report.ok);
        assert_eq!(report.suspects, vec![0], "only the owner can hide its points");
    }

    #[test]
    fn surplus_only_mismatch_names_one_deterministic_suspect() {
        let t = truth();
        let mut claims = honest_claims(&t, 6);
        // A shifted boundary makes machines over-claim keys they DO hold:
        // attribution passes, nothing is hidden, yet the census is wrong.
        claims[1].push(t[1][9]);
        claims[2].push(t[2][9]);
        let report = audit_claims(&t, &claims, 6, 42);
        assert!(!report.ok);
        assert_eq!(report.suspects.len(), 1, "no individual evidence: quarantine one");
        assert_eq!(report.suspects, audit_claims(&t, &claims, 6, 42).suspects, "deterministic");
    }

    #[test]
    fn perturbed_input_is_deterministic_inflating_and_caught() {
        let t = truth();
        let lied = perturb_input(t[1].clone(), 7, 1);
        assert_eq!(lied, perturb_input(t[1].clone(), 7, 1), "pure in (seed, machine, id)");
        assert_ne!(lied, perturb_input(t[1].clone(), 8, 1), "seed-sensitive");
        assert_ne!(lied, perturb_input(t[1].clone(), 7, 2), "machine-sensitive");
        for (fake, real) in lied.iter().zip(&t[1]) {
            assert_eq!(fake.id, real.id, "ids stay attributable");
            assert!(fake.dist > real.dist, "lies only inflate");
        }
        // A liar whose answer slice was built from the perturbed input is
        // soundly blamed: its true winners are missing.
        let mut world = t.clone();
        world[1] = {
            let mut l = lied;
            l.sort_unstable();
            l
        };
        let claims = honest_claims(&world, 7);
        let report = audit_claims(&t, &claims, 7, 42);
        assert!(!report.ok);
        assert!(report.suspects.contains(&1), "{:?}", report.suspects);
    }

    #[test]
    fn ell_zero_and_empty_cluster_edge_cases() {
        let t = truth();
        let empty: Vec<Vec<DistKey>> = vec![Vec::new(); 3];
        assert!(audit_claims(&t, &empty, 0, 1).ok, "ℓ = 0 owes an empty answer");
        let no_machines: Vec<Vec<DistKey>> = Vec::new();
        assert!(audit_claims(&no_machines, &no_machines, 5, 1).ok);
        // Claiming anything at ℓ = 0 fails the census.
        let mut claims = empty;
        claims[0].push(key(1, 1));
        assert!(!audit_claims(&t, &claims, 0, 1).ok);
    }
}
