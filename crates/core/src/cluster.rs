//! The user-facing facade: a simulated k-machine cluster holding a
//! distributed dataset and answering ℓ-NN queries.

use std::collections::HashMap;
use std::time::Duration;

use kmachine::{
    AdversaryPlan, AuditMetrics, BandwidthMode, DeliveryMode, Engine, FaultMetrics, FaultPlan,
    MachineId, RecoveryPlan, RunMetrics, SkewMetrics,
};
use knn_points::{Dataset, Dist, Label, Metric, PointId, Record, ScalarPoint};
use knn_workloads::PartitionStrategy;

use crate::error::CoreError;
use crate::local::nsw::splitmix64;
use crate::local::{IndexBackend, IndexedPoint, ShardIndex};
use crate::protocols::knn::{KnnParams, KnnStats};
use crate::runner::{
    merge_answers, run_approx_query, run_query, Algorithm, ElectionKind, QueryOptions, RetryPolicy,
};
use crate::session::{BatchOutcome, QuerySession};

/// One answer point of an ℓ-NN query.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Neighbor {
    /// The point's unique id.
    pub id: PointId,
    /// Its distance from the query.
    pub dist: Dist,
    /// The machine that holds it (data never leaves its machine — only
    /// ids and distances travel, the paper's privacy motivation).
    pub machine: MachineId,
    /// Its label, when the dataset is labeled.
    pub label: Option<Label>,
}

/// Result of an ℓ-NN query, with full cost accounting.
#[derive(Debug, Clone, serde::Serialize)]
pub struct KnnAnswer {
    /// The ℓ nearest neighbors, ascending by `(distance, id)`.
    pub neighbors: Vec<Neighbor>,
    /// Rounds / messages / bits of the main protocol.
    pub metrics: RunMetrics,
    /// Wall-clock time of the protocol run (meaningful on the threaded
    /// engine).
    pub wall: Duration,
    /// The leader that coordinated the query.
    pub leader: MachineId,
    /// Election cost, when an election was run.
    pub election_metrics: Option<RunMetrics>,
    /// Algorithm 2 diagnostics (sampling / pruning / iterations).
    pub stats: Option<KnnStats>,
    /// True when the answer may be missing candidates: one or more shards
    /// crashed and the query was answered by the survivors.
    pub degraded: bool,
    /// Shards whose candidates actually reached the selection
    /// (`== k` on a healthy run). In a batch's per-query answers this
    /// mirrors the batch-level value.
    pub shards_used: usize,
    /// Realized faults of the answering run (batch runs report theirs once,
    /// on [`BatchAnswer::faults`]; per-query copies stay empty).
    pub faults: FaultMetrics,
    /// True when answering required recovery work — a fault-aware retry
    /// over the survivors, or an in-run checkpoint-restore rejoin.
    pub recovered: bool,
    /// Engine runs it took to answer (1 on the fault-free fast path).
    pub attempts: u32,
    /// Rounds replayed from checkpoints by rejoining machines.
    pub replayed_rounds: u64,
    /// Byzantine-audit accounting of the answering run(s): digests
    /// verified, integrity violations caught, semantic audits executed,
    /// suspects quarantined. Empty without an [`AdversaryPlan`]. In a
    /// batch's per-query answers this stays empty — the batch reports its
    /// audit once, on [`BatchAnswer::audit`].
    pub audit: AuditMetrics,
}

/// Result of a batched query run: per-query answers plus the aggregate cost
/// of the one engine run that served them all.
///
/// Inside each per-query [`KnnAnswer`]: `metrics.rounds` is the batch round
/// in which that query completed, `metrics.messages`/`metrics.bits` are the
/// traffic attributed to that query's tag, `metrics.sends_per_machine` is
/// **empty** (per-machine sends are accounted only on the aggregate),
/// `wall` is zero (the batch shares one wall clock, reported here), and
/// `election_metrics` is `None` — the batch's single election is reported
/// once, on this struct.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BatchAnswer {
    /// Per-query answers, in input order.
    pub answers: Vec<KnnAnswer>,
    /// Aggregate communication costs of the batch's single engine run
    /// (`per_tag` splits messages/bits by query).
    pub metrics: RunMetrics,
    /// Pipelining evidence when the batch ran under relaxed delivery on
    /// the event engine — per-machine max round skew and promise counters;
    /// empty ([`SkewMetrics::tracked`] is false) otherwise.
    pub skew: SkewMetrics,
    /// Wall-clock time of the batch run.
    pub wall: Duration,
    /// The leader that coordinated every query in the batch.
    pub leader: MachineId,
    /// Cost of the batch's **single** leader election (`None` under
    /// [`ElectionKind::Fixed`]).
    pub election_metrics: Option<RunMetrics>,
    /// True when the batch's answers may be missing candidates (one or
    /// more shards crashed; every query was answered by the survivors).
    pub degraded: bool,
    /// Shards whose candidates actually reached the selection.
    pub shards_used: usize,
    /// Realized faults of the batch's engine run(s).
    pub faults: FaultMetrics,
    /// True when serving the batch required recovery work — lost queries
    /// re-planned onto the survivors, or a checkpoint-restore rejoin.
    pub recovered: bool,
    /// Engine runs it took to serve the batch (1 on the fast path).
    pub attempts: u32,
    /// Rounds replayed from checkpoints by rejoining machines.
    pub replayed_rounds: u64,
    /// Byzantine-audit accounting summed over the batch's engine run(s).
    /// Empty without an [`AdversaryPlan`]; identical on every engine and
    /// pool size.
    pub audit: AuditMetrics,
}

/// Builder for [`KnnCluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    k: usize,
    opts: QueryOptions,
    algorithm: Algorithm,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder { k: 4, opts: QueryOptions::default(), algorithm: Algorithm::Knn }
    }
}

impl ClusterBuilder {
    /// Same as [`KnnCluster::builder`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of machines (k ≥ 1).
    pub fn machines(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Master seed for all randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Link bandwidth in bits per round (the model's `B`).
    pub fn bandwidth_bits(mut self, bits: u64) -> Self {
        self.opts.bandwidth = BandwidthMode::Enforce { bits_per_round: bits };
        self
    }

    /// Remove the bandwidth constraint (messages still counted).
    pub fn unlimited_bandwidth(mut self) -> Self {
        self.opts.bandwidth = BandwidthMode::Unlimited;
        self
    }

    /// Execution engine. [`Engine::Auto`] picks sync / threaded / event per
    /// run from the cluster size, per-round payload budget, and pool size;
    /// [`Engine::Event`] is the barrier-free engine batched serving wants
    /// on multi-core hosts. Answers and metrics are identical under every
    /// engine; the `KNN_ENGINE` environment variable overrides this choice.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.opts.engine = engine;
        self
    }

    /// Delivery discipline of the event engine.
    /// [`DeliveryMode::Relaxed`] lets machines pipeline several rounds past
    /// quiet peers (PANDA-style quiescence promises) — answers and metrics
    /// are identical to exact delivery, and the realized overlap is
    /// reported in [`BatchAnswer::skew`]. Ignored by the sync and threaded
    /// engines; the `KNN_DELIVERY` environment variable overrides this
    /// choice.
    pub fn delivery(mut self, delivery: DeliveryMode) -> Self {
        self.opts.delivery = delivery;
        self
    }

    /// Distance metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.opts.metric = metric;
        self
    }

    /// Default query algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Leader election mode.
    pub fn election(mut self, election: ElectionKind) -> Self {
        self.opts.election = election;
        self
    }

    /// Algorithm 2 tunables.
    pub fn knn_params(mut self, params: KnnParams) -> Self {
        self.opts.params = params;
        self
    }

    /// Synthetic per-round latency for the threaded engine.
    pub fn round_latency(mut self, latency: Duration) -> Self {
        self.opts.round_latency = latency;
        self
    }

    /// Deterministic fault injection for every query run: stragglers,
    /// fail-stop crashes, lossy links (see [`FaultPlan`]). Elections stay
    /// fault-free, crashes are recovered by retrying over the surviving
    /// shards (answers come back flagged [`KnnAnswer::degraded`]), and a
    /// link exhausting its retry budget surfaces as the typed error
    /// [`kmachine::EngineError::LinkDown`].
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.opts.faults = faults;
        self
    }

    /// Crash-recovery plan: checkpoint cadence, retention window, and
    /// scheduled machine rejoins (see [`RecoveryPlan`]). A rejoining
    /// machine is restored from its last protocol checkpoint, replays the
    /// retained rounds, and serves again — answers stay byte-identical to
    /// the fault-free run and the work is reported on
    /// [`KnnAnswer::recovered`] / [`KnnAnswer::replayed_rounds`].
    pub fn recovery(mut self, recovery: RecoveryPlan) -> Self {
        self.opts.recovery = recovery;
        self
    }

    /// Deadline-bounded retry policy for fault-aware re-runs: attempt and
    /// simulated-round budgets plus deterministic exponential backoff (see
    /// [`RetryPolicy`]). Exhausting the budget surfaces as the typed error
    /// [`CoreError::DeadlineExceeded`].
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.opts.retry = retry;
        self
    }

    /// Deterministic Byzantine adversary for every query run: machines
    /// that lie about their candidates, equivocate per receiver, or
    /// corrupt link payloads (see [`AdversaryPlan`]). Corruption is caught
    /// by per-link digest chains; lies are caught by the semantic audit
    /// (claims re-checked against the real shards). Caught machines are
    /// quarantined and the query re-runs on the honest survivors under the
    /// [`RetryPolicy`]; the work is reported on [`KnnAnswer::audit`] /
    /// [`BatchAnswer::audit`]. Elections stay adversary-free, like
    /// [`Self::faults`].
    pub fn adversary(mut self, adversary: AdversaryPlan) -> Self {
        self.opts.adversary = adversary;
        self
    }

    /// Which local index each shard builds for the batched serving path:
    /// [`IndexBackend::Exact`] (the default — brute-force parity) or
    /// [`IndexBackend::Nsw`] (the navigable-small-world graph with `ef`/`m`
    /// recall knobs and cheap [`KnnCluster::insert`]). The sequential
    /// [`KnnCluster::query`] path always scans the full shard either way —
    /// it is the oracle the conformance suite checks the backends against.
    pub fn index_backend(mut self, backend: IndexBackend) -> Self {
        self.opts.backend = backend;
        self
    }

    /// Finish building.
    pub fn build<P: IndexedPoint>(self) -> KnnCluster<P> {
        assert!(self.k >= 1, "cluster needs at least one machine");
        KnnCluster {
            shards: Vec::new(),
            index: Vec::new(),
            shard_indices: Vec::new(),
            opts: self.opts,
            algorithm: self.algorithm,
            k: self.k,
            next_id: 0,
        }
    }
}

/// A simulated k-machine cluster with a distributed dataset.
///
/// The default point type is the paper's experimental workload
/// ([`ScalarPoint`]); `KnnCluster::<VecPoint>::builder()` (or type
/// inference from [`KnnCluster::load`]) selects other point types.
#[derive(Debug)]
pub struct KnnCluster<P: IndexedPoint = ScalarPoint> {
    shards: Vec<Dataset<P>>,
    /// Per-shard `id → record index`, for resolving answers to labels and
    /// rejecting duplicate-id inserts.
    index: Vec<HashMap<PointId, usize>>,
    /// Per-shard candidate-generation indices, built at load, kept current
    /// by [`Self::insert`], and reused by every serving-path query (see
    /// [`ShardIndex`]).
    shard_indices: Vec<ShardIndex<P>>,
    opts: QueryOptions,
    algorithm: Algorithm,
    k: usize,
    /// Next id [`Self::insert`] hands out: one past the largest id loaded
    /// or inserted so far, so generated ids never collide with data ids.
    next_id: u64,
}

impl KnnCluster {
    /// Start building a cluster. The builder is point-type-agnostic:
    /// [`ClusterBuilder::build`] (or the dataset you load) fixes `P`.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }
}

impl<P: IndexedPoint> KnnCluster<P> {
    /// Number of machines.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total points loaded.
    pub fn total_points(&self) -> usize {
        self.shards.iter().map(Dataset::len).sum()
    }

    /// Points held by machine `i`.
    pub fn shard_len(&self, i: usize) -> usize {
        self.shards.get(i).map_or(0, Dataset::len)
    }

    /// The query options in effect.
    pub fn options(&self) -> &QueryOptions {
        &self.opts
    }

    /// Switch the execution engine without reloading the data or rebuilding
    /// the indices. Answers and metrics are engine-invariant; only the wall
    /// clock changes — so a serving deployment can move between exact
    /// accounting ([`Engine::Sync`]) and barrier-free parallel execution
    /// ([`Engine::Event`]) on a live cluster.
    pub fn set_engine(&mut self, engine: Engine) {
        self.opts.engine = engine;
    }

    /// Switch the event engine's delivery discipline on a live cluster —
    /// the relaxed-mode counterpart of [`Self::set_engine`]. Answers and
    /// metrics are delivery-invariant; only wall-clock overlap (and the
    /// [`BatchAnswer::skew`] evidence) changes.
    pub fn set_delivery(&mut self, delivery: DeliveryMode) {
        self.opts.delivery = delivery;
    }

    /// Distribute a global dataset across the machines.
    pub fn load(&mut self, data: Dataset<P>, strategy: PartitionStrategy) {
        let shards = strategy
            .split(data.records, self.k, self.opts.seed)
            .into_iter()
            .map(Dataset::new)
            .collect();
        self.load_shards_unchecked(shards);
    }

    /// Install per-machine shards directly (the "data is naturally
    /// distributed at k sites" scenario — hospitals, sensors, …).
    pub fn load_shards(&mut self, shards: Vec<Dataset<P>>) -> Result<(), CoreError> {
        if shards.len() != self.k {
            return Err(CoreError::ShardCount { expected: self.k, got: shards.len() });
        }
        self.load_shards_unchecked(shards);
        Ok(())
    }

    fn load_shards_unchecked(&mut self, shards: Vec<Dataset<P>>) {
        // Index construction is per-shard independent and embarrassingly
        // parallel: the id→position maps and candidate-generation indices
        // (sorted arrays / k-d trees / NSW graphs) build concurrently on
        // the rayon pool. Each shard's build is internally sequential and
        // results are collected in shard order, so loading is deterministic
        // at any pool size.
        use rayon::prelude::*;
        self.index = shards
            .par_iter()
            .map(|d| d.records.iter().enumerate().map(|(i, r)| (r.id, i)).collect())
            .collect();
        self.shard_indices = shards
            .par_iter()
            .map(|d| ShardIndex::build(&d.records, self.opts.backend, self.opts.metric))
            .collect();
        self.next_id = shards
            .iter()
            .filter_map(Dataset::max_id)
            .max()
            .map_or(0, |max| max.0.saturating_add(1));
        self.shards = shards;
    }

    /// Insert one point into the live cluster: assign it a fresh id, route
    /// it to a deterministic shard, and absorb it into that shard's index —
    /// queries see it immediately, **no reload**. Returns the assigned id
    /// and hosting machine.
    ///
    /// Routing is a seeded hash of the id, so a cluster built with the same
    /// seed places the same stream of inserts identically on any engine at
    /// any pool size. Under [`IndexBackend::Nsw`] the insert reuses the
    /// graph's search path (`O(log n)`-ish); the exact backend rebuilds the
    /// shard's index (correct for any [`IndexedPoint`], but `O(n log n)` —
    /// choose NSW for insert-heavy workloads).
    pub fn insert(&mut self, point: P) -> Result<(PointId, MachineId), CoreError> {
        self.insert_labeled(point, None)
    }

    /// [`Self::insert`] with a label attached to the new record.
    pub fn insert_labeled(
        &mut self,
        point: P,
        label: Option<Label>,
    ) -> Result<(PointId, MachineId), CoreError> {
        if self.shards.is_empty() {
            return Err(CoreError::NotLoaded);
        }
        let id = PointId(self.next_id);
        let machine = (splitmix64(self.opts.seed ^ id.0) % self.k as u64) as MachineId;
        self.insert_record_into(machine, Record { id, point, label })?;
        Ok((id, machine))
    }

    /// Insert a caller-built record into a specific shard — the
    /// "data is naturally distributed" counterpart of [`Self::insert`],
    /// for callers that manage ids and placement themselves (and for
    /// replaying one cluster's insert stream into another verbatim).
    /// Rejects ids already present on any shard.
    pub fn insert_record_into(
        &mut self,
        machine: MachineId,
        record: Record<P>,
    ) -> Result<(), CoreError> {
        if self.shards.is_empty() {
            return Err(CoreError::NotLoaded);
        }
        if machine >= self.k {
            return Err(CoreError::NoSuchMachine { machine, machines: self.k });
        }
        if self.index.iter().any(|map| map.contains_key(&record.id)) {
            return Err(CoreError::DuplicateId { id: record.id });
        }
        self.next_id = self.next_id.max(record.id.0.saturating_add(1));
        let records = &mut self.shards[machine].records;
        let pos = records.len();
        self.index[machine].insert(record.id, pos);
        records.push(record);
        // Keep the candidate index — and with it the Byzantine audit's
        // shard-local truth — current with the shard it summarizes.
        self.shard_indices[machine].insert(records, pos);
        Ok(())
    }

    /// Answer an ℓ-NN query with the cluster's default algorithm.
    pub fn query(&self, q: &P, ell: usize) -> Result<KnnAnswer, CoreError> {
        self.query_with(self.algorithm, q, ell)
    }

    /// Answer an *approximate* ℓ-NN query: one pruning pass, no iterated
    /// selection. Returns a superset of the exact ℓ-NN (≈1.75ℓ neighbors,
    /// `contains_exact` tells you the guarantee held) in fewer rounds —
    /// ideal for majority-vote or averaging consumers.
    pub fn query_approx(&self, q: &P, ell: usize) -> Result<KnnAnswer, CoreError> {
        if self.shards.is_empty() {
            return Err(CoreError::NotLoaded);
        }
        let out = run_approx_query(&self.shards, q, ell, &self.opts)?;
        let neighbors = self.resolve(&out.local_keys);
        let shards_used = self.k - out.faults.crashed.len();
        Ok(KnnAnswer {
            neighbors,
            metrics: out.metrics,
            wall: out.wall,
            leader: out.leader,
            election_metrics: out.election_metrics,
            stats: None,
            degraded: shards_used < self.k,
            shards_used,
            faults: out.faults,
            recovered: out.recovery.any(),
            attempts: 1,
            replayed_rounds: out.recovery.replayed_rounds,
            audit: out.audit,
        })
    }

    /// Answer an ℓ-NN query with a specific algorithm.
    pub fn query_with(
        &self,
        algorithm: Algorithm,
        q: &P,
        ell: usize,
    ) -> Result<KnnAnswer, CoreError> {
        if self.shards.is_empty() {
            return Err(CoreError::NotLoaded);
        }
        let out = run_query(&self.shards, q, ell, algorithm, &self.opts)?;
        let neighbors = self.resolve(&out.local_keys);
        Ok(KnnAnswer {
            neighbors,
            metrics: out.metrics,
            wall: out.wall,
            leader: out.leader,
            election_metrics: out.election_metrics,
            stats: out.stats,
            degraded: out.degraded,
            shards_used: out.shards_used,
            faults: out.faults,
            recovered: out.recovered,
            attempts: out.attempts,
            replayed_rounds: out.replayed_rounds,
            audit: out.audit,
        })
    }

    /// Open a serving session: elect the leader **once** and reuse it for
    /// every batch the session runs. [`Self::query_batch`] opens a
    /// throwaway session per call; hold one of these to amortize the
    /// election across many batches.
    pub fn session(&self) -> Result<QuerySession<'_, P>, CoreError> {
        if self.shards.is_empty() {
            return Err(CoreError::NotLoaded);
        }
        QuerySession::new(&self.shards, &self.shard_indices, self.opts.clone())
    }

    /// Answer a batch of ℓ-NN queries with the cluster's default algorithm
    /// in **one engine run**: one leader election, one protocol instance
    /// per query multiplexed over the shared links, and per-shard indices
    /// (built at load) generating local candidates in `O(ℓ log n)`.
    ///
    /// The per-query answers are exactly what sequential [`Self::query`]
    /// calls would return; the costs are what batching saves.
    pub fn query_batch(&self, queries: &[P], ell: usize) -> Result<BatchAnswer, CoreError> {
        self.query_batch_with(self.algorithm, queries, ell)
    }

    /// Answer a batch of ℓ-NN queries with a specific algorithm.
    pub fn query_batch_with(
        &self,
        algorithm: Algorithm,
        queries: &[P],
        ell: usize,
    ) -> Result<BatchAnswer, CoreError> {
        let session = self.session()?;
        let out = session.run_batch(queries, ell, algorithm)?;
        Ok(self.resolve_batch(out))
    }

    /// Answer a batch of *approximate* ℓ-NN queries (pruning-only
    /// supersets, as [`Self::query_approx`]) in one engine run.
    pub fn query_batch_approx(&self, queries: &[P], ell: usize) -> Result<BatchAnswer, CoreError> {
        let session = self.session()?;
        let out = session.run_batch_approx(queries, ell)?;
        Ok(self.resolve_batch(out))
    }

    /// Resolve a batch outcome's keys into labeled per-query answers.
    fn resolve_batch(&self, out: BatchOutcome) -> BatchAnswer {
        let answers = out
            .queries
            .iter()
            .map(|q| {
                // Per-machine sends are not attributed per query; leave the
                // vector empty rather than pretending k zeros are counts.
                let metrics = RunMetrics {
                    rounds: q.done_round,
                    messages: q.messages,
                    bits: q.bits,
                    ..Default::default()
                };
                KnnAnswer {
                    neighbors: self.resolve(&q.local_keys),
                    metrics,
                    wall: Duration::ZERO,
                    leader: out.leader,
                    election_metrics: None,
                    stats: q.stats,
                    degraded: out.degraded,
                    shards_used: out.shards_used,
                    faults: FaultMetrics::default(),
                    recovered: q.recovered,
                    attempts: q.attempts,
                    replayed_rounds: 0,
                    audit: AuditMetrics::default(),
                }
            })
            .collect();
        BatchAnswer {
            answers,
            metrics: out.metrics,
            skew: out.skew,
            wall: out.wall,
            leader: out.leader,
            election_metrics: out.election_metrics,
            degraded: out.degraded,
            shards_used: out.shards_used,
            faults: out.faults,
            recovered: out.recovered,
            attempts: out.attempts,
            replayed_rounds: out.replayed_rounds,
            audit: out.audit,
        }
    }

    /// Map answer keys back to labeled neighbors via the shard indices.
    fn resolve(&self, local_keys: &[Vec<knn_points::DistKey>]) -> Vec<Neighbor> {
        merge_answers(local_keys)
            .into_iter()
            .map(|(key, machine)| {
                let label = self.index[machine]
                    .get(&key.id)
                    .and_then(|&i| self.shards[machine].records[i].label);
                Neighbor { id: key.id, dist: key.dist, machine, label }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_points::{IdAssigner, ScalarPoint};

    fn loaded_cluster(k: usize, n: u64) -> KnnCluster<ScalarPoint> {
        let mut ids = IdAssigner::new(0);
        let data = Dataset::from_labeled(
            (0..n).map(|i| (ScalarPoint(i * 10), Label::Class((i % 3) as u32))).collect(),
            &mut ids,
        );
        let mut cluster: KnnCluster<ScalarPoint> =
            KnnCluster::builder().machines(k).seed(3).build();

        cluster.load(data, PartitionStrategy::Shuffled);
        cluster
    }

    #[test]
    fn query_returns_sorted_labeled_neighbors() {
        let cluster = loaded_cluster(4, 100);
        let ans = cluster.query(&ScalarPoint(501), 5).unwrap();
        assert_eq!(ans.neighbors.len(), 5);
        assert!(ans.neighbors.windows(2).all(|w| (w[0].dist, w[0].id) < (w[1].dist, w[1].id)));
        assert!(ans.neighbors.iter().all(|n| n.label.is_some()));
        // Nearest to 501 among multiples of 10 is 500.
        assert_eq!(ans.neighbors[0].dist.as_u64(), 1);
    }

    #[test]
    fn unloaded_cluster_errors() {
        let cluster: KnnCluster<ScalarPoint> = KnnCluster::builder().machines(3).build();
        assert_eq!(cluster.query(&ScalarPoint(1), 2).unwrap_err(), CoreError::NotLoaded);
    }

    #[test]
    fn shard_count_mismatch_errors() {
        let mut cluster: KnnCluster<ScalarPoint> = KnnCluster::builder().machines(3).build();
        let err = cluster.load_shards(vec![Dataset::new(Vec::new())]).unwrap_err();
        assert_eq!(err, CoreError::ShardCount { expected: 3, got: 1 });
    }

    #[test]
    fn algorithms_agree_through_the_facade() {
        let cluster = loaded_cluster(5, 200);
        let q = ScalarPoint(777);
        let reference: Vec<PointId> = cluster
            .query_with(Algorithm::Simple, &q, 7)
            .unwrap()
            .neighbors
            .iter()
            .map(|n| n.id)
            .collect();
        for algo in Algorithm::ALL {
            let got: Vec<PointId> =
                cluster.query_with(algo, &q, 7).unwrap().neighbors.iter().map(|n| n.id).collect();
            assert_eq!(got, reference, "{algo:?}");
        }
    }

    #[test]
    fn approx_query_is_a_cheap_superset() {
        let cluster = loaded_cluster(6, 4000);
        let q = ScalarPoint(20_000);
        let exact = cluster.query(&q, 50).unwrap();
        let approx = cluster.query_approx(&q, 50).unwrap();
        assert!(approx.neighbors.len() >= exact.neighbors.len());
        // The exact answer is a prefix of the approximate superset.
        assert_eq!(
            &approx.neighbors[..50],
            &exact.neighbors[..],
            "approx must contain the exact answer as its prefix"
        );
        assert!(approx.metrics.rounds < exact.metrics.rounds);
        assert!(approx.neighbors.iter().all(|n| n.label.is_some()));
    }

    #[test]
    fn query_batch_can_request_the_event_engine() {
        let mut event_cluster: KnnCluster<ScalarPoint> =
            KnnCluster::builder().machines(4).seed(3).engine(Engine::Event).build();
        let mut ids = IdAssigner::new(0);
        let data =
            Dataset::from_points((0..200u64).map(|i| ScalarPoint(i * 7)).collect(), &mut ids);
        event_cluster.load(data, PartitionStrategy::Shuffled);
        let queries: Vec<ScalarPoint> = (0..5).map(|i| ScalarPoint(i * 250)).collect();
        let batch = event_cluster.query_batch(&queries, 4).unwrap();
        assert_eq!(batch.answers.len(), 5);
        // Same cluster layout through the sync engine gives the same batch.
        let mut sync_cluster: KnnCluster<ScalarPoint> =
            KnnCluster::builder().machines(4).seed(3).engine(Engine::Sync).build();
        let mut ids = IdAssigner::new(0);
        let data =
            Dataset::from_points((0..200u64).map(|i| ScalarPoint(i * 7)).collect(), &mut ids);
        sync_cluster.load(data, PartitionStrategy::Shuffled);
        let want = sync_cluster.query_batch(&queries, 4).unwrap();
        assert_eq!(batch.metrics, want.metrics);
        for (a, b) in batch.answers.iter().zip(&want.answers) {
            assert_eq!(a.neighbors, b.neighbors);
        }
    }

    #[test]
    fn faulty_cluster_degrades_gracefully() {
        let mut cluster: KnnCluster<ScalarPoint> = KnnCluster::builder()
            .machines(4)
            .seed(3)
            .faults(FaultPlan::default().with_crash(1, 0))
            .build();
        let mut ids = IdAssigner::new(0);
        let data =
            Dataset::from_points((0..120u64).map(|i| ScalarPoint(i * 10)).collect(), &mut ids);
        cluster.load(data, PartitionStrategy::Shuffled);
        let ans = cluster.query(&ScalarPoint(501), 5).unwrap();
        assert!(ans.degraded);
        assert_eq!(ans.shards_used, 3);
        assert_eq!(ans.neighbors.len(), 5);
        assert!(ans.neighbors.iter().all(|n| n.machine != 1), "dead shards contribute nothing");
        // The healthy cluster is not degraded.
        let healthy = loaded_cluster(4, 100).query(&ScalarPoint(501), 5).unwrap();
        assert!(!healthy.degraded);
        assert_eq!(healthy.shards_used, 4);
        assert!(!healthy.faults.any());
    }

    #[test]
    fn rejoined_cluster_is_not_degraded() {
        let build = |recovery: RecoveryPlan| {
            let mut cluster: KnnCluster<ScalarPoint> = KnnCluster::builder()
                .machines(4)
                .seed(3)
                .bandwidth_bits(256)
                .recovery(recovery)
                .build();
            let mut ids = IdAssigner::new(0);
            let data =
                Dataset::from_points((0..120u64).map(|i| ScalarPoint(i * 10)).collect(), &mut ids);
            cluster.load(data, PartitionStrategy::Shuffled);
            cluster
        };
        let clean = build(RecoveryPlan::default());
        let healing = build(RecoveryPlan::default().with_rejoin(2, 1, 3));
        let queries: Vec<ScalarPoint> = (0..4).map(|i| ScalarPoint(i * 301)).collect();
        let want = clean.query_batch_with(Algorithm::Simple, &queries, 5).unwrap();
        let got = healing.query_batch_with(Algorithm::Simple, &queries, 5).unwrap();
        // The rejoined machine serves again: answers and aggregate costs are
        // byte-identical to the fault-free batch, and nothing is degraded.
        assert!(!got.degraded);
        assert_eq!(got.shards_used, 4);
        assert!(got.recovered);
        assert_eq!(got.attempts, 1);
        assert!(got.replayed_rounds >= 1);
        assert_eq!(got.metrics, want.metrics);
        for (a, b) in got.answers.iter().zip(&want.answers) {
            assert_eq!(a.neighbors, b.neighbors);
        }
        assert!(!want.recovered);
        assert_eq!(want.replayed_rounds, 0);
    }

    #[test]
    fn byzantine_liar_is_caught_through_the_facade() {
        // Two clusters over the same 3-shard layout: one honest, one with
        // machine 1 lying. The Byzantine cluster must quarantine the liar
        // and return exactly the honest survivors' answer, with the audit
        // work reported.
        let load = |cluster: &mut KnnCluster<ScalarPoint>| {
            let mut ids = IdAssigner::new(0);
            let shards: Vec<Dataset<ScalarPoint>> = (0..3u64)
                .map(|m| {
                    Dataset::from_points(
                        (m * 100..(m + 1) * 100).map(ScalarPoint).collect(),
                        &mut ids,
                    )
                })
                .collect();
            cluster.load_shards(shards).unwrap();
        };
        let mut byz: KnnCluster<ScalarPoint> = KnnCluster::builder()
            .machines(3)
            .seed(3)
            .adversary(AdversaryPlan::default().with_lie(1, 0))
            .build();
        load(&mut byz);
        let ans = byz.query(&ScalarPoint(150), 5).unwrap();
        assert!(ans.degraded);
        assert_eq!(ans.shards_used, 2);
        assert!(ans.recovered);
        assert_eq!(ans.audit.suspects_quarantined, 1);
        assert!(ans.audit.audits_run >= 2);
        assert!(ans.neighbors.iter().all(|n| n.machine != 1), "liars contribute nothing");
        // The certified answer is the exact 5-NN of 150 over the honest
        // survivors' values {0..100} ∪ {200..300}: by (distance, id) that is
        // 200, 99, 201, 98, 202.
        assert_eq!(
            ans.neighbors.iter().map(|n| n.dist.as_u64()).collect::<Vec<_>>(),
            vec![50, 51, 51, 52, 52]
        );
        assert!(ans.neighbors.windows(2).all(|w| (w[0].dist, w[0].id) < (w[1].dist, w[1].id)));
        let batch = byz.query_batch(&[ScalarPoint(150)], 5).unwrap();
        assert_eq!(batch.audit.suspects_quarantined, 1);
        assert_eq!(
            batch.answers[0].neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
            ans.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
            "sequential and batched Byzantine recovery agree"
        );
        assert_eq!(
            batch.answers[0].audit,
            AuditMetrics::default(),
            "per-query copies stay empty; the batch reports its audit once"
        );
    }

    #[test]
    fn retry_budget_exhaustion_is_typed() {
        let mut cluster: KnnCluster<ScalarPoint> = KnnCluster::builder()
            .machines(4)
            .seed(3)
            .faults(FaultPlan::default().with_crash(1, 0))
            .retry(RetryPolicy { max_attempts: 1, ..RetryPolicy::default() })
            .build();
        let mut ids = IdAssigner::new(0);
        let data =
            Dataset::from_points((0..120u64).map(|i| ScalarPoint(i * 10)).collect(), &mut ids);
        cluster.load(data, PartitionStrategy::Shuffled);
        let err = cluster.query_with(Algorithm::Knn, &ScalarPoint(501), 5).unwrap_err();
        assert!(
            matches!(err, CoreError::DeadlineExceeded { attempts: 1, .. }),
            "want DeadlineExceeded, got {err:?}"
        );
    }

    #[test]
    fn insert_serves_immediately_on_both_backends() {
        for backend in [IndexBackend::Exact, IndexBackend::nsw()] {
            let mut cluster: KnnCluster<ScalarPoint> =
                KnnCluster::builder().machines(4).seed(3).index_backend(backend).build();
            let mut ids = IdAssigner::new(0);
            let data =
                Dataset::from_points((0..100u64).map(|i| ScalarPoint(i * 10)).collect(), &mut ids);
            cluster.load(data, PartitionStrategy::Shuffled);
            // 503 is nearer to the query than any loaded multiple of 10.
            let (id, machine) =
                cluster.insert_labeled(ScalarPoint(503), Some(Label::Class(7))).unwrap();
            assert!(machine < 4);
            let ans = cluster.query_batch(&[ScalarPoint(502)], 3).unwrap();
            let top = &ans.answers[0].neighbors[0];
            assert_eq!(top.id, id, "{backend:?}: the inserted point wins, no reload");
            assert_eq!(top.machine, machine);
            assert_eq!(top.label, Some(Label::Class(7)));
            assert_eq!(top.dist.as_u64(), 1);
            // The sequential oracle path agrees.
            let seq = cluster.query(&ScalarPoint(502), 3).unwrap();
            assert_eq!(seq.neighbors[0].id, id);
            assert_eq!(cluster.total_points(), 101);
        }
    }

    #[test]
    fn insert_ids_are_fresh_and_routing_is_seeded() {
        let mut a = loaded_cluster(4, 50);
        let mut b = loaded_cluster(4, 50);
        for v in 0..20u64 {
            let (id_a, m_a) = a.insert(ScalarPoint(v * 3)).unwrap();
            let (id_b, m_b) = b.insert(ScalarPoint(v * 3)).unwrap();
            assert_eq!((id_a, m_a), (id_b, m_b), "same seed, same placement");
            assert!(a.shards[m_a].records.iter().filter(|r| r.id == id_a).count() == 1);
        }
        assert_eq!(a.total_points(), 70);
    }

    #[test]
    fn insert_validation_is_typed() {
        let mut empty: KnnCluster<ScalarPoint> = KnnCluster::builder().machines(3).build();
        assert_eq!(empty.insert(ScalarPoint(1)).unwrap_err(), CoreError::NotLoaded);
        let mut cluster = loaded_cluster(3, 30);
        let taken = cluster.shards[0].records[0].id;
        let dup = Record { id: taken, point: ScalarPoint(5), label: None };
        assert_eq!(
            cluster.insert_record_into(0, dup).unwrap_err(),
            CoreError::DuplicateId { id: taken }
        );
        let fresh = Record { id: PointId(u64::MAX - 1), point: ScalarPoint(5), label: None };
        assert_eq!(
            cluster.insert_record_into(9, fresh).unwrap_err(),
            CoreError::NoSuchMachine { machine: 9, machines: 3 }
        );
    }

    #[test]
    fn accessors() {
        let cluster = loaded_cluster(4, 100);
        assert_eq!(cluster.k(), 4);
        assert_eq!(cluster.total_points(), 100);
        assert_eq!((0..4).map(|i| cluster.shard_len(i)).sum::<usize>(), 100);
        assert_eq!(cluster.shard_len(99), 0);
    }
}
