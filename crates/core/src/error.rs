//! Error type of the distributed k-NN layer.

use std::fmt;

use kmachine::EngineError;
use knn_points::PointId;

/// Failures surfaced by the runner and the cluster facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The underlying simulation failed (stall, round limit, panic).
    Engine(EngineError),
    /// The cluster has zero machines.
    EmptyCluster,
    /// `load_shards` was given the wrong number of shards.
    ShardCount {
        /// Machines in the cluster.
        expected: usize,
        /// Shards provided.
        got: usize,
    },
    /// A query was issued before any data was loaded.
    NotLoaded,
    /// Fault-aware retries ran out of budget: the
    /// [`RetryPolicy`](crate::runner::RetryPolicy) exhausted its attempt
    /// count or its simulated-round deadline before a run succeeded.
    DeadlineExceeded {
        /// Engine runs attempted (the first included).
        attempts: u32,
        /// Simulated rounds consumed by failed runs and backoff waits.
        spent_rounds: u64,
        /// The policy's attempt ceiling.
        max_attempts: u32,
        /// The policy's round budget.
        deadline_rounds: u64,
    },
    /// The Byzantine audit could not isolate an honest majority to answer
    /// from: quarantining every suspect would leave no machine standing
    /// (every machine's claims failed the audit, or suspects kept failing
    /// until the cluster emptied). Surfaced instead of returning an answer
    /// the audit could not certify.
    AuditFailed {
        /// Machines the final audit flagged as suspects.
        suspects: Vec<usize>,
        /// Machines still alive when the audit gave up.
        alive: usize,
    },
    /// An insert carried an id already present on some shard. Ids are the
    /// identity the protocols and the audit reason about; silently
    /// double-indexing one would corrupt both.
    DuplicateId {
        /// The offending id.
        id: PointId,
    },
    /// An insert targeted a machine the cluster does not have.
    NoSuchMachine {
        /// The requested machine.
        machine: usize,
        /// Machines in the cluster.
        machines: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "simulation failed: {e}"),
            CoreError::EmptyCluster => write!(f, "cluster has no machines"),
            CoreError::ShardCount { expected, got } => {
                write!(f, "expected {expected} shards, got {got}")
            }
            CoreError::NotLoaded => write!(f, "no data loaded into the cluster"),
            CoreError::DeadlineExceeded {
                attempts,
                spent_rounds,
                max_attempts,
                deadline_rounds,
            } => {
                write!(
                    f,
                    "retry budget exhausted after {attempts} attempts / {spent_rounds} simulated \
                     rounds (policy: {max_attempts} attempts, {deadline_rounds} rounds)"
                )
            }
            CoreError::AuditFailed { suspects, alive } => {
                write!(
                    f,
                    "audit cannot certify an answer: {} of {alive} alive machines are suspects \
                     ({suspects:?})",
                    suspects.len()
                )
            }
            CoreError::DuplicateId { id } => {
                write!(f, "insert rejected: id {id:?} is already loaded")
            }
            CoreError::NoSuchMachine { machine, machines } => {
                write!(f, "insert rejected: machine {machine} of a {machines}-machine cluster")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: CoreError = EngineError::Stalled { round: 3 }.into();
        assert!(e.to_string().contains("round 3"));
        assert!(CoreError::EmptyCluster.to_string().contains("no machines"));
        assert!(CoreError::ShardCount { expected: 4, got: 2 }.to_string().contains("4"));
        assert!(CoreError::NotLoaded.to_string().contains("loaded"));
    }

    #[test]
    fn deadline_exceeded_reports_budget_and_spend() {
        let e = CoreError::DeadlineExceeded {
            attempts: 3,
            spent_rounds: 42,
            max_attempts: 3,
            deadline_rounds: 40,
        };
        let s = e.to_string();
        assert!(s.contains("3 attempts"), "{s}");
        assert!(s.contains("42"), "{s}");
        assert!(s.contains("40 rounds"), "{s}");
    }

    #[test]
    fn insert_errors_report_the_offender() {
        let s = CoreError::DuplicateId { id: PointId(7) }.to_string();
        assert!(s.contains("already loaded"), "{s}");
        let s = CoreError::NoSuchMachine { machine: 9, machines: 4 }.to_string();
        assert!(s.contains("machine 9"), "{s}");
        assert!(s.contains("4-machine"), "{s}");
    }

    #[test]
    fn audit_failed_reports_suspects_and_survivors() {
        let e = CoreError::AuditFailed { suspects: vec![0, 2], alive: 2 };
        let s = e.to_string();
        assert!(s.contains("2 of 2"), "{s}");
        assert!(s.contains("[0, 2]"), "{s}");
    }
}
