//! # knn-core — distributed ℓ-NN in the k-machine model (SPAA 2020)
//!
//! Reproduction of Fathi, Molla, Pandurangan, *Efficient Distributed
//! Algorithms for the K-Nearest Neighbors Problem* (SPAA 2020,
//! arXiv:2005.07373). Given n points spread over k machines and a query
//! point q, compute the ℓ points nearest to q — in `O(log ℓ)` communication
//! rounds and `O(k log ℓ)` messages, regardless of n and k.
//!
//! ## What lives here
//!
//! * [`protocols::selection`] — **Algorithm 1**: distributed randomized
//!   selection (ℓ-smallest of n distributed values), `O(log n)` rounds whp.
//! * [`protocols::knn`] — **Algorithm 2**: the ℓ-NN protocol; per-machine
//!   sampling prunes the candidates from `kℓ` to `O(ℓ)` whp (Lemma 2.3),
//!   then Algorithm 1 finishes the job in `O(log ℓ)` rounds.
//! * [`protocols::simple`] — the **baseline** the paper measures against:
//!   every machine ships its local ℓ-NN to the leader (`Θ(ℓ)` rounds).
//! * [`protocols::saukas_song`] — the deterministic weighted-median
//!   selection of Saukas–Song \[16\], `O(log(kℓ))` rounds.
//! * [`protocols::binsearch`] — bisection over the *value domain* \[3, 18\]:
//!   `O(log V)` rounds, the non-comparison-based regime.
//! * [`protocols::kdtree_dist`] — a PANDA-like distributed k-d tree \[14\]:
//!   pays a large redistribution cost up front, then answers queries
//!   locally.
//! * [`cluster::KnnCluster`] — the user-facing facade: load data, pick an
//!   algorithm and engine, run queries, inspect exact round/message costs.
//! * [`session::QuerySession`] — the **batched serving path**: one leader
//!   election per session, one engine run per batch (queries multiplexed
//!   over shared links), and per-shard indices ([`local::ShardIndex`]:
//!   exact [`local::IndexedPoint`] structures or the approximate
//!   [`local::NswIndex`] graph, chosen via [`local::IndexBackend`])
//!   generating local candidates in `O(ℓ log n)` instead of `O(n)`. The
//!   NSW backend also unlocks [`cluster::KnnCluster::insert`]: live,
//!   index-maintained point ingestion with no reload.
//! * [`ml`] — ℓ-NN classification (majority vote) and regression (mean),
//!   the applications motivating the paper.
//!
//! ## Quick example
//!
//! ```
//! use knn_core::cluster::KnnCluster;
//! use knn_core::runner::Algorithm;
//! use knn_points::{Dataset, IdAssigner, ScalarPoint};
//! use knn_workloads::PartitionStrategy;
//!
//! let mut ids = IdAssigner::new(1);
//! let points: Vec<ScalarPoint> = (0..20_000).map(|i| ScalarPoint(i * 10)).collect();
//! let data = Dataset::from_points(points, &mut ids);
//!
//! let mut cluster = KnnCluster::builder().machines(8).seed(7).build();
//! cluster.load(data, PartitionStrategy::Shuffled);
//!
//! let answer = cluster.query(&ScalarPoint(4242), 400).unwrap();
//! let values: Vec<u64> = answer.neighbors.iter().map(|n| n.dist.as_u64()).collect();
//! assert_eq!(answer.neighbors.len(), 400);
//! assert!(values.windows(2).all(|w| w[0] <= w[1]));
//! // The same query through the paper's baseline gives the same neighbors
//! // but pays Θ(ell) rounds instead of O(log ell) — at ell = 400 the
//! // logarithmic algorithm is already well past the crossover:
//! let slow = cluster.query_with(Algorithm::Simple, &ScalarPoint(4242), 400).unwrap();
//! assert_eq!(
//!     answer.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
//!     slow.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
//! );
//! assert!(slow.metrics.rounds >= answer.metrics.rounds);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cluster;
pub mod error;
pub mod local;
pub mod ml;
pub mod protocols;
pub mod runner;
pub mod session;

pub use audit::{audit_claims, AuditReport};
pub use cluster::{BatchAnswer, ClusterBuilder, KnnAnswer, KnnCluster, Neighbor};
pub use error::CoreError;
pub use local::{IndexBackend, IndexedPoint, NswIndex, NswParams, ShardIndex};
pub use runner::{Algorithm, ElectionKind, QueryOptions};
pub use session::{BatchOutcome, BatchQueryOutcome, QuerySession};
