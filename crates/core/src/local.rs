//! Local (per-machine) computation helpers.
//!
//! The model charges nothing for local computation, but the wall-clock
//! experiments do: these run inside each machine's round 0 — on the
//! machine's own thread under the threaded engine — matching where the
//! paper's cluster spends its local time.

use knn_points::{DistKey, Metric, Point, Record};

/// Distance keys of all records with respect to `query`: the reduction of
/// ℓ-NN to selection (§1.2 — "compute the distance of the query point to
/// all the points, then find the ℓ-smallest distance values").
pub fn dist_keys<P: Point>(records: &[Record<P>], query: &P, metric: Metric) -> Vec<DistKey> {
    records.iter().map(|r| DistKey::new(r.point.distance(query, metric), r.id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_points::{IdAssigner, ScalarPoint};

    #[test]
    fn keys_carry_distance_and_id() {
        let mut ids = IdAssigner::new(0);
        let records: Vec<Record<ScalarPoint>> = [10u64, 30]
            .iter()
            .map(|&v| Record { id: ids.next_id(), point: ScalarPoint(v), label: None })
            .collect();
        let keys = dist_keys(&records, &ScalarPoint(12), Metric::Euclidean);
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].dist.as_u64(), 2);
        assert_eq!(keys[0].id, records[0].id);
        assert_eq!(keys[1].dist.as_u64(), 18);
    }
}
