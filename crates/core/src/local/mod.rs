//! Local (per-machine) computation helpers and shard indices.
//!
//! The model charges nothing for local computation, but the wall-clock
//! experiments do: these run inside each machine's round 0 — on the
//! machine's own thread under the threaded engine — matching where the
//! paper's cluster spends its local time.
//!
//! Three candidate-generation paths exist:
//!
//! * [`dist_keys`] — the paper's reduction verbatim: compute the distance of
//!   the query to *all* local points, `O(n)` per query. Used by the one-shot
//!   [`crate::runner::run_query`] path.
//! * [`IndexedPoint`] — a per-shard **exact** index built at load time and
//!   updated on every [`crate::cluster::KnnCluster::insert`] (the dataset is
//!   *not* frozen after load), so the serving path
//!   ([`crate::session::QuerySession`]) generates the local top-ℓ
//!   candidates in `O(ℓ log n)` instead of `O(n)` per query. Since a
//!   machine can contribute at most ℓ answers, the local top-ℓ is a
//!   sufficient input for every protocol in this crate: the answer is
//!   provably identical (any global top-ℓ member is in its machine's local
//!   top-ℓ, and per-machine counts clamp without crossing the ℓ decision
//!   boundary). Note that only Algorithm 2, Simple, and the approx path
//!   truncate to the local top-ℓ themselves on the sequential path —
//!   BinSearch sequentially bisects over the *full* local key set, so its
//!   batched rounds improve both from amortization and from the index
//!   shrinking its value interval; cost comparisons across the two paths
//!   should say which effect they measure.
//! * [`nsw::NswIndex`] — an **approximate** navigable-small-world graph with
//!   insert-as-query construction, selected per cluster via
//!   [`IndexBackend::Nsw`]. It trades exactness for an `ef`/`m` recall ↔
//!   latency dial (saturating at exact when `ef` covers the shard) and gives
//!   every point type — including high-dimensional [`VecPoint`] and
//!   [`BitsPoint`], which the exact path serves by brute scan — a sublinear
//!   serving path plus cheap online inserts.
//!
//! [`ShardIndex`] is the dispatch between the last two: clusters store one
//! per shard and route every local top-ℓ request through it.

use knn_points::{BitsPoint, DistKey, Metric, Point, PointId, Record, ScalarPoint, VecPoint};
use knn_selection::TopK;

pub mod nsw;

pub use nsw::{recall, NswIndex, NswParams};

/// Distance keys of all records with respect to `query`: the reduction of
/// ℓ-NN to selection (§1.2 — "compute the distance of the query point to
/// all the points, then find the ℓ-smallest distance values").
pub fn dist_keys<P: Point>(records: &[Record<P>], query: &P, metric: Metric) -> Vec<DistKey> {
    records.iter().map(|r| DistKey::new(r.point.distance(query, metric), r.id)).collect()
}

/// The ℓ smallest distance keys by full scan, ascending by `(distance, id)`
/// — the index-free fallback, `O(n)` per query but `O(ℓ)` memory.
pub fn brute_top<P: Point>(
    records: &[Record<P>],
    query: &P,
    ell: usize,
    metric: Metric,
) -> Vec<DistKey> {
    knn_selection::smallest_k(
        records.iter().map(|r| DistKey::new(r.point.distance(query, metric), r.id)),
        ell,
    )
}

/// A point type with a per-shard **exact** index for repeated-query serving.
///
/// `build_index` runs per shard at [`crate::cluster::KnnCluster::load`] time
/// (and again after an insert mutates the shard, via
/// [`ShardIndex::insert`]); `index_top` answers "this shard's ℓ best
/// candidates" per query.
/// The contract is **exact parity with the brute-force scan**: `index_top`
/// must return precisely the ℓ smallest `(distance, id)` keys the full
/// [`dist_keys`] scan would yield, in ascending order — the batched and
/// sequential serving paths rely on this to give identical answers.
///
/// Custom point types can opt out of real indexing the way [`BitsPoint`]
/// does: `type Index = ()`, an empty `build_index`, and an `index_top` that
/// delegates to [`brute_top`] — three lines, always correct.
pub trait IndexedPoint: Point {
    /// The index structure held per shard.
    type Index: Send + Sync + std::fmt::Debug;

    /// Build the shard's index from the full record set.
    fn build_index(records: &[Record<Self>]) -> Self::Index;

    /// The shard's ℓ best candidates for `query`, ascending by
    /// `(distance, id)` and identical to the brute-force top-ℓ.
    fn index_top(
        index: &Self::Index,
        records: &[Record<Self>],
        query: &Self,
        ell: usize,
        metric: Metric,
    ) -> Vec<DistKey>;
}

/// Sorted-array index over the integer line: the 1-d specialization where a
/// binary search plus two-pointer expansion beats a k-d tree (and stays in
/// the exact `u64` distance domain, which an `f64` tree would not).
#[derive(Debug, Clone)]
pub struct ScalarIndex {
    /// `(value, id)` pairs sorted ascending. Duplicate-value correctness in
    /// the expansion below does *not* come from visit order (the leftward
    /// walk sees equal values in descending id order): it comes from the
    /// strictly-greater break condition plus `TopK`'s exact `(dist, id)`
    /// eviction, which together admit every distance-tied candidate.
    sorted: Vec<(u64, PointId)>,
}

impl IndexedPoint for ScalarPoint {
    type Index = ScalarIndex;

    fn build_index(records: &[Record<Self>]) -> ScalarIndex {
        let mut sorted: Vec<(u64, PointId)> = records.iter().map(|r| (r.point.0, r.id)).collect();
        sorted.sort_unstable();
        ScalarIndex { sorted }
    }

    fn index_top(
        index: &ScalarIndex,
        records: &[Record<Self>],
        query: &Self,
        ell: usize,
        metric: Metric,
    ) -> Vec<DistKey> {
        if matches!(metric, Metric::Hamming) {
            // Hamming distance on the line is 0/1 — not monotone in
            // |value − query|, so the ordered expansion does not apply.
            return brute_top(records, query, ell, metric);
        }
        if ell == 0 || index.sorted.is_empty() {
            return Vec::new();
        }
        let sorted = &index.sorted;
        let n = sorted.len();
        // All non-Hamming scalar metrics encode monotonically in
        // |value − query| (see ScalarPoint::distance), so expanding outward
        // from the query's insertion point enumerates candidates in
        // non-decreasing distance order: O(log n + ℓ) per query.
        let mut right = sorted.partition_point(|&(v, _)| v < query.0);
        let mut left = right;
        let mut best = TopK::<DistKey>::new(ell);
        loop {
            let left_gap = (left > 0).then(|| query.0.abs_diff(sorted[left - 1].0));
            let right_gap = (right < n).then(|| sorted[right].0.abs_diff(query.0));
            let from_left = match (left_gap, right_gap) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(l), Some(r)) => l <= r,
            };
            let (value, id) = if from_left {
                left -= 1;
                sorted[left]
            } else {
                let e = sorted[right];
                right += 1;
                e
            };
            let dist = ScalarPoint(value).distance(query, metric);
            if let Some(worst) = best.threshold() {
                // Strict: an equal-distance candidate with a smaller id can
                // still displace the current worst under (distance, id).
                if dist > worst.dist {
                    break;
                }
            }
            best.push(DistKey::new(dist, id));
        }
        best.into_sorted()
    }
}

impl IndexedPoint for VecPoint {
    /// The k-d tree of the related-work baselines, reused as a *local*
    /// accelerator: the distributed protocols stay communication-light, and
    /// each machine answers its candidate-generation subproblem in
    /// `O(ℓ log n)` expected time.
    type Index = knn_kdtree::KdTree;

    fn build_index(records: &[Record<Self>]) -> knn_kdtree::KdTree {
        knn_kdtree::KdTree::from_records(records)
    }

    fn index_top(
        index: &knn_kdtree::KdTree,
        _records: &[Record<Self>],
        query: &Self,
        ell: usize,
        metric: Metric,
    ) -> Vec<DistKey> {
        index.knn(&query.0, ell, metric).into_iter().map(|(d, id)| DistKey::new(d, id)).collect()
    }
}

impl IndexedPoint for BitsPoint {
    /// Hamming space has no cheap exact index here; the scan is the index.
    type Index = ();

    fn build_index(_records: &[Record<Self>]) -> Self::Index {}

    fn index_top(
        _index: &(),
        records: &[Record<Self>],
        query: &Self,
        ell: usize,
        metric: Metric,
    ) -> Vec<DistKey> {
        brute_top(records, query, ell, metric)
    }
}

/// Which local index each shard builds — a per-cluster choice made on
/// [`crate::QueryOptions`] / [`crate::ClusterBuilder::index_backend`].
///
/// * [`IndexBackend::Exact`] (the default): the [`IndexedPoint`] index for
///   the point type — sorted array for scalars, k-d tree for vectors, brute
///   scan for bit points. Answers are exactly the brute-force top-ℓ.
/// * [`IndexBackend::Nsw`]: the [`NswIndex`] proximity graph — approximate
///   at small `ef` (recall measured by the `recall` bench bin), exact when
///   `ef` covers the shard, with `O(log n)`-ish online inserts for every
///   point type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum IndexBackend {
    /// Exact per-type index with brute-force parity.
    #[default]
    Exact,
    /// Navigable-small-world graph with the given knobs.
    Nsw(NswParams),
}

impl IndexBackend {
    /// NSW backend with default knobs.
    pub fn nsw() -> Self {
        IndexBackend::Nsw(NswParams::default())
    }

    /// Short human-readable name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            IndexBackend::Exact => "exact",
            IndexBackend::Nsw(_) => "nsw",
        }
    }
}

/// The index a cluster holds per shard: the [`IndexBackend`] dispatch
/// between the exact [`IndexedPoint`] structure and the approximate
/// [`NswIndex`] graph. All serving-path candidate generation — including
/// the Byzantine audit's shard-local truth — goes through [`ShardIndex::top`]
/// so honest claims and recomputed truth always come from the same code
/// path, and [`ShardIndex::insert`] keeps the structure live as records are
/// appended.
#[derive(Debug)]
pub enum ShardIndex<P: IndexedPoint> {
    /// Exact index (brute-force parity guaranteed by [`IndexedPoint`]).
    Exact(P::Index),
    /// Approximate NSW graph (exact once `ef` covers the shard).
    Nsw(NswIndex),
}

impl<P: IndexedPoint> ShardIndex<P> {
    /// Build the selected index over a shard's records. `metric` only
    /// matters for [`IndexBackend::Nsw`], whose graph geometry is tied to
    /// the metric it was built under.
    pub fn build(records: &[Record<P>], backend: IndexBackend, metric: Metric) -> Self {
        match backend {
            IndexBackend::Exact => ShardIndex::Exact(P::build_index(records)),
            IndexBackend::Nsw(params) => ShardIndex::Nsw(NswIndex::build(records, params, metric)),
        }
    }

    /// Which backend this index is.
    pub fn backend(&self) -> IndexBackend {
        match self {
            ShardIndex::Exact(_) => IndexBackend::Exact,
            ShardIndex::Nsw(index) => IndexBackend::Nsw(index.params()),
        }
    }

    /// The shard's ℓ best candidates, ascending by `(distance, id)`.
    ///
    /// Exact backend: precisely the brute-force top-ℓ. NSW backend: the
    /// graph search at the configured `ef_search` (raised to `ell` when
    /// smaller) — but if `metric` differs from the build metric the graph
    /// does not apply and this falls back to the exact scan.
    pub fn top(
        &self,
        records: &[Record<P>],
        query: &P,
        ell: usize,
        metric: Metric,
    ) -> Vec<DistKey> {
        match self {
            ShardIndex::Exact(index) => P::index_top(index, records, query, ell, metric),
            ShardIndex::Nsw(index) => {
                if metric != index.metric() {
                    return brute_top(records, query, ell, metric);
                }
                index.search(records, query, ell, index.params().ef_search)
            }
        }
    }

    /// [`ShardIndex::top`] with a per-call `ef` override. The exact backend
    /// ignores `ef` (it is already exact); the NSW backend uses it as the
    /// frontier breadth, so `ef ≥ records.len()` forces exact parity.
    pub fn top_ef(
        &self,
        records: &[Record<P>],
        query: &P,
        ell: usize,
        ef: usize,
        metric: Metric,
    ) -> Vec<DistKey> {
        match self {
            ShardIndex::Exact(index) => P::index_top(index, records, query, ell, metric),
            ShardIndex::Nsw(index) => {
                if metric != index.metric() {
                    return brute_top(records, query, ell, metric);
                }
                index.search(records, query, ell, ef)
            }
        }
    }

    /// Absorb the record just appended at `records[pos]` (the shard's new
    /// last element). NSW inserts it through the same search path bulk
    /// construction uses; the exact index rebuilds — correct for any
    /// [`IndexedPoint`] implementation without extending that trait.
    pub fn insert(&mut self, records: &[Record<P>], pos: usize) {
        match self {
            ShardIndex::Exact(index) => *index = P::build_index(records),
            ShardIndex::Nsw(index) => index.insert(records, pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_points::IdAssigner;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn keys_carry_distance_and_id() {
        let mut ids = IdAssigner::new(0);
        let records: Vec<Record<ScalarPoint>> = [10u64, 30]
            .iter()
            .map(|&v| Record { id: ids.next_id(), point: ScalarPoint(v), label: None })
            .collect();
        let keys = dist_keys(&records, &ScalarPoint(12), Metric::Euclidean);
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].dist.as_u64(), 2);
        assert_eq!(keys[0].id, records[0].id);
        assert_eq!(keys[1].dist.as_u64(), 18);
    }

    fn scalar_records(values: &[u64], seed: u64) -> Vec<Record<ScalarPoint>> {
        let mut ids = IdAssigner::new(seed);
        values
            .iter()
            .map(|&v| Record { id: ids.next_id(), point: ScalarPoint(v), label: None })
            .collect()
    }

    fn oracle<P: Point>(records: &[Record<P>], q: &P, ell: usize, metric: Metric) -> Vec<DistKey> {
        let mut keys = dist_keys(records, q, metric);
        keys.sort_unstable();
        keys.truncate(ell);
        keys
    }

    #[test]
    fn scalar_index_matches_brute_force_on_all_metrics() {
        let values: Vec<u64> = (0..300u64).map(|i| i.wrapping_mul(48271) % 1000).collect();
        let records = scalar_records(&values, 1);
        let index = ScalarPoint::build_index(&records);
        for metric in [
            Metric::Euclidean,
            Metric::SquaredEuclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Minkowski(3.0),
            Metric::Hamming,
        ] {
            for q in [0u64, 17, 500, 999, 2000] {
                for ell in [0usize, 1, 7, 300, 500] {
                    let got =
                        ScalarPoint::index_top(&index, &records, &ScalarPoint(q), ell, metric);
                    let want = oracle(&records, &ScalarPoint(q), ell, metric);
                    assert_eq!(got, want, "metric {metric:?} q {q} ell {ell}");
                }
            }
        }
    }

    #[test]
    fn scalar_index_breaks_duplicate_ties_by_id() {
        // Many duplicates at equal distance on both sides of the query.
        let records = scalar_records(&[5, 5, 5, 15, 15, 15, 10], 7);
        let index = ScalarPoint::build_index(&records);
        let q = ScalarPoint(10);
        for ell in 1..=7 {
            let got = ScalarPoint::index_top(&index, &records, &q, ell, Metric::Euclidean);
            assert_eq!(got, oracle(&records, &q, ell, Metric::Euclidean), "ell {ell}");
        }
    }

    #[test]
    fn scalar_index_handles_saturating_squared_distances() {
        let records = scalar_records(&[0, 1, u64::MAX - 1, u64::MAX], 3);
        let index = ScalarPoint::build_index(&records);
        for q in [0u64, u64::MAX / 2, u64::MAX] {
            let got = ScalarPoint::index_top(
                &index,
                &records,
                &ScalarPoint(q),
                3,
                Metric::SquaredEuclidean,
            );
            assert_eq!(got, oracle(&records, &ScalarPoint(q), 3, Metric::SquaredEuclidean), "{q}");
        }
    }

    #[test]
    fn vec_index_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ids = IdAssigner::new(4);
        let records: Vec<Record<VecPoint>> = (0..200)
            .map(|_| Record {
                id: ids.next_id(),
                point: VecPoint::new(vec![
                    rng.random_range(-5.0..5.0),
                    rng.random_range(-5.0..5.0),
                ]),
                label: None,
            })
            .collect();
        let index = VecPoint::build_index(&records);
        let q = VecPoint::new(vec![0.25, -1.5]);
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Hamming] {
            let got = VecPoint::index_top(&index, &records, &q, 9, metric);
            assert_eq!(got, oracle(&records, &q, 9, metric), "{metric:?}");
        }
    }

    #[test]
    fn bits_index_is_the_brute_scan() {
        let mut ids = IdAssigner::new(9);
        let records: Vec<Record<BitsPoint>> = (0..50u64)
            .map(|i| Record {
                id: ids.next_id(),
                point: BitsPoint::new(vec![i.wrapping_mul(0x9E3779B9)]),
                label: None,
            })
            .collect();
        BitsPoint::build_index(&records);
        let q = BitsPoint::new(vec![0xF0F0]);
        let got = BitsPoint::index_top(&(), &records, &q, 5, Metric::Hamming);
        assert_eq!(got, oracle(&records, &q, 5, Metric::Hamming));
    }

    #[test]
    fn empty_shard_yields_empty_candidates() {
        let records: Vec<Record<ScalarPoint>> = Vec::new();
        let index = ScalarPoint::build_index(&records);
        assert!(ScalarPoint::index_top(&index, &records, &ScalarPoint(1), 4, Metric::Euclidean)
            .is_empty());
        let vrecords: Vec<Record<VecPoint>> = Vec::new();
        let vindex = VecPoint::build_index(&vrecords);
        let q = VecPoint::new(vec![1.0, 2.0]);
        assert!(VecPoint::index_top(&vindex, &vrecords, &q, 4, Metric::Euclidean).is_empty());
    }

    #[test]
    fn shard_index_dispatch_and_metric_fallback() {
        let records = scalar_records(&[3, 9, 1, 14, 7, 7, 20], 11);
        let q = ScalarPoint(8);
        let want = oracle(&records, &q, 3, Metric::Euclidean);
        let exact =
            ShardIndex::<ScalarPoint>::build(&records, IndexBackend::Exact, Metric::Euclidean);
        assert_eq!(exact.backend(), IndexBackend::Exact);
        assert_eq!(exact.top(&records, &q, 3, Metric::Euclidean), want);
        let nsw =
            ShardIndex::<ScalarPoint>::build(&records, IndexBackend::nsw(), Metric::Euclidean);
        assert_eq!(nsw.backend().name(), "nsw");
        // ef_search (64) covers this tiny shard, so NSW is exact here.
        assert_eq!(nsw.top(&records, &q, 3, Metric::Euclidean), want);
        // A query under a different metric cannot use the graph: scan.
        let want_h = oracle(&records, &q, 3, Metric::Hamming);
        assert_eq!(nsw.top(&records, &q, 3, Metric::Hamming), want_h);
        assert_eq!(nsw.top_ef(&records, &q, 3, 1, Metric::Hamming), want_h);
    }

    #[test]
    fn shard_index_insert_keeps_both_backends_current() {
        let mut records = scalar_records(&[50, 60, 70, 80], 12);
        let mut exact =
            ShardIndex::<ScalarPoint>::build(&records, IndexBackend::Exact, Metric::Euclidean);
        let mut nsw =
            ShardIndex::<ScalarPoint>::build(&records, IndexBackend::nsw(), Metric::Euclidean);
        let mut ids = IdAssigner::new(99);
        records.push(Record { id: ids.next_id(), point: ScalarPoint(61), label: None });
        exact.insert(&records, records.len() - 1);
        nsw.insert(&records, records.len() - 1);
        let q = ScalarPoint(61);
        let want = oracle(&records, &q, 2, Metric::Euclidean);
        assert_eq!(exact.top(&records, &q, 2, Metric::Euclidean), want);
        assert_eq!(nsw.top(&records, &q, 2, Metric::Euclidean), want);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_scalar_index_equals_brute_force(
            values in proptest::collection::vec(any::<u64>(), 0..120),
            q in any::<u64>(),
            ell in 0usize..25,
            seed in 0u64..100,
        ) {
            let records = scalar_records(&values, seed);
            let index = ScalarPoint::build_index(&records);
            let got = ScalarPoint::index_top(&index, &records, &ScalarPoint(q), ell, Metric::Euclidean);
            prop_assert_eq!(got, oracle(&records, &ScalarPoint(q), ell, Metric::Euclidean));
        }
    }
}
