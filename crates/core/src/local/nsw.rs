//! Navigable-small-world (NSW) graph index: the approximate shard backend.
//!
//! A layered proximity graph in the HNSW style: each point draws a level
//! from a geometric distribution, lives in layers `0..=level`, and links to
//! its (approximate) nearest neighbors per layer. A query greedily descends
//! from the top layer's entry point, then runs a best-first search with an
//! `ef`-bounded result set on layer 0. Construction is *insert-as-query*:
//! adding a point first searches for it, then connects to what the search
//! found — so bulk load and [`crate::cluster::KnnCluster::insert`] on a live
//! cluster share this one code path, and a bulk-built graph is byte-identical
//! to one grown by inserting the same records in the same order.
//!
//! Two knobs trade recall for latency:
//!
//! * `m` — links per node per layer (layer 0 keeps `2m`). More links, better
//!   connectivity, slower inserts.
//! * `ef` — breadth of the best-first frontier. `ef_construction` bounds it
//!   during inserts, `ef_search` during queries; raising either raises
//!   recall. The knob saturates at exact: whenever the effective `ef` covers
//!   the whole shard (`ef ≥ n`), [`NswIndex::search`] degenerates to the
//!   brute-force scan, so `ef = n` is a *structural* exactness guarantee,
//!   not a statistical one.
//!
//! Everything is deterministic: levels come from a seeded `splitmix64` hash
//! of the point id (no RNG state threads through inserts), and every heap
//! and adjacency ordering uses the total `(distance, id)` order, so equal
//! builds yield equal graphs on any engine at any pool size.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use knn_points::{DistKey, Metric, Point, PointId, Record};

use super::brute_top;

/// Level cap: with p = 1/2 per level, 24 layers cover ~16M points per shard.
const MAX_LEVEL: usize = 24;

/// Tuning knobs for [`NswIndex`]. `Default` is the serving configuration the
/// README's recall table is measured at (`m = 12`, `ef_construction = 96`,
/// `ef_search = 64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NswParams {
    /// Links kept per node per layer (layer 0 keeps `2m`). Must be ≥ 1.
    pub m: usize,
    /// Frontier breadth while inserting.
    pub ef_construction: usize,
    /// Frontier breadth while querying (raised to `ell` when smaller; a
    /// per-call override is available via [`NswIndex::search`]).
    pub ef_search: usize,
    /// Seed for the deterministic level draw. Two indices over the same
    /// records with the same seed are identical.
    pub level_seed: u64,
}

impl Default for NswParams {
    fn default() -> Self {
        NswParams { m: 12, ef_construction: 96, ef_search: 64, level_seed: 0x0005_eed0_95a1 }
    }
}

/// One graph node; `links[layer]` are neighbor node indices (positions into
/// the shard's record slice). `links.len()` is the node's level + 1.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    links: Vec<Vec<u32>>,
}

/// The per-shard NSW graph. Holds topology only — points stay in the shard's
/// `[Record<P>]`, and node `i` describes `records[i]`, so the index works for
/// *any* [`Point`] type (vectors, bit sets, scalars) without generics on the
/// struct itself.
#[derive(Debug, Clone, PartialEq)]
pub struct NswIndex {
    params: NswParams,
    metric: Metric,
    nodes: Vec<Node>,
    /// Entry point for descents: a node on the highest occupied layer.
    entry: u32,
    max_level: usize,
}

impl NswIndex {
    /// An empty index; grow it with [`NswIndex::insert`].
    pub fn new(params: NswParams, metric: Metric) -> Self {
        assert!(params.m >= 1, "NswParams::m must be >= 1");
        NswIndex { params, metric, nodes: Vec::new(), entry: 0, max_level: 0 }
    }

    /// Bulk construction — literally sequential insert-as-query over the
    /// records, so `build(records)` and an empty index grown by `insert`
    /// produce identical graphs (pinned by `tests/index_conformance.rs`).
    pub fn build<P: Point>(records: &[Record<P>], params: NswParams, metric: Metric) -> Self {
        let mut index = Self::new(params, metric);
        for pos in 0..records.len() {
            index.insert(records, pos);
        }
        index
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The knobs this index was built with.
    pub fn params(&self) -> NswParams {
        self.params
    }

    /// The metric distances were computed under at build time. Queries under
    /// any *other* metric cannot use the graph (its geometry is wrong for
    /// them) and must fall back to a scan — [`super::ShardIndex`] does.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Deterministic level draw: trailing ones of a `splitmix64` hash of the
    /// point id, i.e. geometric with p = 1/2 — no RNG state to thread, so
    /// the level of a point is a pure function of `(level_seed, id)`.
    fn level_for(&self, id: PointId) -> usize {
        (splitmix64(self.params.level_seed ^ id.0).trailing_ones() as usize).min(MAX_LEVEL)
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    fn key_to<P: Point>(&self, records: &[Record<P>], query: &P, node: u32) -> (DistKey, u32) {
        let r = &records[node as usize];
        (DistKey::new(r.point.distance(query, self.metric), r.id), node)
    }

    /// Best-first search on one layer: expand the closest unexpanded
    /// candidate until the frontier is provably worse than the `ef`-th best.
    /// Returns up to `ef` hits ascending by `(distance, id)`. Deterministic:
    /// both heaps order by `(DistKey, node)` and ids are unique per shard.
    fn search_layer<P: Point>(
        &self,
        records: &[Record<P>],
        query: &P,
        entries: &[(DistKey, u32)],
        ef: usize,
        layer: usize,
    ) -> Vec<(DistKey, u32)> {
        let mut visited = vec![false; self.nodes.len()];
        let mut frontier: BinaryHeap<Reverse<(DistKey, u32)>> = BinaryHeap::new();
        let mut best: BinaryHeap<(DistKey, u32)> = BinaryHeap::new();
        for &entry in entries {
            if !std::mem::replace(&mut visited[entry.1 as usize], true) {
                frontier.push(Reverse(entry));
                best.push(entry);
            }
        }
        while best.len() > ef {
            best.pop();
        }
        while let Some(Reverse(candidate)) = frontier.pop() {
            if best.len() >= ef && candidate > *best.peek().expect("best nonempty") {
                break;
            }
            for &neighbor in &self.nodes[candidate.1 as usize].links[layer] {
                if std::mem::replace(&mut visited[neighbor as usize], true) {
                    continue;
                }
                let keyed = self.key_to(records, query, neighbor);
                if best.len() < ef || keyed < *best.peek().expect("best nonempty") {
                    frontier.push(Reverse(keyed));
                    best.push(keyed);
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        let mut out = best.into_vec();
        out.sort_unstable();
        out
    }

    /// Index the next record: `pos` must equal [`NswIndex::len`] — the graph
    /// always covers a prefix `records[..len]` of the shard, which is what
    /// makes append-only live inserts race-free with concurrent reads of the
    /// already-indexed prefix.
    pub fn insert<P: Point>(&mut self, records: &[Record<P>], pos: usize) {
        assert_eq!(pos, self.nodes.len(), "NswIndex::insert must append the next unindexed record");
        let record = &records[pos];
        let level = self.level_for(record.id);
        let node = Node { links: vec![Vec::new(); level + 1] };
        if self.nodes.is_empty() {
            self.nodes.push(node);
            self.entry = pos as u32;
            self.max_level = level;
            return;
        }

        let query = &record.point;
        let mut entries = vec![self.key_to(records, query, self.entry)];
        // Greedy descent through the layers the new node will not join.
        for layer in (level + 1..=self.max_level).rev() {
            entries = self.search_layer(records, query, &entries, 1, layer);
        }
        // Insert-as-query: on each joined layer, what the search finds is
        // what the node links to (the m nearest of the ef_construction set).
        let top = level.min(self.max_level);
        let mut chosen: Vec<(usize, Vec<u32>)> = Vec::with_capacity(top + 1);
        for layer in (0..=top).rev() {
            let found =
                self.search_layer(records, query, &entries, self.params.ef_construction, layer);
            let neighbors = found.iter().take(self.params.m).map(|&(_, n)| n).collect();
            chosen.push((layer, neighbors));
            entries = found;
        }
        self.nodes.push(node);
        let new = pos as u32;
        for (layer, neighbors) in chosen {
            for neighbor in neighbors {
                self.nodes[new as usize].links[layer].push(neighbor);
                self.nodes[neighbor as usize].links[layer].push(new);
                let cap = self.max_links(layer);
                if self.nodes[neighbor as usize].links[layer].len() > cap {
                    self.prune(records, neighbor, layer, cap);
                }
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = new;
        }
    }

    /// Shrink an overfull adjacency list to the `cap` closest neighbors of
    /// the node's own point, by `(distance, id)` — deterministic eviction.
    fn prune<P: Point>(&mut self, records: &[Record<P>], node: u32, layer: usize, cap: usize) {
        let point = &records[node as usize].point;
        let mut keyed: Vec<(DistKey, u32)> = self.nodes[node as usize].links[layer]
            .iter()
            .map(|&n| self.key_to(records, point, n))
            .collect();
        keyed.sort_unstable();
        keyed.truncate(cap);
        self.nodes[node as usize].links[layer] = keyed.into_iter().map(|(_, n)| n).collect();
    }

    /// Approximate top-`ell` for `query`, ascending by `(distance, id)`,
    /// searched with frontier breadth `max(ef, ell)`.
    ///
    /// Every returned claim is *genuine* — a real `(distance, id)` of an
    /// indexed record under the build metric — the only approximation is
    /// which records make the cut. When the effective `ef` reaches the shard
    /// size the search degenerates to the exact brute-force scan, so
    /// `ef = n` guarantees parity with the oracle by construction.
    pub fn search<P: Point>(
        &self,
        records: &[Record<P>],
        query: &P,
        ell: usize,
        ef: usize,
    ) -> Vec<DistKey> {
        let n = self.nodes.len();
        if ell == 0 || n == 0 {
            return Vec::new();
        }
        let ef = ef.max(ell);
        if ef >= n {
            // The recall knob saturates at exact.
            return brute_top(&records[..n], query, ell, self.metric);
        }
        let mut entries = vec![self.key_to(records, query, self.entry)];
        for layer in (1..=self.max_level).rev() {
            entries = self.search_layer(records, query, &entries, 1, layer);
        }
        let found = self.search_layer(records, query, &entries, ef, 0);
        found.into_iter().take(ell).map(|(key, _)| key).collect()
    }
}

/// Fraction of `oracle` present in `got`, matched by exact `(distance, id)`
/// key (1.0 when the oracle is empty). Both inputs ascending; the usual
/// recall@ℓ when both hold ℓ entries.
pub fn recall(got: &[DistKey], oracle: &[DistKey]) -> f64 {
    if oracle.is_empty() {
        return 1.0;
    }
    let hits = oracle.iter().filter(|key| got.binary_search(key).is_ok()).count();
    hits as f64 / oracle.len() as f64
}

/// SplitMix64: the same seeded scrambler the fault/adversary plans use, kept
/// local so `local::nsw` stays self-contained.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_points::{IdAssigner, ScalarPoint, VecPoint};

    fn vec_records(n: usize, dims: usize, seed: u64) -> Vec<Record<VecPoint>> {
        let mut ids = IdAssigner::new(seed);
        (0..n)
            .map(|i| {
                let coords: Vec<f64> = (0..dims)
                    .map(|d| {
                        let h = splitmix64(seed ^ (i as u64) << 8 ^ d as u64);
                        (h % 10_000) as f64 / 100.0
                    })
                    .collect();
                Record { id: ids.next_id(), point: VecPoint::new(coords), label: None }
            })
            .collect()
    }

    fn oracle<P: Point>(records: &[Record<P>], q: &P, ell: usize, metric: Metric) -> Vec<DistKey> {
        brute_top(records, q, ell, metric)
    }

    #[test]
    fn empty_and_zero_ell_are_empty() {
        let records = vec_records(10, 3, 1);
        let index = NswIndex::new(NswParams::default(), Metric::Euclidean);
        assert!(index.search(&records[..0], &records[0].point, 5, 16).is_empty());
        let index = NswIndex::build(&records, NswParams::default(), Metric::Euclidean);
        assert!(index.search(&records, &records[0].point, 0, 16).is_empty());
    }

    #[test]
    fn single_point_graph_answers() {
        let records = vec_records(1, 4, 2);
        let index = NswIndex::build(&records, NswParams::default(), Metric::Euclidean);
        let got = index.search(&records, &records[0].point, 3, 8);
        assert_eq!(got, oracle(&records, &records[0].point, 3, Metric::Euclidean));
    }

    #[test]
    fn bulk_build_equals_incremental_insert() {
        let records = vec_records(180, 6, 3);
        let bulk = NswIndex::build(&records, NswParams::default(), Metric::Euclidean);
        let mut grown = NswIndex::new(NswParams::default(), Metric::Euclidean);
        for pos in 0..records.len() {
            grown.insert(&records, pos);
        }
        assert_eq!(bulk, grown, "insert-as-query: bulk and incremental graphs must be identical");
    }

    #[test]
    fn ef_covering_the_shard_is_exact() {
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            let records = vec_records(120, 5, 4);
            let index = NswIndex::build(&records, NswParams::default(), metric);
            let q = VecPoint::new(vec![50.0; 5]);
            for ell in [1usize, 7, 120, 300] {
                let got = index.search(&records, &q, ell, records.len());
                assert_eq!(got, oracle(&records, &q, ell, metric), "{metric:?} ell {ell}");
            }
        }
    }

    #[test]
    fn search_is_deterministic_and_sorted() {
        let records = vec_records(250, 8, 5);
        let index = NswIndex::build(&records, NswParams::default(), Metric::Euclidean);
        let q = VecPoint::new(vec![42.0; 8]);
        let a = index.search(&records, &q, 10, 64);
        let b = index.search(&records, &q, 10, 64);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly ascending (distance, id)");
    }

    #[test]
    fn default_ef_recall_is_high_on_clustered_vectors() {
        let records = vec_records(400, 6, 6);
        let params = NswParams::default();
        let index = NswIndex::build(&records, params, Metric::Euclidean);
        let mut total = 0.0;
        let queries = 20u64;
        for i in 0..queries {
            let q = VecPoint::new(
                (0..6u64)
                    .map(|d| (splitmix64(99 ^ (i << 4) ^ d) % 10_000) as f64 / 100.0)
                    .collect::<Vec<f64>>(),
            );
            let got = index.search(&records, &q, 10, params.ef_search);
            total += recall(&got, &oracle(&records, &q, 10, Metric::Euclidean));
        }
        let mean = total / queries as f64;
        assert!(mean >= 0.9, "mean recall {mean} below 0.9 at default ef");
    }

    #[test]
    fn works_on_scalar_points_too() {
        let mut ids = IdAssigner::new(7);
        let records: Vec<Record<ScalarPoint>> = (0..150u64)
            .map(|i| Record {
                id: ids.next_id(),
                point: ScalarPoint(splitmix64(i) % 5_000),
                label: None,
            })
            .collect();
        let index = NswIndex::build(&records, NswParams::default(), Metric::Euclidean);
        let got = index.search(&records, &ScalarPoint(2_500), 8, records.len());
        assert_eq!(got, oracle(&records, &ScalarPoint(2_500), 8, Metric::Euclidean));
    }

    #[test]
    fn recall_helper_counts_exact_key_matches() {
        let a = DistKey::new(knn_points::Dist::from_u64(1), PointId(1));
        let b = DistKey::new(knn_points::Dist::from_u64(2), PointId(2));
        let c = DistKey::new(knn_points::Dist::from_u64(3), PointId(3));
        assert_eq!(recall(&[a, b], &[a, c]), 0.5);
        assert_eq!(recall(&[], &[]), 1.0);
        assert_eq!(recall(&[a], &[]), 1.0);
        assert_eq!(recall(&[], &[a]), 0.0);
    }

    #[test]
    #[should_panic(expected = "append the next unindexed record")]
    fn insert_out_of_order_panics() {
        let records = vec_records(4, 2, 8);
        let mut index = NswIndex::new(NswParams::default(), Metric::Euclidean);
        index.insert(&records, 1);
    }
}
