//! ℓ-NN classification and regression — the applications that motivate the
//! paper (§1: "assign a label to q based on the labels of the K-nearest
//! points").

use knn_points::Label;

use crate::cluster::{KnnCluster, Neighbor};
use crate::error::CoreError;
use crate::local::IndexedPoint;

/// Majority vote over the neighbors' class labels; ties break toward the
/// smaller class id, unlabeled and regression-labeled neighbors are
/// ignored. `None` when no neighbor carries a class label.
pub fn majority_class(neighbors: &[Neighbor]) -> Option<u32> {
    let mut votes: Vec<(u32, usize)> = Vec::new();
    for n in neighbors {
        if let Some(Label::Class(c)) = n.label {
            match votes.iter_mut().find(|(cls, _)| *cls == c) {
                Some((_, count)) => *count += 1,
                None => votes.push((c, 1)),
            }
        }
    }
    votes.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))).map(|(c, _)| c)
}

/// Mean of the neighbors' value labels (the paper's regression rule);
/// `None` when no neighbor carries one.
pub fn mean_value(neighbors: &[Neighbor]) -> Option<f64> {
    let values: Vec<f64> = neighbors
        .iter()
        .filter_map(|n| match n.label {
            Some(Label::Value(v)) => Some(v),
            _ => None,
        })
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Rank-weighted mean: the `i`-th nearest labeled neighbor gets weight
/// `1/(i+1)`. A common refinement of the paper's plain-average rule;
/// rank-based (rather than raw-distance-based) weights keep the rule
/// well-defined for both integer and float distance families.
pub fn weighted_mean_value(neighbors: &[Neighbor]) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    let mut rank = 0usize;
    for n in neighbors {
        if let Some(Label::Value(v)) = n.label {
            let w = 1.0 / (rank + 1) as f64;
            num += w * v;
            den += w;
            rank += 1;
        }
    }
    (den > 0.0).then(|| num / den)
}

/// An ℓ-NN classifier over a distributed dataset.
#[derive(Debug)]
pub struct KnnClassifier<P: IndexedPoint> {
    cluster: KnnCluster<P>,
    ell: usize,
}

impl<P: IndexedPoint> KnnClassifier<P> {
    /// Classify by majority vote over the `ell` nearest neighbors.
    pub fn new(cluster: KnnCluster<P>, ell: usize) -> Self {
        KnnClassifier { cluster, ell }
    }

    /// Predicted class for `q` (`None` when the data is unlabeled/empty).
    pub fn predict(&self, q: &P) -> Result<Option<u32>, CoreError> {
        Ok(majority_class(&self.cluster.query(q, self.ell)?.neighbors))
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &KnnCluster<P> {
        &self.cluster
    }
}

/// An ℓ-NN regressor over a distributed dataset.
#[derive(Debug)]
pub struct KnnRegressor<P: IndexedPoint> {
    cluster: KnnCluster<P>,
    ell: usize,
    weighted: bool,
}

impl<P: IndexedPoint> KnnRegressor<P> {
    /// Predict by plain mean of the `ell` nearest targets.
    pub fn new(cluster: KnnCluster<P>, ell: usize) -> Self {
        KnnRegressor { cluster, ell, weighted: false }
    }

    /// Use inverse-distance weighting instead of the plain mean.
    pub fn weighted(mut self) -> Self {
        self.weighted = true;
        self
    }

    /// Predicted value for `q`.
    pub fn predict(&self, q: &P) -> Result<Option<f64>, CoreError> {
        let answer = self.cluster.query(q, self.ell)?;
        Ok(if self.weighted {
            weighted_mean_value(&answer.neighbors)
        } else {
            mean_value(&answer.neighbors)
        })
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &KnnCluster<P> {
        &self.cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_points::{Dist, PointId};

    fn nb(dist: u64, label: Option<Label>) -> Neighbor {
        Neighbor { id: PointId(dist), dist: Dist::from_u64(dist), machine: 0, label }
    }

    #[test]
    fn majority_vote_basic() {
        let ns = [
            nb(1, Some(Label::Class(2))),
            nb(2, Some(Label::Class(1))),
            nb(3, Some(Label::Class(2))),
        ];
        assert_eq!(majority_class(&ns), Some(2));
    }

    #[test]
    fn majority_vote_tie_breaks_low() {
        let ns = [nb(1, Some(Label::Class(5))), nb(2, Some(Label::Class(3)))];
        assert_eq!(majority_class(&ns), Some(3));
    }

    #[test]
    fn majority_ignores_value_labels_and_none() {
        let ns = [nb(1, Some(Label::Value(9.0))), nb(2, None)];
        assert_eq!(majority_class(&ns), None);
    }

    #[test]
    fn mean_value_basic() {
        let ns = [
            nb(1, Some(Label::Value(1.0))),
            nb(2, Some(Label::Value(3.0))),
            nb(3, Some(Label::Class(7))),
        ];
        assert_eq!(mean_value(&ns), Some(2.0));
        assert_eq!(mean_value(&[]), None);
    }

    #[test]
    fn weighted_mean_prefers_closer_points() {
        // Integer-family distances: 1 vs 9.
        let ns = [nb(1, Some(Label::Value(0.0))), nb(9, Some(Label::Value(10.0)))];
        let w = weighted_mean_value(&ns).unwrap();
        assert!(w < 5.0, "closer neighbor should dominate, got {w}");
    }
}
