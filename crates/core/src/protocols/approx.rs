//! **Approximate ℓ-NN** — an extension of the paper's machinery.
//!
//! Algorithm 2 spends its final `O(log ℓ)` rounds running Algorithm 1 to
//! cut the `≈ 1.75ℓ` pruning survivors down to exactly ℓ. For many of the
//! paper's motivating applications (classification by majority vote,
//! regression by averaging) a slightly larger neighbor set is just as
//! good — so this protocol stops after the pruning broadcast and returns
//! *all* survivors:
//!
//! * the result is a **superset of the true ℓ-NN** whenever at least ℓ
//!   candidates survive (which Lemma 2.3 gives whp, and which the leader
//!   verifies exactly with one extra count round — reported, not assumed);
//! * expected size is `(rank_factor / sample_factor) · ℓ ≈ 1.75ℓ` with the
//!   paper's constants, and at most `11ℓ` whp;
//! * total cost is the sampling transfer plus two broadcasts — the
//!   `O(log ℓ)` *iterated* search of Algorithm 1 disappears entirely.
//!
//! This is the "subroutine" style of use the paper's conclusion gestures
//! at: a cheap superset pass that downstream logic can consume directly.

use kmachine::{Ctx, MachineId, Payload, Protocol, Step};
use knn_points::Key;
use rand::RngExt;

use super::knn::{KeySource, KnnParams};

/// Messages of the approximate protocol.
#[derive(Debug, Clone)]
pub enum ApproxMsg<K: Key> {
    /// Machine → leader: sampled candidate keys plus the candidate count
    /// (the count lets the leader skip pruning when ℓ already covers the
    /// whole population).
    Samples {
        /// The sampled keys.
        keys: Vec<K>,
        /// Candidates held by the sender.
        count: u64,
    },
    /// Leader → all: keep keys `≤ r`; `None` means keep everything
    /// (ℓ covers the entire candidate population, so pruning would only
    /// lose answers).
    Threshold {
        /// The pruning threshold.
        r: Option<K>,
    },
    /// Machine → leader: how many keys survived.
    Count(u64),
    /// Leader → all: global survivor total and whether the survivor set
    /// provably contains the exact ℓ-NN.
    Done {
        /// Global number of survivors.
        total: u64,
        /// Leader-verified containment guarantee.
        contains: bool,
    },
}

impl<K: Key> Payload for ApproxMsg<K> {
    fn size_bits(&self) -> u64 {
        match self {
            ApproxMsg::Samples { keys, .. } => 32 + 64 + K::BITS * keys.len() as u64,
            ApproxMsg::Threshold { .. } => 3 + K::BITS + 1,
            ApproxMsg::Count(_) => 3 + 64,
            ApproxMsg::Done { .. } => 3 + 64 + 1,
        }
    }
}

/// Per-machine output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproxOutput<K: Key> {
    /// This machine's surviving keys — globally, all keys `≤ r`.
    pub keys: Vec<K>,
    /// Global survivor count (equal on every machine).
    pub total: u64,
    /// Whether the guarantee `total ≥ min(ℓ, candidates)` held, i.e. the
    /// returned set provably contains the exact ℓ-NN.
    pub contains_exact: bool,
}

enum APhase {
    Init,
    CollectSamples,
    AwaitThreshold,
    CollectCounts,
    AwaitDone,
}

/// Approximate ℓ-NN: pruning-only superset search.
pub struct ApproxKnnProtocol<'a, K: Key> {
    id: MachineId,
    k: usize,
    leader: MachineId,
    ell: u64,
    params: KnnParams,
    input: Option<KeySource<'a, K>>,
    candidates: Vec<K>,
    kept: usize,
    phase: APhase,
    // Leader scratch.
    samples: Vec<K>,
    pending: usize,
    count_sum: u64,
    total_candidates: u64,
}

impl<'a, K: Key> ApproxKnnProtocol<'a, K> {
    /// Machine `id` of `k`, returning a cheap superset of the `ell`
    /// nearest keys.
    pub fn new(
        id: MachineId,
        k: usize,
        leader: MachineId,
        ell: u64,
        params: KnnParams,
        input: KeySource<'a, K>,
    ) -> Self {
        ApproxKnnProtocol {
            id,
            k,
            leader,
            ell,
            params,
            input: Some(input),
            candidates: Vec::new(),
            kept: 0,
            phase: APhase::Init,
            samples: Vec::new(),
            pending: 0,
            count_sum: 0,
            total_candidates: 0,
        }
    }

    /// Materialized-keys constructor for tests.
    pub fn from_keys(
        id: MachineId,
        k: usize,
        leader: MachineId,
        ell: u64,
        params: KnnParams,
        keys: Vec<K>,
    ) -> Self {
        Self::new(id, k, leader, ell, params, Box::new(move || keys))
    }

    fn output(&self, total: u64, contains: bool) -> ApproxOutput<K> {
        ApproxOutput {
            keys: self.candidates[..self.kept].to_vec(),
            total,
            contains_exact: contains,
        }
    }
}

impl<'a, K: Key> Protocol for ApproxKnnProtocol<'a, K> {
    type Msg = ApproxMsg<K>;
    type Output = ApproxOutput<K>;

    fn on_round(&mut self, ctx: &mut Ctx<'_, ApproxMsg<K>>) -> Step<ApproxOutput<K>> {
        if matches!(self.phase, APhase::Init) {
            let keys = (self.input.take().expect("init once"))();
            self.candidates = knn_selection::smallest_k_sorted(&keys, self.ell as usize, ctx.rng());
            if ctx.k() == 1 {
                self.kept = self.candidates.len();
                let total = self.kept as u64;
                return Step::Done(self.output(total, true));
            }
            let m = self.params.sample_size(self.ell);
            let sample = if self.candidates.len() <= m {
                self.candidates.clone()
            } else {
                (0..m)
                    .map(|_| self.candidates[ctx.rng().random_range(0..self.candidates.len())])
                    .collect()
            };
            if self.id == self.leader {
                self.samples = sample;
                self.total_candidates = self.candidates.len() as u64;
                self.pending = self.k - 1;
                self.phase = APhase::CollectSamples;
            } else {
                ctx.send(
                    self.leader,
                    ApproxMsg::Samples { keys: sample, count: self.candidates.len() as u64 },
                );
                self.phase = APhase::AwaitThreshold;
            }
            return Step::Continue;
        }

        for i in 0..ctx.inbox().len() {
            let msg = ctx.inbox()[i].msg.clone();
            match msg {
                ApproxMsg::Samples { keys, count } => {
                    self.samples.extend_from_slice(&keys);
                    self.total_candidates += count;
                    self.pending -= 1;
                    if self.pending == 0 {
                        // Skip pruning entirely when ℓ covers the whole
                        // candidate population (or nobody has candidates).
                        let r = if self.total_candidates <= self.ell || self.samples.is_empty() {
                            None
                        } else {
                            self.samples.sort_unstable();
                            let rank = self.params.prune_rank(self.ell);
                            Some(self.samples[(rank - 1).min(self.samples.len() - 1)])
                        };
                        ctx.broadcast(ApproxMsg::Threshold { r });
                        self.kept = match r {
                            None => self.candidates.len(),
                            Some(r) => self.candidates.partition_point(|x| *x <= r),
                        };
                        self.count_sum = self.kept as u64;
                        self.pending = self.k - 1;
                        self.phase = APhase::CollectCounts;
                    }
                }
                ApproxMsg::Threshold { r } => {
                    self.kept = match r {
                        None => self.candidates.len(),
                        Some(r) => self.candidates.partition_point(|x| *x <= r),
                    };
                    ctx.send(self.leader, ApproxMsg::Count(self.kept as u64));
                    self.phase = APhase::AwaitDone;
                }
                ApproxMsg::Count(c) => {
                    self.count_sum += c;
                    self.pending -= 1;
                    if self.pending == 0 {
                        let total = self.count_sum;
                        let contains = total >= self.ell.min(self.total_candidates);
                        ctx.broadcast(ApproxMsg::Done { total, contains });
                        return Step::Done(self.output(total, contains));
                    }
                }
                ApproxMsg::Done { total, contains } => {
                    return Step::Done(self.output(total, contains));
                }
            }
        }
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmachine::engine::{run_sync, run_threaded};
    use kmachine::NetConfig;
    use knn_workloads::partition::PartitionStrategy;
    use proptest::prelude::*;

    fn run_approx(
        shards: Vec<Vec<u64>>,
        ell: u64,
        seed: u64,
    ) -> (Vec<ApproxOutput<u64>>, kmachine::RunMetrics) {
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(seed);
        let protos: Vec<ApproxKnnProtocol<'_, u64>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                ApproxKnnProtocol::from_keys(i, k, 0, ell, KnnParams::default(), local)
            })
            .collect();
        let out = run_sync(&cfg, protos).expect("approx run");
        (out.outputs, out.metrics)
    }

    fn merged(outputs: &[ApproxOutput<u64>]) -> Vec<u64> {
        let mut all: Vec<u64> = outputs.iter().flat_map(|o| o.keys.clone()).collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn returns_superset_of_exact_answer() {
        let all: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        let ell = 128usize;
        let exact = &sorted[..ell];

        let shards = PartitionStrategy::Shuffled.split(all, 16, 3);
        let (outputs, _) = run_approx(shards, ell as u64, 5);
        let got = merged(&outputs);
        assert!(outputs[0].contains_exact);
        assert_eq!(got.len() as u64, outputs[0].total);
        // Superset: the exact answer is a prefix of the merged survivors.
        assert!(got.len() >= ell);
        assert_eq!(&got[..ell], exact, "survivors must contain the true top-ell as a prefix");
    }

    #[test]
    fn size_overhead_is_modest() {
        // Expected survivors ≈ (21/12)·ℓ; far below the 11ℓ bound.
        let all: Vec<u64> = (0..1 << 15).map(|i: u64| i.wrapping_mul(0xD1B54A32D192ED03)).collect();
        let ell = 512u64;
        let mut worst = 0.0f64;
        for seed in 0..5 {
            let shards = PartitionStrategy::Shuffled.split(all.clone(), 32, seed);
            let (outputs, _) = run_approx(shards, ell, seed);
            worst = worst.max(outputs[0].total as f64 / ell as f64);
        }
        assert!(worst <= 4.0, "survivor overhead {worst} too large");
    }

    #[test]
    fn cheaper_than_exact_knn() {
        use crate::protocols::knn::KnnProtocol;
        let all: Vec<u64> = (0..1 << 14).map(|i: u64| i.wrapping_mul(0x2545F4914F6CDD1D)).collect();
        let ell = 1024u64;
        let k = 16;
        let shards = PartitionStrategy::Shuffled.split(all, k, 1);
        let (_, approx_metrics) = run_approx(shards.clone(), ell, 2);

        let cfg = NetConfig::new(k).with_seed(2);
        let protos: Vec<KnnProtocol<'_, u64>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| KnnProtocol::from_keys(i, k, 0, ell, KnnParams::default(), local))
            .collect();
        let exact_metrics = run_sync(&cfg, protos).unwrap().metrics;
        assert!(
            approx_metrics.rounds < exact_metrics.rounds,
            "approx ({}) should cost fewer rounds than exact ({})",
            approx_metrics.rounds,
            exact_metrics.rounds
        );
        assert!(approx_metrics.messages < exact_metrics.messages);
    }

    #[test]
    fn edge_cases() {
        // Empty cluster.
        let (outputs, _) = run_approx(vec![vec![], vec![]], 5, 1);
        assert_eq!(outputs[0].total, 0);
        assert!(merged(&outputs).is_empty());
        // Single machine.
        let (outputs, m) = run_approx(vec![vec![5, 1, 9]], 2, 1);
        assert_eq!(merged(&outputs), vec![1, 5]);
        assert_eq!(m.messages, 0);
        // ℓ = 0: candidates are empty everywhere, so nothing survives.
        let (outputs, _) = run_approx(vec![vec![1, 2], vec![3]], 0, 1);
        assert_eq!(outputs[0].total, 0);
        // ℓ ≥ population: pruning is skipped, everything survives, and the
        // containment guarantee is reported on every machine.
        let (outputs, _) = run_approx(vec![vec![9, 1], vec![4, 7, 2]], 100, 1);
        assert_eq!(outputs[0].total, 5);
        assert!(outputs.iter().all(|o| o.contains_exact));
        assert_eq!(merged(&outputs), vec![1, 2, 4, 7, 9]);
    }

    #[test]
    fn engines_agree() {
        let shards = vec![vec![5u64, 9, 1], vec![2, 8], vec![7, 3, 4, 6]];
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(9);
        let mk = |shards: &[Vec<u64>]| {
            shards
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    ApproxKnnProtocol::from_keys(i, k, 0, 3, KnnParams::default(), l.clone())
                })
                .collect::<Vec<_>>()
        };
        let a = run_sync(&cfg, mk(&shards)).unwrap();
        let b = run_threaded(&cfg, mk(&shards)).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_superset_whenever_flag_says_so(
            values in proptest::collection::hash_set(any::<u64>(), 1..150),
            k in 1usize..7,
            ell in 1u64..30,
            seed in 0u64..200,
        ) {
            let values: Vec<u64> = values.into_iter().collect();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let avail = (ell as usize).min(sorted.len());
            let shards = PartitionStrategy::RoundRobin.split(values, k, seed);
            let (outputs, _) = run_approx(shards, ell, seed);
            let got = merged(&outputs);
            prop_assert_eq!(got.len() as u64, outputs[0].total);
            if outputs[0].contains_exact {
                prop_assert!(got.len() >= avail);
                prop_assert_eq!(&got[..avail], &sorted[..avail]);
            }
        }
    }
}
