//! Binary search over the **value domain** — the style of distributed ℓ-NN
//! the paper cites as prior work (\[3\] Cahsai et al., \[18\] Yang et al.).
//!
//! Instead of comparing keys, the leader bisects the numeric interval
//! `[min, max]` and asks every machine how many keys fall at or below the
//! midpoint. Round complexity is `O(log V)` where `V` is the spread of the
//! *values* — independent of n and ℓ, but dependent on the value domain,
//! which is exactly why it sits outside the comparison-based lower bound
//! the paper's `O(log ℓ)` result is measured against (§1.3, footnote 2:
//! algorithms using only comparisons cannot beat `Ω(log n)` for median
//! finding; bisection sidesteps the bound by exploiting value structure).

use kmachine::{Ctx, MachineId, Payload, Protocol, SnapshotReader, SnapshotWriter, Step};
use knn_points::NumericKey;

use super::knn::KeySource;

/// Messages of the value-domain bisection protocol. Key values travel as
/// order-preserving `u128` ordinals.
#[derive(Debug, Clone)]
pub enum BsMsg {
    /// Leader → all: report `(count, min, max)` ordinals of your keys.
    Query,
    /// Reply to [`BsMsg::Query`] (`None`s when the machine has no keys).
    Report {
        /// Number of local keys.
        count: u64,
        /// Smallest local ordinal.
        min: Option<u128>,
        /// Largest local ordinal.
        max: Option<u128>,
    },
    /// Leader → all: how many of your keys have ordinal `≤ threshold`?
    Count {
        /// Bisection midpoint.
        threshold: u128,
    },
    /// Reply to [`BsMsg::Count`].
    Size(u64),
    /// Leader → all: output keys with ordinal `≤ threshold` (`None` =
    /// empty answer).
    Finished {
        /// Final boundary ordinal.
        threshold: Option<u128>,
    },
}

impl Payload for BsMsg {
    fn size_bits(&self) -> u64 {
        match self {
            BsMsg::Query => 3,
            BsMsg::Report { .. } => 3 + 64 + 2 * 129,
            BsMsg::Count { .. } => 3 + 128,
            BsMsg::Size(_) => 3 + 64,
            BsMsg::Finished { .. } => 3 + 129,
        }
    }
}

#[derive(Clone, Copy)]
enum BsPhase {
    Init,
    AwaitReports,
    AwaitSizes { mid: u128 },
    Worker,
}

/// Per-machine instance of value-domain bisection selection.
pub struct BinSearchProtocol<'a, K: NumericKey> {
    id: MachineId,
    k: usize,
    leader: MachineId,
    ell: u64,
    input: Option<KeySource<'a, K>>,
    /// Local keys sorted by ordinal (== key order).
    local: Vec<K>,
    ordinals: Vec<u128>,
    phase: BsPhase,
    // Leader bisection state: the boundary lies in [lo, hi].
    lo: u128,
    hi: u128,
    ell_cap: u64,
    total: u64,
    acc: u64,
    min_seen: Option<u128>,
    max_seen: Option<u128>,
    pending: usize,
    /// Leader: workers that reported a nonzero key count — the only ones
    /// probed during bisection (empty workers go silent after the census).
    active: usize,
    /// Worker: the census report went out (after which an empty worker is
    /// provably silent forever).
    reported: bool,
    /// Completed bisection iterations (leader; for the baselines table).
    pub iterations: u64,
}

impl<'a, K: NumericKey> BinSearchProtocol<'a, K> {
    /// Machine `id` of `k`, selecting the `ell` smallest keys.
    pub fn new(
        id: MachineId,
        k: usize,
        leader: MachineId,
        ell: u64,
        input: KeySource<'a, K>,
    ) -> Self {
        BinSearchProtocol {
            id,
            k,
            leader,
            ell,
            input: Some(input),
            local: Vec::new(),
            ordinals: Vec::new(),
            phase: BsPhase::Init,
            lo: 0,
            hi: 0,
            ell_cap: ell,
            total: 0,
            acc: 0,
            min_seen: None,
            max_seen: None,
            pending: 0,
            active: 0,
            reported: false,
            iterations: 0,
        }
    }

    /// Materialized-keys constructor for tests.
    pub fn from_keys(id: MachineId, k: usize, leader: MachineId, ell: u64, keys: Vec<K>) -> Self {
        Self::new(id, k, leader, ell, Box::new(move || keys))
    }

    fn count_leq(&self, threshold: u128) -> u64 {
        self.ordinals.partition_point(|&o| o <= threshold) as u64
    }

    fn output_for(&self, threshold: Option<u128>) -> Vec<K> {
        match threshold {
            None => Vec::new(),
            Some(t) => {
                let end = self.ordinals.partition_point(|&o| o <= t);
                self.local[..end].to_vec()
            }
        }
    }

    /// Leader: bisection steps — either finish or probe the midpoint. When
    /// no worker holds keys (`active == 0`) the probes would go unanswered
    /// (empty workers are silent), so the leader bisects locally to
    /// completion instead — every key it is counting is its own.
    fn step(&mut self, ctx: &mut Ctx<'_, BsMsg>) -> Option<Option<u128>> {
        loop {
            if self.ell_cap == 0 {
                return Some(None);
            }
            if self.lo >= self.hi {
                return Some(Some(self.lo));
            }
            self.iterations += 1;
            let mid = self.lo + (self.hi - self.lo) / 2;
            self.acc = self.count_leq(mid);
            if self.active > 0 {
                ctx.broadcast(BsMsg::Count { threshold: mid });
                // Only workers with keys answer probes.
                self.pending = self.active;
                self.phase = BsPhase::AwaitSizes { mid };
                return None;
            }
            if self.acc == self.ell_cap {
                return Some(Some(mid));
            }
            if self.acc > self.ell_cap {
                self.hi = mid;
            } else {
                self.lo = mid + 1;
            }
        }
    }

    fn finish(&mut self, threshold: Option<u128>, ctx: &mut Ctx<'_, BsMsg>) -> Step<Vec<K>> {
        ctx.broadcast(BsMsg::Finished { threshold });
        Step::Done(self.output_for(threshold))
    }
}

impl<'a, K: NumericKey> Protocol for BinSearchProtocol<'a, K> {
    type Msg = BsMsg;
    type Output = Vec<K>;

    /// Empty workers have a provable silent phase (below), so relaxed
    /// delivery has real pipelining to buy under [`kmachine::Engine::Auto`].
    const QUIET_AWARE: bool = true;

    /// A worker with no local keys answers the census once and then never
    /// speaks again: it skips every [`BsMsg::Count`] probe (its count is
    /// always 0, and the leader only waits for nonzero workers) and the
    /// final [`BsMsg::Finished`] terminates it without a reply. Nonzero
    /// workers and the leader stay unpromised — their sends depend on
    /// what arrives.
    fn quiet_until(&self) -> Option<u64> {
        (self.id != self.leader && self.reported && self.ordinals.is_empty()).then_some(u64::MAX)
    }

    /// A machine that ran its census and holds no keys provably
    /// contributes nothing, so a crash there salvages an (exact!) empty
    /// output. Any other crash — keys on board, or dead before round 0
    /// materialized the input — may lose answer members: unsalvageable,
    /// and the runner retries over the survivors.
    fn on_crash(&mut self) -> Option<Vec<K>> {
        (self.input.is_none() && self.ordinals.is_empty()).then(Vec::new)
    }

    /// Full bisection state — keys as ordinals, the phase discriminant, and
    /// every leader counter — so a rejoining machine resumes mid-bisection.
    /// Not checkpointable before round 0 (the input closure cannot be
    /// serialized); a pre-round-0 crash replays from the pristine protocol.
    fn checkpoint(&self) -> Option<Vec<u8>> {
        if self.input.is_some() {
            return None;
        }
        let mut w = SnapshotWriter::new();
        match self.phase {
            BsPhase::Init => return None,
            BsPhase::AwaitReports => w.u32(1),
            BsPhase::AwaitSizes { mid } => {
                w.u32(2);
                w.u128(mid);
            }
            BsPhase::Worker => w.u32(3),
        }
        w.u64(self.ordinals.len() as u64);
        for &o in &self.ordinals {
            w.u128(o);
        }
        w.u128(self.lo);
        w.u128(self.hi);
        w.u64(self.ell_cap);
        w.u64(self.total);
        w.u64(self.acc);
        for bound in [self.min_seen, self.max_seen] {
            w.flag(bound.is_some());
            w.u128(bound.unwrap_or(0));
        }
        w.u64(self.pending as u64);
        w.u64(self.active as u64);
        w.flag(self.reported);
        w.u64(self.iterations);
        Some(w.finish())
    }

    fn restore(&mut self, blob: &[u8]) -> bool {
        let mut r = SnapshotReader::new(blob);
        let phase = match r.u32() {
            Some(1) => BsPhase::AwaitReports,
            Some(2) => match r.u128() {
                Some(mid) => BsPhase::AwaitSizes { mid },
                None => return false,
            },
            Some(3) => BsPhase::Worker,
            _ => return false,
        };
        let Some(n) = r.u64() else { return false };
        let Some(ordinals) = (0..n).map(|_| r.u128()).collect::<Option<Vec<u128>>>() else {
            return false;
        };
        let (Some(lo), Some(hi)) = (r.u128(), r.u128()) else { return false };
        let (Some(ell_cap), Some(total), Some(acc)) = (r.u64(), r.u64(), r.u64()) else {
            return false;
        };
        let mut bounds = [None, None];
        for b in &mut bounds {
            let (Some(present), Some(v)) = (r.flag(), r.u128()) else { return false };
            *b = present.then_some(v);
        }
        let (Some(pending), Some(active)) = (r.u64(), r.u64()) else { return false };
        let (Some(reported), Some(iterations)) = (r.flag(), r.u64()) else { return false };
        if !r.done() {
            return false;
        }
        self.input = None;
        self.local = ordinals.iter().map(|&o| K::from_ordinal(o)).collect();
        self.ordinals = ordinals;
        self.phase = phase;
        self.lo = lo;
        self.hi = hi;
        self.ell_cap = ell_cap;
        self.total = total;
        self.acc = acc;
        self.min_seen = bounds[0];
        self.max_seen = bounds[1];
        self.pending = pending as usize;
        self.active = active as usize;
        self.reported = reported;
        self.iterations = iterations;
        true
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, BsMsg>) -> Step<Vec<K>> {
        debug_assert_eq!(ctx.id(), self.id, "protocol wired to the wrong machine");
        if matches!(self.phase, BsPhase::Init) {
            let mut keys = (self.input.take().expect("init once"))();
            keys.sort_unstable();
            self.ordinals = keys.iter().map(|k| k.to_ordinal()).collect();
            self.local = keys;
            if ctx.id() == self.leader {
                if ctx.k() == 1 {
                    let end = (self.ell as usize).min(self.local.len());
                    return Step::Done(self.local[..end].to_vec());
                }
                ctx.broadcast(BsMsg::Query);
                self.total = self.ordinals.len() as u64;
                self.min_seen = self.ordinals.first().copied();
                self.max_seen = self.ordinals.last().copied();
                self.pending = self.k - 1;
                self.phase = BsPhase::AwaitReports;
            } else {
                self.phase = BsPhase::Worker;
            }
            return Step::Continue;
        }

        if ctx.id() != self.leader {
            for i in 0..ctx.inbox().len() {
                let msg = ctx.inbox()[i].msg.clone();
                match msg {
                    BsMsg::Query => {
                        ctx.send(
                            self.leader,
                            BsMsg::Report {
                                count: self.ordinals.len() as u64,
                                min: self.ordinals.first().copied(),
                                max: self.ordinals.last().copied(),
                            },
                        );
                        self.reported = true;
                    }
                    BsMsg::Count { threshold } => {
                        // Empty workers stay silent: their count is always
                        // 0 and the leader does not wait for them.
                        if !self.ordinals.is_empty() {
                            ctx.send(self.leader, BsMsg::Size(self.count_leq(threshold)));
                        }
                    }
                    BsMsg::Finished { threshold } => return Step::Done(self.output_for(threshold)),
                    other => panic!("worker received a leader-only message {other:?}"),
                }
            }
            return Step::Continue;
        }

        for i in 0..ctx.inbox().len() {
            let msg = ctx.inbox()[i].msg.clone();
            match msg {
                BsMsg::Report { count, min, max } => {
                    self.total += count;
                    if count > 0 {
                        self.active += 1;
                    }
                    if let Some(m) = min {
                        if self.min_seen.is_none_or(|g| m < g) {
                            self.min_seen = Some(m);
                        }
                    }
                    if let Some(m) = max {
                        if self.max_seen.is_none_or(|g| m > g) {
                            self.max_seen = Some(m);
                        }
                    }
                    self.pending -= 1;
                    if self.pending == 0 {
                        self.ell_cap = self.ell.min(self.total);
                        if self.ell_cap == 0 {
                            return self.finish(None, ctx);
                        }
                        if self.ell_cap == self.total {
                            return self.finish(self.max_seen, ctx);
                        }
                        self.lo = self.min_seen.expect("total > 0");
                        self.hi = self.max_seen.expect("total > 0");
                        if let Some(t) = self.step(ctx) {
                            return self.finish(t, ctx);
                        }
                    }
                }
                BsMsg::Size(c) => {
                    self.acc += c;
                    self.pending -= 1;
                    if self.pending == 0 {
                        let BsPhase::AwaitSizes { mid } = self.phase else {
                            panic!("Size outside bisection")
                        };
                        if self.acc == self.ell_cap {
                            // {x ≤ mid} is exactly the answer set.
                            return self.finish(Some(mid), ctx);
                        }
                        if self.acc > self.ell_cap {
                            self.hi = mid;
                        } else {
                            self.lo = mid + 1;
                        }
                        if let Some(t) = self.step(ctx) {
                            return self.finish(t, ctx);
                        }
                    }
                }
                other => panic!("leader received an unexpected message {other:?}"),
            }
        }
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmachine::engine::run_sync;
    use kmachine::NetConfig;
    use knn_workloads::partition::{PartitionStrategy, ALL_STRATEGIES};
    use proptest::prelude::*;

    fn run_bs(shards: Vec<Vec<u64>>, ell: u64, seed: u64) -> (Vec<u64>, kmachine::RunMetrics) {
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(seed);
        let protos: Vec<BinSearchProtocol<'_, u64>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| BinSearchProtocol::from_keys(i, k, 0, ell, local))
            .collect();
        let out = run_sync(&cfg, protos).expect("binsearch run");
        let mut merged: Vec<u64> = out.outputs.into_iter().flatten().collect();
        merged.sort_unstable();
        (merged, out.metrics)
    }

    fn expected(shards: &[Vec<u64>], ell: usize) -> Vec<u64> {
        let mut all: Vec<u64> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        all.truncate(ell);
        all
    }

    #[test]
    fn selects_correctly() {
        let shards = vec![vec![10, 40, 70], vec![20, 50, 80], vec![30, 60, 90]];
        let (got, _) = run_bs(shards.clone(), 4, 1);
        assert_eq!(got, expected(&shards, 4));
    }

    #[test]
    fn edge_cases() {
        assert_eq!(run_bs(vec![vec![3, 1], vec![2]], 0, 1).0, Vec::<u64>::new());
        assert_eq!(run_bs(vec![vec![3, 1], vec![2]], 3, 2).0, vec![1, 2, 3]);
        assert_eq!(run_bs(vec![vec![3, 1], vec![2]], 99, 3).0, vec![1, 2, 3]);
        assert_eq!(run_bs(vec![vec![], vec![]], 5, 4).0, Vec::<u64>::new());
        assert_eq!(run_bs(vec![vec![5]], 1, 5).0, vec![5]);
        assert_eq!(run_bs(vec![vec![], vec![5], vec![]], 1, 6).0, vec![5]);
    }

    #[test]
    fn bisection_with_empty_shards_stays_correct() {
        // Empty workers answer the census once and then never speak; the
        // leader probes only the nonzero ones. ell < total forces real
        // bisection iterations through the silent-worker path.
        let shards = vec![vec![100u64, 5, 61, 999, 77], vec![], vec![42, 7, 500, 8]];
        let (got, _) = run_bs(shards.clone(), 4, 9);
        assert_eq!(got, expected(&shards, 4));
        // All keys on the leader: probes would go unanswered, so the
        // leader bisects locally.
        let shards = vec![vec![13u64, 2, 88, 41, 900, 7], vec![], vec![]];
        let (got, m) = run_bs(shards.clone(), 3, 10);
        assert_eq!(got, expected(&shards, 3));
        // Census + final broadcast only — no probe traffic at all.
        assert_eq!(m.messages, 2 + 2 + 2);
    }

    #[test]
    fn adjacent_values_still_separable() {
        // The bisection must cope with keys that differ by 1.
        let shards = vec![vec![100, 101], vec![102, 103], vec![104]];
        let (got, _) = run_bs(shards, 3, 7);
        assert_eq!(got, vec![100, 101, 102]);
    }

    #[test]
    fn rounds_scale_with_value_spread_not_n() {
        // Same n, tiny value domain vs huge value domain.
        let narrow: Vec<u64> = (0..4096u64).map(|i| 1000 + i % 64).collect();
        let wide: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let shards_n = PartitionStrategy::RoundRobin.split(narrow, 8, 0);
        let shards_w = PartitionStrategy::RoundRobin.split(wide, 8, 0);
        let (_, mn) = run_bs(shards_n, 100, 1);
        let (_, mw) = run_bs(shards_w, 100, 1);
        assert!(
            mn.rounds < mw.rounds,
            "narrow domain should need fewer rounds: {} vs {}",
            mn.rounds,
            mw.rounds
        );
        // Spread ≤ 64 values ⇒ ≤ ~6 bisections ⇒ ≤ ~12+4 rounds.
        assert!(mn.rounds <= 20, "narrow rounds = {}", mn.rounds);
    }

    #[test]
    fn checkpoint_round_trips_mid_bisection() {
        let mut p = BinSearchProtocol::<u64>::from_keys(0, 3, 0, 4, vec![9, 3, 7]);
        assert!(p.checkpoint().is_none(), "round-0 closures cannot be serialized");
        p.input = None;
        p.local = vec![3, 7, 9];
        p.ordinals = vec![3, 7, 9];
        p.phase = BsPhase::AwaitSizes { mid: 6 };
        p.lo = 3;
        p.hi = 9;
        p.ell_cap = 4;
        p.total = 8;
        p.acc = 1;
        p.min_seen = Some(1);
        p.max_seen = Some(42);
        p.pending = 2;
        p.active = 2;
        p.iterations = 3;
        let blob = p.checkpoint().expect("materialized state is serializable");
        let mut q = BinSearchProtocol::<u64>::from_keys(0, 3, 0, 4, vec![1]);
        assert!(q.restore(&blob));
        assert_eq!(q.local, vec![3, 7, 9]);
        assert_eq!(q.ordinals, vec![3, 7, 9]);
        assert!(matches!(q.phase, BsPhase::AwaitSizes { mid: 6 }));
        assert_eq!((q.lo, q.hi, q.ell_cap, q.total, q.acc), (3, 9, 4, 8, 1));
        assert_eq!((q.min_seen, q.max_seen), (Some(1), Some(42)));
        assert_eq!((q.pending, q.active, q.iterations), (2, 2, 3));
        assert!(q.input.is_none());
        assert!(!q.restore(&blob[..blob.len() - 2]), "truncated blobs are rejected");
    }

    #[test]
    fn rejoin_mid_bisection_is_byte_identical() {
        // A wide value domain forces dozens of bisection rounds, so the
        // outage lands mid-search for both the leader and a worker.
        let wide: Vec<u64> = (0..256u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let shards = PartitionStrategy::RoundRobin.split(wide, 4, 0);
        let mk = |shards: &[Vec<u64>]| {
            shards
                .iter()
                .enumerate()
                .map(|(i, l)| BinSearchProtocol::from_keys(i, 4, 0, 9, l.clone()))
                .collect::<Vec<_>>()
        };
        let cfg = NetConfig::new(4).with_seed(3);
        let clean = run_sync(&cfg, mk(&shards)).unwrap();
        for machine in [0usize, 1] {
            let out = run_sync(&cfg.clone().with_rejoin(machine, 5, 9), mk(&shards)).unwrap();
            assert_eq!(out.outputs, clean.outputs, "machine {machine}");
            assert_eq!(out.metrics.messages, clean.metrics.messages, "machine {machine}");
            assert_eq!(out.metrics.bits, clean.metrics.bits, "machine {machine}");
            assert_eq!(out.recovery.rejoined, vec![machine]);
            assert!(out.recovery.replayed_rounds >= 1, "machine {machine}");
            assert!(out.faults.crashed.is_empty(), "machine {machine}");
        }
    }

    #[test]
    fn deterministic_like_saukas_song() {
        let all: Vec<u64> = (0..512u64).map(|i| i.wrapping_mul(2654435761)).collect();
        let shards = PartitionStrategy::RoundRobin.split(all, 4, 0);
        let (a, ma) = run_bs(shards.clone(), 17, 1);
        let (b, mb) = run_bs(shards, 17, 2222);
        assert_eq!(a, b);
        assert_eq!(ma.rounds, mb.rounds);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_matches_sequential(
            values in proptest::collection::hash_set(any::<u64>(), 0..150),
            k in 1usize..8,
            ell in 0u64..40,
            strat_idx in 0usize..5,
            seed in 0u64..200,
        ) {
            let values: Vec<u64> = values.into_iter().collect();
            let want = expected(std::slice::from_ref(&values), ell as usize);
            let shards = ALL_STRATEGIES[strat_idx].split(values, k, seed);
            let (got, _) = run_bs(shards, ell, seed);
            prop_assert_eq!(got, want);
        }
    }
}
