//! A PANDA-like **distributed k-d tree** baseline (Patwary et al., IPDPS
//! 2016 — the paper's reference \[14\]).
//!
//! The paper's related-work section observes that k-d-tree-based
//! distributed ℓ-NN pays for a *construction phase* that globally
//! redistributes the input ("necessarily involves global redistribution of
//! points … their message complexity would be costly"). This module
//! reproduces that trade-off honestly, simplified to one splitting level:
//!
//! * **Build** ([`KdBuildProtocol`]): machines sample axis-0 coordinates;
//!   the leader computes k quantile bins; every point is then *shipped* to
//!   its bin's owner (the expensive all-to-all), which builds a local
//!   k-d tree over what it receives.
//! * **Query** ([`DistributedKdForest::query`]): the bin owner answers an
//!   ℓ-NN probe locally; if the candidate ball crosses bin boundaries, the
//!   overlapping owners are probed too and the answers merged. Queries are
//!   cheap — the point of the design — but the build cost dominates unless
//!   many queries amortize it, which is exactly the comparison the
//!   baselines experiment tabulates.
//!
//! The build is implemented as a protocol over the k-machine model so its
//! rounds/messages/bits are measured by the same engines as everything
//! else; points travel as `64·d`-bit payloads, unlike the id+distance keys
//! of the paper's algorithms — that asymmetry *is* the finding.

use kmachine::{Ctx, MachineId, Payload, Protocol, Step};
use knn_kdtree::KdTree;
use knn_points::{Dist, DistKey, Metric, PointId, Record, VecPoint};
use rand::RngExt;

/// A point in flight during redistribution.
#[derive(Debug, Clone)]
pub struct WirePoint {
    /// The point's id.
    pub id: PointId,
    /// Full coordinates — this is what makes redistribution expensive.
    pub coords: Vec<f64>,
}

/// Messages of the distributed build.
#[derive(Debug, Clone)]
pub enum KdMsg {
    /// Machine → leader: sampled axis-0 coordinates.
    Sample(Vec<f64>),
    /// Leader → all: the k−1 bin split coordinates.
    Splits(Vec<f64>),
    /// Machine → machine: a batch of points for the destination's bin;
    /// `last` marks the sender's final batch to that destination.
    Points {
        /// The points.
        batch: Vec<WirePoint>,
        /// Final batch flag.
        last: bool,
    },
}

impl Payload for KdMsg {
    fn size_bits(&self) -> u64 {
        match self {
            KdMsg::Sample(v) => 32 + 64 * v.len() as u64,
            KdMsg::Splits(v) => 32 + 64 * v.len() as u64,
            KdMsg::Points { batch, .. } => {
                33 + batch.iter().map(|p| 64 + 64 * p.coords.len() as u64).sum::<u64>()
            }
        }
    }
}

/// Per-machine result of the distributed build.
pub struct BuiltShard {
    /// The local tree over the points this machine now owns.
    pub tree: KdTree,
    /// The global split coordinates (length k−1).
    pub splits: Vec<f64>,
}

enum BuildPhase {
    Init,
    CollectSamples,
    AwaitSplits,
    Exchange,
}

/// The construction protocol: sample → split → redistribute → build.
pub struct KdBuildProtocol {
    id: MachineId,
    k: usize,
    leader: MachineId,
    /// Samples per machine for the quantile estimate.
    sample_size: usize,
    /// Points per redistribution batch.
    batch: usize,
    local: Vec<Record<VecPoint>>,
    phase: BuildPhase,
    samples: Vec<f64>,
    pending_samples: usize,
    splits: Vec<f64>,
    received: Vec<(PointId, Box<[f64]>)>,
    finished_senders: usize,
}

impl KdBuildProtocol {
    /// Machine `id` of `k`, contributing `local` points.
    pub fn new(
        id: MachineId,
        k: usize,
        leader: MachineId,
        sample_size: usize,
        batch: usize,
        local: Vec<Record<VecPoint>>,
    ) -> Self {
        assert!(batch >= 1);
        KdBuildProtocol {
            id,
            k,
            leader,
            sample_size: sample_size.max(1),
            batch,
            local,
            phase: BuildPhase::Init,
            samples: Vec::new(),
            pending_samples: 0,
            splits: Vec::new(),
            received: Vec::new(),
            finished_senders: 0,
        }
    }

    fn my_samples(&mut self, ctx: &mut Ctx<'_, KdMsg>) -> Vec<f64> {
        if self.local.is_empty() {
            return Vec::new();
        }
        (0..self.sample_size)
            .map(|_| {
                let i = ctx.rng().random_range(0..self.local.len());
                self.local[i].point.0[0]
            })
            .collect()
    }

    /// Which bin (machine) owns axis-0 coordinate `x` under `splits`.
    pub fn bin_of(splits: &[f64], x: f64) -> usize {
        splits.partition_point(|&s| s < x)
    }

    /// Redistribute local points according to the splits.
    fn exchange(&mut self, ctx: &mut Ctx<'_, KdMsg>) {
        let mut outgoing: Vec<Vec<WirePoint>> = (0..self.k).map(|_| Vec::new()).collect();
        for r in self.local.drain(..) {
            let bin = Self::bin_of(&self.splits, r.point.0[0]);
            let wire = WirePoint { id: r.id, coords: r.point.0.to_vec() };
            outgoing[bin].push(wire);
        }
        for (dst, points) in outgoing.into_iter().enumerate() {
            if dst == self.id {
                self.received
                    .extend(points.into_iter().map(|p| (p.id, p.coords.into_boxed_slice())));
                continue;
            }
            if points.is_empty() {
                ctx.send(dst, KdMsg::Points { batch: Vec::new(), last: true });
            } else {
                let chunks: Vec<Vec<WirePoint>> =
                    points.chunks(self.batch).map(|c| c.to_vec()).collect();
                let n = chunks.len();
                for (i, chunk) in chunks.into_iter().enumerate() {
                    ctx.send(dst, KdMsg::Points { batch: chunk, last: i + 1 == n });
                }
            }
        }
        self.phase = BuildPhase::Exchange;
    }

    fn try_finish(&mut self) -> Step<BuiltShard> {
        if self.finished_senders == self.k - 1 {
            let mut points = std::mem::take(&mut self.received);
            // Deterministic build regardless of arrival interleaving.
            points.sort_by_key(|(id, _)| *id);
            Step::Done(BuiltShard { tree: KdTree::build(points), splits: self.splits.clone() })
        } else {
            Step::Continue
        }
    }
}

impl Protocol for KdBuildProtocol {
    type Msg = KdMsg;
    type Output = BuiltShard;

    /// The exchange phase is a provable silent horizon (below), so relaxed
    /// delivery has real pipelining to buy under [`kmachine::Engine::Auto`].
    const QUIET_AWARE: bool = true;

    /// [`Self::exchange`] ships every outgoing point in one burst and
    /// flips the phase to [`BuildPhase::Exchange`]; from then on the
    /// machine only *receives* (it waits for the remaining `last` markers
    /// and builds its tree locally), so it is silent forever.
    fn quiet_until(&self) -> Option<u64> {
        matches!(self.phase, BuildPhase::Exchange).then_some(u64::MAX)
    }

    /// A build machine that already ran its exchange burst can salvage: all
    /// its outgoing points are on the wire (in-flight sends still deliver
    /// after a fail-stop), so the survivors' bins stay complete, and the
    /// salvaged output is the tree over whatever this bin had received by
    /// the crash. Points still in flight *to* the crashed bin are lost with
    /// it — fail-stop recovery accepts that loss, and callers see the crash
    /// in [`kmachine::FaultMetrics::crashed`]. Before the exchange the
    /// machine still holds undistributed points, so nothing is salvageable.
    fn on_crash(&mut self) -> Option<BuiltShard> {
        matches!(self.phase, BuildPhase::Exchange).then(|| {
            let mut points = std::mem::take(&mut self.received);
            points.sort_by_key(|(id, _)| *id);
            BuiltShard { tree: KdTree::build(points), splits: self.splits.clone() }
        })
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, KdMsg>) -> Step<BuiltShard> {
        if matches!(self.phase, BuildPhase::Init) {
            let samples = self.my_samples(ctx);
            if ctx.k() == 1 {
                let points =
                    self.local.drain(..).map(|r| (r.id, r.point.0.clone())).collect::<Vec<_>>();
                return Step::Done(BuiltShard { tree: KdTree::build(points), splits: Vec::new() });
            }
            if self.id == self.leader {
                self.samples = samples;
                self.pending_samples = self.k - 1;
                self.phase = BuildPhase::CollectSamples;
            } else {
                ctx.send(self.leader, KdMsg::Sample(samples));
                self.phase = BuildPhase::AwaitSplits;
            }
            return Step::Continue;
        }

        for i in 0..ctx.inbox().len() {
            let (src, msg) = {
                let env = &ctx.inbox()[i];
                (env.src, env.msg.clone())
            };
            let _ = src;
            match msg {
                KdMsg::Sample(v) => {
                    self.samples.extend_from_slice(&v);
                    self.pending_samples -= 1;
                    if self.pending_samples == 0 {
                        // Quantile splits from the pooled sample.
                        self.samples.sort_by(f64::total_cmp);
                        let mut splits = Vec::with_capacity(self.k - 1);
                        if !self.samples.is_empty() {
                            for j in 1..self.k {
                                let idx = (j * self.samples.len()) / self.k;
                                splits.push(self.samples[idx.min(self.samples.len() - 1)]);
                            }
                        } else {
                            splits = vec![0.0; self.k - 1];
                        }
                        self.splits = splits;
                        ctx.broadcast(KdMsg::Splits(self.splits.clone()));
                        self.exchange(ctx);
                    }
                }
                KdMsg::Splits(splits) => {
                    self.splits = splits;
                    self.exchange(ctx);
                }
                KdMsg::Points { batch, last } => {
                    self.received
                        .extend(batch.into_iter().map(|p| (p.id, p.coords.into_boxed_slice())));
                    self.finished_senders += usize::from(last);
                }
            }
        }
        if matches!(self.phase, BuildPhase::Exchange) {
            return self.try_finish();
        }
        Step::Continue
    }
}

/// The queryable result of a distributed build: every machine's tree plus
/// the shared splits. Queries are evaluated directly (sequentially) — the
/// build is the phase whose communication the experiment measures; query
/// routing costs O(1) rounds and is tabulated analytically in the
/// baselines table.
pub struct DistributedKdForest {
    /// Per-machine trees.
    pub shards: Vec<KdTree>,
    /// Bin boundaries (length k−1).
    pub splits: Vec<f64>,
}

impl DistributedKdForest {
    /// Assemble from per-machine build outputs.
    pub fn from_outputs(outputs: Vec<BuiltShard>) -> Self {
        let splits = outputs.first().map(|b| b.splits.clone()).unwrap_or_default();
        DistributedKdForest { shards: outputs.into_iter().map(|b| b.tree).collect(), splits }
    }

    /// Exact ℓ-NN: probe the owner bin, then every bin overlapping the
    /// candidate ball, and merge. Returns `(answer, probes)` where `probes`
    /// is the number of machines that had to be contacted.
    pub fn query(&self, q: &[f64], ell: usize, metric: Metric) -> (Vec<(Dist, PointId)>, usize) {
        if self.shards.is_empty() || ell == 0 {
            return (Vec::new(), 0);
        }
        let owner = KdBuildProtocol::bin_of(&self.splits, q[0]);
        let mut probes = vec![false; self.shards.len()];
        probes[owner] = true;
        let mut candidates = self.shards[owner].knn(q, ell, metric);

        // Expand to bins whose slab intersects the current candidate ball;
        // if the owner had fewer than ℓ points the radius is unknown, so
        // probe everyone (the honest degenerate case).
        let radius =
            if candidates.len() == ell { candidates.last().map(|&(d, _)| d) } else { None };
        for (i, shard) in self.shards.iter().enumerate() {
            if probes[i] || shard.is_empty() {
                continue;
            }
            let overlap = match radius {
                None => true,
                Some(r) => slab_overlaps(&self.splits, i, q[0], r, metric),
            };
            if overlap {
                probes[i] = true;
                candidates.extend(shard.knn(q, ell, metric));
            }
        }
        let mut keyed: Vec<DistKey> =
            candidates.into_iter().map(|(d, id)| DistKey::new(d, id)).collect();
        keyed.sort_unstable();
        keyed.truncate(ell);
        (keyed.into_iter().map(|k| (k.dist, k.id)).collect(), probes.iter().filter(|&&p| p).count())
    }
}

/// Does bin `i`'s axis-0 slab come within `radius` of coordinate `x`?
fn slab_overlaps(splits: &[f64], i: usize, x: f64, radius: Dist, metric: Metric) -> bool {
    let lo = if i == 0 { f64::NEG_INFINITY } else { splits[i - 1] };
    let hi = if i == splits.len() { f64::INFINITY } else { splits[i] };
    let gap = if x < lo {
        lo - x
    } else if x > hi {
        x - hi
    } else {
        0.0
    };
    if gap == 0.0 {
        return true;
    }
    // Axis gap lower-bounds every Minkowski norm; compare in Dist space.
    let bound = match metric {
        Metric::SquaredEuclidean => Dist::from_f64(gap * gap),
        Metric::Hamming => return true, // No geometric bound: must probe.
        _ => Dist::from_f64(gap),
    };
    bound <= radius
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmachine::engine::run_sync;
    use kmachine::NetConfig;
    use knn_points::{brute_force_knn, IdAssigner};
    use rand::{rngs::StdRng, SeedableRng};

    fn random_records(n: usize, dims: usize, seed: u64) -> Vec<Record<VecPoint>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = IdAssigner::new(seed);
        (0..n)
            .map(|_| Record {
                id: ids.next_id(),
                point: VecPoint::new(
                    (0..dims).map(|_| rng.random_range(-100.0..100.0)).collect::<Vec<f64>>(),
                ),
                label: None,
            })
            .collect()
    }

    fn build_forest(
        shards: Vec<Vec<Record<VecPoint>>>,
        seed: u64,
    ) -> (DistributedKdForest, kmachine::RunMetrics) {
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(seed);
        let protos: Vec<KdBuildProtocol> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| KdBuildProtocol::new(i, k, 0, 32, 4, local))
            .collect();
        let out = run_sync(&cfg, protos).expect("kd build");
        (DistributedKdForest::from_outputs(out.outputs), out.metrics)
    }

    #[test]
    fn build_conserves_points() {
        let records = random_records(300, 2, 1);
        let shards: Vec<Vec<Record<VecPoint>>> = records.chunks(75).map(|c| c.to_vec()).collect();
        let (forest, metrics) = build_forest(shards, 1);
        assert_eq!(forest.shards.iter().map(KdTree::len).sum::<usize>(), 300);
        // Redistribution must have moved real point payloads.
        assert!(metrics.bits > 300 * 64 / 2, "bits = {}", metrics.bits);
    }

    #[test]
    fn query_matches_brute_force() {
        let records = random_records(400, 3, 2);
        let shards: Vec<Vec<Record<VecPoint>>> = records.chunks(100).map(|c| c.to_vec()).collect();
        let (forest, _) = build_forest(shards, 2);
        let mut rng = StdRng::seed_from_u64(9);
        for t in 0..20 {
            let q: Vec<f64> = (0..3).map(|_| rng.random_range(-100.0..100.0)).collect();
            let (got, probes) = forest.query(&q, 7, Metric::Euclidean);
            let want: Vec<(Dist, PointId)> =
                brute_force_knn(&records, &VecPoint::new(q), 7, Metric::Euclidean)
                    .into_iter()
                    .map(|(key, _)| (key.dist, key.id))
                    .collect();
            assert_eq!(got, want, "query {t}");
            assert!((1..=4).contains(&probes));
        }
    }

    #[test]
    fn queries_usually_touch_few_bins() {
        let records = random_records(2000, 2, 3);
        let shards: Vec<Vec<Record<VecPoint>>> = records.chunks(250).map(|c| c.to_vec()).collect();
        let (forest, _) = build_forest(shards, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut total_probes = 0usize;
        let queries = 50;
        for _ in 0..queries {
            let q: Vec<f64> = (0..2).map(|_| rng.random_range(-100.0..100.0)).collect();
            let (_, probes) = forest.query(&q, 5, Metric::Euclidean);
            total_probes += probes;
        }
        let avg = total_probes as f64 / queries as f64;
        assert!(avg < 4.0, "average probes too high: {avg}");
    }

    #[test]
    fn build_cost_scales_with_data_not_ell() {
        // The redistribution ships ~n points regardless of any query
        // parameter — the paper's criticism in one assertion.
        let small = random_records(100, 2, 4);
        let large = random_records(1000, 2, 5);
        let (_, m_small) = build_forest(small.chunks(25).map(|c| c.to_vec()).collect(), 4);
        let (_, m_large) = build_forest(large.chunks(250).map(|c| c.to_vec()).collect(), 5);
        assert!(m_large.bits > 5 * m_small.bits, "{} vs {}", m_large.bits, m_small.bits);
    }

    #[test]
    fn post_exchange_crash_salvages_survivor_bins() {
        // Worker 2 crashes after its exchange burst: its outgoing batches
        // are already on the wire and still deliver, so every survivor's
        // bin stays complete; only points routed *to* bin 2 can be lost.
        let records = random_records(120, 2, 8);
        let shards: Vec<Vec<Record<VecPoint>>> = records.chunks(40).map(|c| c.to_vec()).collect();
        // Unlimited bandwidth keeps the phase schedule tight: workers
        // receive the splits in round 2 and exchange in the same round, so
        // by round 3 worker 2 has shipped everything.
        let clean = {
            let protos: Vec<KdBuildProtocol> = shards
                .iter()
                .enumerate()
                .map(|(i, local)| KdBuildProtocol::new(i, 3, 0, 32, 4, local.clone()))
                .collect();
            run_sync(
                &NetConfig::new(3).with_seed(8).with_bandwidth(kmachine::BandwidthMode::Unlimited),
                protos,
            )
            .unwrap()
        };
        let cfg = NetConfig::new(3)
            .with_seed(8)
            .with_bandwidth(kmachine::BandwidthMode::Unlimited)
            .with_faults(kmachine::FaultPlan::default().with_crash(2, 3));
        let protos: Vec<KdBuildProtocol> = shards
            .iter()
            .enumerate()
            .map(|(i, local)| KdBuildProtocol::new(i, 3, 0, 32, 4, local.clone()))
            .collect();
        let out = run_sync(&cfg, protos).expect("post-exchange crash is salvaged in-run");
        assert_eq!(out.faults.crashed, vec![2]);
        for survivor in [0, 1] {
            assert_eq!(
                out.outputs[survivor].tree.len(),
                clean.outputs[survivor].tree.len(),
                "survivor {survivor}'s bin must be complete"
            );
        }
        let total: usize = out.outputs.iter().map(|b| b.tree.len()).sum();
        assert!(total <= 120, "salvage never invents points");
    }

    #[test]
    fn pre_exchange_crash_is_unsalvageable() {
        // Dead before shipping its points: the redistribution cannot
        // complete without them, so the run fails with the typed error.
        let records = random_records(90, 2, 9);
        let shards: Vec<Vec<Record<VecPoint>>> = records.chunks(30).map(|c| c.to_vec()).collect();
        let cfg = NetConfig::new(3)
            .with_seed(9)
            .with_faults(kmachine::FaultPlan::default().with_crash(1, 0));
        let protos: Vec<KdBuildProtocol> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| KdBuildProtocol::new(i, 3, 0, 32, 4, local))
            .collect();
        let err = match run_sync(&cfg, protos) {
            Err(e) => e,
            Ok(_) => panic!("pre-exchange crash must not complete"),
        };
        assert!(
            matches!(err, kmachine::EngineError::Crashed { machine: 1, .. }),
            "expected an unsalvageable crash: {err:?}"
        );
    }

    #[test]
    fn empty_and_single_machine() {
        let (forest, _) = build_forest(vec![vec![], vec![]], 6);
        assert_eq!(forest.query(&[0.0], 3, Metric::Euclidean).0.len(), 0);

        let records = random_records(50, 2, 7);
        let k1 = vec![records.clone()];
        let cfg = NetConfig::new(1).with_seed(0);
        let out = run_sync(&cfg, vec![KdBuildProtocol::new(0, 1, 0, 8, 4, records)]).unwrap();
        assert_eq!(out.outputs[0].tree.len(), 50);
        assert_eq!(out.metrics.messages, 0);
        drop(k1);
    }
}
