//! **Algorithm 2** — Distributed ℓ-NN computation.
//!
//! Theorem 2.4: `O(log ℓ)` rounds whp and `O(k log ℓ)` messages,
//! *independent of both n and k*. The stages, per the paper:
//!
//! 1. every machine truncates its local input to its ℓ best candidates
//!    (local computation, free in the model);
//! 2. every machine samples `⌈12·log₂ ℓ⌉` candidates uniformly and ships
//!    them to the leader — over a B-bit link this costs `O(log ℓ)` rounds;
//! 3. the leader sorts the `≤ 12k·log₂ ℓ` samples and broadcasts the sample
//!    of rank `⌈21·log₂ ℓ⌉` as the pruning threshold `r`;
//! 4. machines discard candidates beyond `r` — Lemma 2.3: at most `11ℓ`
//!    survive, with probability `≥ 1 − 2/ℓ²`;
//! 5. Algorithm 1 selects the ℓ smallest among the survivors.
//!
//! **Hardening deviation (documented in DESIGN.md §4.3):** the paper's
//! pruning leaves at least ℓ survivors only with high probability *in ℓ*.
//! With `KnnParams::harden` (default), machines report their survivor
//! counts (+2 rounds, O(k) messages); if fewer than ℓ survive, the leader
//! orders a rollback and Algorithm 1 runs on the unpruned candidates. The
//! result is exact selection with certainty, and the fallback rate is
//! itself measured by the Lemma 2.3 experiment.

use kmachine::{Ctx, MachineId, Payload, Protocol, Step};
use knn_points::Key;
use rand::RngExt;

use super::select_core::{CoreStatus, SelMsg, SelectCore};

/// A closure producing this machine's local keys, run inside round 0 so the
/// distance computation executes *on the machine's own thread* under the
/// threaded engine — exactly where the paper's experiment spends its local
/// time.
pub type KeySource<'a, K> = Box<dyn FnOnce() -> Vec<K> + Send + 'a>;

/// Tunables of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnParams {
    /// Samples per machine = `max(1, ⌈sample_factor · log₂ ℓ⌉)`; the paper
    /// uses 12.
    pub sample_factor: u32,
    /// Pruning threshold rank = `max(1, ⌈rank_factor · log₂ ℓ⌉)`; the paper
    /// uses 21.
    pub rank_factor: u32,
    /// Verify that pruning kept at least ℓ candidates and roll back if not
    /// (see module docs). Disable to run the paper's algorithm verbatim.
    pub harden: bool,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams { sample_factor: 12, rank_factor: 21, harden: true }
    }
}

impl KnnParams {
    /// Samples each machine draws for ℓ requested neighbors.
    pub fn sample_size(&self, ell: u64) -> usize {
        scaled_log(self.sample_factor, ell)
    }

    /// Rank of the pruning threshold within the sorted samples (1-based).
    pub fn prune_rank(&self, ell: u64) -> usize {
        scaled_log(self.rank_factor, ell)
    }
}

/// `max(1, ⌈factor · log₂ ℓ⌉)`.
fn scaled_log(factor: u32, ell: u64) -> usize {
    let lg = (ell.max(1) as f64).log2();
    ((factor as f64 * lg).ceil() as usize).max(1)
}

/// Diagnostics from the leader's point of view, consumed by the
/// experiments (Lemma 2.3, Theorem 2.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct KnnStats {
    /// Samples requested per machine.
    pub sample_size: u64,
    /// Rank used for the pruning threshold.
    pub prune_rank: u64,
    /// Total candidates before pruning (Σ per-machine `min(ℓ, |input|)`).
    pub total_candidates: u64,
    /// Candidates surviving the prune (only known when hardening is on).
    pub survivors: u64,
    /// Whether the hardening check rolled the prune back.
    pub rolled_back: bool,
    /// Pivot iterations of the embedded Algorithm 1.
    pub select_iterations: u64,
}

/// Per-machine output of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnnOutput<K: Key> {
    /// This machine's members of the global ℓ-NN set.
    pub keys: Vec<K>,
    /// Leader-side diagnostics (`None` on non-leaders).
    pub stats: Option<KnnStats>,
}

/// Messages of Algorithm 2.
#[derive(Debug, Clone)]
pub enum KnnMsg<K: Key> {
    /// Machine → leader: its sampled candidate keys (one batch).
    Samples(Vec<K>),
    /// Leader → all: prune to keys `≤ r`.
    Prune {
        /// The pruning threshold (the rank-`⌈21 log₂ ℓ⌉` sample).
        r: K,
    },
    /// Machine → leader (hardening): survivor and total candidate counts.
    PrunedCount {
        /// Candidates with key `≤ r`.
        kept: u64,
        /// Candidates before pruning.
        total: u64,
    },
    /// Leader → all (hardening): whether to roll the prune back.
    PruneDecision {
        /// `true`: run selection on the *unpruned* candidates.
        rollback: bool,
    },
    /// Embedded Algorithm 1 traffic.
    Sel(SelMsg<K>),
}

impl<K: Key> Payload for KnnMsg<K> {
    fn size_bits(&self) -> u64 {
        match self {
            KnnMsg::Samples(v) => 32 + K::BITS * v.len() as u64,
            KnnMsg::Prune { .. } => 3 + K::BITS,
            KnnMsg::PrunedCount { .. } => 3 + 128,
            KnnMsg::PruneDecision { .. } => 4,
            KnnMsg::Sel(inner) => 3 + inner.size_bits(),
        }
    }
}

enum KPhase {
    /// Waiting for round 0.
    Init,
    /// Leader: collecting sample batches.
    CollectSamples,
    /// Worker: waiting for the prune threshold.
    AwaitPrune,
    /// Leader: collecting survivor counts (hardening).
    CollectCounts,
    /// Worker: waiting for the rollback decision (hardening).
    AwaitDecision,
    /// Embedded Algorithm 1 running.
    Selection,
}

/// Per-machine instance of the paper's Algorithm 2.
pub struct KnnProtocol<'a, K: Key> {
    id: MachineId,
    k: usize,
    leader: MachineId,
    ell: u64,
    params: KnnParams,
    input: Option<KeySource<'a, K>>,
    /// Local candidates (ℓ best), sorted ascending.
    candidates: Vec<K>,
    /// Prefix length of `candidates` surviving the prune.
    pruned_len: usize,
    phase: KPhase,
    core: Option<SelectCore<K>>,
    stats: KnnStats,
    // Leader scratch.
    samples: Vec<K>,
    pending: usize,
    kept_sum: u64,
    total_sum: u64,
}

impl<'a, K: Key> KnnProtocol<'a, K> {
    /// Machine `id` of `k`: find the global `ell`-smallest keys among the
    /// keys produced by `input` on each machine.
    pub fn new(
        id: MachineId,
        k: usize,
        leader: MachineId,
        ell: u64,
        params: KnnParams,
        input: KeySource<'a, K>,
    ) -> Self {
        KnnProtocol {
            id,
            k,
            leader,
            ell,
            params,
            input: Some(input),
            candidates: Vec::new(),
            pruned_len: 0,
            phase: KPhase::Init,
            core: None,
            stats: KnnStats::default(),
            samples: Vec::new(),
            pending: 0,
            kept_sum: 0,
            total_sum: 0,
        }
    }

    /// Convenience constructor from materialized keys.
    pub fn from_keys(
        id: MachineId,
        k: usize,
        leader: MachineId,
        ell: u64,
        params: KnnParams,
        keys: Vec<K>,
    ) -> Self {
        Self::new(id, k, leader, ell, params, Box::new(move || keys))
    }

    fn is_leader(&self) -> bool {
        self.id == self.leader
    }

    /// Active candidate set for the selection stage.
    fn active(&self, rollback: bool) -> Vec<K> {
        if rollback {
            self.candidates.clone()
        } else {
            self.candidates[..self.pruned_len].to_vec()
        }
    }

    /// Round 0: materialize keys, keep the local ℓ best, draw samples.
    fn setup(&mut self, ctx: &mut Ctx<'_, KnnMsg<K>>) -> Option<Vec<K>> {
        let keys = (self.input.take().expect("setup runs once"))();
        self.candidates = knn_selection::smallest_k_sorted(&keys, self.ell as usize, ctx.rng());
        self.stats.sample_size = self.params.sample_size(self.ell) as u64;
        self.stats.prune_rank = self.params.prune_rank(self.ell) as u64;

        if ctx.k() == 1 {
            // The local ℓ best are the global ℓ best.
            self.stats.total_candidates = self.candidates.len() as u64;
            self.stats.survivors = self.candidates.len() as u64;
            return Some(self.candidates.clone());
        }

        // Sample with replacement, as the paper's "randomly and
        // independently" prescribes. When the candidate set is no larger
        // than the sample budget, send it whole — strictly more information
        // for fewer bits (the paper's regime n ≫ kℓ never hits this case).
        let m = self.params.sample_size(self.ell);
        let sample = if self.candidates.len() <= m {
            self.candidates.clone()
        } else {
            let mut sample = Vec::with_capacity(m);
            for _ in 0..m {
                let idx = ctx.rng().random_range(0..self.candidates.len());
                sample.push(self.candidates[idx]);
            }
            sample
        };
        if self.is_leader() {
            self.samples = sample;
            self.pending = self.k - 1;
            self.phase = KPhase::CollectSamples;
        } else {
            ctx.send(self.leader, KnnMsg::Samples(sample));
            self.phase = KPhase::AwaitPrune;
        }
        None
    }

    /// Leader: all samples in — broadcast the prune threshold (or skip
    /// pruning entirely when nobody has any candidates to offer).
    fn leader_after_samples(&mut self, ctx: &mut Ctx<'_, KnnMsg<K>>) {
        if self.samples.is_empty() {
            // No candidates anywhere: skip straight to (trivial) selection.
            ctx.broadcast(KnnMsg::PruneDecision { rollback: true });
            self.pruned_len = self.candidates.len();
            self.start_selection(true, ctx);
            return;
        }
        self.samples.sort_unstable();
        let rank = self.params.prune_rank(self.ell);
        let r = self.samples[(rank - 1).min(self.samples.len() - 1)];
        ctx.broadcast(KnnMsg::Prune { r });
        self.pruned_len = self.candidates.partition_point(|x| *x <= r);
        if self.params.harden {
            self.kept_sum = self.pruned_len as u64;
            self.total_sum = self.candidates.len() as u64;
            self.pending = self.k - 1;
            self.phase = KPhase::CollectCounts;
        } else {
            self.start_selection(false, ctx);
        }
    }

    /// Construct the embedded Algorithm 1 core (leader also kicks it off).
    fn start_selection(&mut self, rollback: bool, ctx: &mut Ctx<'_, KnnMsg<K>>) {
        self.stats.rolled_back = rollback;
        let active = self.active(rollback);
        let mut core = SelectCore::new(self.id, self.k, self.leader, self.ell, active);
        if self.is_leader() {
            let mut out = Vec::new();
            let status = core.start(ctx.rng(), &mut out);
            for (dst, msg) in out {
                ctx.send(dst, KnnMsg::Sel(msg));
            }
            debug_assert!(
                matches!(status, CoreStatus::Running),
                "k >= 2 selection cannot finish during start"
            );
        }
        self.core = Some(core);
        self.phase = KPhase::Selection;
    }
}

impl<'a, K: Key> Protocol for KnnProtocol<'a, K> {
    type Msg = KnnMsg<K>;
    type Output = KnnOutput<K>;

    /// Algorithm 2 is reply-driven — every round's sends depend on what
    /// just arrived, so no live instance can promise a silent horizon and
    /// [`kmachine::Protocol::quiet_until`] stays `None`. Opting in is
    /// still correct and meaningful: it keeps [`kmachine::Engine::Auto`]
    /// from silently downgrading a requested relaxed delivery to exact,
    /// and *done* instances' drained links still publish quiescence
    /// promises — which is where multiplexed batches pipeline.
    const QUIET_AWARE: bool = true;

    /// A machine that materialized its input and holds no candidates
    /// provably contributes no answer members, so a crash there salvages an
    /// empty output (mirroring the BinSearch baseline). Any other crash —
    /// candidates on board, or dead before round 0 ran — may lose answer
    /// members or the coordinator itself: unsalvageable, and the runner
    /// retries over the survivors.
    fn on_crash(&mut self) -> Option<KnnOutput<K>> {
        (self.input.is_none() && self.candidates.is_empty())
            .then(|| KnnOutput { keys: Vec::new(), stats: None })
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, KnnMsg<K>>) -> Step<KnnOutput<K>> {
        if matches!(self.phase, KPhase::Init) {
            debug_assert_eq!(ctx.round(), 0);
            if let Some(keys) = self.setup(ctx) {
                return Step::Done(KnnOutput { keys, stats: Some(self.stats) });
            }
            return Step::Continue;
        }

        let mut finished: Option<Option<K>> = None;
        for i in 0..ctx.inbox().len() {
            let env = &ctx.inbox()[i];
            let (src, msg) = (env.src, env.msg.clone());
            match msg {
                KnnMsg::Samples(batch) => {
                    debug_assert!(self.is_leader());
                    self.samples.extend_from_slice(&batch);
                    self.pending -= 1;
                    if self.pending == 0 {
                        self.leader_after_samples(ctx);
                    }
                }
                KnnMsg::Prune { r } => {
                    self.pruned_len = self.candidates.partition_point(|x| *x <= r);
                    if self.params.harden {
                        ctx.send(
                            self.leader,
                            KnnMsg::PrunedCount {
                                kept: self.pruned_len as u64,
                                total: self.candidates.len() as u64,
                            },
                        );
                        self.phase = KPhase::AwaitDecision;
                    } else {
                        self.start_selection(false, ctx);
                    }
                }
                KnnMsg::PrunedCount { kept, total } => {
                    debug_assert!(self.is_leader());
                    self.kept_sum += kept;
                    self.total_sum += total;
                    self.pending -= 1;
                    if self.pending == 0 {
                        let needed = self.ell.min(self.total_sum);
                        let rollback = self.kept_sum < needed;
                        self.stats.total_candidates = self.total_sum;
                        self.stats.survivors = self.kept_sum;
                        ctx.broadcast(KnnMsg::PruneDecision { rollback });
                        self.start_selection(rollback, ctx);
                    }
                }
                KnnMsg::PruneDecision { rollback } => {
                    if self.core.is_none() {
                        // `rollback = true` can also mean "pruning skipped":
                        // make sure the full candidate set is active.
                        if rollback {
                            self.pruned_len = self.candidates.len();
                        }
                        self.start_selection(rollback, ctx);
                    }
                }
                KnnMsg::Sel(sel) => {
                    let core = self.core.as_mut().expect("selection traffic before setup");
                    let mut out = Vec::new();
                    let status = core.handle(src, &sel, ctx.rng(), &mut out);
                    for (dst, m) in out {
                        ctx.send(dst, KnnMsg::Sel(m));
                    }
                    if let CoreStatus::Finished { boundary } = status {
                        finished = Some(boundary);
                    }
                }
            }
        }

        if let Some(boundary) = finished {
            let core = self.core.as_ref().expect("finished implies core");
            self.stats.select_iterations = core.iterations();
            let keys = core.output_for(boundary);
            let stats = self.is_leader().then_some(self.stats);
            return Step::Done(KnnOutput { keys, stats });
        }
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmachine::engine::{run_sync, run_threaded};
    use kmachine::NetConfig;
    use knn_workloads::partition::{PartitionStrategy, ALL_STRATEGIES};
    use proptest::prelude::*;

    fn run_knn(
        shards: Vec<Vec<u64>>,
        ell: u64,
        seed: u64,
        params: KnnParams,
    ) -> (Vec<u64>, kmachine::RunMetrics, KnnStats) {
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(seed);
        let protos: Vec<KnnProtocol<'_, u64>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| KnnProtocol::from_keys(i, k, 0, ell, params, local))
            .collect();
        let out = run_sync(&cfg, protos).expect("knn run");
        let stats = out.outputs[0].stats.expect("leader stats");
        let mut merged: Vec<u64> = out.outputs.into_iter().flat_map(|o| o.keys).collect();
        merged.sort_unstable();
        (merged, out.metrics, stats)
    }

    fn expected(shards: &[Vec<u64>], ell: usize) -> Vec<u64> {
        let mut all: Vec<u64> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        all.truncate(ell);
        all
    }

    #[test]
    fn finds_global_smallest() {
        let shards = vec![vec![100, 5, 200], vec![7, 300, 2], vec![50, 60, 1]];
        let (got, _, _) = run_knn(shards.clone(), 4, 1, KnnParams::default());
        assert_eq!(got, expected(&shards, 4));
    }

    #[test]
    fn large_uniform_instance_exact() {
        let all: Vec<u64> = (0..5000u64).map(|i| i.wrapping_mul(0x9E3779B9) % 1_000_000).collect();
        let want = expected(std::slice::from_ref(&all), 64);
        for (i, strat) in ALL_STRATEGIES.into_iter().enumerate() {
            let shards = strat.split(all.clone(), 10, i as u64);
            let (got, _, _) = run_knn(shards, 64, 100 + i as u64, KnnParams::default());
            assert_eq!(got, want, "{strat:?}");
        }
    }

    #[test]
    fn crash_salvage_only_for_materialized_empty_machines() {
        let mut p = KnnProtocol::<u64>::from_keys(1, 3, 0, 4, KnnParams::default(), vec![]);
        assert!(
            p.on_crash().is_none(),
            "dead before round 0: the input closure never ran, so the loss is unknowable"
        );
        p.input = None;
        assert_eq!(
            p.on_crash(),
            Some(KnnOutput { keys: Vec::new(), stats: None }),
            "materialized and empty: provably contributes nothing"
        );
        p.candidates = vec![3, 7];
        assert!(p.on_crash().is_none(), "candidates on board may be answer members");
    }

    #[test]
    fn crashed_empty_shard_is_written_off_by_retry() {
        // An empty shard's machine crashing costs nothing: the runner-level
        // retry (or in-run salvage) must still produce the exact answer.
        use crate::runner::{run_query, Algorithm, QueryOptions};
        use knn_points::{Dataset, IdAssigner, ScalarPoint};
        let mut ids = IdAssigner::new(0);
        let data = Dataset::from_points((0..60u64).map(ScalarPoint).collect::<Vec<_>>(), &mut ids);
        let mut shards: Vec<Dataset<ScalarPoint>> =
            data.records.chunks(30).map(|c| Dataset::new(c.to_vec())).collect();
        shards.push(Dataset::new(Vec::new())); // machine 2: empty shard
        let opts = QueryOptions {
            faults: kmachine::FaultPlan::default().with_crash(2, 1),
            ..Default::default()
        };
        let out = run_query(&shards, &ScalarPoint(10), 5, Algorithm::Knn, &opts).unwrap();
        let want =
            run_query(&shards, &ScalarPoint(10), 5, Algorithm::Knn, &QueryOptions::default())
                .unwrap();
        let keys = |o: &crate::runner::QueryOutcome| {
            crate::runner::merge_answers(&o.local_keys)
                .into_iter()
                .map(|(k, _)| k)
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(&out), keys(&want), "losing an empty shard loses nothing");
        assert!(out.recovered);
    }

    #[test]
    fn single_machine_finishes_locally() {
        let (got, m, _) = run_knn(vec![vec![9, 1, 5]], 2, 3, KnnParams::default());
        assert_eq!(got, vec![1, 5]);
        assert_eq!(m.messages, 0);
        assert_eq!(m.rounds, 0);
    }

    #[test]
    fn ell_one_works() {
        let shards = vec![vec![10, 20], vec![5, 30], vec![40]];
        let (got, _, _) = run_knn(shards, 1, 4, KnnParams::default());
        assert_eq!(got, vec![5]);
    }

    #[test]
    fn ell_exceeding_population_returns_everything() {
        let shards = vec![vec![3, 1], vec![2], vec![]];
        let (got, _, _) = run_knn(shards, 50, 5, KnnParams::default());
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn empty_cluster_returns_empty() {
        let shards = vec![vec![], vec![], vec![]];
        let (got, _, stats) = run_knn(shards, 5, 6, KnnParams::default());
        assert!(got.is_empty());
        assert_eq!(stats.total_candidates, 0);
    }

    #[test]
    fn hardening_never_wrong_even_with_tiny_factors() {
        // Absurdly aggressive pruning (factor 1/1) would often under-prune
        // without the rollback; with hardening the answer stays exact.
        let params = KnnParams { sample_factor: 1, rank_factor: 1, harden: true };
        let all: Vec<u64> = (0..2000u64).map(|i| i.wrapping_mul(2654435761) % 100_000).collect();
        let want = expected(std::slice::from_ref(&all), 100);
        let mut rollbacks = 0;
        for seed in 0..10 {
            let shards = PartitionStrategy::Shuffled.split(all.clone(), 8, seed);
            let (got, _, stats) = run_knn(shards, 100, seed, params);
            assert_eq!(got, want, "seed {seed}");
            rollbacks += u32::from(stats.rolled_back);
        }
        // With rank 1 the threshold is the smallest sample: almost always
        // fewer than ℓ survivors, so rollbacks must actually trigger.
        assert!(rollbacks > 0, "hardening path was never exercised");
    }

    #[test]
    fn paper_factors_rarely_roll_back() {
        let all: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x2545F4914F6CDD1D)).collect();
        let mut rollbacks = 0;
        for seed in 0..10 {
            let shards = PartitionStrategy::Shuffled.split(all.clone(), 16, seed);
            let (_, _, stats) = run_knn(shards, 256, seed, KnnParams::default());
            rollbacks += u32::from(stats.rolled_back);
        }
        assert_eq!(rollbacks, 0, "paper constants should essentially never roll back");
    }

    #[test]
    fn lemma_2_3_survivors_bounded_by_11_ell() {
        let all: Vec<u64> = (0..1 << 14).map(|i: u64| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let ell = 256u64;
        for seed in 0..5 {
            let shards = PartitionStrategy::Shuffled.split(all.clone(), 32, seed);
            let (_, _, stats) = run_knn(shards, ell, seed, KnnParams::default());
            assert!(!stats.rolled_back);
            assert!(
                stats.survivors <= 11 * ell,
                "survivors {} > 11ℓ at seed {seed}",
                stats.survivors
            );
            assert!(stats.survivors >= ell);
        }
    }

    #[test]
    fn rounds_do_not_scale_with_k() {
        // Theorem 2.4: round complexity independent of k. Compare k = 4 and
        // k = 64 on the same global data.
        let all: Vec<u64> = (0..1 << 13).map(|i: u64| i.wrapping_mul(0xD1B54A32D192ED03)).collect();
        let ell = 128;
        let r4: Vec<u64> = (0..4)
            .map(|s| {
                let shards = PartitionStrategy::Shuffled.split(all.clone(), 4, s);
                run_knn(shards, ell, s, KnnParams::default()).1.rounds
            })
            .collect();
        let r64: Vec<u64> = (0..4)
            .map(|s| {
                let shards = PartitionStrategy::Shuffled.split(all.clone(), 64, s);
                run_knn(shards, ell, s, KnnParams::default()).1.rounds
            })
            .collect();
        let a4 = r4.iter().sum::<u64>() as f64 / 4.0;
        let a64 = r64.iter().sum::<u64>() as f64 / 4.0;
        assert!(a64 < a4 * 2.5, "rounds grew with k: avg(k=4) = {a4}, avg(k=64) = {a64}");
    }

    #[test]
    fn engines_agree() {
        let shards = vec![vec![100u64, 5, 200, 42], vec![7, 300, 2], vec![50, 60, 1, 99]];
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(17);
        let mk = |shards: &[Vec<u64>]| {
            shards
                .iter()
                .enumerate()
                .map(|(i, local)| {
                    KnnProtocol::from_keys(i, k, 0, 3, KnnParams::default(), local.clone())
                })
                .collect::<Vec<_>>()
        };
        let a = run_sync(&cfg, mk(&shards)).unwrap();
        let b = run_threaded(&cfg, mk(&shards)).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(a.metrics.messages, b.metrics.messages);
    }

    #[test]
    fn param_helpers_match_paper_formulas() {
        let p = KnnParams::default();
        assert_eq!(p.sample_size(1), 1);
        assert_eq!(p.sample_size(2), 12);
        assert_eq!(p.sample_size(1024), 120);
        assert_eq!(p.prune_rank(1024), 210);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        /// The verbatim (non-hardened) paper algorithm: when the prune
        /// keeps at least ℓ candidates the answer is exact; when it
        /// under-prunes (the event the paper bounds whp), the output is
        /// still the globally smallest `survivors` keys — a prefix of the
        /// sorted global key set, never garbage.
        #[test]
        fn prop_unhardened_output_is_sorted_prefix(
            values in proptest::collection::hash_set(any::<u64>(), 0..150),
            k in 1usize..7,
            ell in 0u64..40,
            seed in 0u64..300,
        ) {
            let values: Vec<u64> = values.into_iter().collect();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let params = KnnParams { harden: false, ..KnnParams::default() };
            let shards = PartitionStrategy::RoundRobin.split(values, k, seed);
            let (got, _, _) = run_knn(shards, ell, seed, params);
            prop_assert!(got.len() <= sorted.len());
            prop_assert_eq!(&got[..], &sorted[..got.len()], "must be a sorted-global prefix");
            // Never more than requested, and exact whenever enough survived.
            prop_assert!(got.len() as u64 <= ell || ell as usize >= sorted.len());
        }

        #[test]
        fn prop_knn_equals_sequential_selection(
            values in proptest::collection::hash_set(any::<u64>(), 0..200),
            k in 1usize..8,
            ell in 0u64..40,
            strat_idx in 0usize..5,
            seed in 0u64..300,
        ) {
            let values: Vec<u64> = values.into_iter().collect();
            let want = expected(std::slice::from_ref(&values), ell as usize);
            let shards = ALL_STRATEGIES[strat_idx].split(values, k, seed);
            let (got, _, _) = run_knn(shards, ell, seed, KnnParams::default());
            prop_assert_eq!(got, want);
        }
    }
}
