//! Distributed protocols in the k-machine model.
//!
//! * [`selection`] — the paper's **Algorithm 1** (randomized distributed
//!   selection), with [`select_core`] holding the reusable state machine.
//! * [`knn`] — the paper's **Algorithm 2** (ℓ-NN via sampling + selection).
//! * [`approx`] — an extension: pruning-only *approximate* ℓ-NN.
//! * [`simple`] — the gather-everything baseline of §3.
//! * [`saukas_song`] — deterministic weighted-median selection \[16\].
//! * [`binsearch`] — value-domain bisection \[3, 18\].
//! * [`kdtree_dist`] — PANDA-like distributed k-d tree \[14\].

pub mod approx;
pub mod binsearch;
pub mod kdtree_dist;
pub mod knn;
pub mod saukas_song;
pub mod select_core;
pub mod selection;
pub mod simple;

pub use approx::{ApproxKnnProtocol, ApproxOutput};
pub use knn::{KnnOutput, KnnParams, KnnProtocol, KnnStats};
pub use select_core::{CoreStatus, SelMsg, SelectCore};
pub use selection::SelectProtocol;
pub use simple::SimpleProtocol;
