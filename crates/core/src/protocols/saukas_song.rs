//! The **Saukas–Song** deterministic distributed selection baseline
//! (reference \[16\]; SC'98).
//!
//! The work closest in spirit to the paper: each iteration every machine
//! reports the *median* of its live keys together with its live count; the
//! leader partitions at the count-weighted median of those medians. The
//! weighted-median pivot provably discards at least a quarter of the live
//! keys per iteration, so selection over N distributed keys takes
//! `O(log N)` iterations — `O(log(kℓ))` for the ℓ-NN candidate sets —
//! deterministically, versus Algorithm 2's `O(log ℓ)` randomized bound.

use kmachine::{Ctx, MachineId, Payload, Protocol, Step};
use knn_points::Key;
use knn_selection::weighted_median;

use super::knn::KeySource;

/// Answer boundary of a selection over a possibly-unbounded range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cut<K: Key> {
    /// Empty answer (ℓ = 0 or no keys).
    Nothing,
    /// Every key is in the answer.
    All,
    /// Keys `≤` this value are in the answer.
    At(K),
}

/// Messages of the Saukas–Song protocol.
#[derive(Debug, Clone)]
pub enum SsMsg<K: Key> {
    /// Leader → all: median and count of your keys in `(lo, hi]`
    /// (`lo = None` ⇒ −∞, `hi = None` ⇒ +∞).
    MedianReq {
        /// Exclusive lower bound.
        lo: Option<K>,
        /// Inclusive upper bound (`None` = +∞).
        hi: Option<K>,
    },
    /// Reply: lower median of the live keys (`None` when none are live).
    Median {
        /// Local lower median within the range.
        med: Option<K>,
        /// Number of live keys.
        count: u64,
    },
    /// Leader → all: count keys in `(lo, pivot]`.
    GetSize {
        /// Exclusive lower bound.
        lo: Option<K>,
        /// Inclusive upper bound — the weighted median of medians.
        pivot: K,
    },
    /// Reply to [`SsMsg::GetSize`].
    Size(u64),
    /// Leader → all: final boundary.
    Finished {
        /// Where the answer set ends.
        cut: Cut<K>,
    },
}

impl<K: Key> Payload for SsMsg<K> {
    fn size_bits(&self) -> u64 {
        match self {
            SsMsg::MedianReq { .. } => 3 + 2 * (K::BITS + 1),
            SsMsg::Median { .. } => 3 + K::BITS + 1 + 64,
            SsMsg::GetSize { .. } => 3 + 2 * K::BITS + 1,
            SsMsg::Size(_) => 3 + 64,
            SsMsg::Finished { .. } => 5 + K::BITS,
        }
    }
}

#[derive(Clone, Copy)]
enum SsPhase<K: Key> {
    Init,
    AwaitMedians,
    AwaitSizes { pivot: K },
    Worker,
}

/// Per-machine instance of Saukas–Song selection.
pub struct SaukasSongProtocol<'a, K: Key> {
    id: MachineId,
    k: usize,
    leader: MachineId,
    ell: u64,
    input: Option<KeySource<'a, K>>,
    /// Local keys, sorted. (For the ℓ-NN problem the runner feeds the local
    /// top-ℓ candidates, mirroring the other baselines.)
    local: Vec<K>,
    phase: SsPhase<K>,
    // Leader state.
    lo: Option<K>,
    hi: Option<K>,
    ell_rem: u64,
    medians: Vec<(K, u64)>,
    sizes: u64,
    pending: usize,
    /// Completed pivot iterations (leader; for the baselines experiment).
    pub iterations: u64,
}

impl<'a, K: Key> SaukasSongProtocol<'a, K> {
    /// Machine `id` of `k`, selecting the `ell` smallest keys.
    pub fn new(
        id: MachineId,
        k: usize,
        leader: MachineId,
        ell: u64,
        input: KeySource<'a, K>,
    ) -> Self {
        SaukasSongProtocol {
            id,
            k,
            leader,
            ell,
            input: Some(input),
            local: Vec::new(),
            phase: SsPhase::Init,
            lo: None,
            hi: None,
            ell_rem: ell,
            medians: Vec::new(),
            sizes: 0,
            pending: 0,
            iterations: 0,
        }
    }

    /// Materialized-keys constructor for tests.
    pub fn from_keys(id: MachineId, k: usize, leader: MachineId, ell: u64, keys: Vec<K>) -> Self {
        Self::new(id, k, leader, ell, Box::new(move || keys))
    }

    fn range_bounds(&self, lo: &Option<K>, hi: &Option<K>) -> (usize, usize) {
        let a = match lo {
            None => 0,
            Some(l) => self.local.partition_point(|x| *x <= *l),
        };
        let b = match hi {
            None => self.local.len(),
            Some(h) => self.local.partition_point(|x| *x <= *h),
        };
        (a, b.max(a))
    }

    fn local_median(&self, lo: &Option<K>, hi: &Option<K>) -> (Option<K>, u64) {
        let (a, b) = self.range_bounds(lo, hi);
        if a == b {
            (None, 0)
        } else {
            (Some(self.local[a + (b - a - 1) / 2]), (b - a) as u64)
        }
    }

    fn output_for(&self, cut: Cut<K>) -> Vec<K> {
        match cut {
            Cut::Nothing => Vec::new(),
            Cut::All => self.local.clone(),
            Cut::At(b) => {
                let end = self.local.partition_point(|x| *x <= b);
                self.local[..end].to_vec()
            }
        }
    }

    /// Leader: launch one median-probe iteration over the current range.
    fn request_medians(&mut self, ctx: &mut Ctx<'_, SsMsg<K>>) {
        ctx.broadcast(SsMsg::MedianReq { lo: self.lo, hi: self.hi });
        self.medians.clear();
        let (med, count) = self.local_median(&self.lo.clone(), &self.hi.clone());
        if let Some(m) = med {
            self.medians.push((m, count));
        }
        self.pending = self.k - 1;
        self.phase = SsPhase::AwaitMedians;
    }

    /// Leader: all medians in — finish or partition at the weighted median.
    fn after_medians(&mut self, ctx: &mut Ctx<'_, SsMsg<K>>) -> Option<Cut<K>> {
        let s: u64 = self.medians.iter().map(|&(_, c)| c).sum();
        self.ell_rem = self.ell_rem.min(s);
        if self.ell_rem == 0 {
            return Some(match self.lo {
                None => Cut::Nothing,
                Some(b) => Cut::At(b),
            });
        }
        if s <= self.ell_rem {
            return Some(match self.hi {
                None => Cut::All,
                Some(b) => Cut::At(b),
            });
        }
        self.iterations += 1;
        let pivot = weighted_median(&mut self.medians).expect("s > 0 implies medians");
        ctx.broadcast(SsMsg::GetSize { lo: self.lo, pivot });
        let (a, b) = self.range_bounds(&self.lo.clone(), &Some(pivot));
        self.sizes = (b - a) as u64;
        self.pending = self.k - 1;
        self.phase = SsPhase::AwaitSizes { pivot };
        None
    }

    /// Leader: all sizes in — update the range, maybe finish.
    fn after_sizes(&mut self, ctx: &mut Ctx<'_, SsMsg<K>>) -> Option<Cut<K>> {
        let SsPhase::AwaitSizes { pivot } = self.phase else {
            panic!("after_sizes outside AwaitSizes")
        };
        let s_prime = self.sizes;
        if s_prime == self.ell_rem {
            return Some(Cut::At(pivot));
        }
        if s_prime < self.ell_rem {
            self.ell_rem -= s_prime;
            self.lo = Some(pivot);
        } else {
            self.hi = Some(pivot);
        }
        self.request_medians(ctx);
        None
    }

    fn finish(&mut self, cut: Cut<K>, ctx: &mut Ctx<'_, SsMsg<K>>) -> Step<Vec<K>> {
        ctx.broadcast(SsMsg::Finished { cut });
        Step::Done(self.output_for(cut))
    }
}

impl<'a, K: Key> Protocol for SaukasSongProtocol<'a, K> {
    type Msg = SsMsg<K>;
    type Output = Vec<K>;

    fn on_round(&mut self, ctx: &mut Ctx<'_, SsMsg<K>>) -> Step<Vec<K>> {
        debug_assert_eq!(ctx.id(), self.id, "protocol wired to the wrong machine");
        if matches!(self.phase, SsPhase::Init) {
            let mut keys = (self.input.take().expect("init once"))();
            keys.sort_unstable();
            self.local = keys;
            if ctx.id() == self.leader {
                if ctx.k() == 1 {
                    // Select locally: the answer is the ℓ-smallest prefix.
                    let end = (self.ell as usize).min(self.local.len());
                    return Step::Done(self.local[..end].to_vec());
                }
                self.request_medians(ctx);
            } else {
                self.phase = SsPhase::Worker;
            }
            return Step::Continue;
        }

        if ctx.id() != self.leader {
            for i in 0..ctx.inbox().len() {
                let msg = ctx.inbox()[i].msg.clone();
                match msg {
                    SsMsg::MedianReq { lo, hi } => {
                        let (med, count) = self.local_median(&lo, &hi);
                        ctx.send(self.leader, SsMsg::Median { med, count });
                    }
                    SsMsg::GetSize { lo, pivot } => {
                        let (a, b) = self.range_bounds(&lo, &Some(pivot));
                        ctx.send(self.leader, SsMsg::Size((b - a) as u64));
                    }
                    SsMsg::Finished { cut } => return Step::Done(self.output_for(cut)),
                    other => panic!("worker received a leader-only message {other:?}"),
                }
            }
            return Step::Continue;
        }

        // Leader.
        for i in 0..ctx.inbox().len() {
            let msg = ctx.inbox()[i].msg.clone();
            match msg {
                SsMsg::Median { med, count } => {
                    if let Some(m) = med {
                        self.medians.push((m, count));
                    }
                    self.pending -= 1;
                    if self.pending == 0 {
                        if let Some(cut) = self.after_medians(ctx) {
                            return self.finish(cut, ctx);
                        }
                    }
                }
                SsMsg::Size(c) => {
                    self.sizes += c;
                    self.pending -= 1;
                    if self.pending == 0 {
                        if let Some(cut) = self.after_sizes(ctx) {
                            return self.finish(cut, ctx);
                        }
                    }
                }
                other => panic!("leader received an unexpected message {other:?}"),
            }
        }
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmachine::engine::run_sync;
    use kmachine::NetConfig;
    use knn_workloads::partition::{PartitionStrategy, ALL_STRATEGIES};
    use proptest::prelude::*;

    fn run_ss(shards: Vec<Vec<u64>>, ell: u64, seed: u64) -> (Vec<u64>, kmachine::RunMetrics) {
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(seed);
        let protos: Vec<SaukasSongProtocol<'_, u64>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| SaukasSongProtocol::from_keys(i, k, 0, ell, local))
            .collect();
        let out = run_sync(&cfg, protos).expect("saukas-song run");
        let mut merged: Vec<u64> = out.outputs.into_iter().flatten().collect();
        merged.sort_unstable();
        (merged, out.metrics)
    }

    fn expected(shards: &[Vec<u64>], ell: usize) -> Vec<u64> {
        let mut all: Vec<u64> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        all.truncate(ell);
        all
    }

    #[test]
    fn selects_correctly() {
        let shards = vec![vec![10, 40, 70], vec![20, 50, 80], vec![30, 60, 90]];
        let (got, _) = run_ss(shards.clone(), 4, 1);
        assert_eq!(got, expected(&shards, 4));
    }

    #[test]
    fn edge_cases() {
        assert_eq!(run_ss(vec![vec![3, 1], vec![2]], 0, 1).0, Vec::<u64>::new());
        assert_eq!(run_ss(vec![vec![3, 1], vec![2]], 3, 2).0, vec![1, 2, 3]);
        assert_eq!(run_ss(vec![vec![3, 1], vec![2]], 99, 3).0, vec![1, 2, 3]);
        assert_eq!(run_ss(vec![vec![], vec![]], 5, 4).0, Vec::<u64>::new());
        assert_eq!(run_ss(vec![vec![7, 7 + 1]], 1, 5).0, vec![7]);
        assert_eq!(run_ss(vec![vec![], vec![5], vec![]], 1, 6).0, vec![5]);
    }

    #[test]
    fn deterministic_rounds_same_for_any_seed() {
        // The protocol is deterministic: the seed must not affect anything.
        let all: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(2654435761)).collect();
        let shards = PartitionStrategy::RoundRobin.split(all, 8, 0);
        let (a, ma) = run_ss(shards.clone(), 50, 1);
        let (b, mb) = run_ss(shards, 50, 999);
        assert_eq!(a, b);
        assert_eq!(ma.rounds, mb.rounds);
        assert_eq!(ma.messages, mb.messages);
    }

    #[test]
    fn iterations_logarithmic_in_total() {
        // ≥ 1/4 of live keys discarded per iteration ⇒ ≤ log_{4/3}(n) + O(1)
        // iterations; each iteration is 4 rounds.
        let all: Vec<u64> = (0..1 << 14).map(|i: u64| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let shards = PartitionStrategy::Shuffled.split(all, 16, 3);
        let (_, m) = run_ss(shards, 256, 0);
        let bound = 4 * ((16384f64).log(4.0 / 3.0).ceil() as u64 + 4);
        assert!(m.rounds <= bound, "rounds {} > bound {bound}", m.rounds);
    }

    #[test]
    fn all_partition_strategies() {
        let all: Vec<u64> = (0..600u64).map(|i| i.wrapping_mul(48271) % 50_000).collect();
        let want = expected(std::slice::from_ref(&all), 37);
        for strat in ALL_STRATEGIES {
            let shards = strat.split(all.clone(), 7, 5);
            let (got, _) = run_ss(shards, 37, 7);
            assert_eq!(got, want, "{strat:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_matches_sequential(
            values in proptest::collection::hash_set(any::<u64>(), 0..150),
            k in 1usize..8,
            ell in 0u64..40,
            strat_idx in 0usize..5,
            seed in 0u64..200,
        ) {
            let values: Vec<u64> = values.into_iter().collect();
            let want = expected(std::slice::from_ref(&values), ell as usize);
            let shards = ALL_STRATEGIES[strat_idx].split(values, k, seed);
            let (got, _) = run_ss(shards, ell, seed);
            prop_assert_eq!(got, want);
        }
    }
}
