//! The reusable state machine for **Algorithm 1** (Finding-ℓ-Smallest-Points).
//!
//! This is the paper's distributed randomized selection, written as a
//! message-driven core so that both the standalone
//! [`SelectProtocol`](crate::protocols::selection::SelectProtocol) and the
//! ℓ-NN protocol of Algorithm 2 (which embeds a selection over the pruned
//! candidates) drive the *same* code.
//!
//! The search maintains a half-open key range `(lo, hi]` (`lo = None` means
//! −∞) and the remaining rank `ell_rem` inside that range, exactly the
//! `min`/`max`/ℓ bookkeeping of the paper's Algorithm 1; the exclusive lower
//! bound plus the globally-unique keys make the duplicate-handling explicit.

use kmachine::{MachineId, Payload};
use knn_points::Key;
use rand::{rngs::StdRng, RngExt};

/// Messages of the distributed selection protocol.
#[derive(Debug, Clone)]
pub enum SelMsg<K: Key> {
    /// Leader → all: report `(count, min, max)` of your local points.
    Query,
    /// Reply to [`SelMsg::Query`]; `min`/`max` are `None` for an empty set.
    Report {
        /// Number of local points.
        count: u64,
        /// Smallest local key.
        min: Option<K>,
        /// Largest local key.
        max: Option<K>,
    },
    /// Leader → one machine: sample a pivot uniformly from your keys in
    /// `(lo, hi]`.
    PickPivot {
        /// Exclusive lower bound (−∞ when `None`).
        lo: Option<K>,
        /// Inclusive upper bound.
        hi: K,
    },
    /// The sampled pivot.
    Pivot(K),
    /// Leader → all: how many of your keys lie in `(lo, hi]`?
    GetSize {
        /// Exclusive lower bound (−∞ when `None`).
        lo: Option<K>,
        /// Inclusive upper bound.
        hi: K,
    },
    /// Reply to [`SelMsg::GetSize`].
    Size(u64),
    /// Leader → all: the search is over; output your keys `≤ boundary`
    /// (`None` means the answer set is empty, e.g. ℓ = 0).
    Finished {
        /// Upper boundary of the ℓ-smallest set.
        boundary: Option<K>,
    },
}

impl<K: Key> Payload for SelMsg<K> {
    fn size_bits(&self) -> u64 {
        // 3 tag bits, Option<K> = K + 1 presence bit.
        match self {
            SelMsg::Query => 3,
            SelMsg::Report { .. } => 3 + 64 + 2 * (K::BITS + 1),
            SelMsg::PickPivot { .. } => 3 + 2 * K::BITS + 1,
            SelMsg::Pivot(_) => 3 + K::BITS,
            SelMsg::GetSize { .. } => 3 + 2 * K::BITS + 1,
            SelMsg::Size(_) => 3 + 64,
            SelMsg::Finished { .. } => 3 + K::BITS + 1,
        }
    }
}

/// Progress of the selection core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStatus<K: Key> {
    /// Still exchanging messages.
    Running,
    /// The boundary is known; the local output is every key `≤ boundary`.
    Finished {
        /// Upper boundary of the answer set (`None` = empty answer).
        boundary: Option<K>,
    },
}

/// Leader-side bookkeeping.
#[derive(Debug)]
struct LeaderState<K: Key> {
    phase: Phase<K>,
    /// Per-machine count of keys in the current range.
    counts: Vec<u64>,
    /// Scratch for the replies being collected.
    incoming: Vec<u64>,
    pending: usize,
    lo: Option<K>,
    hi: Option<K>,
    global_min: Option<K>,
    /// Keys still in the range (`Σ counts`).
    s: u64,
    /// Rank still to be located inside the range.
    ell_rem: u64,
    /// Completed pivot iterations (diagnostics; Theorem 2.2 says
    /// `O(log n)` whp).
    iterations: u64,
}

#[derive(Debug, Clone, Copy)]
// The shared Await- prefix mirrors the protocol's "awaiting X" round
// structure; renaming would lose that correspondence.
#[allow(clippy::enum_variant_names)]
enum Phase<K: Key> {
    AwaitReports,
    AwaitPivot,
    AwaitSizes { pivot: K },
}

/// The per-machine state machine for distributed selection.
///
/// Drive it with [`SelectCore::start`] (leader only, once) and
/// [`SelectCore::handle`] for every received message; outgoing messages are
/// pushed onto the caller's buffer so the caller controls the wire format
/// (standalone `SelMsg` or embedded inside another protocol's enum).
#[derive(Debug)]
pub struct SelectCore<K: Key> {
    id: MachineId,
    k: usize,
    leader: MachineId,
    /// Local keys, sorted ascending (the sort is local computation, free in
    /// the model; counting then costs `O(log |local|)` per request).
    local: Vec<K>,
    lstate: Option<Box<LeaderState<K>>>,
}

impl<K: Key> SelectCore<K> {
    /// Build the core for machine `id` of `k`, selecting the `ell` smallest
    /// keys overall. `local` need not be sorted.
    pub fn new(id: MachineId, k: usize, leader: MachineId, ell: u64, mut local: Vec<K>) -> Self {
        local.sort_unstable();
        let lstate = (id == leader).then(|| {
            Box::new(LeaderState {
                phase: Phase::AwaitReports,
                counts: vec![0; k],
                incoming: vec![0; k],
                pending: 0,
                lo: None,
                hi: None,
                global_min: None,
                s: 0,
                ell_rem: ell,
                iterations: 0,
            })
        });
        SelectCore { id, k, leader, local, lstate }
    }

    /// Local keys, sorted (for reuse by wrapping protocols).
    pub fn local(&self) -> &[K] {
        &self.local
    }

    /// Completed pivot iterations (leader only; 0 elsewhere).
    pub fn iterations(&self) -> u64 {
        self.lstate.as_ref().map_or(0, |l| l.iterations)
    }

    /// Leader kick-off: broadcast the stats query (and record the leader's
    /// own stats). Must be called exactly once, on the leader, before any
    /// `handle`. May already finish (k = 1).
    pub fn start(
        &mut self,
        rng: &mut StdRng,
        out: &mut Vec<(MachineId, SelMsg<K>)>,
    ) -> CoreStatus<K> {
        assert_eq!(self.id, self.leader, "start() is leader-only");
        for dst in 0..self.k {
            if dst != self.id {
                out.push((dst, SelMsg::Query));
            }
        }
        let (count, min, max) =
            (self.local.len() as u64, self.local.first().copied(), self.local.last().copied());
        let st = self.lstate.as_mut().expect("leader state");
        st.pending = self.k - 1;
        st.counts[self.id] = count;
        st.global_min = min;
        st.hi = max;
        st.s = count;
        if st.pending == 0 {
            return self.after_reports(rng, out);
        }
        CoreStatus::Running
    }

    /// Feed one received message; push any responses onto `out`.
    pub fn handle(
        &mut self,
        src: MachineId,
        msg: &SelMsg<K>,
        rng: &mut StdRng,
        out: &mut Vec<(MachineId, SelMsg<K>)>,
    ) -> CoreStatus<K> {
        match msg {
            // ---- worker side ----
            SelMsg::Query => {
                out.push((
                    src,
                    SelMsg::Report {
                        count: self.local.len() as u64,
                        min: self.local.first().copied(),
                        max: self.local.last().copied(),
                    },
                ));
                CoreStatus::Running
            }
            SelMsg::PickPivot { lo, hi } => {
                let (a, b) = self.range_bounds(lo, hi);
                assert!(b > a, "leader asked for a pivot from an empty range");
                let idx = rng.random_range(a..b);
                out.push((src, SelMsg::Pivot(self.local[idx])));
                CoreStatus::Running
            }
            SelMsg::GetSize { lo, hi } => {
                let (a, b) = self.range_bounds(lo, hi);
                out.push((src, SelMsg::Size((b - a) as u64)));
                CoreStatus::Running
            }
            SelMsg::Finished { boundary } => CoreStatus::Finished { boundary: *boundary },

            // ---- leader side ----
            SelMsg::Report { count, min, max } => {
                let st = self.lstate.as_mut().expect("Report reached a non-leader");
                debug_assert!(matches!(st.phase, Phase::AwaitReports));
                st.counts[src] = *count;
                st.s += *count;
                if let Some(m) = min {
                    if st.global_min.is_none_or(|g| *m < g) {
                        st.global_min = Some(*m);
                    }
                }
                if let Some(m) = max {
                    if st.hi.is_none_or(|g| *m > g) {
                        st.hi = Some(*m);
                    }
                }
                st.pending -= 1;
                if st.pending == 0 {
                    return self.after_reports(rng, out);
                }
                CoreStatus::Running
            }
            SelMsg::Pivot(p) => {
                debug_assert!(matches!(
                    self.lstate.as_ref().expect("leader").phase,
                    Phase::AwaitPivot
                ));
                self.broadcast_getsize(*p, out);
                CoreStatus::Running
            }
            SelMsg::Size(c) => {
                let st = self.lstate.as_mut().expect("Size reached a non-leader");
                st.incoming[src] = *c;
                st.pending -= 1;
                if st.pending == 0 {
                    return self.after_sizes(rng, out);
                }
                CoreStatus::Running
            }
        }
    }

    /// The local answer once the boundary is known: every key `≤ boundary`.
    pub fn output_for(&self, boundary: Option<K>) -> Vec<K> {
        match boundary {
            None => Vec::new(),
            Some(b) => {
                let end = self.local.partition_point(|x| *x <= b);
                self.local[..end].to_vec()
            }
        }
    }

    // ---- leader internals ----

    fn after_reports(
        &mut self,
        rng: &mut StdRng,
        out: &mut Vec<(MachineId, SelMsg<K>)>,
    ) -> CoreStatus<K> {
        let st = self.lstate.as_mut().expect("leader");
        // Cap the request at the population: if ell >= s everything is the
        // answer (and ell = 0 means an empty answer).
        st.ell_rem = st.ell_rem.min(st.s);
        self.advance(rng, out)
    }

    /// Run the decision loop: either finish, or launch the next pivot probe.
    fn advance(
        &mut self,
        rng: &mut StdRng,
        out: &mut Vec<(MachineId, SelMsg<K>)>,
    ) -> CoreStatus<K> {
        let st = self.lstate.as_mut().expect("leader");
        if st.ell_rem == 0 {
            // Everything at or below `lo` is the answer (possibly nothing).
            let boundary = st.lo;
            return self.finish(boundary, out);
        }
        if st.s <= st.ell_rem {
            debug_assert_eq!(st.s, st.ell_rem, "invariant ell_rem <= s violated");
            let boundary = st.hi;
            return self.finish(boundary, out);
        }
        st.iterations += 1;
        // Pick machine i with probability counts[i]/s (Lemma 2.1: combined
        // with the machine's uniform local draw, the pivot is uniform over
        // all in-range keys).
        let t = rng.random_range(0..st.s);
        let mut acc = 0u64;
        let mut chosen = usize::MAX;
        for (i, &c) in st.counts.iter().enumerate() {
            acc += c;
            if t < acc {
                chosen = i;
                break;
            }
        }
        debug_assert!(chosen != usize::MAX);
        let lo = st.lo;
        let hi = st.hi.expect("nonempty range has an upper bound");
        st.phase = Phase::AwaitPivot;
        if chosen == self.id {
            // Leader sampled itself: draw locally and skip two rounds.
            let (a, b) = self.range_bounds(&lo, &hi);
            debug_assert!(b > a);
            let idx = rng.random_range(a..b);
            let pivot = self.local[idx];
            self.broadcast_getsize(pivot, out);
        } else {
            out.push((chosen, SelMsg::PickPivot { lo, hi }));
        }
        CoreStatus::Running
    }

    fn broadcast_getsize(&mut self, pivot: K, out: &mut Vec<(MachineId, SelMsg<K>)>) {
        let lo = self.lstate.as_ref().expect("leader").lo;
        for dst in 0..self.k {
            if dst != self.id {
                out.push((dst, SelMsg::GetSize { lo, hi: pivot }));
            }
        }
        let (a, b) = self.range_bounds(&lo, &pivot);
        let st = self.lstate.as_mut().expect("leader");
        st.incoming.iter_mut().for_each(|c| *c = 0);
        st.incoming[self.id] = (b - a) as u64;
        st.pending = self.k - 1;
        st.phase = Phase::AwaitSizes { pivot };
        if st.pending == 0 {
            // k = 1: fall through immediately (handled by caller via Size
            // path not being needed). We advance inline.
            // Note: `after_sizes` borrows rng, so single-machine clusters
            // are resolved by the caller invoking `poke`.
        }
    }

    /// For k = 1 clusters: make progress without any messages.
    pub fn poke(
        &mut self,
        rng: &mut StdRng,
        out: &mut Vec<(MachineId, SelMsg<K>)>,
    ) -> CoreStatus<K> {
        let st = self.lstate.as_mut().expect("poke is leader-only");
        if matches!(st.phase, Phase::AwaitSizes { .. }) && st.pending == 0 {
            return self.after_sizes(rng, out);
        }
        CoreStatus::Running
    }

    fn after_sizes(
        &mut self,
        rng: &mut StdRng,
        out: &mut Vec<(MachineId, SelMsg<K>)>,
    ) -> CoreStatus<K> {
        let st = self.lstate.as_mut().expect("leader");
        let Phase::AwaitSizes { pivot } = st.phase else {
            panic!("after_sizes outside AwaitSizes");
        };
        let s_prime: u64 = st.incoming.iter().sum();
        debug_assert!(s_prime >= 1, "pivot itself lies in (lo, pivot]");
        if s_prime == st.ell_rem {
            return self.finish(Some(pivot), out);
        }
        if s_prime < st.ell_rem {
            // The whole prefix (lo, pivot] joins the answer.
            st.ell_rem -= s_prime;
            st.s -= s_prime;
            for i in 0..st.counts.len() {
                st.counts[i] -= st.incoming[i];
            }
            st.lo = Some(pivot);
        } else {
            // The answer lies within (lo, pivot].
            st.s = s_prime;
            st.counts.copy_from_slice(&st.incoming);
            st.hi = Some(pivot);
        }
        self.advance(rng, out)
    }

    fn finish(
        &mut self,
        boundary: Option<K>,
        out: &mut Vec<(MachineId, SelMsg<K>)>,
    ) -> CoreStatus<K> {
        for dst in 0..self.k {
            if dst != self.id {
                out.push((dst, SelMsg::Finished { boundary }));
            }
        }
        CoreStatus::Finished { boundary }
    }

    /// `[a, b)` index bounds of `(lo, hi]` within the sorted local keys.
    fn range_bounds(&self, lo: &Option<K>, hi: &K) -> (usize, usize) {
        let a = match lo {
            None => 0,
            Some(l) => self.local.partition_point(|x| *x <= *l),
        };
        let b = self.local.partition_point(|x| *x <= *hi);
        (a, b.max(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn message_sizes_scale_with_key_bits() {
        let q32: SelMsg<u32> = SelMsg::Query;
        assert_eq!(q32.size_bits(), 3);
        let p: SelMsg<u64> = SelMsg::Pivot(9);
        assert_eq!(p.size_bits(), 3 + 64);
        let g: SelMsg<u64> = SelMsg::GetSize { lo: None, hi: 4 };
        assert_eq!(g.size_bits(), 3 + 129);
    }

    #[test]
    fn range_bounds_on_sorted_keys() {
        let core = SelectCore::<u64>::new(1, 2, 0, 1, vec![10, 20, 30, 40]);
        assert_eq!(core.range_bounds(&None, &40), (0, 4));
        assert_eq!(core.range_bounds(&None, &25), (0, 2));
        assert_eq!(core.range_bounds(&Some(10), &30), (1, 3));
        assert_eq!(core.range_bounds(&Some(40), &40), (4, 4));
        assert_eq!(core.range_bounds(&Some(5), &9), (0, 0));
    }

    #[test]
    fn output_for_is_boundary_prefix() {
        let core = SelectCore::<u64>::new(1, 2, 0, 2, vec![30, 10, 20]);
        assert_eq!(core.output_for(Some(20)), vec![10, 20]);
        assert_eq!(core.output_for(Some(5)), Vec::<u64>::new());
        assert_eq!(core.output_for(None), Vec::<u64>::new());
        assert_eq!(core.output_for(Some(99)), vec![10, 20, 30]);
    }

    #[test]
    fn single_machine_cluster_finishes_in_start() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Vec::new();
        let mut core = SelectCore::<u64>::new(0, 1, 0, 3, vec![5, 1, 4, 2, 3]);
        // start() gathers only its own stats, then runs the whole search
        // locally: pivots need no messages when k = 1... except the pivot
        // query loop still runs through `poke`.
        let mut status = core.start(&mut rng, &mut out);
        let mut guard = 0;
        while status == CoreStatus::Running {
            status = core.poke(&mut rng, &mut out);
            guard += 1;
            assert!(guard < 1000, "k=1 selection did not converge");
        }
        let CoreStatus::Finished { boundary } = status else { unreachable!() };
        assert_eq!(core.output_for(boundary), vec![1, 2, 3]);
        assert!(out.is_empty(), "no messages for k = 1");
    }

    #[test]
    fn ell_zero_yields_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Vec::new();
        let mut core = SelectCore::<u64>::new(0, 1, 0, 0, vec![5, 1]);
        let status = core.start(&mut rng, &mut out);
        assert_eq!(status, CoreStatus::Finished { boundary: None });
        assert_eq!(core.output_for(None), Vec::<u64>::new());
    }
}
