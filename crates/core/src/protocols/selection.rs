//! **Algorithm 1** as a standalone [`Protocol`]: Finding-ℓ-Smallest-Points.
//!
//! Theorem 2.2: `O(log n)` rounds and `O(k log n)` messages, both with high
//! probability, for n keys distributed arbitrarily over k machines.

use kmachine::{Ctx, MachineId, Protocol, Step};
use knn_points::Key;

use super::select_core::{CoreStatus, SelMsg, SelectCore};

/// Per-machine instance of distributed randomized selection.
///
/// Every machine outputs the subset of *its own* keys that belong to the
/// global ℓ-smallest set; the union over machines is exactly that set
/// (keys are assumed distinct, which [`knn_points::DistKey`] guarantees by
/// construction).
pub struct SelectProtocol<K: Key> {
    core: SelectCore<K>,
    leader: MachineId,
    /// Pivot iterations observed (leader only) — exposed for the
    /// Theorem 2.2 experiments.
    pub iterations: u64,
}

impl<K: Key> SelectProtocol<K> {
    /// Machine `id` of `k`, selecting the `ell` smallest keys; `local` is
    /// this machine's share (any order, any size, may be empty).
    pub fn new(id: MachineId, k: usize, leader: MachineId, ell: u64, local: Vec<K>) -> Self {
        SelectProtocol { core: SelectCore::new(id, k, leader, ell, local), leader, iterations: 0 }
    }
}

impl<K: Key> Protocol for SelectProtocol<K> {
    type Msg = SelMsg<K>;
    type Output = Vec<K>;

    fn on_round(&mut self, ctx: &mut Ctx<'_, SelMsg<K>>) -> Step<Vec<K>> {
        let mut out = Vec::new();
        let mut status = CoreStatus::Running;
        if ctx.round() == 0 {
            if ctx.id() == self.leader {
                status = self.core.start(ctx.rng(), &mut out);
                // Single-machine clusters run the whole search locally.
                while ctx.k() == 1 && status == CoreStatus::Running {
                    status = self.core.poke(ctx.rng(), &mut out);
                }
            }
        } else {
            for i in 0..ctx.inbox().len() {
                let env = &ctx.inbox()[i];
                let (src, msg) = (env.src, env.msg.clone());
                let st = self.core.handle(src, &msg, ctx.rng(), &mut out);
                if let CoreStatus::Finished { .. } = st {
                    status = st;
                }
            }
        }
        for (dst, msg) in out {
            ctx.send(dst, msg);
        }
        match status {
            CoreStatus::Running => Step::Continue,
            CoreStatus::Finished { boundary } => {
                self.iterations = self.core.iterations();
                Step::Done(self.core.output_for(boundary))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmachine::engine::{run_sync, run_threaded};
    use kmachine::{BandwidthMode, NetConfig};
    use knn_workloads::partition::{PartitionStrategy, ALL_STRATEGIES};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    /// Run distributed selection and return the merged, sorted output.
    fn run_selection(
        shards: Vec<Vec<u64>>,
        ell: u64,
        seed: u64,
    ) -> (Vec<u64>, kmachine::RunMetrics) {
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(seed);
        let protos: Vec<SelectProtocol<u64>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| SelectProtocol::new(i, k, 0, ell, local))
            .collect();
        let out = run_sync(&cfg, protos).expect("selection run");
        let mut merged: Vec<u64> = out.outputs.into_iter().flatten().collect();
        merged.sort_unstable();
        (merged, out.metrics)
    }

    fn expected_smallest(shards: &[Vec<u64>], ell: usize) -> Vec<u64> {
        let mut all: Vec<u64> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        all.truncate(ell);
        all
    }

    #[test]
    fn selects_smallest_across_machines() {
        let shards = vec![vec![10, 40, 70], vec![20, 50, 80], vec![30, 60, 90]];
        let (got, _) = run_selection(shards.clone(), 4, 1);
        assert_eq!(got, expected_smallest(&shards, 4));
    }

    #[test]
    fn ell_equals_n_returns_everything() {
        let shards = vec![vec![3, 1], vec![2]];
        let (got, _) = run_selection(shards, 3, 2);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn ell_larger_than_n_returns_everything() {
        let shards = vec![vec![3, 1], vec![2]];
        let (got, _) = run_selection(shards, 100, 3);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn ell_zero_returns_nothing() {
        let shards = vec![vec![3, 1], vec![2]];
        let (got, _) = run_selection(shards, 0, 4);
        assert!(got.is_empty());
    }

    #[test]
    fn empty_machines_are_fine() {
        let shards = vec![vec![], vec![5, 1, 9], vec![], vec![7]];
        let (got, _) = run_selection(shards, 2, 5);
        assert_eq!(got, vec![1, 5]);
    }

    #[test]
    fn all_data_on_one_machine() {
        let shards = vec![(0..100u64).rev().collect(), vec![], vec![]];
        let (got, _) = run_selection(shards, 10, 6);
        assert_eq!(got, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn single_machine_cluster() {
        let shards = vec![vec![9, 2, 7, 4]];
        let (got, m) = run_selection(shards, 2, 7);
        assert_eq!(got, vec![2, 4]);
        assert_eq!(m.messages, 0, "k=1 needs no communication");
        assert_eq!(m.rounds, 0);
    }

    #[test]
    fn adversarial_sorted_contiguous_layout() {
        // Machine 0 holds exactly the answer; the protocol must not be
        // confused by the fully-sorted layout.
        let all: Vec<u64> = (0..256).collect();
        let shards = PartitionStrategy::Contiguous.split(all, 8, 0);
        let (got, _) = run_selection(shards, 16, 8);
        assert_eq!(got, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn every_partition_strategy_gives_same_answer() {
        let all: Vec<u64> = (0..300u64).map(|i| i * 7919 % 100_000).collect();
        let expected = expected_smallest(std::slice::from_ref(&all), 25);
        for strat in ALL_STRATEGIES {
            let shards = strat.split(all.clone(), 6, 42);
            let (got, _) = run_selection(shards, 25, 9);
            assert_eq!(got, expected, "{strat:?}");
        }
    }

    #[test]
    fn rounds_scale_logarithmically_not_linearly() {
        // Theorem 2.2: O(log n) rounds. With n = 4096 keys the search
        // should take on the order of 4·log2(n) ≈ 48 rounds, nowhere near
        // n rounds. Allow generous slack for randomness over 5 seeds.
        let mut rng = StdRng::seed_from_u64(77);
        let all: Vec<u64> = (0..4096u64).map(|_| rng.random::<u64>()).collect();
        for seed in 0..5 {
            let shards = PartitionStrategy::Shuffled.split(all.clone(), 16, seed);
            let (_, m) = run_selection(shards, 100, seed);
            assert!(m.rounds <= 150, "rounds = {} at seed {seed}", m.rounds);
        }
    }

    #[test]
    fn message_count_is_o_k_log_n() {
        let mut rng = StdRng::seed_from_u64(78);
        let all: Vec<u64> = (0..4096u64).map(|_| rng.random::<u64>()).collect();
        let k = 32;
        let shards = PartitionStrategy::Shuffled.split(all, k, 0);
        let (_, m) = run_selection(shards, 64, 1);
        // Each iteration costs ~3k messages; O(log n) iterations.
        let bound = 3 * (k as u64) * 40;
        assert!(m.messages <= bound, "messages = {} > {bound}", m.messages);
    }

    #[test]
    fn threaded_engine_agrees_with_sync() {
        let shards = vec![vec![10u64, 40, 70, 15], vec![20, 50, 80], vec![30, 60, 90, 5, 6]];
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(13);
        let mk = |shards: &[Vec<u64>]| {
            shards
                .iter()
                .enumerate()
                .map(|(i, local)| SelectProtocol::new(i, k, 0, 5, local.clone()))
                .collect::<Vec<_>>()
        };
        let a = run_sync(&cfg, mk(&shards)).unwrap();
        let b = run_threaded(&cfg, mk(&shards)).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(a.metrics.messages, b.metrics.messages);
    }

    #[test]
    fn non_zero_leader_works() {
        let shards = vec![vec![10u64, 40], vec![20, 50], vec![30, 60]];
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(21);
        let protos: Vec<SelectProtocol<u64>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| SelectProtocol::new(i, k, 2, 3, local))
            .collect();
        let out = run_sync(&cfg, protos).unwrap();
        let mut merged: Vec<u64> = out.outputs.into_iter().flatten().collect();
        merged.sort_unstable();
        assert_eq!(merged, vec![10, 20, 30]);
    }

    #[test]
    fn unlimited_bandwidth_does_not_change_output() {
        let shards = vec![vec![5u64, 3, 8], vec![1, 9, 2]];
        let k = shards.len();
        let mk = |shards: &[Vec<u64>]| {
            shards
                .iter()
                .enumerate()
                .map(|(i, local)| SelectProtocol::new(i, k, 0, 3, local.clone()))
                .collect::<Vec<_>>()
        };
        let a = run_sync(&NetConfig::new(k).with_seed(1), mk(&shards)).unwrap();
        let b = run_sync(
            &NetConfig::new(k).with_seed(1).with_bandwidth(BandwidthMode::Unlimited),
            mk(&shards),
        )
        .unwrap();
        assert_eq!(a.outputs, b.outputs);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_sequential_selection(
            values in proptest::collection::hash_set(any::<u64>(), 0..150),
            k in 1usize..9,
            ell_frac in 0.0f64..1.2,
            strat_idx in 0usize..5,
            seed in 0u64..500,
        ) {
            let values: Vec<u64> = values.into_iter().collect();
            let ell = (values.len() as f64 * ell_frac) as u64;
            let expected = expected_smallest(std::slice::from_ref(&values), ell as usize);
            let shards = ALL_STRATEGIES[strat_idx].split(values, k, seed);
            let (got, _) = run_selection(shards, ell, seed);
            prop_assert_eq!(got, expected);
        }
    }
}
