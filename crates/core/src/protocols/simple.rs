//! The **simple method** — the baseline the paper's experiment compares
//! against (§3).
//!
//! Every machine finds its local ℓ nearest points, ships *all ℓ of them* to
//! the leader, and the leader selects the final ℓ among the `kℓ` received
//! candidates. Under the model's `B = Θ(log n)` bandwidth this costs
//! `Θ(ℓ)` rounds (each link carries O(1) keys per round) and `Θ(kℓ)`
//! messages — exponentially more rounds than Algorithm 2's `O(log ℓ)`.

use kmachine::{
    Ctx, MachineId, Payload, Protocol, SnapshotReader, SnapshotWriter, Step, ENVELOPE_HEADER_BITS,
};
use knn_points::{Key, NumericKey};

use super::knn::KeySource;

/// Messages of the simple gather baseline.
#[derive(Debug, Clone)]
pub enum SimpleMsg<K: Key> {
    /// A chunk of the sender's local top-ℓ keys; `last` marks the final
    /// chunk. Chunks are sized by the runner to one link-round each, so the
    /// paper's O(kℓ) message count is reproduced faithfully rather than
    /// bypassed with one giant message.
    Batch {
        /// The keys in this chunk (ascending within the sender).
        keys: Vec<K>,
        /// True on the sender's final chunk.
        last: bool,
    },
    /// Leader → all: the ℓ-th smallest key overall; output your keys
    /// `≤ boundary` (`None` = empty answer).
    Boundary {
        /// Upper bound of the answer set.
        boundary: Option<K>,
    },
}

impl<K: NumericKey> Payload for SimpleMsg<K> {
    fn size_bits(&self) -> u64 {
        match self {
            SimpleMsg::Batch { keys, .. } => ENVELOPE_HEADER_BITS + K::BITS * keys.len() as u64,
            SimpleMsg::Boundary { .. } => 2 + K::BITS,
        }
    }

    /// A wire-level lie perturbs the announced key *values* through their
    /// total-order ordinals, keyed on the deterministic `word` — variant
    /// structure, key counts, and [`Payload::size_bits`] are unchanged, so
    /// the lie is engine-invariant and only the data is wrong.
    fn tamper(&mut self, word: u64) -> bool {
        let perturb = |k: &mut K, salt: u64| {
            let bits = tamper_mix(word ^ salt);
            let shifted = if K::BITS > 64 {
                (bits as u128) << 64
            } else {
                u128::from(bits) & ord_mask::<K>()
            };
            *k = K::from_ordinal(k.to_ordinal() ^ shifted);
        };
        match self {
            SimpleMsg::Batch { keys, .. } => {
                for (i, k) in keys.iter_mut().enumerate() {
                    perturb(k, i as u64);
                }
                !keys.is_empty()
            }
            SimpleMsg::Boundary { boundary } => match boundary {
                Some(b) => {
                    perturb(b, u64::MAX);
                    true
                }
                None => false,
            },
        }
    }
}

/// Nonzero splitmix64 finalizer for [`SimpleMsg::tamper`]: a lie must
/// actually change the value.
fn tamper_mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) | 1
}

/// Mask keeping a perturbed ordinal inside the key's `K::BITS`-bit domain.
fn ord_mask<K: NumericKey>() -> u128 {
    if K::BITS >= 128 {
        u128::MAX
    } else {
        (1u128 << K::BITS) - 1
    }
}

/// Per-machine instance of the simple gather baseline.
///
/// `K: NumericKey` (not just [`Key`]) so the protocol can serialize its
/// state through the keys' total-order ordinals for
/// [`Protocol::checkpoint`] / [`Protocol::restore`].
pub struct SimpleProtocol<'a, K: NumericKey> {
    id: MachineId,
    leader: MachineId,
    ell: u64,
    /// Keys per [`SimpleMsg::Batch`]; pick
    /// `⌊(B − ENVELOPE_HEADER_BITS) / K::BITS⌋.max(1)` to model one full
    /// link-round per message.
    chunk: usize,
    input: Option<KeySource<'a, K>>,
    /// Local top-ℓ, sorted.
    candidates: Vec<K>,
    // Leader scratch.
    gathered: Vec<K>,
    /// Leader: which machines have delivered their final chunk (`true` for
    /// the leader itself). Per-sender — not a count — so an observably
    /// crashed sender can be written off without hanging the gather.
    finished: Vec<bool>,
}

impl<'a, K: NumericKey> SimpleProtocol<'a, K> {
    /// Machine `id`, gathering everyone's local top-`ell` at `leader`.
    pub fn new(
        id: MachineId,
        leader: MachineId,
        ell: u64,
        chunk: usize,
        input: KeySource<'a, K>,
    ) -> Self {
        assert!(chunk >= 1, "chunk must be at least 1 key");
        SimpleProtocol {
            id,
            leader,
            ell,
            chunk,
            input: Some(input),
            candidates: Vec::new(),
            gathered: Vec::new(),
            finished: Vec::new(),
        }
    }

    /// Materialized-keys constructor for tests.
    pub fn from_keys(
        id: MachineId,
        leader: MachineId,
        ell: u64,
        chunk: usize,
        keys: Vec<K>,
    ) -> Self {
        Self::new(id, leader, ell, chunk, Box::new(move || keys))
    }

    fn finish(&self, boundary: Option<K>) -> Vec<K> {
        match boundary {
            None => Vec::new(),
            Some(b) => {
                let end = self.candidates.partition_point(|x| *x <= b);
                self.candidates[..end].to_vec()
            }
        }
    }
}

impl<'a, K: NumericKey> Protocol for SimpleProtocol<'a, K> {
    type Msg = SimpleMsg<K>;
    type Output = Vec<K>;

    /// Non-leaders have a provable silent phase (below), so relaxed
    /// delivery has real pipelining to buy under [`kmachine::Engine::Auto`].
    const QUIET_AWARE: bool = true;

    /// A non-leader sends its entire local top-ℓ in round 0 and then only
    /// ever *receives* (the boundary broadcast terminates it without a
    /// reply), so once round 0 has run it is silent forever — the leader
    /// may drain the gather and select without waiting for the senders'
    /// empty transports. The leader itself must stay unpromised: its
    /// boundary broadcast depends on when the last batch arrives.
    fn quiet_until(&self) -> Option<u64> {
        (self.id != self.leader && self.input.is_none()).then_some(u64::MAX)
    }

    /// A crashed machine's candidates are simply missing from the gather:
    /// the protocol still terminates (the leader writes off observably
    /// crashed senders) and every survivor's output stays well-defined, so
    /// the crash is salvageable with an empty contribution.
    fn on_crash(&mut self) -> Option<Vec<K>> {
        Some(Vec::new())
    }

    /// Serializable once round 0 has materialized the input: candidates,
    /// the leader's gather scratch, and the per-sender finish flags, all
    /// keys as total-order ordinals. Round 0 itself is not checkpointable —
    /// the input closure cannot be serialized — so a pre-round-0 crash
    /// replays from the pristine protocol instead.
    fn checkpoint(&self) -> Option<Vec<u8>> {
        if self.input.is_some() {
            return None;
        }
        let mut w = SnapshotWriter::new();
        w.u64(self.candidates.len() as u64);
        for k in &self.candidates {
            w.u128(k.to_ordinal());
        }
        w.u64(self.gathered.len() as u64);
        for k in &self.gathered {
            w.u128(k.to_ordinal());
        }
        w.u64(self.finished.len() as u64);
        for &f in &self.finished {
            w.flag(f);
        }
        Some(w.finish())
    }

    fn restore(&mut self, blob: &[u8]) -> bool {
        let mut r = SnapshotReader::new(blob);
        let read_keys = |r: &mut SnapshotReader<'_>| -> Option<Vec<K>> {
            let n = r.u64()?;
            (0..n).map(|_| r.u128().map(K::from_ordinal)).collect()
        };
        let Some(candidates) = read_keys(&mut r) else { return false };
        let Some(gathered) = read_keys(&mut r) else { return false };
        let Some(n) = r.u64() else { return false };
        let Some(finished) = (0..n).map(|_| r.flag()).collect::<Option<Vec<bool>>>() else {
            return false;
        };
        if !r.done() {
            return false;
        }
        self.input = None;
        self.candidates = candidates;
        self.gathered = gathered;
        self.finished = finished;
        true
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, SimpleMsg<K>>) -> Step<Vec<K>> {
        debug_assert_eq!(ctx.id(), self.id, "protocol wired to the wrong machine");
        if ctx.round() == 0 {
            let keys = (self.input.take().expect("round 0 runs once"))();
            self.candidates = knn_selection::smallest_k_sorted(&keys, self.ell as usize, ctx.rng());
            if ctx.id() != self.leader {
                // Stream the whole local top-ℓ; the bandwidth-limited link
                // delivers it over ⌈ℓ/chunk⌉ rounds.
                if self.candidates.is_empty() {
                    ctx.send(self.leader, SimpleMsg::Batch { keys: Vec::new(), last: true });
                } else {
                    let chunks: Vec<&[K]> = self.candidates.chunks(self.chunk).collect();
                    let n = chunks.len();
                    for (i, chunk) in chunks.into_iter().enumerate() {
                        ctx.send(
                            self.leader,
                            SimpleMsg::Batch { keys: chunk.to_vec(), last: i + 1 == n },
                        );
                    }
                }
                return Step::Continue;
            }
            if ctx.k() == 1 {
                return Step::Done(self.candidates.clone());
            }
            self.gathered = self.candidates.clone();
            self.finished = vec![false; ctx.k()];
            self.finished[self.id] = true;
            return Step::Continue;
        }

        if ctx.id() == self.leader {
            for env in ctx.inbox() {
                let SimpleMsg::Batch { keys, last } = &env.msg else {
                    panic!("leader received a non-batch message");
                };
                self.gathered.extend_from_slice(keys);
                if *last {
                    self.finished[env.src] = true;
                }
            }
            // A sender counts as finished once its final chunk arrived —
            // or once it is observably crashed: a fail-stop machine will
            // never complete its stream, so waiting would deadlock. Its
            // in-flight chunks may still arrive after we finish; fail-stop
            // recovery accepts that loss and the answer is flagged
            // degraded by the runner.
            let all_in = (0..ctx.k()).all(|s| self.finished[s] || ctx.crashed(s));
            if all_in {
                // All kℓ candidates are in: select the final ℓ.
                self.gathered.sort_unstable();
                let boundary = if self.ell == 0 || self.gathered.is_empty() {
                    None
                } else {
                    let idx = (self.ell as usize).min(self.gathered.len()) - 1;
                    Some(self.gathered[idx])
                };
                ctx.broadcast(SimpleMsg::Boundary { boundary });
                return Step::Done(self.finish(boundary));
            }
            return Step::Continue;
        }

        if let Some(SimpleMsg::Boundary { boundary }) = ctx.first_from(self.leader) {
            return Step::Done(self.finish(*boundary));
        }
        Step::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmachine::engine::{run_sync, run_threaded};
    use kmachine::{BandwidthMode, FaultPlan, NetConfig};
    use knn_workloads::partition::{PartitionStrategy, ALL_STRATEGIES};
    use proptest::prelude::*;

    fn run_simple(
        shards: Vec<Vec<u64>>,
        ell: u64,
        seed: u64,
        chunk: usize,
    ) -> (Vec<u64>, kmachine::RunMetrics) {
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(seed);
        let protos: Vec<SimpleProtocol<'_, u64>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| SimpleProtocol::from_keys(i, 0, ell, chunk, local))
            .collect();
        let out = run_sync(&cfg, protos).expect("simple run");
        let mut merged: Vec<u64> = out.outputs.into_iter().flatten().collect();
        merged.sort_unstable();
        (merged, out.metrics)
    }

    fn expected(shards: &[Vec<u64>], ell: usize) -> Vec<u64> {
        let mut all: Vec<u64> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        all.truncate(ell);
        all
    }

    #[test]
    fn gathers_and_selects() {
        let shards = vec![vec![100, 5, 200], vec![7, 300, 2], vec![50, 60, 1]];
        let (got, _) = run_simple(shards.clone(), 4, 1, 4);
        assert_eq!(got, expected(&shards, 4));
    }

    #[test]
    fn all_strategies_and_edges() {
        let all: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(48271) % 10_000).collect();
        for strat in ALL_STRATEGIES {
            let shards = strat.split(all.clone(), 5, 3);
            let (got, _) = run_simple(shards, 20, 3, 4);
            assert_eq!(got, expected(std::slice::from_ref(&all), 20), "{strat:?}");
        }
        // Edge cases.
        assert_eq!(run_simple(vec![vec![], vec![]], 5, 0, 4).0, Vec::<u64>::new());
        assert_eq!(run_simple(vec![vec![1], vec![]], 0, 0, 4).0, Vec::<u64>::new());
        assert_eq!(run_simple(vec![vec![2, 1]], 9, 0, 4).0, vec![1, 2]);
    }

    #[test]
    fn rounds_scale_linearly_with_ell() {
        // Θ(ℓ) rounds: with 128-bit batches of 1 key over a 512-bit link...
        // chunk=1 gives one key per message; bandwidth 128 bits/round gives
        // one message per round — so rounds ≈ ℓ.
        let k = 4;
        let data: Vec<u64> = (0..4096).collect();
        let mk = |ell: u64| {
            let shards = PartitionStrategy::Shuffled.split(data.clone(), k, 1);
            let cfg = NetConfig::new(k)
                .with_seed(1)
                .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 97 });
            let protos: Vec<SimpleProtocol<'_, u64>> = shards
                .into_iter()
                .enumerate()
                .map(|(i, local)| SimpleProtocol::from_keys(i, 0, ell, 1, local))
                .collect();
            run_sync(&cfg, protos).unwrap().metrics.rounds
        };
        let r64 = mk(64);
        let r256 = mk(256);
        assert!(r64 >= 64, "r64 = {r64}");
        let ratio = r256 as f64 / r64 as f64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "rounds should scale ~4x when ℓ quadruples: {r64} -> {r256}"
        );
    }

    #[test]
    fn message_count_is_k_times_ell_over_chunk() {
        let k = 6;
        let ell = 32u64;
        let shards: Vec<Vec<u64>> =
            (0..k as u64).map(|i| (0..200).map(|j| i * 1000 + j).collect()).collect();
        let (_, m) = run_simple(shards, ell, 2, 1);
        // (k-1) machines send ell keys each + final boundary broadcast.
        assert_eq!(m.messages, (k as u64 - 1) * ell + (k as u64 - 1));
    }

    #[test]
    fn leader_writes_off_a_crashed_worker() {
        // Machine 1 crashes before it ever sends: the leader observes the
        // horizon, selects over the surviving candidates, and the crashed
        // machine salvages an empty output — no stall, no error.
        let shards = vec![vec![10u64, 20, 30], vec![1, 2, 3], vec![100, 200, 300]];
        let cfg = NetConfig::new(3).with_faults(FaultPlan::default().with_crash(1, 0));
        let protos: Vec<SimpleProtocol<'_, u64>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, local)| SimpleProtocol::from_keys(i, 0, 4, 2, local))
            .collect();
        let out = run_sync(&cfg, protos).expect("crash is salvaged in-run");
        assert_eq!(out.faults.crashed, vec![1]);
        assert!(out.outputs[1].is_empty());
        let mut merged: Vec<u64> = out.outputs.into_iter().flatten().collect();
        merged.sort_unstable();
        // Machine 1's keys are lost; the best 4 of the survivors win.
        assert_eq!(merged, vec![10, 20, 30, 100]);
    }

    #[test]
    fn tamper_lies_without_changing_shape_or_size() {
        use knn_points::{Dist, DistKey, PointId};
        let mut batch = SimpleMsg::Batch { keys: vec![10u64, 20, 30], last: true };
        let clean_bits = batch.size_bits();
        assert!(batch.tamper(0xDEAD_BEEF));
        let SimpleMsg::Batch { keys, last } = &batch else { panic!("variant changed") };
        assert!(*last, "flags are not data; they must survive");
        assert_eq!(keys.len(), 3);
        assert_ne!(keys, &[10, 20, 30], "a lie must change the values");
        assert_eq!(batch.size_bits(), clean_bits, "size accounting must survive tampering");
        // The same word fabricates the same lie (engine invariance).
        let mut again = SimpleMsg::Batch { keys: vec![10u64, 20, 30], last: true };
        again.tamper(0xDEAD_BEEF);
        let SimpleMsg::Batch { keys: k2, .. } = &again else { unreachable!() };
        assert_eq!(keys, k2);
        // A DistKey lie perturbs the distance half and keeps the id, so
        // audits can still attribute the claim to a point.
        let key = DistKey::new(Dist::from_u64(7), PointId(42));
        let mut b = SimpleMsg::Boundary { boundary: Some(key) };
        assert!(b.tamper(1));
        let SimpleMsg::Boundary { boundary: Some(lied) } = b else { panic!("variant changed") };
        assert_ne!(lied, key);
        assert_eq!(lied.id, PointId(42));
        // An empty batch and a None boundary have nothing to lie about.
        assert!(!SimpleMsg::<u64>::Batch { keys: vec![], last: true }.tamper(1));
        assert!(!SimpleMsg::<u64>::Boundary { boundary: None }.tamper(1));
    }

    #[test]
    fn checkpoint_round_trips_and_gates_on_materialization() {
        let mut p = SimpleProtocol::<u64>::from_keys(0, 0, 4, 2, vec![30, 10, 20]);
        assert!(p.checkpoint().is_none(), "round-0 closures cannot be serialized");
        p.input = None;
        p.candidates = vec![10, 20, 30];
        p.gathered = vec![10, 20, 30, 5];
        p.finished = vec![true, false, true];
        let blob = p.checkpoint().expect("materialized state is serializable");
        let mut q = SimpleProtocol::<u64>::from_keys(0, 0, 4, 2, vec![99]);
        assert!(q.restore(&blob));
        assert_eq!(q.candidates, vec![10, 20, 30]);
        assert_eq!(q.gathered, vec![10, 20, 30, 5]);
        assert_eq!(q.finished, vec![true, false, true]);
        assert!(q.input.is_none());
        assert!(!q.restore(&blob[..blob.len() - 1]), "truncated blobs are rejected");
    }

    #[test]
    fn leader_rejoin_is_byte_identical_to_fault_free() {
        // Tight bandwidth stretches the gather over many rounds, so the
        // leader's outage interrupts it mid-stream; the checkpointed rejoin
        // must replay to the exact fault-free answer and costs.
        let shards = vec![vec![10u64, 20, 30, 40], vec![1, 2, 3, 4], vec![100, 200, 300, 400]];
        let mk = |shards: &[Vec<u64>]| {
            shards
                .iter()
                .enumerate()
                .map(|(i, l)| SimpleProtocol::from_keys(i, 0, 6, 1, l.clone()))
                .collect::<Vec<_>>()
        };
        let base = NetConfig::new(3)
            .with_seed(9)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 161 });
        let clean = run_sync(&base, mk(&shards)).unwrap();
        let out = run_sync(&base.clone().with_rejoin(0, 2, 4), mk(&shards)).unwrap();
        assert_eq!(out.outputs, clean.outputs);
        assert_eq!(out.metrics.messages, clean.metrics.messages);
        assert_eq!(out.metrics.bits, clean.metrics.bits);
        assert_eq!(out.recovery.rejoined, vec![0]);
        assert!(out.recovery.checkpoints > 0);
        assert!(out.faults.crashed.is_empty(), "a rejoin is a pause, not a fail-stop");
    }

    #[test]
    fn engines_agree() {
        let shards = vec![vec![9u64, 8, 7], vec![1, 2, 3], vec![4, 5, 6]];
        let k = shards.len();
        let cfg = NetConfig::new(k).with_seed(5);
        let mk = |shards: &[Vec<u64>]| {
            shards
                .iter()
                .enumerate()
                .map(|(i, l)| SimpleProtocol::from_keys(i, 0, 4, 2, l.clone()))
                .collect::<Vec<_>>()
        };
        let a = run_sync(&cfg, mk(&shards)).unwrap();
        let b = run_threaded(&cfg, mk(&shards)).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(a.metrics.messages, b.metrics.messages);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_simple_matches_sequential(
            values in proptest::collection::hash_set(any::<u64>(), 0..120),
            k in 1usize..7,
            ell in 0u64..30,
            chunk in 1usize..9,
            seed in 0u64..200,
        ) {
            let values: Vec<u64> = values.into_iter().collect();
            let want = expected(std::slice::from_ref(&values), ell as usize);
            let shards = PartitionStrategy::RoundRobin.split(values, k, seed);
            let (got, _) = run_simple(shards, ell, seed, chunk);
            prop_assert_eq!(got, want);
        }
    }
}
