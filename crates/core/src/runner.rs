//! Query orchestration: pick an algorithm, an engine, and an election; run
//! one distributed ℓ-NN query; collect outputs and exact communication
//! costs.

use std::time::Duration;

use kmachine::leader::{RandRankFlood, RandRankStar};
use kmachine::{
    AdversaryPlan, AuditMetrics, BandwidthMode, DeliveryMode, Engine, EngineError, FaultMetrics,
    FaultPlan, MachineId, NetConfig, RecoveryMetrics, RecoveryPlan, RunMetrics, SkewMetrics,
    ENVELOPE_HEADER_BITS, MUX_TAG_BITS,
};
use knn_points::{Dataset, DistKey, Key, Metric, Point};

use crate::audit;
use crate::error::CoreError;
use crate::local::{dist_keys, IndexBackend};
use crate::protocols::approx::ApproxKnnProtocol;
use crate::protocols::binsearch::BinSearchProtocol;
use crate::protocols::knn::{KnnParams, KnnProtocol, KnnStats};
use crate::protocols::saukas_song::SaukasSongProtocol;
use crate::protocols::simple::SimpleProtocol;

/// Which distributed algorithm answers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// The paper's Algorithm 2: `O(log ℓ)` rounds whp.
    Knn,
    /// The paper's baseline (§3): gather every machine's local ℓ-NN at the
    /// leader; `Θ(ℓ)` rounds.
    Simple,
    /// Saukas–Song deterministic selection \[16\]: `O(log(kℓ))` rounds.
    SaukasSong,
    /// Value-domain bisection \[3, 18\]: `O(log V)` rounds.
    BinSearch,
}

impl Algorithm {
    /// All algorithms, for comparison sweeps.
    pub const ALL: [Algorithm; 4] =
        [Algorithm::Knn, Algorithm::Simple, Algorithm::SaukasSong, Algorithm::BinSearch];

    /// Short stable name for tables and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Knn => "alg2-knn",
            Algorithm::Simple => "simple",
            Algorithm::SaukasSong => "saukas-song",
            Algorithm::BinSearch => "binsearch",
        }
    }
}

/// How the leader is chosen before the main protocol runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ElectionKind {
    /// Machine 0 is the leader by convention (ids are common knowledge in
    /// the k-machine model); zero communication. This matches how the
    /// paper states its bounds, with the election charged separately.
    Fixed,
    /// Random-rank election through machine 0: 2 rounds, `2(k−1)` messages.
    Star,
    /// All-to-all random-rank flood: 1 round, `k(k−1)` messages.
    Flood,
}

/// Deadline-bounded, deterministic retry discipline for fault-aware
/// re-runs. Every budget is counted in **simulated rounds**, never wall
/// clock, so retries stay reproducible across engines and pool sizes.
///
/// The default policy replicates the historical behavior: retry until the
/// cluster is down to one machine, with no backoff and no deadline.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Maximum engine runs per query (the first attempt included). `0` is
    /// treated as `1`.
    pub max_attempts: u32,
    /// Total simulated-round budget across failed runs and backoff waits.
    /// Exceeding it surfaces [`CoreError::DeadlineExceeded`].
    pub deadline_rounds: u64,
    /// Exponential backoff unit: retry `n` (1-based) waits
    /// `backoff_base · 2^(n−1)` simulated rounds plus a deterministic
    /// jitter in `[0, backoff_base)`. `0` disables backoff entirely.
    pub backoff_base: u64,
    /// Seed of the jitter stream (split from the attempt number, so two
    /// policies with the same seed produce the same waits).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: u32::MAX,
            deadline_rounds: u64::MAX,
            backoff_base: 0,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Simulated rounds to wait before retry `attempt` (1-based count of
    /// *retries*, i.e. the second engine run is `attempt == 1`).
    pub fn backoff_rounds(&self, attempt: u32) -> u64 {
        if self.backoff_base == 0 {
            return 0;
        }
        let shift = attempt.saturating_sub(1).min(32);
        let base = self.backoff_base.saturating_mul(1u64 << shift);
        base.saturating_add(splitmix64(self.jitter_seed ^ u64::from(attempt)) % self.backoff_base)
    }
}

/// SplitMix64 — the standard 64-bit finalizer; one multiply-xor-shift chain
/// per draw keeps jitter deterministic and seed-local.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Running tally of a retry loop: attempts made and simulated rounds spent
/// on failed runs plus backoff waits.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryState {
    /// Engine runs started so far (≥ 1 once the loop is entered).
    pub attempts: u32,
    /// Rounds burned by failed runs and backoff waits.
    pub spent_rounds: u64,
}

impl RetryState {
    pub(crate) fn new() -> Self {
        RetryState { attempts: 1, spent_rounds: 0 }
    }

    /// Account a failed (or partial) run that consumed `rounds`, then
    /// either authorize the next attempt — charging its backoff wait — or
    /// surface [`CoreError::DeadlineExceeded`].
    pub(crate) fn next_attempt(
        &mut self,
        policy: &RetryPolicy,
        rounds: u64,
    ) -> Result<(), CoreError> {
        self.spent_rounds = self.spent_rounds.saturating_add(rounds);
        let wait = policy.backoff_rounds(self.attempts);
        self.spent_rounds = self.spent_rounds.saturating_add(wait);
        if self.attempts >= policy.max_attempts.max(1) || self.spent_rounds > policy.deadline_rounds
        {
            return Err(CoreError::DeadlineExceeded {
                attempts: self.attempts,
                spent_rounds: self.spent_rounds,
                max_attempts: policy.max_attempts.max(1),
                deadline_rounds: policy.deadline_rounds,
            });
        }
        self.attempts += 1;
        Ok(())
    }
}

/// Everything configurable about a query run.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Simulation engine: sync for exact accounting, threaded for
    /// latency-modeling wall clock, event for barrier-free parallel wall
    /// clock, or [`Engine::Auto`] to pick per run from k, the per-round
    /// payload budget, and the pool size. All engines return bit-identical
    /// answers and metrics; the `KNN_ENGINE` environment variable
    /// overrides this field for every run.
    pub engine: Engine,
    /// Link bandwidth.
    pub bandwidth: BandwidthMode,
    /// Delivery discipline of the event engine: [`DeliveryMode::Relaxed`]
    /// lets machines pipeline past quiet peers (answers and metrics are
    /// identical; [`QueryOutcome::skew`] reports the realized overlap).
    /// Ignored by the sync and threaded engines; the `KNN_DELIVERY`
    /// environment variable overrides this field for every run.
    pub delivery: DeliveryMode,
    /// Master seed for all protocol randomness.
    pub seed: u64,
    /// Distance metric.
    pub metric: Metric,
    /// Algorithm 2 tunables.
    pub params: KnnParams,
    /// Leader election.
    pub election: ElectionKind,
    /// Synthetic per-round latency (threaded engine only).
    pub round_latency: Duration,
    /// Stall safety limit.
    pub max_rounds: u64,
    /// Deterministic fault injection applied to every query run (see
    /// [`FaultPlan`]). Elections run fault-free — leader choice is part of
    /// the control plane, and re-elections after a leader crash must not
    /// themselves crash. When a machine crashes unsalvageably, the runner
    /// retries the query over the surviving shards and flags the answer
    /// [`QueryOutcome::degraded`].
    pub faults: FaultPlan,
    /// Crash-recovery plan (checkpoint cadence plus scheduled machine
    /// rejoins) handed to the engines with every query run. Rejoins are
    /// invisible to the answer: the machine is restored from its last
    /// checkpoint and replays the missed rounds in-engine. The realized
    /// work is reported through [`QueryOutcome::replayed_rounds`].
    pub recovery: RecoveryPlan,
    /// Deadline-bounded retry discipline for crash re-runs.
    pub retry: RetryPolicy,
    /// Deterministic Byzantine adversary (see [`AdversaryPlan`]): lying
    /// machines, equivocators, and corrupt links. Arming any of it turns on
    /// the full defense stack for every query run — chained per-link
    /// integrity digests at the engine layer, plus a semantic audit of each
    /// answer against the shard-local oracles at this layer. A caught liar
    /// or corrupt-link source is **quarantined** and the query re-runs over
    /// the honest survivors (flagged [`QueryOutcome::degraded`], accounted
    /// in [`QueryOutcome::audit`]); a wrong answer is never returned
    /// silently. Elections stay adversary-free, like [`Self::faults`].
    pub adversary: AdversaryPlan,
    /// Which local index each shard builds for the batched serving path
    /// (see [`crate::local::IndexBackend`]): the exact per-type structure
    /// (default) or the approximate NSW graph with its `ef`/`m` recall
    /// knobs. The sequential [`run_query`] path always scans the full shard
    /// — it is the exact oracle the conformance suite checks the index
    /// against — so this field only shapes
    /// [`crate::session::QuerySession`] candidates and audit truth.
    pub backend: IndexBackend,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            engine: Engine::Sync,
            bandwidth: BandwidthMode::Enforce {
                bits_per_round: kmachine::config::DEFAULT_BANDWIDTH_BITS,
            },
            delivery: DeliveryMode::Exact,
            seed: 0,
            metric: Metric::Euclidean,
            params: KnnParams::default(),
            election: ElectionKind::Fixed,
            round_latency: Duration::ZERO,
            max_rounds: 10_000_000,
            faults: FaultPlan::default(),
            recovery: RecoveryPlan::default(),
            retry: RetryPolicy::default(),
            adversary: AdversaryPlan::default(),
            backend: IndexBackend::default(),
        }
    }
}

impl QueryOptions {
    /// Fault-free network config: elections and other control-plane runs
    /// use this so a [`FaultPlan`] never disturbs leader choice.
    pub(crate) fn fault_free_config(&self, k: usize) -> NetConfig {
        NetConfig::new(k)
            .with_seed(self.seed)
            .with_bandwidth(self.bandwidth)
            .with_delivery(self.delivery)
            .with_round_latency(self.round_latency)
            .with_max_rounds(self.max_rounds)
    }

    pub(crate) fn net_config(&self, k: usize) -> NetConfig {
        self.fault_free_config(k)
            .with_faults(self.faults.clone())
            .with_recovery(self.recovery.clone())
            .with_adversary(self.adversary.clone())
    }

    /// Config for a (re)run over the surviving subset `alive` (original
    /// machine ids, ascending): the fault, recovery, and adversary plans
    /// are projected onto the survivors, so the crash (or quarantined liar)
    /// that triggered the retry is gone.
    pub(crate) fn subset_config(&self, alive: &[MachineId]) -> NetConfig {
        self.fault_free_config(alive.len())
            .with_faults(self.faults.project(alive))
            .with_recovery(self.recovery.project(alive))
            .with_adversary(self.adversary.project(alive))
    }

    /// Whether original machine `m` lies at the *source*: a round-0 liar or
    /// an equivocator perturbs its materialized local distances (the wire
    /// tamper alone cannot fake the machine's own self-computed answer
    /// slice, so scheduled-from-round-0 lying is modeled where the claims
    /// are actually born). Keyed on the original machine id, so the lie is
    /// identical across quarantine re-runs and the batched path.
    pub(crate) fn lies_at_source(&self, m: MachineId) -> bool {
        self.adversary.equivocates(m) || self.adversary.lie_round(m) == 0
    }

    /// Keys per batch message such that one batch fills one link-round.
    pub fn simple_chunk(&self) -> usize {
        self.chunk_after_overhead(ENVELOPE_HEADER_BITS)
    }

    /// Keys per batch message on the multiplexed serving path, where every
    /// message additionally carries its query tag.
    pub fn mux_chunk(&self) -> usize {
        self.chunk_after_overhead(ENVELOPE_HEADER_BITS + MUX_TAG_BITS)
    }

    /// Keys per message after `overhead` framing bits, filling one
    /// link-round.
    fn chunk_after_overhead(&self, overhead: u64) -> usize {
        match self.bandwidth {
            BandwidthMode::Unlimited => 64,
            BandwidthMode::Enforce { bits_per_round } => {
                ((bits_per_round.saturating_sub(overhead)) / DistKey::BITS).max(1) as usize
            }
        }
    }
}

/// Result of one distributed query, before point resolution.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Per-machine answer keys (machine `i`'s members of the ℓ-NN set).
    pub local_keys: Vec<Vec<DistKey>>,
    /// Communication costs of the main protocol.
    pub metrics: RunMetrics,
    /// Pipelining evidence when the main protocol ran under relaxed
    /// delivery on the event engine (machine skew, promise counters);
    /// empty otherwise.
    pub skew: SkewMetrics,
    /// Wall-clock time of the main protocol run.
    pub wall: Duration,
    /// The elected leader.
    pub leader: MachineId,
    /// Election costs (`None` under [`ElectionKind::Fixed`]).
    pub election_metrics: Option<RunMetrics>,
    /// Algorithm 2 diagnostics (`None` for the baselines).
    pub stats: Option<KnnStats>,
    /// True when the answer may be missing candidates: one or more shards
    /// crashed (salvaged in-run or excluded by a retry) and the selection
    /// ran over the survivors.
    pub degraded: bool,
    /// Shards whose candidates actually reached the selection
    /// (`== shards.len()` on a healthy run).
    pub shards_used: usize,
    /// Realized faults of the (final) protocol run. Crash retries run over
    /// progressively smaller clusters; this records the run that produced
    /// the answer.
    pub faults: FaultMetrics,
    /// True when the answer needed recovery machinery: a crash retry, a
    /// checkpoint-restored rejoin, or in-engine round replay.
    pub recovered: bool,
    /// Engine runs this query took (1 on a healthy run).
    pub attempts: u32,
    /// Rounds re-executed from checkpoints during rejoins (final run).
    pub replayed_rounds: u64,
    /// Checkpoint/rejoin accounting of the run that produced the answer.
    pub recovery: RecoveryMetrics,
    /// Byzantine-audit accounting across the whole quarantine-and-retry
    /// loop: digests verified by every engine run, integrity violations
    /// caught, semantic audits executed, and suspects quarantined. Empty on
    /// adversary-free queries; identical on every engine.
    pub audit: AuditMetrics,
}

/// Elect a leader (when requested) and account its cost. The serving layer
/// ([`crate::session::QuerySession`]) calls this once per session and then
/// amortizes the elected leader across every query it runs.
pub(crate) fn elect(
    k: usize,
    opts: &QueryOptions,
) -> Result<(MachineId, Option<RunMetrics>), CoreError> {
    let cfg = opts.fault_free_config(k);
    match opts.election {
        ElectionKind::Fixed => Ok((0, None)),
        ElectionKind::Star => {
            let out = opts.engine.run(&cfg, (0..k).map(|_| RandRankStar::new()).collect())?;
            Ok((out.outputs[0], Some(out.metrics)))
        }
        ElectionKind::Flood => {
            let out = opts.engine.run(&cfg, (0..k).map(|_| RandRankFlood::new()).collect())?;
            Ok((out.outputs[0], Some(out.metrics)))
        }
    }
}

/// Run one ℓ-NN query over `shards` with the chosen algorithm.
///
/// Distance computation happens inside each machine's round 0, so under the
/// threaded engine it runs genuinely in parallel — the effect the paper's
/// Figure 2 attributes its measured speedup to.
///
/// Under a [`QueryOptions::faults`] plan the query **recovers from
/// crashes**: when a run fails with [`EngineError::Crashed`], the dead
/// machine is excluded, the leader is re-elected over the survivors if it
/// was the casualty, and the query re-runs on the surviving shards (with
/// the fault plan projected onto them). The answer is then flagged
/// [`QueryOutcome::degraded`]. Non-crash faults (a lossy link exhausting
/// its retry budget) are not retried — they surface as the typed error.
///
/// Under a [`QueryOptions::adversary`] plan the query additionally
/// **recovers from lies**: every successful run's answer is audited
/// against the shard-local oracles ([`crate::audit::audit_claims`]) before
/// it is returned, and an engine run killed by a corrupt link
/// ([`EngineError::IntegrityViolation`]) is treated like a crash of the
/// corrupting sender. Suspects are quarantined and the query re-runs over
/// the honest survivors, under the same [`RetryPolicy`] budget; when
/// quarantining would empty the cluster the typed
/// [`CoreError::AuditFailed`] surfaces instead of an uncertified answer.
pub fn run_query<P: Point>(
    shards: &[Dataset<P>],
    query: &P,
    ell: usize,
    algorithm: Algorithm,
    opts: &QueryOptions,
) -> Result<QueryOutcome, CoreError> {
    let k = shards.len();
    if k == 0 {
        return Err(CoreError::EmptyCluster);
    }
    let (mut leader, election_metrics) = elect(k, opts)?;
    let mut alive: Vec<MachineId> = (0..k).collect();
    let mut retry = RetryState::new();
    let mut audit_total = AuditMetrics::default();
    loop {
        let sub_leader = alive.iter().position(|&m| m == leader).expect("leader is alive");
        match run_query_over(shards, query, ell, algorithm, opts, &alive, sub_leader) {
            Ok((sub_keys, metrics, skew, wall, faults, recovery, run_audit, stats)) => {
                audit_total.digests_verified += run_audit.digests_verified;
                if !opts.adversary.is_empty() {
                    audit_total.audits_run += 1;
                    let truth = honest_top(shards, query, ell, opts.metric, &alive, &faults);
                    let report = audit::audit_claims(&truth, &sub_keys, ell, opts.seed);
                    if !report.ok {
                        audit_total.suspects_quarantined += report.suspects.len() as u64;
                        let suspects: Vec<MachineId> =
                            report.suspects.iter().map(|&s| alive[s]).collect();
                        if suspects.len() >= alive.len() {
                            return Err(CoreError::AuditFailed { suspects, alive: alive.len() });
                        }
                        retry.next_attempt(&opts.retry, metrics.rounds)?;
                        alive.retain(|m| !suspects.contains(m));
                        if !alive.contains(&leader) {
                            let (sub, _) = elect(alive.len(), opts)?;
                            leader = alive[sub];
                        }
                        continue;
                    }
                }
                let shards_used = alive.len() - faults.crashed.len();
                let mut local_keys = vec![Vec::new(); k];
                for (i, keys) in sub_keys.into_iter().enumerate() {
                    local_keys[alive[i]] = keys;
                }
                return Ok(QueryOutcome {
                    local_keys,
                    metrics,
                    skew,
                    wall,
                    leader,
                    election_metrics,
                    stats,
                    degraded: shards_used < k,
                    shards_used,
                    faults,
                    recovered: retry.attempts > 1 || recovery.any(),
                    attempts: retry.attempts,
                    replayed_rounds: recovery.replayed_rounds,
                    recovery,
                    audit: audit_total,
                });
            }
            Err(CoreError::Engine(EngineError::Crashed { machine, round, .. }))
                if alive.len() > 1 =>
            {
                retry.next_attempt(&opts.retry, round)?;
                // `machine` indexes the failed run's subset.
                let dead = alive.remove(machine);
                if dead == leader {
                    // The coordinator died: re-elect over the survivors
                    // (fault-free, like every election) and report the new
                    // leader under its original id.
                    let (sub, _) = elect(alive.len(), opts)?;
                    leader = alive[sub];
                }
            }
            Err(CoreError::Engine(EngineError::IntegrityViolation { src, round, .. }))
                if alive.len() > 1 =>
            {
                // A corrupt link is pinned on its sender: quarantine the
                // source and retry over the survivors, exactly like a
                // crash. Projection drops every corrupt-link entry touching
                // the quarantined machine, so the loop terminates.
                audit_total.integrity_violations += 1;
                audit_total.suspects_quarantined += 1;
                retry.next_attempt(&opts.retry, round)?;
                let dead = alive.remove(src);
                if dead == leader {
                    let (sub, _) = elect(alive.len(), opts)?;
                    leader = alive[sub];
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// The audit's shard-local oracles for one subset run: survivor `i`'s true
/// sorted top-ℓ, recomputed honestly from the real shard — or empty when
/// the machine crashed in-run (it legitimately contributed nothing).
fn honest_top<P: Point>(
    shards: &[Dataset<P>],
    query: &P,
    ell: usize,
    metric: Metric,
    alive: &[MachineId],
    faults: &FaultMetrics,
) -> Vec<Vec<DistKey>> {
    alive
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            if faults.crashed.contains(&i) {
                return Vec::new();
            }
            let mut keys = dist_keys(&shards[m].records, query, metric);
            keys.sort_unstable();
            keys.truncate(ell);
            keys
        })
        .collect()
}

/// Everything one subset run yields: per-survivor answer keys (subset
/// order), costs, and diagnostics.
type SubRun = (
    Vec<Vec<DistKey>>,
    RunMetrics,
    SkewMetrics,
    Duration,
    FaultMetrics,
    RecoveryMetrics,
    AuditMetrics,
    Option<KnnStats>,
);

/// One attempt of [`run_query`] over the surviving subset `alive`; machine
/// `i` of the run works shard `alive[i]`, and `leader` is a subset index.
fn run_query_over<P: Point>(
    shards: &[Dataset<P>],
    query: &P,
    ell: usize,
    algorithm: Algorithm,
    opts: &QueryOptions,
    alive: &[MachineId],
    leader: MachineId,
) -> Result<SubRun, CoreError> {
    let k = alive.len();
    let cfg = opts.subset_config(alive);
    let metric = opts.metric;
    let ell64 = ell as u64;
    let adv_seed = opts.adversary.adversary_seed;

    // A round-0 liar (or equivocator) lies where its claims are born: its
    // materialized local distances are perturbed by the pure seeded stream,
    // identically on every engine and across quarantine re-runs.
    let source = |i: usize| {
        let m = alive[i];
        let records = &shards[m].records;
        let lying = opts.lies_at_source(m);
        Box::new(move || {
            let keys = dist_keys(records, query, metric);
            if lying {
                audit::perturb_input(keys, adv_seed, m)
            } else {
                keys
            }
        }) as Box<dyn FnOnce() -> Vec<DistKey> + Send + '_>
    };

    match algorithm {
        Algorithm::Knn => {
            let protos: Vec<KnnProtocol<'_, DistKey>> = (0..k)
                .map(|i| KnnProtocol::new(i, k, leader, ell64, opts.params, source(i)))
                .collect();
            let out = opts.engine.run(&cfg, protos)?;
            let stats = out.outputs[leader].stats;
            Ok((
                out.outputs.into_iter().map(|o| o.keys).collect(),
                out.metrics,
                out.skew,
                out.wall,
                out.faults,
                out.recovery,
                out.audit,
                stats,
            ))
        }
        Algorithm::Simple => {
            let chunk = opts.simple_chunk();
            let protos: Vec<SimpleProtocol<'_, DistKey>> =
                (0..k).map(|i| SimpleProtocol::new(i, leader, ell64, chunk, source(i))).collect();
            let out = opts.engine.run(&cfg, protos)?;
            Ok((
                out.outputs,
                out.metrics,
                out.skew,
                out.wall,
                out.faults,
                out.recovery,
                out.audit,
                None,
            ))
        }
        Algorithm::SaukasSong => {
            // Mirror the other baselines: operate on the local top-ℓ
            // candidates (a machine can contribute at most ℓ answers).
            let protos: Vec<SaukasSongProtocol<'_, DistKey>> = (0..k)
                .map(|i| {
                    let m = alive[i];
                    let records = &shards[m].records;
                    let lying = opts.lies_at_source(m);
                    let input = Box::new(move || {
                        let mut keys = dist_keys(records, query, metric);
                        if lying {
                            keys = audit::perturb_input(keys, adv_seed, m);
                        }
                        if keys.len() > ell {
                            keys.select_nth_unstable(ell.max(1) - 1);
                            keys.truncate(ell);
                        }
                        keys
                    })
                        as Box<dyn FnOnce() -> Vec<DistKey> + Send + '_>;
                    SaukasSongProtocol::new(i, k, leader, ell64, input)
                })
                .collect();
            let out = opts.engine.run(&cfg, protos)?;
            Ok((
                out.outputs,
                out.metrics,
                out.skew,
                out.wall,
                out.faults,
                out.recovery,
                out.audit,
                None,
            ))
        }
        Algorithm::BinSearch => {
            let protos: Vec<BinSearchProtocol<'_, DistKey>> =
                (0..k).map(|i| BinSearchProtocol::new(i, k, leader, ell64, source(i))).collect();
            let out = opts.engine.run(&cfg, protos)?;
            Ok((
                out.outputs,
                out.metrics,
                out.skew,
                out.wall,
                out.faults,
                out.recovery,
                out.audit,
                None,
            ))
        }
    }
}

/// Result of an approximate (pruning-only) query.
#[derive(Debug)]
pub struct ApproxOutcome {
    /// Per-machine surviving keys (globally: every key ≤ the prune
    /// threshold; a superset of the exact answer when `contains_exact`).
    pub local_keys: Vec<Vec<DistKey>>,
    /// Total survivors across the cluster.
    pub total: u64,
    /// Whether the survivor set provably contains the exact ℓ-NN.
    pub contains_exact: bool,
    /// Communication costs.
    pub metrics: RunMetrics,
    /// Pipelining evidence of a relaxed event run (empty otherwise).
    pub skew: SkewMetrics,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// The elected leader.
    pub leader: MachineId,
    /// Election costs, if an election ran.
    pub election_metrics: Option<RunMetrics>,
    /// Realized faults of the run. The approx path does **not** retry over
    /// survivors — an unsalvageable crash surfaces as
    /// [`EngineError::Crashed`]; use the exact path when you need crash
    /// recovery.
    pub faults: FaultMetrics,
    /// Checkpoint/rejoin accounting of the run (rejoins under a
    /// [`RecoveryPlan`] work on the approx path too).
    pub recovery: RecoveryMetrics,
    /// Integrity-digest accounting when an [`AdversaryPlan`] armed the
    /// links. The approx path runs **unaudited** — it does not inject
    /// source-level lies and does not quarantine; a corrupt link still
    /// surfaces as [`EngineError::IntegrityViolation`]. Use the exact path
    /// when you need the semantic audit.
    pub audit: AuditMetrics,
}

/// Run one *approximate* ℓ-NN query: Algorithm 2's sampling + pruning
/// stages only (see [`crate::protocols::approx`]). Returns ≈1.75ℓ
/// candidates in fewer rounds than the exact protocol.
pub fn run_approx_query<P: Point>(
    shards: &[Dataset<P>],
    query: &P,
    ell: usize,
    opts: &QueryOptions,
) -> Result<ApproxOutcome, CoreError> {
    let k = shards.len();
    if k == 0 {
        return Err(CoreError::EmptyCluster);
    }
    let (leader, election_metrics) = elect(k, opts)?;
    let cfg = opts.net_config(k);
    let metric = opts.metric;
    let protos: Vec<ApproxKnnProtocol<'_, DistKey>> = (0..k)
        .map(|i| {
            let records = &shards[i].records;
            let input = Box::new(move || dist_keys(records, query, metric))
                as Box<dyn FnOnce() -> Vec<DistKey> + Send + '_>;
            ApproxKnnProtocol::new(i, k, leader, ell as u64, opts.params, input)
        })
        .collect();
    let out = opts.engine.run(&cfg, protos)?;
    let total = out.outputs[leader].total;
    let contains_exact = out.outputs[leader].contains_exact;
    Ok(ApproxOutcome {
        local_keys: out.outputs.into_iter().map(|o| o.keys).collect(),
        total,
        contains_exact,
        metrics: out.metrics,
        skew: out.skew,
        wall: out.wall,
        leader,
        election_metrics,
        faults: out.faults,
        recovery: out.recovery,
        audit: out.audit,
    })
}

/// Merge per-machine answer keys into one globally sorted answer,
/// remembering which machine holds each point.
pub fn merge_answers(local_keys: &[Vec<DistKey>]) -> Vec<(DistKey, MachineId)> {
    let mut all: Vec<(DistKey, MachineId)> = local_keys
        .iter()
        .enumerate()
        .flat_map(|(m, keys)| keys.iter().map(move |&key| (key, m)))
        .collect();
    all.sort_unstable_by_key(|&(key, _)| key);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_points::{brute_force_knn, IdAssigner, ScalarPoint};
    use knn_workloads::PartitionStrategy;

    fn shards(values: &[u64], k: usize) -> Vec<Dataset<ScalarPoint>> {
        let mut ids = IdAssigner::new(0);
        let data = Dataset::from_points(values.iter().map(|&v| ScalarPoint(v)).collect(), &mut ids);
        PartitionStrategy::RoundRobin
            .split(data.records, k, 0)
            .into_iter()
            .map(Dataset::new)
            .collect()
    }

    #[test]
    fn all_algorithms_agree_with_brute_force() {
        let values: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(48271) % 100_000).collect();
        let sh = shards(&values, 6);
        let all_records: Vec<_> = sh.iter().flat_map(|d| d.records.clone()).collect();
        let q = ScalarPoint(33_333);
        let want: Vec<_> = brute_force_knn(&all_records, &q, 9, Metric::Euclidean)
            .into_iter()
            .map(|(key, _)| key)
            .collect();
        for algo in Algorithm::ALL {
            let out = run_query(&sh, &q, 9, algo, &QueryOptions::default()).unwrap();
            let got: Vec<DistKey> =
                merge_answers(&out.local_keys).into_iter().map(|(key, _)| key).collect();
            assert_eq!(got, want, "{algo:?}");
        }
    }

    #[test]
    fn elections_change_cost_not_answer() {
        let values: Vec<u64> = (0..200).collect();
        let sh = shards(&values, 5);
        let q = ScalarPoint(77);
        let mut answers = Vec::new();
        for election in [ElectionKind::Fixed, ElectionKind::Star, ElectionKind::Flood] {
            let opts = QueryOptions { election, ..Default::default() };
            let out = run_query(&sh, &q, 4, Algorithm::Knn, &opts).unwrap();
            match election {
                ElectionKind::Fixed => assert!(out.election_metrics.is_none()),
                ElectionKind::Star => {
                    assert_eq!(out.election_metrics.as_ref().unwrap().messages, 8)
                }
                ElectionKind::Flood => {
                    assert_eq!(out.election_metrics.as_ref().unwrap().messages, 20)
                }
            }
            answers.push(
                merge_answers(&out.local_keys).into_iter().map(|(k, _)| k).collect::<Vec<_>>(),
            );
        }
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn event_and_auto_engines_answer_identically() {
        let values: Vec<u64> = (0..600u64).map(|i| i.wrapping_mul(2654435761) % 80_000).collect();
        let sh = shards(&values, 6);
        let q = ScalarPoint(41_000);
        let reference = run_query(&sh, &q, 8, Algorithm::Knn, &QueryOptions::default()).unwrap();
        for engine in [Engine::Threaded, Engine::Event, Engine::Auto] {
            let opts = QueryOptions { engine, ..Default::default() };
            let out = run_query(&sh, &q, 8, Algorithm::Knn, &opts).unwrap();
            assert_eq!(out.local_keys, reference.local_keys, "{engine:?}");
            assert_eq!(out.metrics, reference.metrics, "{engine:?}");
        }
    }

    #[test]
    fn healthy_run_is_not_degraded() {
        let sh = shards(&(0..100u64).collect::<Vec<_>>(), 4);
        let out =
            run_query(&sh, &ScalarPoint(50), 5, Algorithm::Knn, &QueryOptions::default()).unwrap();
        assert!(!out.degraded);
        assert_eq!(out.shards_used, 4);
        assert!(!out.faults.any());
    }

    #[test]
    fn leader_crash_recovers_with_reelection() {
        let values: Vec<u64> = (0..300u64).map(|i| i.wrapping_mul(48271) % 40_000).collect();
        let sh = shards(&values, 5);
        let q = ScalarPoint(9_999);
        let opts =
            QueryOptions { faults: FaultPlan::default().with_crash(0, 0), ..Default::default() };
        for algo in Algorithm::ALL {
            let out = run_query(&sh, &q, 6, algo, &opts).unwrap();
            assert!(out.degraded, "{algo:?}");
            assert_eq!(out.shards_used, 4, "{algo:?}");
            assert_ne!(out.leader, 0, "{algo:?}: a dead leader cannot coordinate");
            assert!(out.local_keys[0].is_empty(), "{algo:?}: the dead shard contributes nothing");
            // The degraded answer is exact over the surviving shards.
            let survivors: Vec<_> =
                sh.iter().enumerate().filter(|&(i, _)| i != 0).map(|(_, d)| d.clone()).collect();
            let want = run_query(&survivors, &q, 6, algo, &QueryOptions::default()).unwrap();
            let got: Vec<DistKey> =
                merge_answers(&out.local_keys).into_iter().map(|(key, _)| key).collect();
            let want: Vec<DistKey> =
                merge_answers(&want.local_keys).into_iter().map(|(key, _)| key).collect();
            assert_eq!(got, want, "{algo:?}");
        }
    }

    #[test]
    fn worker_crash_under_simple_salvages_in_run() {
        // A crashed worker under the gather baseline does not force a
        // retry: the leader observes the crash horizon and selects over
        // the surviving candidates in the same run.
        let values: Vec<u64> = (0..200).collect();
        let sh = shards(&values, 5);
        let q = ScalarPoint(77);
        let opts =
            QueryOptions { faults: FaultPlan::default().with_crash(2, 0), ..Default::default() };
        let out = run_query(&sh, &q, 8, Algorithm::Simple, &opts).unwrap();
        assert!(out.degraded);
        assert_eq!(out.faults.crashed, vec![2], "salvaged in-run, not excluded by retry");
        assert_eq!(out.shards_used, 4);
        assert_eq!(out.leader, 0, "the leader survived; no re-election");
        assert!(out.local_keys[2].is_empty());
        let survivors: Vec<_> =
            sh.iter().enumerate().filter(|&(i, _)| i != 2).map(|(_, d)| d.clone()).collect();
        let want =
            run_query(&survivors, &q, 8, Algorithm::Simple, &QueryOptions::default()).unwrap();
        assert_eq!(
            merge_answers(&out.local_keys).iter().map(|&(key, _)| key).collect::<Vec<_>>(),
            merge_answers(&want.local_keys).iter().map(|&(key, _)| key).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn retry_accounting_rides_the_outcome() {
        let sh = shards(&(0..200u64).collect::<Vec<_>>(), 5);
        let healthy =
            run_query(&sh, &ScalarPoint(50), 5, Algorithm::Knn, &QueryOptions::default()).unwrap();
        assert!(!healthy.recovered);
        assert_eq!(healthy.attempts, 1);
        assert_eq!(healthy.replayed_rounds, 0);
        let opts =
            QueryOptions { faults: FaultPlan::default().with_crash(0, 0), ..Default::default() };
        let out = run_query(&sh, &ScalarPoint(50), 5, Algorithm::Knn, &opts).unwrap();
        assert!(out.recovered, "a crash retry is a recovery");
        assert_eq!(out.attempts, 2, "one failed run, one successful re-run");
    }

    #[test]
    fn retry_deadline_surfaces_typed_error() {
        let sh = shards(&(0..100u64).collect::<Vec<_>>(), 4);
        let opts = QueryOptions {
            faults: FaultPlan::default().with_crash(0, 0),
            retry: RetryPolicy { max_attempts: 1, ..Default::default() },
            ..Default::default()
        };
        let err = run_query(&sh, &ScalarPoint(1), 4, Algorithm::Knn, &opts).unwrap_err();
        assert!(
            matches!(err, CoreError::DeadlineExceeded { attempts: 1, .. }),
            "attempt budget of 1 forbids the recovery re-run: {err:?}"
        );
        let opts = QueryOptions {
            faults: FaultPlan::default().with_crash(0, 0),
            retry: RetryPolicy { deadline_rounds: 0, backoff_base: 8, ..Default::default() },
            ..Default::default()
        };
        let err = run_query(&sh, &ScalarPoint(1), 4, Algorithm::Knn, &opts).unwrap_err();
        assert!(
            matches!(err, CoreError::DeadlineExceeded { spent_rounds, .. } if spent_rounds > 0),
            "backoff waits count against the round deadline: {err:?}"
        );
    }

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let policy = RetryPolicy { backoff_base: 16, jitter_seed: 7, ..Default::default() };
        let waits: Vec<u64> = (1..=4).map(|a| policy.backoff_rounds(a)).collect();
        // Deterministic: same policy, same waits.
        assert_eq!(waits, (1..=4).map(|a| policy.backoff_rounds(a)).collect::<Vec<_>>());
        for (i, &w) in waits.iter().enumerate() {
            let base = 16u64 << i;
            assert!(
                w >= base && w < base + 16,
                "retry {}: {w} outside [{base}, {})",
                i + 1,
                base + 16
            );
        }
        assert_eq!(RetryPolicy::default().backoff_rounds(3), 0, "no backoff by default");
    }

    #[test]
    fn link_down_is_not_retried() {
        let sh = shards(&(0..100u64).collect::<Vec<_>>(), 3);
        let opts =
            QueryOptions { faults: FaultPlan::default().with_loss(1000, 2), ..Default::default() };
        let err = run_query(&sh, &ScalarPoint(1), 4, Algorithm::Simple, &opts).unwrap_err();
        assert!(
            matches!(err, CoreError::Engine(EngineError::LinkDown { .. })),
            "a dead link is a typed error, not a hang or a retry: {err:?}"
        );
    }

    #[test]
    fn empty_cluster_is_an_error() {
        let sh: Vec<Dataset<ScalarPoint>> = Vec::new();
        let err = run_query(&sh, &ScalarPoint(0), 3, Algorithm::Knn, &QueryOptions::default())
            .unwrap_err();
        assert_eq!(err, CoreError::EmptyCluster);
    }

    #[test]
    fn simple_chunk_respects_bandwidth() {
        let opts = QueryOptions {
            bandwidth: BandwidthMode::Enforce { bits_per_round: 512 },
            ..Default::default()
        };
        assert_eq!(opts.simple_chunk(), 3); // (512-33)/128 = 3
        let tiny = QueryOptions {
            bandwidth: BandwidthMode::Enforce { bits_per_round: 64 },
            ..Default::default()
        };
        assert_eq!(tiny.simple_chunk(), 1);
    }

    /// Shards holding contiguous value ranges, so tests can aim queries at
    /// (or away from) a specific machine's points.
    fn range_shards(ranges: &[std::ops::Range<u64>]) -> Vec<Dataset<ScalarPoint>> {
        let mut ids = IdAssigner::new(0);
        ranges
            .iter()
            .map(|r| Dataset::from_points(r.clone().map(ScalarPoint).collect(), &mut ids))
            .collect()
    }

    fn answer_of(local_keys: &[Vec<DistKey>]) -> Vec<DistKey> {
        merge_answers(local_keys).into_iter().map(|(key, _)| key).collect()
    }

    #[test]
    fn liar_is_quarantined_and_answer_matches_survivors_for_every_algorithm() {
        // Machine 1 owns the query's whole neighborhood, so its round-0 lie
        // is always material: the audit must catch it, quarantine it, and
        // certify the re-run over the honest survivors.
        let sh = range_shards(&[0..100, 100..200, 200..300, 300..400]);
        let q = ScalarPoint(150);
        let opts = QueryOptions {
            adversary: AdversaryPlan::default().with_lie(1, 0),
            ..Default::default()
        };
        let survivors: Vec<_> =
            sh.iter().enumerate().filter(|&(i, _)| i != 1).map(|(_, d)| d.clone()).collect();
        for algo in Algorithm::ALL {
            let out = run_query(&sh, &q, 6, algo, &opts).unwrap();
            assert!(out.degraded, "{algo:?}");
            assert_eq!(out.shards_used, 3, "{algo:?}");
            assert!(out.recovered, "{algo:?}");
            assert_eq!(out.attempts, 2, "{algo:?}: one audited failure, one certified re-run");
            assert_eq!(out.audit.audits_run, 2, "{algo:?}");
            assert_eq!(out.audit.suspects_quarantined, 1, "{algo:?}");
            assert!(out.local_keys[1].is_empty(), "{algo:?}: the liar contributes nothing");
            let want = run_query(&survivors, &q, 6, algo, &QueryOptions::default()).unwrap();
            assert_eq!(answer_of(&out.local_keys), answer_of(&want.local_keys), "{algo:?}");
        }
    }

    #[test]
    fn equivocator_is_caught_like_a_round_zero_liar() {
        let sh = range_shards(&[0..100, 100..200, 200..300]);
        let opts = QueryOptions {
            adversary: AdversaryPlan::default().with_equivocate(2),
            ..Default::default()
        };
        let out = run_query(&sh, &ScalarPoint(250), 5, Algorithm::Knn, &opts).unwrap();
        assert!(out.degraded);
        assert_eq!(out.audit.suspects_quarantined, 1);
        assert!(out.local_keys[2].is_empty());
    }

    #[test]
    fn immaterial_lie_passes_the_audit_with_a_certified_answer() {
        // The liar's points are nowhere near the query: inflating them
        // changes nothing the selection sees, the claims equal the honest
        // truth, and the audit certifies the first run.
        let sh = range_shards(&[0..100, 10_000..10_100, 100..200]);
        let opts = QueryOptions {
            adversary: AdversaryPlan::default().with_lie(1, 0),
            ..Default::default()
        };
        let out = run_query(&sh, &ScalarPoint(50), 5, Algorithm::Knn, &opts).unwrap();
        assert!(!out.degraded);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.audit.audits_run, 1);
        assert_eq!(out.audit.suspects_quarantined, 0);
        let want =
            run_query(&sh, &ScalarPoint(50), 5, Algorithm::Knn, &QueryOptions::default()).unwrap();
        assert_eq!(answer_of(&out.local_keys), answer_of(&want.local_keys));
    }

    #[test]
    fn everyone_lying_surfaces_audit_failed() {
        // Both machines own part of the answer and both lie: quarantining
        // every suspect would empty the cluster, so no certifiable answer
        // exists — the typed error surfaces instead of a wrong answer.
        let sh = range_shards(&[0..50, 50..100]);
        let opts = QueryOptions {
            adversary: AdversaryPlan::default().with_lie(0, 0).with_lie(1, 0),
            ..Default::default()
        };
        let err = run_query(&sh, &ScalarPoint(50), 6, Algorithm::Knn, &opts).unwrap_err();
        assert!(
            matches!(&err, CoreError::AuditFailed { suspects, alive: 2 } if suspects.len() == 2),
            "want AuditFailed naming both liars, got {err:?}"
        );
    }

    #[test]
    fn corrupt_link_quarantines_the_sender() {
        let sh = range_shards(&[0..100, 100..200, 200..300]);
        let opts = QueryOptions {
            adversary: AdversaryPlan::default().with_corrupt_link(1, 0, 1000),
            ..Default::default()
        };
        let out = run_query(&sh, &ScalarPoint(150), 5, Algorithm::Knn, &opts).unwrap();
        assert_eq!(out.audit.integrity_violations, 1, "the digest chain catches the corruption");
        assert_eq!(out.audit.suspects_quarantined, 1);
        assert!(out.degraded);
        assert!(out.local_keys[1].is_empty(), "the corrupting sender is quarantined");
        let survivors: Vec<_> =
            sh.iter().enumerate().filter(|&(i, _)| i != 1).map(|(_, d)| d.clone()).collect();
        let want =
            run_query(&survivors, &ScalarPoint(150), 5, Algorithm::Knn, &QueryOptions::default())
                .unwrap();
        assert_eq!(answer_of(&out.local_keys), answer_of(&want.local_keys));
    }

    #[test]
    fn adversarial_recovery_is_engine_invariant() {
        let sh = range_shards(&[0..100, 100..200, 200..300, 300..400]);
        let q = ScalarPoint(150);
        let mk = |engine| QueryOptions {
            engine,
            adversary: AdversaryPlan::default().with_lie(1, 0),
            ..Default::default()
        };
        let reference = run_query(&sh, &q, 6, Algorithm::Knn, &mk(Engine::Sync)).unwrap();
        assert_eq!(reference.audit.suspects_quarantined, 1);
        for engine in [Engine::Threaded, Engine::Event, Engine::Auto] {
            let out = run_query(&sh, &q, 6, Algorithm::Knn, &mk(engine)).unwrap();
            assert_eq!(out.local_keys, reference.local_keys, "{engine:?}");
            assert_eq!(out.metrics, reference.metrics, "{engine:?}");
            assert_eq!(out.audit, reference.audit, "{engine:?}");
        }
    }

    #[test]
    fn approx_path_is_unaudited_but_integrity_checked() {
        let sh = range_shards(&[0..200, 200..400, 400..600]);
        // A lie plan does not perturb the approx path (its supersets are
        // not the partition the audit certifies), so the answer matches the
        // adversary-free run and no audits are counted.
        let opts = QueryOptions {
            adversary: AdversaryPlan::default().with_lie(1, 0),
            ..Default::default()
        };
        let out = run_approx_query(&sh, &ScalarPoint(300), 10, &opts).unwrap();
        let clean = run_approx_query(&sh, &ScalarPoint(300), 10, &QueryOptions::default()).unwrap();
        assert_eq!(out.local_keys, clean.local_keys);
        assert_eq!(out.audit.audits_run, 0);
        assert_eq!(out.audit.suspects_quarantined, 0);
        assert!(out.audit.digests_verified > 0, "armed links still verify digests");
        // A corrupt link is still a typed error — never a silent wrong answer.
        let opts = QueryOptions {
            adversary: AdversaryPlan::default().with_corrupt_link(1, 0, 1000),
            ..Default::default()
        };
        let err = run_approx_query(&sh, &ScalarPoint(300), 10, &opts).unwrap_err();
        assert!(
            matches!(err, CoreError::Engine(EngineError::IntegrityViolation { src: 1, .. })),
            "want IntegrityViolation pinned on the sender, got {err:?}"
        );
    }

    #[test]
    fn merge_answers_sorts_globally() {
        use knn_points::{Dist, PointId};
        let a = DistKey::new(Dist::from_u64(5), PointId(1));
        let b = DistKey::new(Dist::from_u64(1), PointId(2));
        let c = DistKey::new(Dist::from_u64(3), PointId(3));
        let merged = merge_answers(&[vec![a], vec![b, c]]);
        assert_eq!(merged.iter().map(|&(_, m)| m).collect::<Vec<_>>(), vec![1, 1, 0]);
        assert!(merged.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
