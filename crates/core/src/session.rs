//! Batched query serving: one leader election, one engine run per batch,
//! indexed local candidate generation.
//!
//! [`crate::runner::run_query`] models the paper's *per-query* cost
//! exactly: every call elects a leader, builds k fresh protocol instances,
//! and scans every shard. A serving system answering a stream of queries
//! against one loaded cluster (the paper's own §3 experimental setup, and
//! the PANDA \[14\] amortization argument) should pay none of that per
//! query — which is what [`QuerySession`] provides:
//!
//! * the **leader is elected once per session** and reused by every query;
//! * a batch of m queries runs as **one engine run**: each machine
//!   multiplexes m protocol instances over its links via
//!   [`kmachine::mux::MuxProtocol`], so the per-run fixed rounds (round-0
//!   scheduling, completion broadcasts) are paid once and the instances
//!   pipeline through the shared bandwidth;
//! * local candidate generation goes through the **per-shard indices**
//!   ([`crate::local::ShardIndex`]: exact structures or the approximate NSW
//!   graph, built at load and kept current by
//!   [`crate::cluster::KnnCluster::insert`]) — `O(ℓ log n)` per query
//!   instead of the `O(n)` full scan.
//!
//! Per-query costs stay observable: message/bit totals are attributed by
//! query tag ([`kmachine::RunMetrics::per_tag`]) and each query reports the
//! round in which it completed.
//!
//! The engine is whatever the session's [`QueryOptions`] request — including
//! [`kmachine::Engine::Event`], which runs the batch without any global
//! round barrier (machines synchronize only against their slowest peer's
//! previous round), and [`kmachine::Engine::Auto`], which picks an engine
//! per batch. With [`kmachine::DeliveryMode::Relaxed`] the event engine
//! additionally pipelines machines several rounds past quiet peers
//! (reported via [`BatchOutcome::skew`]). Answers and metrics are engine-
//! and delivery-invariant.

use std::time::Duration;

use kmachine::mux::{MuxOutput, MuxProtocol};
use kmachine::{
    AuditMetrics, EngineError, FaultMetrics, MachineId, Protocol, RecoveryMetrics, RunMetrics,
    SkewMetrics, TagMetrics,
};
use knn_points::{Dataset, DistKey, Metric};

use crate::audit;
use crate::error::CoreError;
use crate::local::{IndexedPoint, ShardIndex};
use crate::protocols::approx::ApproxKnnProtocol;
use crate::protocols::binsearch::BinSearchProtocol;
use crate::protocols::knn::{KeySource, KnnProtocol, KnnStats};
use crate::protocols::saukas_song::SaukasSongProtocol;
use crate::protocols::simple::SimpleProtocol;
use crate::runner::{elect, Algorithm, QueryOptions, RetryState};

/// Per-query result inside a batch, before point resolution.
#[derive(Debug, Clone)]
pub struct BatchQueryOutcome {
    /// Per-machine answer keys (machine `i`'s members of the ℓ-NN set).
    pub local_keys: Vec<Vec<DistKey>>,
    /// Messages attributed to this query's tag.
    pub messages: u64,
    /// Bits attributed to this query's tag (tag framing included).
    pub bits: u64,
    /// Round of the batch run in which this query completed (max over
    /// machines).
    pub done_round: u64,
    /// Algorithm 2 diagnostics (`None` for the baselines and approx).
    pub stats: Option<KnnStats>,
    /// Approx path only: global survivor total.
    pub approx_total: Option<u64>,
    /// Approx path only: whether the survivor set provably contains the
    /// exact ℓ-NN.
    pub contains_exact: Option<bool>,
    /// Which engine run answered this query (1 = the batch's first run).
    /// Greater than 1 marks a query that was lost to a crash and re-run on
    /// the surviving topology.
    pub attempts: u32,
    /// True when this query's answer needed recovery: it was re-planned
    /// onto survivors after a crash took its first answer with it.
    pub recovered: bool,
}

/// Result of one batched run of m queries.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-query outcomes, in input order.
    pub queries: Vec<BatchQueryOutcome>,
    /// Aggregate communication costs of the whole batch run (one engine
    /// run; `per_tag` splits messages/bits by query).
    pub metrics: RunMetrics,
    /// Pipelining evidence when the batch ran under relaxed delivery on
    /// the event engine (machine skew, promise counters); empty otherwise.
    pub skew: SkewMetrics,
    /// Wall-clock time of the batch run.
    pub wall: Duration,
    /// The leader that coordinated every query of this batch. Normally the
    /// session leader; differs when the session leader crashed during the
    /// batch and the run re-elected over the survivors.
    pub leader: MachineId,
    /// Cost of the session's one-time election (`None` under
    /// [`crate::runner::ElectionKind::Fixed`]); identical for every batch
    /// of the session — it is *not* re-paid per batch.
    pub election_metrics: Option<RunMetrics>,
    /// True when the batch's answers may be missing candidates: one or
    /// more shards crashed (salvaged in-run or excluded by a retry) and
    /// every query was answered by the survivors.
    pub degraded: bool,
    /// Shards whose candidates actually reached the selection
    /// (`== k` on a healthy batch).
    pub shards_used: usize,
    /// Realized faults of the (final) batch run.
    pub faults: FaultMetrics,
    /// True when the batch needed recovery machinery: a crash retry, a
    /// re-planned subset of lost queries, or a checkpoint-restored rejoin.
    pub recovered: bool,
    /// Engine runs this batch took (1 on a healthy batch). Re-planning
    /// after a partial loss counts like a full retry.
    pub attempts: u32,
    /// Rounds re-executed from checkpoints during rejoins, summed over
    /// every engine run of the batch.
    pub replayed_rounds: u64,
    /// Checkpoint/rejoin accounting of the final engine run.
    pub recovery: RecoveryMetrics,
    /// Byzantine-audit accounting summed over every engine run of the
    /// batch: digests verified, integrity violations caught, per-query
    /// semantic audits executed, and suspects quarantined. Empty on
    /// adversary-free batches; identical on every engine and pool size.
    pub audit: AuditMetrics,
}

/// How one protocol instance is wired into a (possibly degraded) batch
/// run: `id`, `k`, and `leader` are positions in the run's surviving
/// subset; `shard` is the original shard the instance draws candidates
/// from.
#[derive(Clone, Copy)]
struct Wiring {
    id: usize,
    shard: usize,
    k: usize,
    leader: MachineId,
}

/// Extractor for protocols whose per-machine output already *is* the answer
/// key vector (Simple, Saukas–Song, BinSearch). Extractors take the mux
/// outputs by `&mut` so they can move the answer vectors out instead of
/// cloning them; they are only called for queries that completed on every
/// machine (no crash holes), so the `Option` unwraps are guaranteed.
fn plain_keys(
    outs: &mut [MuxOutput<Vec<DistKey>>],
    j: usize,
    _leader: MachineId,
) -> (Vec<Vec<DistKey>>, Option<KnnStats>, Option<u64>, Option<bool>) {
    (
        outs.iter_mut()
            .map(|m| m.outputs[j].take().expect("query completed on every machine"))
            .collect(),
        None,
        None,
        None,
    )
}

/// A serving session over a loaded, indexed cluster: elects the leader once
/// and answers query batches until dropped.
///
/// Borrowing the shards and indices keeps the session zero-copy; create one
/// with [`QuerySession::new`] or through
/// [`crate::cluster::KnnCluster::session`].
#[derive(Debug)]
pub struct QuerySession<'a, P: IndexedPoint> {
    shards: &'a [Dataset<P>],
    indices: &'a [ShardIndex<P>],
    opts: QueryOptions,
    leader: MachineId,
    election_metrics: Option<RunMetrics>,
}

impl<'a, P: IndexedPoint> QuerySession<'a, P> {
    /// Open a session: validate the layout and elect the leader (the only
    /// election this session will ever run).
    pub fn new(
        shards: &'a [Dataset<P>],
        indices: &'a [ShardIndex<P>],
        opts: QueryOptions,
    ) -> Result<Self, CoreError> {
        if shards.is_empty() {
            return Err(CoreError::EmptyCluster);
        }
        assert_eq!(shards.len(), indices.len(), "one index per shard");
        let (leader, election_metrics) = elect(shards.len(), &opts)?;
        Ok(QuerySession { shards, indices, opts, leader, election_metrics })
    }

    /// The session leader.
    pub fn leader(&self) -> MachineId {
        self.leader
    }

    /// Cost of the session's one-time election.
    pub fn election_metrics(&self) -> Option<&RunMetrics> {
        self.election_metrics.as_ref()
    }

    /// The options this session runs with.
    pub fn options(&self) -> &QueryOptions {
        &self.opts
    }

    /// This machine's indexed top-ℓ candidate source for one query. Under
    /// an adversary plan, a round-0 liar (or equivocator) perturbs the
    /// candidates it materializes — the same pure seeded lie the sequential
    /// path injects, keyed on the original machine id.
    fn source<'b>(&'b self, machine: usize, query: &'b P, ell: usize) -> KeySource<'b, DistKey> {
        let records = &self.shards[machine].records;
        let index = &self.indices[machine];
        let metric: Metric = self.opts.metric;
        let lying = self.opts.lies_at_source(machine);
        let adv_seed = self.opts.adversary.adversary_seed;
        Box::new(move || {
            let keys = index.top(records, query, ell, metric);
            if lying {
                audit::perturb_input(keys, adv_seed, machine)
            } else {
                keys
            }
        })
    }

    /// This machine's indexed top-ℓ candidate source with no adversarial
    /// perturbation. The approx path uses it: superset answers are not the
    /// exact partition the audit certifies, so no lies are injected there.
    fn source_honest<'b>(
        &'b self,
        machine: usize,
        query: &'b P,
        ell: usize,
    ) -> KeySource<'b, DistKey> {
        let records = &self.shards[machine].records;
        let index = &self.indices[machine];
        let metric: Metric = self.opts.metric;
        Box::new(move || index.top(records, query, ell, metric))
    }

    /// Answer `queries` (all at the same ℓ) in **one engine run** with
    /// `algorithm`, multiplexing one protocol instance per query on every
    /// machine. Answers are exactly what sequential
    /// [`crate::runner::run_query`] calls would return.
    pub fn run_batch(
        &self,
        queries: &[P],
        ell: usize,
        algorithm: Algorithm,
    ) -> Result<BatchOutcome, CoreError> {
        let ell64 = ell as u64;
        match algorithm {
            Algorithm::Knn => self.run_mux(
                queries,
                Some(ell),
                |w: Wiring, q| {
                    KnnProtocol::new(w.id, w.k, w.leader, ell64, self.opts.params, {
                        self.source(w.shard, q, ell)
                    })
                },
                |outs, j, leader| {
                    let stats =
                        outs[leader].outputs[j].as_ref().expect("completed on the leader").stats;
                    let keys = outs
                        .iter_mut()
                        .map(|m| {
                            m.outputs[j].take().expect("query completed on every machine").keys
                        })
                        .collect();
                    (keys, stats, None, None)
                },
            ),
            Algorithm::Simple => {
                let chunk = self.opts.mux_chunk();
                self.run_mux(
                    queries,
                    Some(ell),
                    |w: Wiring, q| {
                        SimpleProtocol::new(w.id, w.leader, ell64, chunk, {
                            self.source(w.shard, q, ell)
                        })
                    },
                    plain_keys,
                )
            }
            Algorithm::SaukasSong => self.run_mux(
                queries,
                Some(ell),
                |w: Wiring, q| {
                    SaukasSongProtocol::new(
                        w.id,
                        w.k,
                        w.leader,
                        ell64,
                        self.source(w.shard, q, ell),
                    )
                },
                plain_keys,
            ),
            Algorithm::BinSearch => self.run_mux(
                queries,
                Some(ell),
                |w: Wiring, q| {
                    BinSearchProtocol::new(w.id, w.k, w.leader, ell64, self.source(w.shard, q, ell))
                },
                plain_keys,
            ),
        }
    }

    /// Answer `queries` approximately (pruning-only supersets, see
    /// [`crate::protocols::approx`]) in one multiplexed engine run.
    ///
    /// The approx path runs **unaudited** (`audit_ell = None`): its answers
    /// are supersets, not the exact partition the semantic audit certifies.
    /// It also injects no source-level lies; corrupt links still surface as
    /// [`kmachine::EngineError::IntegrityViolation`].
    pub fn run_batch_approx(&self, queries: &[P], ell: usize) -> Result<BatchOutcome, CoreError> {
        self.run_mux(
            queries,
            None,
            |w: Wiring, q| {
                ApproxKnnProtocol::new(w.id, w.k, w.leader, ell as u64, self.opts.params, {
                    self.source_honest(w.shard, q, ell)
                })
            },
            |outs, j, leader| {
                let lead = outs[leader].outputs[j].as_ref().expect("completed on the leader");
                let (total, contains) = (lead.total, lead.contains_exact);
                let keys = outs
                    .iter_mut()
                    .map(|m| m.outputs[j].take().expect("query completed on every machine").keys)
                    .collect();
                (keys, None, Some(total), Some(contains))
            },
        )
    }

    /// The shared batched-run skeleton: build one `build(wiring, query)`
    /// protocol instance per (machine, pending query), multiplex each
    /// machine's instances over one engine run, and fold the outcome per
    /// query.
    ///
    /// Crash recovery mirrors [`crate::runner::run_query`] but is
    /// **fault-aware per query**: when a run completes with *holes* (a
    /// crashed machine took some queries' contributions with it — its mux
    /// output is `None` at those tags), only those lost queries are
    /// re-planned onto the surviving topology; queries that completed keep
    /// their full-cluster answers. An unsalvageable
    /// [`EngineError::Crashed`] (the survivors stalled on the dead machine)
    /// re-runs every still-pending query. Either way the dead machine is
    /// excluded, the leader is re-elected over the survivors if it was the
    /// casualty, and the re-run counts against the session's
    /// [`crate::runner::RetryPolicy`]. The outcome is then flagged
    /// [`BatchOutcome::degraded`].
    ///
    /// When `audit_ell` is `Some(ℓ)` and the session has an adversary plan,
    /// every completed query is **audited before it is kept**: its claimed
    /// per-machine contributions are checked against the true ℓ-NN
    /// partition recomputed from the real shards
    /// ([`crate::audit::audit_claims`]). Queries that fail the audit are
    /// treated like lost queries — the named suspects are quarantined
    /// alongside any crashed machines and the queries re-run on the honest
    /// survivors — so a wrong answer is never stored, not even one answered
    /// by a machine only caught lying on a *later* query of the same batch.
    /// [`CoreError::AuditFailed`] surfaces when quarantining would leave no
    /// machine standing. An [`EngineError::IntegrityViolation`] (corrupt
    /// link caught by the digest chain) quarantines the sending machine the
    /// same way.
    fn run_mux<'q, Proto, F, G>(
        &'q self,
        queries: &'q [P],
        audit_ell: Option<usize>,
        build: F,
        extract: G,
    ) -> Result<BatchOutcome, CoreError>
    where
        Proto: Protocol,
        F: Fn(Wiring, &'q P) -> Proto,
        G: Fn(
            &mut [MuxOutput<Proto::Output>],
            usize,
            MachineId,
        ) -> (Vec<Vec<DistKey>>, Option<KnnStats>, Option<u64>, Option<bool>),
    {
        let k = self.shards.len();
        if queries.is_empty() {
            return Ok(self.empty_outcome(k));
        }
        let mut alive: Vec<MachineId> = (0..k).collect();
        let mut leader = self.leader;
        let mut retry = RetryState::new();
        // Finished per-query outcomes by original index, filled across runs.
        let mut done: Vec<Option<BatchQueryOutcome>> = (0..queries.len()).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..queries.len()).collect();
        let mut replayed_rounds = 0u64;
        let mut audit_total = AuditMetrics::default();
        loop {
            let sub_leader = alive.iter().position(|&m| m == leader).expect("leader is alive");
            let cfg = self.opts.subset_config(&alive);
            let protos: Vec<MuxProtocol<Proto>> = (0..alive.len())
                .map(|i| {
                    let w = Wiring { id: i, shard: alive[i], k: alive.len(), leader: sub_leader };
                    MuxProtocol::new(pending.iter().map(|&j| build(w, &queries[j])).collect())
                })
                .collect();
            match self.opts.engine.run(&cfg, protos) {
                Ok(out) => {
                    let kmachine::RunOutcome {
                        mut outputs,
                        metrics,
                        skew,
                        wall,
                        faults,
                        recovery,
                        audit: run_audit,
                    } = out;
                    replayed_rounds += recovery.replayed_rounds;
                    audit_total.digests_verified += run_audit.digests_verified;
                    // A pending query is LOST when any machine's mux output
                    // has a hole at its tag: a crashed machine died holding
                    // that query's contribution.
                    let lost_at = |p: usize, outs: &[MuxOutput<Proto::Output>]| {
                        outs.iter().any(|mux| mux.outputs[p].is_none())
                    };
                    let mut lost: Vec<usize> = Vec::new();
                    let mut suspects: Vec<MachineId> = Vec::new();
                    for (p, &j) in pending.iter().enumerate() {
                        if lost_at(p, &outputs) {
                            lost.push(j);
                            continue;
                        }
                        let (sub_keys, stats, approx_total, contains_exact) =
                            extract(&mut outputs, p, sub_leader);
                        if let (Some(ell), false) = (audit_ell, self.opts.adversary.is_empty()) {
                            audit_total.audits_run += 1;
                            // Ground truth over the audited topology: every
                            // completed query had every alive machine's
                            // instance finish, so no crash exclusion applies.
                            let truth: Vec<Vec<DistKey>> = alive
                                .iter()
                                .map(|&m| {
                                    self.indices[m].top(
                                        &self.shards[m].records,
                                        &queries[j],
                                        ell,
                                        self.opts.metric,
                                    )
                                })
                                .collect();
                            let report =
                                audit::audit_claims(&truth, &sub_keys, ell, self.opts.seed);
                            if !report.ok {
                                lost.push(j);
                                suspects.extend(report.suspects.iter().map(|&s| alive[s]));
                                continue;
                            }
                        }
                        let mut local_keys = vec![Vec::new(); k];
                        for (i, keys) in sub_keys.into_iter().enumerate() {
                            local_keys[alive[i]] = keys;
                        }
                        let tag: TagMetrics = metrics.tag(p as u32);
                        let done_round =
                            outputs.iter().map(|mux| mux.done_round[p]).max().unwrap_or(0);
                        done[j] = Some(BatchQueryOutcome {
                            local_keys,
                            messages: tag.messages,
                            bits: tag.bits,
                            done_round,
                            stats,
                            approx_total,
                            contains_exact,
                            attempts: retry.attempts,
                            recovered: retry.attempts > 1,
                        });
                    }
                    suspects.sort_unstable();
                    suspects.dedup();
                    audit_total.suspects_quarantined += suspects.len() as u64;
                    if lost.is_empty() {
                        let shards_used = alive.len() - faults.crashed.len();
                        return Ok(BatchOutcome {
                            queries: done
                                .into_iter()
                                .map(|q| q.expect("every query answered"))
                                .collect(),
                            metrics,
                            skew,
                            wall,
                            leader,
                            election_metrics: self.election_metrics.clone(),
                            degraded: shards_used < k,
                            shards_used,
                            faults,
                            recovered: retry.attempts > 1 || recovery.any(),
                            attempts: retry.attempts,
                            replayed_rounds,
                            recovery,
                            audit: audit_total,
                        });
                    }
                    retry.next_attempt(&self.opts.retry, metrics.rounds)?;
                    let mut dead: Vec<MachineId> =
                        faults.crashed.iter().map(|&c| alive[c]).collect();
                    dead.extend(suspects.iter().copied());
                    dead.sort_unstable();
                    dead.dedup();
                    if dead.len() >= alive.len() && !suspects.is_empty() {
                        // Quarantining every suspect (plus the crashed)
                        // leaves nobody to answer from: no certifiable
                        // answer exists.
                        return Err(CoreError::AuditFailed { suspects, alive: alive.len() });
                    }
                    alive.retain(|mid| !dead.contains(mid));
                    if alive.is_empty() || dead.is_empty() {
                        // Holes without a usable survivor topology (or —
                        // impossibly — without a crash or a suspect):
                        // surface the crash instead of looping on an
                        // unanswerable plan.
                        let machine = dead.first().copied().unwrap_or(0);
                        return Err(EngineError::Crashed { machine, round: metrics.rounds }.into());
                    }
                    if !alive.contains(&leader) {
                        let (sub, _) = elect(alive.len(), &self.opts)?;
                        leader = alive[sub];
                    }
                    pending = lost;
                }
                Err(EngineError::Crashed { machine, round }) if alive.len() > 1 => {
                    retry.next_attempt(&self.opts.retry, round)?;
                    // `machine` indexes the failed run's subset.
                    let dead = alive.remove(machine);
                    if dead == leader {
                        let (sub, _) = elect(alive.len(), &self.opts)?;
                        leader = alive[sub];
                    }
                }
                Err(EngineError::IntegrityViolation { src, round, .. }) if alive.len() > 1 => {
                    // The digest chain pins the corruption on the sender:
                    // quarantine it and re-run every still-pending query.
                    audit_total.integrity_violations += 1;
                    audit_total.suspects_quarantined += 1;
                    retry.next_attempt(&self.opts.retry, round)?;
                    let dead = alive.remove(src);
                    if dead == leader {
                        let (sub, _) = elect(alive.len(), &self.opts)?;
                        leader = alive[sub];
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn empty_outcome(&self, k: usize) -> BatchOutcome {
        BatchOutcome {
            queries: Vec::new(),
            metrics: RunMetrics::new(k),
            skew: SkewMetrics::default(),
            wall: Duration::ZERO,
            leader: self.leader,
            election_metrics: self.election_metrics.clone(),
            degraded: false,
            shards_used: k,
            faults: FaultMetrics::default(),
            recovered: false,
            attempts: 1,
            replayed_rounds: 0,
            recovery: RecoveryMetrics::default(),
            audit: AuditMetrics::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::{IndexBackend, ShardIndex};
    use crate::runner::{merge_answers, run_query, ElectionKind};
    use knn_points::{IdAssigner, ScalarPoint};
    use knn_workloads::PartitionStrategy;

    fn shards(values: &[u64], k: usize) -> Vec<Dataset<ScalarPoint>> {
        let mut ids = IdAssigner::new(0);
        let data = Dataset::from_points(values.iter().map(|&v| ScalarPoint(v)).collect(), &mut ids);
        PartitionStrategy::RoundRobin
            .split(data.records, k, 0)
            .into_iter()
            .map(Dataset::new)
            .collect()
    }

    fn indices(sh: &[Dataset<ScalarPoint>]) -> Vec<ShardIndex<ScalarPoint>> {
        sh.iter()
            .map(|d| ShardIndex::build(&d.records, IndexBackend::default(), Metric::Euclidean))
            .collect()
    }

    #[test]
    fn batch_matches_sequential_for_every_algorithm() {
        let values: Vec<u64> = (0..400u64).map(|i| i.wrapping_mul(48271) % 50_000).collect();
        let sh = shards(&values, 5);
        let idx = indices(&sh);
        let queries: Vec<ScalarPoint> =
            [3u64, 17_000, 49_999, 25_000].iter().map(|&v| ScalarPoint(v)).collect();
        let opts = QueryOptions::default();
        let session = QuerySession::new(&sh, &idx, opts.clone()).unwrap();
        for algo in Algorithm::ALL {
            let batch = session.run_batch(&queries, 7, algo).unwrap();
            assert_eq!(batch.queries.len(), queries.len());
            for (j, q) in queries.iter().enumerate() {
                let solo = run_query(&sh, q, 7, algo, &opts).unwrap();
                assert_eq!(
                    merge_answers(&batch.queries[j].local_keys),
                    merge_answers(&solo.local_keys),
                    "{algo:?} query {j}"
                );
            }
        }
    }

    #[test]
    fn session_elects_exactly_once() {
        let sh = shards(&(0..100u64).collect::<Vec<_>>(), 4);
        let idx = indices(&sh);
        let opts = QueryOptions { election: ElectionKind::Star, ..Default::default() };
        let session = QuerySession::new(&sh, &idx, opts).unwrap();
        let em = session.election_metrics().expect("star election ran");
        assert_eq!(em.messages, 2 * 3);
        // Two batches through the same session: the election cost is
        // reported (not re-paid) on both.
        let a = session.run_batch(&[ScalarPoint(5), ScalarPoint(50)], 3, Algorithm::Knn).unwrap();
        let b = session.run_batch(&[ScalarPoint(9)], 3, Algorithm::Simple).unwrap();
        assert_eq!(a.election_metrics.as_ref().unwrap().messages, 6);
        assert_eq!(b.election_metrics.as_ref().unwrap().messages, 6);
        assert_eq!(a.leader, b.leader);
    }

    #[test]
    fn per_query_attribution_partitions_the_batch() {
        let sh = shards(&(0..500u64).collect::<Vec<_>>(), 4);
        let idx = indices(&sh);
        let session = QuerySession::new(&sh, &idx, QueryOptions::default()).unwrap();
        let queries: Vec<ScalarPoint> = (0..6).map(|i| ScalarPoint(i * 80)).collect();
        let batch = session.run_batch(&queries, 9, Algorithm::Simple).unwrap();
        let msg_sum: u64 = batch.queries.iter().map(|q| q.messages).sum();
        let bit_sum: u64 = batch.queries.iter().map(|q| q.bits).sum();
        assert_eq!(msg_sum, batch.metrics.messages);
        assert_eq!(bit_sum, batch.metrics.bits);
        for q in &batch.queries {
            assert!(q.messages > 0);
            assert!(q.done_round <= batch.metrics.rounds);
        }
    }

    #[test]
    fn batch_approx_reports_guarantees() {
        let values: Vec<u64> =
            (0..3000u64).map(|i| i.wrapping_mul(0x9E3779B9) % 1_000_000).collect();
        let sh = shards(&values, 6);
        let idx = indices(&sh);
        let session = QuerySession::new(&sh, &idx, QueryOptions::default()).unwrap();
        let queries: Vec<ScalarPoint> = (0..3).map(|i| ScalarPoint(i * 300_000)).collect();
        let batch = session.run_batch_approx(&queries, 40).unwrap();
        for (j, bq) in batch.queries.iter().enumerate() {
            let total = bq.approx_total.expect("approx reports totals");
            let survivors: usize = bq.local_keys.iter().map(Vec::len).sum();
            assert_eq!(survivors as u64, total, "query {j}");
            assert!(bq.contains_exact.unwrap(), "paper constants should not under-prune");
            assert!(total >= 40);
        }
    }

    #[test]
    fn batch_is_engine_invariant_including_event_and_auto() {
        use kmachine::Engine;
        let values: Vec<u64> = (0..600u64).map(|i| i.wrapping_mul(48271) % 70_000).collect();
        let sh = shards(&values, 5);
        let idx = indices(&sh);
        let queries: Vec<ScalarPoint> = (0..8).map(|i| ScalarPoint(i * 9_000)).collect();
        let reference = QuerySession::new(&sh, &idx, QueryOptions::default())
            .unwrap()
            .run_batch(&queries, 6, Algorithm::Knn)
            .unwrap();
        for engine in [Engine::Threaded, Engine::Event, Engine::Auto] {
            let opts = QueryOptions { engine, ..Default::default() };
            let session = QuerySession::new(&sh, &idx, opts).unwrap();
            let batch = session.run_batch(&queries, 6, Algorithm::Knn).unwrap();
            assert_eq!(batch.metrics, reference.metrics, "{engine:?}");
            for (j, (got, want)) in batch.queries.iter().zip(&reference.queries).enumerate() {
                assert_eq!(got.local_keys, want.local_keys, "{engine:?} query {j}");
                assert_eq!(got.done_round, want.done_round, "{engine:?} query {j}");
                assert_eq!(got.messages, want.messages, "{engine:?} query {j}");
                assert_eq!(got.bits, want.bits, "{engine:?} query {j}");
            }
        }
    }

    #[test]
    fn batch_recovers_from_a_crashed_leader() {
        use kmachine::FaultPlan;
        let values: Vec<u64> = (0..400u64).map(|i| i.wrapping_mul(48271) % 50_000).collect();
        let sh = shards(&values, 5);
        let idx = indices(&sh);
        let opts =
            QueryOptions { faults: FaultPlan::default().with_crash(0, 0), ..Default::default() };
        let queries = [ScalarPoint(120), ScalarPoint(44_000)];
        let session = QuerySession::new(&sh, &idx, opts.clone()).unwrap();
        let batch = session.run_batch(&queries, 6, Algorithm::Knn).unwrap();
        assert!(batch.degraded);
        assert_eq!(batch.shards_used, 4);
        assert_ne!(batch.leader, 0, "a dead leader cannot coordinate");
        for (j, q) in queries.iter().enumerate() {
            let bq = &batch.queries[j];
            assert_eq!(bq.local_keys.len(), 5, "answers keep the full shard layout");
            assert!(bq.local_keys[0].is_empty(), "the dead shard contributes nothing");
            // Per-query answers match the sequential recovery path.
            let solo = run_query(&sh, q, 6, Algorithm::Knn, &opts).unwrap();
            assert_eq!(merge_answers(&bq.local_keys), merge_answers(&solo.local_keys), "{j}");
        }
    }

    #[test]
    fn batch_rejoin_is_invisible_and_reported() {
        use kmachine::{BandwidthMode, RecoveryPlan};
        let values: Vec<u64> = (0..400u64).map(|i| i.wrapping_mul(48271) % 50_000).collect();
        let sh = shards(&values, 4);
        let idx = indices(&sh);
        let queries: Vec<ScalarPoint> = (0..4).map(|i| ScalarPoint(i * 12_000)).collect();
        // Tight bandwidth stretches the batch over enough rounds for the
        // outage window to land mid-run.
        let bandwidth = BandwidthMode::Enforce { bits_per_round: 256 };
        let clean_opts = QueryOptions { bandwidth, ..Default::default() };
        let clean = QuerySession::new(&sh, &idx, clean_opts)
            .unwrap()
            .run_batch(&queries, 6, Algorithm::Simple)
            .unwrap();
        let opts = QueryOptions {
            bandwidth,
            recovery: RecoveryPlan::default().with_rejoin(1, 2, 5),
            ..Default::default()
        };
        let batch = QuerySession::new(&sh, &idx, opts)
            .unwrap()
            .run_batch(&queries, 6, Algorithm::Simple)
            .unwrap();
        assert!(!batch.degraded, "a rejoined machine serves: nothing is missing");
        assert_eq!(batch.shards_used, 4);
        assert!(batch.faults.crashed.is_empty(), "a rejoin is a pause, not a fail-stop");
        assert!(batch.recovered);
        assert_eq!(batch.attempts, 1, "recovery happened in-engine, not by retry");
        assert!(batch.replayed_rounds >= 1);
        assert_eq!(batch.recovery.rejoined, vec![1]);
        assert_eq!(batch.metrics.messages, clean.metrics.messages, "byte-identical traffic");
        assert_eq!(batch.metrics.bits, clean.metrics.bits);
        for (j, (got, want)) in batch.queries.iter().zip(&clean.queries).enumerate() {
            assert_eq!(got.local_keys, want.local_keys, "query {j}");
        }
    }

    #[test]
    fn lost_queries_are_replanned_onto_survivors() {
        use kmachine::FaultPlan;
        let values: Vec<u64> = (0..600u64).map(|i| i.wrapping_mul(48271) % 70_000).collect();
        let sh = shards(&values, 5);
        let idx = indices(&sh);
        let queries: Vec<ScalarPoint> = (0..6).map(|i| ScalarPoint(i * 11_000)).collect();
        let full = QuerySession::new(&sh, &idx, QueryOptions::default())
            .unwrap()
            .run_batch(&queries, 6, Algorithm::Knn)
            .unwrap();
        // Survivor reference: the same batch over the shards minus machine 3.
        let sh_sur: Vec<_> =
            sh.iter().enumerate().filter(|&(i, _)| i != 3).map(|(_, d)| d.clone()).collect();
        let idx_sur = indices(&sh_sur);
        let sur = QuerySession::new(&sh_sur, &idx_sur, QueryOptions::default())
            .unwrap()
            .run_batch(&queries, 6, Algorithm::Knn)
            .unwrap();
        let answer =
            |lk: &[Vec<DistKey>]| merge_answers(lk).iter().map(|&(key, _)| key).collect::<Vec<_>>();
        // Sweep the crash round across the batch's lifetime: wherever it
        // lands, every query's answer must be exact over the topology that
        // answered it — the full cluster (attempts == 1) or the survivors
        // (re-planned after the crash took the first answer with it).
        for crash_round in 1..24 {
            let opts = QueryOptions {
                faults: FaultPlan::default().with_crash(3, crash_round),
                ..Default::default()
            };
            let session = QuerySession::new(&sh, &idx, opts).unwrap();
            let batch = session.run_batch(&queries, 6, Algorithm::Knn).unwrap();
            for (j, bq) in batch.queries.iter().enumerate() {
                let want = if bq.attempts == 1 { &full.queries[j] } else { &sur.queries[j] };
                assert_eq!(
                    answer(&bq.local_keys),
                    answer(&want.local_keys),
                    "crash@{crash_round} query {j} (attempts {})",
                    bq.attempts
                );
                assert_eq!(bq.recovered, bq.attempts > 1);
            }
            assert_eq!(batch.recovered, batch.attempts > 1 || batch.recovery.any());
            if batch.attempts > 1 {
                assert!(batch.degraded, "a re-planned batch lost a shard");
            }
        }
    }

    /// Shards holding contiguous value ranges, so tests can aim queries at
    /// (or away from) a specific machine's points.
    fn range_shards(ranges: &[std::ops::Range<u64>]) -> Vec<Dataset<ScalarPoint>> {
        use knn_points::IdAssigner;
        let mut ids = IdAssigner::new(0);
        ranges
            .iter()
            .map(|r| Dataset::from_points(r.clone().map(ScalarPoint).collect(), &mut ids))
            .collect()
    }

    fn answer_of(local_keys: &[Vec<DistKey>]) -> Vec<DistKey> {
        merge_answers(local_keys).iter().map(|&(key, _)| key).collect()
    }

    #[test]
    fn batch_quarantines_a_liar_and_reruns_only_the_poisoned_queries() {
        use kmachine::AdversaryPlan;
        // Machine 1 lies. Query 0's neighborhood lives entirely on the
        // honest machines — the lie is immaterial there, the audit passes,
        // and the first run's answer is kept *certified*. Query 1's
        // neighborhood lives on the liar — the audit fails it, quarantines
        // machine 1, and re-runs only query 1 on the honest survivors. A
        // query answered by a machine caught lying later in the same batch
        // is thus never kept unaudited.
        let sh = range_shards(&[0..100, 10_000..10_100, 100..200]);
        let idx = indices(&sh);
        let queries = [ScalarPoint(50), ScalarPoint(10_050)];
        let opts = QueryOptions {
            adversary: AdversaryPlan::default().with_lie(1, 0),
            ..Default::default()
        };
        let batch = QuerySession::new(&sh, &idx, opts)
            .unwrap()
            .run_batch(&queries, 4, Algorithm::Knn)
            .unwrap();
        assert!(batch.degraded);
        assert_eq!(batch.attempts, 2);
        assert_eq!(batch.audit.suspects_quarantined, 1);
        assert_eq!(batch.audit.audits_run, 3, "two audits in run 1, one in the re-run");
        assert!(batch.audit.digests_verified > 0);
        // Query 0: certified on the first run, against the full cluster.
        assert_eq!(batch.queries[0].attempts, 1);
        assert!(!batch.queries[0].recovered);
        let full = QuerySession::new(&sh, &idx, QueryOptions::default())
            .unwrap()
            .run_batch(&queries[..1], 4, Algorithm::Knn)
            .unwrap();
        assert_eq!(answer_of(&batch.queries[0].local_keys), answer_of(&full.queries[0].local_keys));
        // Query 1: re-run on the honest survivors.
        assert_eq!(batch.queries[1].attempts, 2);
        assert!(batch.queries[1].recovered);
        assert!(batch.queries[1].local_keys[1].is_empty(), "the liar contributes nothing");
        let sh_sur: Vec<_> =
            sh.iter().enumerate().filter(|&(i, _)| i != 1).map(|(_, d)| d.clone()).collect();
        let idx_sur = indices(&sh_sur);
        let sur = QuerySession::new(&sh_sur, &idx_sur, QueryOptions::default())
            .unwrap()
            .run_batch(&queries[1..], 4, Algorithm::Knn)
            .unwrap();
        assert_eq!(answer_of(&batch.queries[1].local_keys), answer_of(&sur.queries[0].local_keys));
    }

    #[test]
    fn batch_audit_failure_is_typed_when_everyone_lies() {
        use kmachine::AdversaryPlan;
        let sh = range_shards(&[0..50, 50..100]);
        let idx = indices(&sh);
        let opts = QueryOptions {
            adversary: AdversaryPlan::default().with_lie(0, 0).with_lie(1, 0),
            ..Default::default()
        };
        let err = QuerySession::new(&sh, &idx, opts)
            .unwrap()
            .run_batch(&[ScalarPoint(50)], 6, Algorithm::Knn)
            .unwrap_err();
        assert!(
            matches!(&err, CoreError::AuditFailed { suspects, alive: 2 } if suspects.len() == 2),
            "want AuditFailed naming both liars, got {err:?}"
        );
    }

    #[test]
    fn batch_corrupt_link_quarantines_the_sender() {
        use kmachine::AdversaryPlan;
        let sh = range_shards(&[0..100, 100..200, 200..300]);
        let idx = indices(&sh);
        let opts = QueryOptions {
            adversary: AdversaryPlan::default().with_corrupt_link(2, 0, 1000),
            ..Default::default()
        };
        let batch = QuerySession::new(&sh, &idx, opts)
            .unwrap()
            .run_batch(&[ScalarPoint(150), ScalarPoint(250)], 4, Algorithm::Simple)
            .unwrap();
        assert_eq!(batch.audit.integrity_violations, 1);
        assert_eq!(batch.audit.suspects_quarantined, 1);
        assert!(batch.degraded);
        for bq in &batch.queries {
            assert!(bq.local_keys[2].is_empty(), "the corrupting sender is quarantined");
        }
    }

    #[test]
    fn adversarial_batch_is_engine_invariant_including_audit_metrics() {
        use kmachine::{AdversaryPlan, Engine};
        let sh = range_shards(&[0..100, 100..200, 200..300, 300..400]);
        let idx = indices(&sh);
        let queries = [ScalarPoint(150), ScalarPoint(350)];
        let mk = |engine| QueryOptions {
            engine,
            adversary: AdversaryPlan::default().with_lie(1, 0),
            ..Default::default()
        };
        let reference = QuerySession::new(&sh, &idx, mk(Engine::Sync))
            .unwrap()
            .run_batch(&queries, 5, Algorithm::Knn)
            .unwrap();
        assert_eq!(reference.audit.suspects_quarantined, 1);
        for engine in [Engine::Threaded, Engine::Event, Engine::Auto] {
            let batch = QuerySession::new(&sh, &idx, mk(engine))
                .unwrap()
                .run_batch(&queries, 5, Algorithm::Knn)
                .unwrap();
            assert_eq!(batch.metrics, reference.metrics, "{engine:?}");
            assert_eq!(batch.audit, reference.audit, "{engine:?}");
            for (got, want) in batch.queries.iter().zip(&reference.queries) {
                assert_eq!(got.local_keys, want.local_keys, "{engine:?}");
                assert_eq!(got.attempts, want.attempts, "{engine:?}");
            }
        }
    }

    #[test]
    fn batch_approx_is_unaudited_under_a_lie_plan() {
        use kmachine::AdversaryPlan;
        let sh = range_shards(&[0..200, 200..400, 400..600]);
        let idx = indices(&sh);
        let opts = QueryOptions {
            adversary: AdversaryPlan::default().with_lie(1, 0),
            ..Default::default()
        };
        let queries = [ScalarPoint(300)];
        let batch =
            QuerySession::new(&sh, &idx, opts).unwrap().run_batch_approx(&queries, 10).unwrap();
        let clean = QuerySession::new(&sh, &idx, QueryOptions::default())
            .unwrap()
            .run_batch_approx(&queries, 10)
            .unwrap();
        assert_eq!(batch.queries[0].local_keys, clean.queries[0].local_keys);
        assert_eq!(batch.audit.audits_run, 0);
        assert_eq!(batch.audit.suspects_quarantined, 0);
        assert!(batch.audit.digests_verified > 0, "armed links still verify digests");
    }

    #[test]
    fn empty_batch_is_free() {
        let sh = shards(&(0..50u64).collect::<Vec<_>>(), 3);
        let idx = indices(&sh);
        let session = QuerySession::new(&sh, &idx, QueryOptions::default()).unwrap();
        let batch = session.run_batch(&[], 5, Algorithm::Knn).unwrap();
        assert!(batch.queries.is_empty());
        assert_eq!(batch.metrics.messages, 0);
        assert_eq!(batch.metrics.rounds, 0);
    }

    #[test]
    fn empty_cluster_is_an_error() {
        let sh: Vec<Dataset<ScalarPoint>> = Vec::new();
        let idx: Vec<ShardIndex<ScalarPoint>> = Vec::new();
        let err = QuerySession::new(&sh, &idx, QueryOptions::default()).unwrap_err();
        assert_eq!(err, CoreError::EmptyCluster);
    }

    #[test]
    fn batched_rounds_per_query_beat_sequential_for_simple() {
        let values: Vec<u64> = (0..2000u64).map(|i| i.wrapping_mul(48271) % (1 << 20)).collect();
        let sh = shards(&values, 6);
        let idx = indices(&sh);
        let opts = QueryOptions::default();
        let session = QuerySession::new(&sh, &idx, opts.clone()).unwrap();
        let queries: Vec<ScalarPoint> = (0..16).map(|i| ScalarPoint(i * 65_536)).collect();
        let batch = session.run_batch(&queries, 64, Algorithm::Simple).unwrap();
        let sequential: u64 = queries
            .iter()
            .map(|q| run_query(&sh, q, 64, Algorithm::Simple, &opts).unwrap().metrics.rounds)
            .sum();
        assert!(
            batch.metrics.rounds < sequential,
            "batched {} vs sequential {}",
            batch.metrics.rounds,
            sequential
        );
    }
}
