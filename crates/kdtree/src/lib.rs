//! # knn-kdtree — a k-d tree (Bentley 1975; Friedman–Bentley–Finkel 1977)
//!
//! The space-partitioning structure the paper discusses in related work
//! (§1.4): it accelerates *sequential* nearest-neighbor queries to
//! logarithmic expected time, and underlies the distributed PANDA baseline
//! of Patwary et al. \[14\] that the paper contrasts with its
//! communication-light approach.
//!
//! This crate provides a bulk-built, arena-allocated k-d tree over dense
//! `f64` points with:
//!
//! * median-split construction (`O(n log n)`, balanced by construction);
//! * ℓ-nearest-neighbor queries with bounded-heap search and hyperplane
//!   pruning, valid for every Minkowski norm (pruning is disabled for
//!   Hamming, where the axis gap does not lower-bound the distance);
//! * ball counting (`count_within`) used by range-style baselines;
//! * structural statistics for the benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod query;
mod tree;

pub use tree::{KdStats, KdTree};
