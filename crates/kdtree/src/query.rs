//! ℓ-NN queries and ball counting.

use knn_points::{Dist, DistKey, Metric, PointId};

use crate::tree::KdTree;

impl KdTree {
    /// The ℓ nearest stored points to `query`, ascending by
    /// `(distance, id)`. Branch-and-bound with hyperplane pruning: a subtree
    /// is skipped when the axis gap to the splitting plane already exceeds
    /// the current ℓ-th best distance (valid for every Minkowski norm; for
    /// [`Metric::Hamming`] pruning is disabled and the search is exhaustive
    /// but still correct).
    ///
    /// # Panics
    /// If `query` has the wrong dimensionality for a non-empty tree.
    pub fn knn(&self, query: &[f64], ell: usize, metric: Metric) -> Vec<(Dist, PointId)> {
        if self.is_empty() || ell == 0 {
            return Vec::new();
        }
        assert_eq!(query.len(), self.dims, "query dimensionality mismatch");
        let mut best = knn_selection::TopK::<DistKey>::new(ell);
        self.knn_rec(self.root, query, metric, &mut best);
        best.into_sorted().into_iter().map(|k| (k.dist, k.id)).collect()
    }

    fn knn_rec(
        &self,
        node: i32,
        query: &[f64],
        metric: Metric,
        best: &mut knn_selection::TopK<DistKey>,
    ) {
        if node < 0 {
            return;
        }
        let n = self.nodes[node as usize];
        let coords = self.point(n.point);
        let d = metric.distance(query, coords);
        best.push(DistKey::new(d, self.ids[n.point as usize]));

        let axis = n.axis as usize;
        let gap = query[axis] - coords[axis];
        let (near, far) = if gap < 0.0 { (n.left, n.right) } else { (n.right, n.left) };
        self.knn_rec(near, query, metric, best);

        if let Some(bound) = plane_bound(gap, metric) {
            if let Some(worst) = best.threshold() {
                // Strict: at bound == worst.dist the far side can still hold
                // an equal-distance point with a smaller id, which wins the
                // (distance, id) tie-break the query contract promises.
                if bound > worst.dist {
                    return; // Far side cannot improve the current best ℓ.
                }
            }
        }
        self.knn_rec(far, query, metric, best);
    }

    /// Number of stored points within distance `radius` (inclusive) of
    /// `query`.
    pub fn count_within(&self, query: &[f64], radius: Dist, metric: Metric) -> usize {
        if self.is_empty() {
            return 0;
        }
        assert_eq!(query.len(), self.dims, "query dimensionality mismatch");
        let mut count = 0usize;
        self.count_rec(self.root, query, radius, metric, &mut count);
        count
    }

    fn count_rec(&self, node: i32, query: &[f64], radius: Dist, metric: Metric, count: &mut usize) {
        if node < 0 {
            return;
        }
        let n = self.nodes[node as usize];
        let coords = self.point(n.point);
        if metric.distance(query, coords) <= radius {
            *count += 1;
        }
        let axis = n.axis as usize;
        let gap = query[axis] - coords[axis];
        let (near, far) = if gap < 0.0 { (n.left, n.right) } else { (n.right, n.left) };
        self.count_rec(near, query, radius, metric, count);
        match plane_bound(gap, metric) {
            Some(bound) if bound > radius => {}
            _ => self.count_rec(far, query, radius, metric, count),
        }
    }
}

/// Lower bound on the distance from the query to *any* point on the far
/// side of the splitting plane, encoded consistently with `metric`'s
/// [`Dist`] family. `None` means "no usable bound" (Hamming).
fn plane_bound(gap: f64, metric: Metric) -> Option<Dist> {
    let g = gap.abs();
    match metric {
        Metric::SquaredEuclidean => Some(Dist::from_f64(g * g)),
        Metric::Hamming => None,
        _ => Some(Dist::from_f64(g)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_points::{brute_force_knn, IdAssigner, Point, Record, VecPoint};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn random_records(n: usize, dims: usize, seed: u64) -> Vec<Record<VecPoint>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = IdAssigner::new(seed);
        (0..n)
            .map(|_| {
                let coords: Vec<f64> = (0..dims).map(|_| rng.random_range(-10.0..10.0)).collect();
                Record { id: ids.next_id(), point: VecPoint::new(coords), label: None }
            })
            .collect()
    }

    fn check_against_brute(n: usize, dims: usize, ell: usize, metric: Metric, seed: u64) {
        let records = random_records(n, dims, seed);
        let tree = KdTree::from_records(&records);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let q: Vec<f64> = (0..dims).map(|_| rng.random_range(-10.0..10.0)).collect();
        let got = tree.knn(&q, ell, metric);
        let expected = brute_force_knn(&records, &VecPoint::new(q), ell, metric);
        let got_ids: Vec<PointId> = got.iter().map(|&(_, id)| id).collect();
        let expected_ids: Vec<PointId> = expected.iter().map(|(k, _)| k.id).collect();
        assert_eq!(got_ids, expected_ids, "n={n} dims={dims} ell={ell} {metric:?}");
    }

    #[test]
    fn matches_brute_force_euclidean() {
        check_against_brute(300, 3, 10, Metric::Euclidean, 1);
    }

    #[test]
    fn matches_brute_force_all_metrics() {
        for (i, m) in [
            Metric::Euclidean,
            Metric::SquaredEuclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Minkowski(3.0),
            Metric::Hamming,
        ]
        .into_iter()
        .enumerate()
        {
            check_against_brute(150, 2, 7, m, 100 + i as u64);
        }
    }

    #[test]
    fn ell_larger_than_n_returns_all() {
        let records = random_records(5, 2, 2);
        let tree = KdTree::from_records(&records);
        let got = tree.knn(&[0.0, 0.0], 50, Metric::Euclidean);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn empty_tree_queries() {
        let tree = KdTree::build(vec![]);
        assert!(tree.knn(&[], 3, Metric::Euclidean).is_empty());
        assert_eq!(tree.count_within(&[], Dist::MAX, Metric::Euclidean), 0);
    }

    #[test]
    fn count_within_matches_linear_scan() {
        let records = random_records(400, 2, 3);
        let tree = KdTree::from_records(&records);
        let q = VecPoint::new(vec![1.0, -2.0]);
        for r in [0.5, 2.0, 5.0, 100.0] {
            let radius = Dist::from_f64(r);
            let expected = records
                .iter()
                .filter(|rec| rec.point.distance(&q, Metric::Euclidean) <= radius)
                .count();
            assert_eq!(tree.count_within(&q.0, radius, Metric::Euclidean), expected, "r={r}");
        }
    }

    #[test]
    fn knn_one_dimensional() {
        check_against_brute(200, 1, 5, Metric::Euclidean, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_knn_matches_brute_force(
            n in 1usize..120,
            dims in 1usize..4,
            ell in 1usize..20,
            seed in 0u64..1000,
        ) {
            check_against_brute(n, dims, ell, Metric::Euclidean, seed);
        }
    }
}
