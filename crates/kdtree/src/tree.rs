//! Tree representation and median-split construction.

use knn_points::{PointId, Record, VecPoint};

/// Arena node: one point per node, children by index (`-1` = none).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    /// Index into the point arena.
    pub point: u32,
    /// Splitting axis at this node.
    pub axis: u8,
    /// Left child node index or -1.
    pub left: i32,
    /// Right child node index or -1.
    pub right: i32,
}

/// Structural statistics of a built tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KdStats {
    /// Number of points / nodes.
    pub len: usize,
    /// Longest root-to-leaf path (1 for a single node, 0 for empty).
    pub depth: usize,
}

/// A static k-d tree over `f64` points.
#[derive(Debug, Clone)]
pub struct KdTree {
    pub(crate) dims: usize,
    pub(crate) ids: Vec<PointId>,
    pub(crate) coords: Vec<f64>, // row-major: point i at coords[i*dims..][..dims]
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: i32,
}

impl KdTree {
    /// Build from `(id, coordinates)` pairs.
    ///
    /// Splitting axes cycle with depth; the split point is the median along
    /// the axis, so the tree is balanced (depth `⌈log2 n⌉ + O(1)`) no matter
    /// how adversarial the input distribution is.
    ///
    /// # Panics
    /// If points disagree on dimensionality.
    pub fn build(points: Vec<(PointId, Box<[f64]>)>) -> Self {
        let dims = points.first().map_or(0, |(_, c)| c.len());
        let n = points.len();
        let mut ids = Vec::with_capacity(n);
        let mut coords = Vec::with_capacity(n * dims);
        for (id, c) in &points {
            assert_eq!(c.len(), dims, "dimension mismatch in k-d tree input");
            ids.push(*id);
            coords.extend_from_slice(c);
        }
        let mut tree = KdTree { dims, ids, coords, nodes: Vec::with_capacity(n), root: -1 };
        let mut order: Vec<u32> = (0..n as u32).collect();
        tree.root = tree.build_range(&mut order, 0);
        tree
    }

    /// Build from point records.
    pub fn from_records(records: &[Record<VecPoint>]) -> Self {
        Self::build(records.iter().map(|r| (r.id, r.point.0.clone())).collect())
    }

    fn build_range(&mut self, order: &mut [u32], depth: usize) -> i32 {
        if order.is_empty() {
            return -1;
        }
        let axis = if self.dims == 0 { 0 } else { depth % self.dims };
        let mid = order.len() / 2;
        // Median split along the axis; ties broken by id for determinism.
        let dims = self.dims;
        let coords = &self.coords;
        let ids = &self.ids;
        order.select_nth_unstable_by(mid, |&a, &b| {
            let ca = coords[a as usize * dims + axis];
            let cb = coords[b as usize * dims + axis];
            ca.total_cmp(&cb).then_with(|| ids[a as usize].cmp(&ids[b as usize]))
        });
        let point = order[mid];
        let node_idx = self.nodes.len() as i32;
        self.nodes.push(Node { point, axis: axis as u8, left: -1, right: -1 });
        let (lo, rest) = order.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = self.build_range(lo, depth + 1);
        let right = self.build_range(hi, depth + 1);
        let node = &mut self.nodes[node_idx as usize];
        node.left = left;
        node.right = right;
        node_idx
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality of the stored points (0 for an empty tree).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Coordinates of arena point `i`.
    #[inline]
    pub(crate) fn point(&self, i: u32) -> &[f64] {
        &self.coords[i as usize * self.dims..(i as usize + 1) * self.dims]
    }

    /// Structural statistics.
    pub fn stats(&self) -> KdStats {
        fn depth_of(tree: &KdTree, node: i32) -> usize {
            if node < 0 {
                return 0;
            }
            let n = tree.nodes[node as usize];
            1 + depth_of(tree, n.left).max(depth_of(tree, n.right))
        }
        KdStats { len: self.len(), depth: depth_of(self, self.root) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[&[f64]]) -> Vec<(PointId, Box<[f64]>)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, c)| (PointId(i as u64), c.to_vec().into_boxed_slice()))
            .collect()
    }

    #[test]
    fn build_empty_and_singleton() {
        let t = KdTree::build(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.stats(), KdStats { len: 0, depth: 0 });

        let t = KdTree::build(pts(&[&[1.0, 2.0]]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats().depth, 1);
        assert_eq!(t.dims(), 2);
    }

    #[test]
    fn median_split_is_balanced() {
        let n = 1024;
        let points: Vec<(PointId, Box<[f64]>)> = (0..n)
            .map(|i| (PointId(i as u64), vec![i as f64, (i * 37 % n) as f64].into_boxed_slice()))
            .collect();
        let t = KdTree::build(points);
        let stats = t.stats();
        assert_eq!(stats.len, n);
        // Perfectly balanced depth for 1024 nodes is 11; allow +1 slack.
        assert!(stats.depth <= 12, "depth = {}", stats.depth);
    }

    #[test]
    fn balanced_even_on_duplicate_coordinates() {
        let n = 512;
        let points: Vec<(PointId, Box<[f64]>)> =
            (0..n).map(|i| (PointId(i as u64), vec![1.0, 1.0].into_boxed_slice())).collect();
        let t = KdTree::build(points);
        assert!(t.stats().depth <= 11, "depth = {}", t.stats().depth);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mixed_dims_rejected() {
        let points = vec![
            (PointId(0), vec![1.0].into_boxed_slice()),
            (PointId(1), vec![1.0, 2.0].into_boxed_slice()),
        ];
        let _ = KdTree::build(points);
    }
}
