//! The k-d tree must return exactly the linear scan's answer — same
//! neighbors, same order, same tie-breaks — over random point sets in
//! 1 through 8 dimensions, for every supported metric.

use knn_kdtree::KdTree;
use knn_points::{brute_force_knn, Dist, IdAssigner, Metric, PointId, Record, VecPoint};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_records(n: usize, dims: usize, seed: u64) -> Vec<Record<VecPoint>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = IdAssigner::new(seed);
    (0..n)
        .map(|_| Record {
            id: ids.next_id(),
            point: VecPoint::new(
                (0..dims).map(|_| rng.random_range(-50.0..50.0)).collect::<Vec<f64>>(),
            ),
            label: None,
        })
        .collect()
}

fn oracle(
    records: &[Record<VecPoint>],
    query: &[f64],
    ell: usize,
    metric: Metric,
) -> Vec<(Dist, PointId)> {
    brute_force_knn(records, &VecPoint::new(query.to_vec()), ell, metric)
        .into_iter()
        .map(|(key, _)| (key.dist, key.id))
        .collect()
}

fn check(n: usize, dims: usize, ell: usize, metric: Metric, seed: u64) {
    let records = random_records(n, dims, seed);
    let tree = KdTree::from_records(&records);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51DE_CAFE);
    for _ in 0..8 {
        let query: Vec<f64> = (0..dims).map(|_| rng.random_range(-60.0..60.0)).collect();
        let got = tree.knn(&query, ell, metric);
        let want = oracle(&records, &query, ell, metric);
        assert_eq!(
            got, want,
            "kdtree disagrees with brute force: n={n} dims={dims} ell={ell} metric={metric:?}"
        );
    }
}

#[test]
fn matches_brute_force_in_1_through_8_dimensions() {
    for dims in 1..=8 {
        for &n in &[1usize, 2, 17, 120] {
            for &ell in &[1usize, 4, 16] {
                check(n, dims, ell, Metric::Euclidean, dims as u64 * 1000 + n as u64);
            }
        }
    }
}

#[test]
fn matches_brute_force_for_every_metric() {
    let metrics = [
        Metric::Euclidean,
        Metric::SquaredEuclidean,
        Metric::Manhattan,
        Metric::Chebyshev,
        Metric::Minkowski(3.0),
        Metric::Hamming,
    ];
    for (i, &metric) in metrics.iter().enumerate() {
        for dims in [1usize, 3, 8] {
            check(80, dims, 5, metric, 7_000 + i as u64);
        }
    }
}

#[test]
fn ell_at_least_n_returns_everything_in_order() {
    for dims in [1usize, 4, 8] {
        let records = random_records(25, dims, 42 + dims as u64);
        let tree = KdTree::from_records(&records);
        let query = vec![0.0; dims];
        for ell in [25usize, 26, 1000] {
            let got = tree.knn(&query, ell, Metric::Euclidean);
            assert_eq!(got.len(), 25);
            assert_eq!(got, oracle(&records, &query, ell, Metric::Euclidean));
        }
    }
}

#[test]
fn duplicate_points_break_ties_by_id() {
    // Many coincident points: ordering must fall back to PointId, exactly
    // like the linear scan.
    let mut ids = IdAssigner::new(9);
    let records: Vec<Record<VecPoint>> = (0..40)
        .map(|i| Record {
            id: ids.next_id(),
            point: VecPoint::new(vec![(i % 4) as f64, 1.0]),
            label: None,
        })
        .collect();
    let tree = KdTree::from_records(&records);
    let query = [0.2, 1.0];
    for ell in [1usize, 7, 13, 40] {
        assert_eq!(
            tree.knn(&query, ell, Metric::Euclidean),
            oracle(&records, &query, ell, Metric::Euclidean),
            "tie-break divergence at ell={ell}"
        );
    }
}

#[test]
fn degenerate_inputs() {
    let tree = KdTree::from_records(&[]);
    assert!(tree.knn(&[1.0], 3, Metric::Euclidean).is_empty());

    let records = random_records(10, 2, 5);
    let tree = KdTree::from_records(&records);
    assert!(tree.knn(&[0.0, 0.0], 0, Metric::Euclidean).is_empty());

    // Points on a line embedded in 3-D (degenerate spread on two axes).
    let mut ids = IdAssigner::new(77);
    let line: Vec<Record<VecPoint>> = (0..30)
        .map(|i| Record {
            id: ids.next_id(),
            point: VecPoint::new(vec![i as f64, 0.0, 0.0]),
            label: None,
        })
        .collect();
    let tree = KdTree::from_records(&line);
    let query = [12.4, 0.0, 0.0];
    assert_eq!(tree.knn(&query, 4, Metric::Euclidean), oracle(&line, &query, 4, Metric::Euclidean));
}
