//! Network configuration for a simulated k-machine cluster.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Per-link bandwidth policy.
///
/// The k-machine model allows `B` bits per link per round; the usual choice
/// is `B = Θ(log n)`. With [`BandwidthMode::Enforce`], every ordered link is
/// a store-and-forward FIFO draining at most `B` bits per round, so a machine
/// that ships `m` bits over one link pays `⌈m / B⌉` rounds. With
/// [`BandwidthMode::Unlimited`], every message is delivered in the next round
/// and bandwidth is only *accounted*, not enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BandwidthMode {
    /// Deliver everything next round; only record bit counts.
    Unlimited,
    /// At most this many bits drain per ordered link per round.
    Enforce {
        /// Link capacity in bits per round (`B` in the model).
        bits_per_round: u64,
    },
}

impl BandwidthMode {
    /// Link budget per round, or `u64::MAX` when unlimited.
    #[inline]
    pub fn budget(&self) -> u64 {
        match *self {
            BandwidthMode::Unlimited => u64::MAX,
            BandwidthMode::Enforce { bits_per_round } => bits_per_round,
        }
    }
}

/// Default bandwidth used throughout the reproduction: enough for a constant
/// number of `(value, id)` keys per round, the model's `Θ(log n)` regime.
pub const DEFAULT_BANDWIDTH_BITS: u64 = 512;

/// Delivery discipline of the event engine.
///
/// Lockstep simulation on a complete graph has an inherent skew bound: a
/// machine's round-r inbox is defined only once *every* peer has finished
/// its round r−1 transport, because an **empty** transport is information
/// too. [`DeliveryMode::Relaxed`] recovers multi-round pipelining (the
/// PANDA-style idea) by letting senders substitute a *quiescence promise*
/// — "nothing from me before round X", published when a done machine's
/// backlog drains or a protocol declares a silent horizon via
/// [`crate::Protocol::quiet_until`] — for the empty transports themselves,
/// so a machine may run up to [`NetConfig::event_window`] − 1 rounds ahead
/// of a quiet peer. Outputs, rounds, and every [`crate::RunMetrics`] field
/// are identical in both modes (promises only ever replace provably-empty
/// transports); what changes is wall-clock overlap, reported through
/// [`crate::metrics::SkewMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryMode {
    /// Bit-exact complete-graph delivery: every receiver observes every
    /// peer's transport each round, even an empty one. Machine skew is
    /// bounded at one round.
    #[default]
    Exact,
    /// Quiescence promises may stand in for empty transports: machines run
    /// ahead of quiet peers, bounded by the staging-ring depth
    /// ([`NetConfig::event_window`]).
    Relaxed,
}

impl DeliveryMode {
    /// Short stable name for tables, CSV output, and the `KNN_DELIVERY`
    /// environment variable.
    pub fn name(&self) -> &'static str {
        match self {
            DeliveryMode::Exact => "exact",
            DeliveryMode::Relaxed => "relaxed",
        }
    }
}

impl std::str::FromStr for DeliveryMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "exact" => Ok(DeliveryMode::Exact),
            "relaxed" => Ok(DeliveryMode::Relaxed),
            "" => Err("empty delivery mode: expected exact|relaxed".to_string()),
            other => Err(format!("unknown delivery mode {other:?}: expected exact|relaxed")),
        }
    }
}

/// Deterministic fault-injection plan: which machines straggle, which
/// crash, and how lossy the links are.
///
/// Everything here is seeded and pure — two runs with the same
/// [`NetConfig`] (including the same plan) inject byte-identical faults,
/// on every engine and at every pool size. Stragglers are a pure
/// wall-clock knob (the event engine delays their scheduling; outputs and
/// metrics never change). Crashes are fail-stop: a machine with crash
/// round `r` executes rounds `< r` and is then treated as done — its
/// in-flight messages still drain, peers observe the horizon through
/// [`crate::Ctx::crashed`], and the salvage hook
/// [`crate::Protocol::on_crash`] decides whether the run can still
/// collect an output for it (otherwise the run reports
/// [`crate::EngineError::Crashed`]). Loss drops fully-transmitted
/// messages pseudo-randomly per link; each drop re-enqueues the message at
/// full size (the retransmission pays bandwidth again) until
/// `max_retries` is exhausted, at which point the run aborts with
/// [`crate::EngineError::LinkDown`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// `(machine, factor)` speed multipliers: the event engine delays the
    /// machine by `(factor − 1)` scheduling quanta per round. Factor 1 (or
    /// an absent entry) means full speed. Realized skew shows up in
    /// [`crate::metrics::SkewMetrics`] under relaxed delivery.
    pub stragglers: Vec<(crate::message::MachineId, u32)>,
    /// `(machine, round)` fail-stop injections: the machine executes rounds
    /// `< round` and then stops (round 0: it never runs at all).
    pub crashes: Vec<(crate::message::MachineId, u64)>,
    /// Per-message drop probability in thousandths (0 = lossless,
    /// 1000 = every message drops until the link goes down).
    pub loss_per_mille: u16,
    /// Retransmissions allowed per message before the link is declared
    /// down.
    pub max_retries: u32,
    /// Seed of the loss process, independent of [`NetConfig::seed`] so the
    /// same workload can be replayed under different fault draws.
    pub fault_seed: u64,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.stragglers.is_empty() && self.crashes.is_empty() && self.loss_per_mille == 0
    }

    /// Round at which `machine` crashes (`u64::MAX`: never).
    pub fn crash_round(&self, machine: crate::message::MachineId) -> u64 {
        self.crashes
            .iter()
            .filter(|(m, _)| *m == machine)
            .map(|&(_, r)| r)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Speed factor of `machine` (≥ 1; 1 = full speed).
    pub fn slowdown(&self, machine: crate::message::MachineId) -> u32 {
        self.stragglers.iter().find(|(m, _)| *m == machine).map_or(1, |&(_, f)| f.max(1))
    }

    /// Add a straggler entry.
    pub fn with_straggler(mut self, machine: crate::message::MachineId, factor: u32) -> Self {
        self.stragglers.push((machine, factor));
        self
    }

    /// Add a crash entry.
    pub fn with_crash(mut self, machine: crate::message::MachineId, round: u64) -> Self {
        self.crashes.push((machine, round));
        self
    }

    /// Set the loss rate and retry budget.
    ///
    /// Values above 1000 (100% loss) are kept as-is and rejected with
    /// [`EngineError::InvalidPlan`](crate::EngineError::InvalidPlan) when the
    /// plan is validated at engine entry.
    pub fn with_loss(mut self, per_mille: u16, max_retries: u32) -> Self {
        self.loss_per_mille = per_mille;
        self.max_retries = max_retries;
        self
    }

    /// Set the loss-process seed.
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Project the plan onto the surviving subset `alive` (original machine
    /// ids, ascending): entries for machines outside `alive` are dropped,
    /// the rest are remapped to the subset's indices. This is what a retry
    /// over survivors runs under — the crash that killed the excluded
    /// machine is gone, so the retry loop terminates.
    pub fn project(&self, alive: &[crate::message::MachineId]) -> FaultPlan {
        let remap = |m: crate::message::MachineId| alive.iter().position(|&a| a == m);
        FaultPlan {
            stragglers: self
                .stragglers
                .iter()
                .filter_map(|&(m, f)| remap(m).map(|i| (i, f)))
                .collect(),
            crashes: self.crashes.iter().filter_map(|&(m, r)| remap(m).map(|i| (i, r))).collect(),
            loss_per_mille: self.loss_per_mille,
            max_retries: self.max_retries,
            fault_seed: self.fault_seed,
        }
    }
}

/// Deterministic Byzantine-fault plan: which machines *lie*, which links
/// corrupt payloads in flight, and which machines equivocate.
///
/// Everything here is seeded and pure, mirroring [`FaultPlan`]: two runs
/// with the same plan inject byte-identical wrong-answer faults on every
/// engine and at every pool size. The three fault families are
///
/// * **Lies** — `(machine, round)`: from `round` on, the machine perturbs
///   the candidate distances/ids it announces (a lie scheduled for round 0
///   also poisons the machine's materialized input, so its *output claims*
///   are wrong too — the case the query-layer audit can blame soundly).
///   Wire-level perturbation goes through [`crate::Payload::tamper`].
/// * **Link corruption** — `(src, dst, per_mille)`: fully-transmitted
///   messages on the ordered link `src → dst` are bit-flipped in flight
///   with the given probability. The decision is a pure splitmix64 roll
///   (same scheme as [`FaultPlan`] loss), so all three engines corrupt the
///   *same* messages; the flip lands on the link-layer integrity digest
///   and is caught at delivery as
///   [`crate::EngineError::IntegrityViolation`].
/// * **Equivocation** — the machine's lies additionally vary *per
///   destination*: different peers receive different fabrications.
///
/// Lying machines compute valid digests over their lies — integrity
/// checking cannot catch them. Detecting them is the job of the semantic
/// audit in the query layer (`knn-core`), which recomputes claims against
/// the shard-local oracles and quarantines suspects.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// `(machine, round)` lying injections: the machine perturbs what it
    /// announces from `round` on (round 0: its materialized input too).
    pub lies: Vec<(crate::message::MachineId, u64)>,
    /// `(src, dst, per_mille)` in-flight corruption rates per ordered link
    /// (0 = clean, 1000 = every message corrupted).
    pub corrupt_links: Vec<(crate::message::MachineId, crate::message::MachineId, u16)>,
    /// Machines whose lies vary per destination.
    pub equivocators: Vec<crate::message::MachineId>,
    /// Seed of the lie/corruption processes, independent of
    /// [`NetConfig::seed`] so the same workload replays under different
    /// adversary draws.
    pub adversary_seed: u64,
}

impl AdversaryPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.lies.is_empty() && self.corrupt_links.is_empty() && self.equivocators.is_empty()
    }

    /// Round from which `machine` lies (`u64::MAX`: honest forever).
    pub fn lie_round(&self, machine: crate::message::MachineId) -> u64 {
        self.lies.iter().filter(|(m, _)| *m == machine).map(|&(_, r)| r).min().unwrap_or(u64::MAX)
    }

    /// Whether `machine` equivocates (per-destination lies).
    pub fn equivocates(&self, machine: crate::message::MachineId) -> bool {
        self.equivocators.contains(&machine)
    }

    /// Corruption rate of the ordered link `src → dst` in thousandths.
    pub fn corrupt_per_mille(
        &self,
        src: crate::message::MachineId,
        dst: crate::message::MachineId,
    ) -> u16 {
        self.corrupt_links
            .iter()
            .filter(|&&(s, d, _)| s == src && d == dst)
            .map(|&(_, _, p)| p)
            .max()
            .unwrap_or(0)
    }

    /// Add a lying machine (perturbs announced candidates from `round` on).
    pub fn with_lie(mut self, machine: crate::message::MachineId, round: u64) -> Self {
        self.lies.push((machine, round));
        self
    }

    /// Add an in-flight corruption rate for the ordered link `src → dst`.
    ///
    /// Values above 1000 (100% corruption) are kept as-is and rejected with
    /// [`EngineError::InvalidPlan`](crate::EngineError::InvalidPlan) when
    /// the plan is validated at engine entry.
    pub fn with_corrupt_link(
        mut self,
        src: crate::message::MachineId,
        dst: crate::message::MachineId,
        per_mille: u16,
    ) -> Self {
        self.corrupt_links.push((src, dst, per_mille));
        self
    }

    /// Mark `machine` as an equivocator (its lies vary per destination).
    pub fn with_equivocate(mut self, machine: crate::message::MachineId) -> Self {
        self.equivocators.push(machine);
        self
    }

    /// Set the adversary seed.
    pub fn with_adversary_seed(mut self, seed: u64) -> Self {
        self.adversary_seed = seed;
        self
    }

    /// Project the plan onto the surviving subset `alive` (original machine
    /// ids, ascending), mirroring [`FaultPlan::project`]: entries touching
    /// machines outside `alive` are dropped, the rest are remapped to the
    /// subset's indices. A corrupt-link entry is dropped when *either*
    /// endpoint was quarantined — this is what makes quarantine-and-retry
    /// terminate.
    pub fn project(&self, alive: &[crate::message::MachineId]) -> AdversaryPlan {
        let remap = |m: crate::message::MachineId| alive.iter().position(|&a| a == m);
        AdversaryPlan {
            lies: self.lies.iter().filter_map(|&(m, r)| remap(m).map(|i| (i, r))).collect(),
            corrupt_links: self
                .corrupt_links
                .iter()
                .filter_map(|&(s, d, p)| Some((remap(s)?, remap(d)?, p)))
                .collect(),
            equivocators: self.equivocators.iter().filter_map(|&m| remap(m)).collect(),
            adversary_seed: self.adversary_seed,
        }
    }
}

/// Default number of rounds of per-link transports a rejoining machine's
/// replay window may span (see [`RecoveryPlan::retention`]).
pub const DEFAULT_RETENTION_ROUNDS: u64 = 64;

/// Deterministic crash-*recovery* plan: which machines crash and later
/// rejoin, how often they checkpoint, and how many rounds of delivered
/// transports are retained for replay.
///
/// A rejoin entry `(machine, crash_round, rejoin_round)` is the recoverable
/// counterpart of a [`FaultPlan`] crash: the machine goes dark at
/// `crash_round` (it executes rounds `< crash_round`, sends nothing during
/// the outage, and its inbound traffic is retained), then at `rejoin_round`
/// it is restored from its last [`crate::Protocol::checkpoint`] and replays
/// the retained rounds — emitting only the sends the fault-free execution
/// would have produced during the outage — before executing normally again.
/// Peers never observe the machine through [`crate::Ctx::crashed`] (the
/// outage is a pause, not a fail-stop); they observe the rejoin through
/// [`crate::Ctx::rejoined`] one round after `rejoin_round`. A machine
/// listed here must **not** also appear in [`FaultPlan::crashes`] — the
/// engines reject such plans with [`crate::EngineError::InvalidPlan`].
///
/// Everything is seeded and pure: the same plan realizes byte-identical
/// recoveries (and [`crate::metrics::RecoveryMetrics`]) on every engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPlan {
    /// `(machine, crash_round, rejoin_round)` entries, one per recovering
    /// machine. `rejoin_round` must be strictly greater than `crash_round`.
    pub rejoins: Vec<(crate::message::MachineId, u64, u64)>,
    /// Checkpoint cadence in rounds for machines in the plan: a checkpoint
    /// is attempted at the top of every round `r` with
    /// `r % checkpoint_interval == 0`, up to and including the crash round.
    /// Clamped to ≥ 1 by [`RecoveryPlan::with_checkpoint_interval`].
    pub checkpoint_interval: u64,
    /// Maximum number of rounds the replay window (last checkpoint →
    /// rejoin) may span; the per-round inbox copies retained for replay are
    /// bounded by this. A rejoin whose window exceeds it fails with
    /// [`crate::EngineError::CheckpointTooOld`].
    pub retention: u64,
}

impl Default for RecoveryPlan {
    fn default() -> Self {
        RecoveryPlan {
            rejoins: Vec::new(),
            checkpoint_interval: 1,
            retention: DEFAULT_RETENTION_ROUNDS,
        }
    }
}

impl RecoveryPlan {
    /// True when no machine is scheduled to rejoin.
    pub fn is_empty(&self) -> bool {
        self.rejoins.is_empty()
    }

    /// Round at which `machine` rejoins (`u64::MAX`: never scheduled).
    pub fn rejoin_round(&self, machine: crate::message::MachineId) -> u64 {
        self.rejoins
            .iter()
            .filter(|(m, _, _)| *m == machine)
            .map(|&(_, _, j)| j)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Add a crash-then-rejoin entry for `machine`.
    pub fn with_rejoin(
        mut self,
        machine: crate::message::MachineId,
        crash_round: u64,
        rejoin_round: u64,
    ) -> Self {
        self.rejoins.push((machine, crash_round, rejoin_round));
        self
    }

    /// Set the checkpoint cadence (clamped to ≥ 1).
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval.max(1);
        self
    }

    /// Set the replay retention window (clamped to ≥ 1).
    pub fn with_retention(mut self, rounds: u64) -> Self {
        self.retention = rounds.max(1);
        self
    }

    /// Project the plan onto the surviving subset `alive` (original machine
    /// ids, ascending), mirroring [`FaultPlan::project`]: entries for
    /// machines outside `alive` are dropped, the rest are remapped to the
    /// subset's indices.
    pub fn project(&self, alive: &[crate::message::MachineId]) -> RecoveryPlan {
        let remap = |m: crate::message::MachineId| alive.iter().position(|&a| a == m);
        RecoveryPlan {
            rejoins: self
                .rejoins
                .iter()
                .filter_map(|&(m, c, j)| remap(m).map(|i| (i, c, j)))
                .collect(),
            checkpoint_interval: self.checkpoint_interval,
            retention: self.retention,
        }
    }
}

/// Configuration of a simulated cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    /// Number of machines (`k ≥ 2` in the model; we also allow 1 for tests).
    pub k: usize,
    /// Link bandwidth policy.
    pub bandwidth: BandwidthMode,
    /// Master seed; per-machine RNG streams are derived deterministically.
    pub seed: u64,
    /// Abort the run with [`crate::EngineError::MaxRounds`] past this round.
    pub max_rounds: u64,
    /// Synthetic per-round network latency, applied only by the threaded
    /// engine (models cluster RTT; the sync and event engines ignore it —
    /// the event engine has no global round to attach it to).
    pub round_latency: Duration,
    /// Worker threads of the event engine's scheduler (`None`: the ambient
    /// rayon pool size, so `RAYON_NUM_THREADS` and `ThreadPool::install`
    /// govern it like every other parallel path). A pure wall-clock knob:
    /// outputs and metrics are identical at every value.
    pub event_workers: Option<usize>,
    /// Depth of the event engine's per-destination staging rings (slots of
    /// in-flight rounds). A pure wall-clock knob; clamped to ≥ 2 — at
    /// depth 1 a machine's transport of round r would wait for every peer
    /// to consume round r while their consumption waits on the same
    /// round's publishes, re-creating the lockstep circular wait the
    /// engine exists to avoid. Under [`DeliveryMode::Exact`] values above 2
    /// change nothing: bit-exact complete-graph delivery bounds machine
    /// skew at one round (a machine must see every peer's previous
    /// transport, even an empty one, before its inbox is defined), so at
    /// most two slots are ever in flight. Under [`DeliveryMode::Relaxed`]
    /// the window is the real run-ahead budget: a machine may execute up to
    /// `event_window − 1` rounds past a quiet peer, so deeper rings buy
    /// genuine pipelining depth.
    pub event_window: u64,
    /// Delivery discipline of the event engine (the sync and threaded
    /// engines are inherently exact and ignore this). See [`DeliveryMode`];
    /// the `KNN_DELIVERY` environment variable overrides it for every
    /// [`crate::Engine::run`] call.
    pub delivery: DeliveryMode,
    /// Deterministic fault injection (default: no faults). See
    /// [`FaultPlan`].
    pub faults: FaultPlan,
    /// Deterministic crash-recovery plan (default: nobody rejoins). See
    /// [`RecoveryPlan`].
    #[serde(default)]
    pub recovery: RecoveryPlan,
    /// Deterministic Byzantine-fault plan (default: everyone honest). See
    /// [`AdversaryPlan`].
    #[serde(default)]
    pub adversary: AdversaryPlan,
}

/// Default event-engine run-ahead window: deep enough to absorb scheduling
/// jitter and pipeline multiplexed batches, shallow enough to keep the
/// per-link rings small.
pub const DEFAULT_EVENT_WINDOW: u64 = 4;

impl NetConfig {
    /// A config with `k` machines, enforced default bandwidth, seed 0.
    pub fn new(k: usize) -> Self {
        NetConfig {
            k,
            bandwidth: BandwidthMode::Enforce { bits_per_round: DEFAULT_BANDWIDTH_BITS },
            seed: 0,
            max_rounds: 10_000_000,
            round_latency: Duration::ZERO,
            event_workers: None,
            event_window: DEFAULT_EVENT_WINDOW,
            delivery: DeliveryMode::Exact,
            faults: FaultPlan::default(),
            recovery: RecoveryPlan::default(),
            adversary: AdversaryPlan::default(),
        }
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the bandwidth mode.
    pub fn with_bandwidth(mut self, bw: BandwidthMode) -> Self {
        self.bandwidth = bw;
        self
    }

    /// Set the per-round latency used by the threaded engine.
    pub fn with_round_latency(mut self, latency: Duration) -> Self {
        self.round_latency = latency;
        self
    }

    /// Set the stall safety limit.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Pin the event engine's worker count (default: ambient rayon pool).
    pub fn with_event_workers(mut self, workers: usize) -> Self {
        self.event_workers = Some(workers.max(1));
        self
    }

    /// Set the event engine's run-ahead window (clamped to ≥ 2; see
    /// [`NetConfig::event_window`]).
    pub fn with_event_window(mut self, window: u64) -> Self {
        self.event_window = window.max(2);
        self
    }

    /// Set the event engine's delivery discipline (see [`DeliveryMode`]).
    pub fn with_delivery(mut self, delivery: DeliveryMode) -> Self {
        self.delivery = delivery;
        self
    }

    /// Set the fault-injection plan (see [`FaultPlan`]).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Set the crash-recovery plan (see [`RecoveryPlan`]).
    pub fn with_recovery(mut self, recovery: RecoveryPlan) -> Self {
        self.recovery = recovery;
        self
    }

    /// Set the Byzantine-fault plan (see [`AdversaryPlan`]).
    pub fn with_adversary(mut self, adversary: AdversaryPlan) -> Self {
        self.adversary = adversary;
        self
    }

    /// Add one lying machine to the adversary plan (see
    /// [`AdversaryPlan::with_lie`]).
    pub fn with_lie(mut self, machine: crate::message::MachineId, round: u64) -> Self {
        self.adversary = std::mem::take(&mut self.adversary).with_lie(machine, round);
        self
    }

    /// Add one in-flight corruption rate to the adversary plan (see
    /// [`AdversaryPlan::with_corrupt_link`]).
    pub fn with_corrupt_link(
        mut self,
        src: crate::message::MachineId,
        dst: crate::message::MachineId,
        per_mille: u16,
    ) -> Self {
        self.adversary = std::mem::take(&mut self.adversary).with_corrupt_link(src, dst, per_mille);
        self
    }

    /// Mark one machine as an equivocator in the adversary plan (see
    /// [`AdversaryPlan::with_equivocate`]).
    pub fn with_equivocate(mut self, machine: crate::message::MachineId) -> Self {
        self.adversary = std::mem::take(&mut self.adversary).with_equivocate(machine);
        self
    }

    /// Add one crash-then-rejoin entry to the recovery plan.
    pub fn with_rejoin(
        mut self,
        machine: crate::message::MachineId,
        crash_round: u64,
        rejoin_round: u64,
    ) -> Self {
        self.recovery =
            std::mem::take(&mut self.recovery).with_rejoin(machine, crash_round, rejoin_round);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_enforces_bandwidth() {
        let cfg = NetConfig::new(8);
        assert_eq!(cfg.k, 8);
        assert_eq!(cfg.bandwidth.budget(), DEFAULT_BANDWIDTH_BITS);
    }

    #[test]
    fn unlimited_budget_is_max() {
        assert_eq!(BandwidthMode::Unlimited.budget(), u64::MAX);
    }

    #[test]
    fn builder_chain() {
        let cfg = NetConfig::new(4)
            .with_seed(7)
            .with_bandwidth(BandwidthMode::Unlimited)
            .with_max_rounds(99)
            .with_round_latency(Duration::from_micros(50))
            .with_event_workers(3)
            .with_event_window(6);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.bandwidth, BandwidthMode::Unlimited);
        assert_eq!(cfg.max_rounds, 99);
        assert_eq!(cfg.round_latency, Duration::from_micros(50));
        assert_eq!(cfg.event_workers, Some(3));
        assert_eq!(cfg.event_window, 6);
    }

    #[test]
    fn event_knobs_default_and_clamp() {
        let cfg = NetConfig::new(2);
        assert_eq!(cfg.event_workers, None);
        assert_eq!(cfg.event_window, DEFAULT_EVENT_WINDOW);
        assert_eq!(cfg.delivery, DeliveryMode::Exact);
        let cfg = cfg.with_event_workers(0).with_event_window(0);
        assert_eq!(cfg.event_workers, Some(1));
        assert_eq!(cfg.event_window, 2);
        let cfg = cfg.with_delivery(DeliveryMode::Relaxed);
        assert_eq!(cfg.delivery, DeliveryMode::Relaxed);
    }

    #[test]
    fn fault_plan_defaults_to_no_faults() {
        let cfg = NetConfig::new(3);
        assert!(cfg.faults.is_empty());
        assert_eq!(cfg.faults.crash_round(0), u64::MAX);
        assert_eq!(cfg.faults.slowdown(2), 1);
    }

    #[test]
    fn fault_plan_builders_and_lookups() {
        let plan = FaultPlan::default()
            .with_straggler(1, 8)
            .with_crash(2, 5)
            .with_loss(50, 3)
            .with_fault_seed(99);
        assert!(!plan.is_empty());
        assert_eq!(plan.slowdown(1), 8);
        assert_eq!(plan.slowdown(0), 1);
        assert_eq!(plan.crash_round(2), 5);
        assert_eq!(plan.crash_round(1), u64::MAX);
        assert_eq!(plan.loss_per_mille, 50);
        assert_eq!(plan.max_retries, 3);
        assert_eq!(plan.fault_seed, 99);
        // Multiple crash entries for one machine: the earliest wins; a
        // straggler factor of 0 is clamped to full speed.
        let plan = plan.with_crash(2, 3).with_straggler(3, 0);
        assert_eq!(plan.crash_round(2), 3);
        assert_eq!(plan.slowdown(3), 1);
        let cfg = NetConfig::new(4).with_faults(plan.clone());
        assert_eq!(cfg.faults, plan);
    }

    #[test]
    fn fault_plan_projection_drops_and_remaps() {
        let plan = FaultPlan::default()
            .with_straggler(0, 2)
            .with_straggler(3, 4)
            .with_crash(1, 7)
            .with_crash(3, 9)
            .with_loss(10, 5)
            .with_fault_seed(42);
        // Machine 1 was excluded; 0, 2, 3 survive as 0, 1, 2.
        let sub = plan.project(&[0, 2, 3]);
        assert_eq!(sub.stragglers, vec![(0, 2), (2, 4)]);
        assert_eq!(sub.crashes, vec![(2, 9)]);
        assert_eq!(sub.loss_per_mille, 10);
        assert_eq!(sub.max_retries, 5);
        assert_eq!(sub.fault_seed, 42);
    }

    #[test]
    fn recovery_plan_defaults_builders_and_lookups() {
        let cfg = NetConfig::new(3);
        assert!(cfg.recovery.is_empty());
        assert_eq!(cfg.recovery.checkpoint_interval, 1);
        assert_eq!(cfg.recovery.retention, DEFAULT_RETENTION_ROUNDS);
        assert_eq!(cfg.recovery.rejoin_round(1), u64::MAX);

        let plan = RecoveryPlan::default()
            .with_rejoin(1, 3, 7)
            .with_checkpoint_interval(0)
            .with_retention(0);
        assert!(!plan.is_empty());
        assert_eq!(plan.rejoin_round(1), 7);
        assert_eq!(plan.checkpoint_interval, 1, "interval clamps to >= 1");
        assert_eq!(plan.retention, 1, "retention clamps to >= 1");

        let cfg = NetConfig::new(4).with_recovery(plan.clone()).with_rejoin(2, 5, 9);
        assert_eq!(cfg.recovery.rejoins, vec![(1, 3, 7), (2, 5, 9)]);
        assert_eq!(cfg.recovery.checkpoint_interval, plan.checkpoint_interval);
    }

    #[test]
    fn recovery_plan_projection_drops_and_remaps() {
        let plan = RecoveryPlan::default().with_rejoin(1, 3, 7).with_rejoin(3, 2, 5);
        // Machine 1 was excluded; 0, 2, 3 survive as 0, 1, 2.
        let sub = plan.project(&[0, 2, 3]);
        assert_eq!(sub.rejoins, vec![(2, 2, 5)]);
        assert_eq!(sub.checkpoint_interval, plan.checkpoint_interval);
        assert_eq!(sub.retention, plan.retention);
    }

    #[test]
    fn adversary_plan_defaults_builders_and_lookups() {
        let cfg = NetConfig::new(3);
        assert!(cfg.adversary.is_empty());
        assert_eq!(cfg.adversary.lie_round(0), u64::MAX);
        assert_eq!(cfg.adversary.corrupt_per_mille(0, 1), 0);
        assert!(!cfg.adversary.equivocates(2));

        let plan = AdversaryPlan::default()
            .with_lie(1, 4)
            .with_corrupt_link(0, 2, 75)
            .with_equivocate(2)
            .with_adversary_seed(99);
        assert!(!plan.is_empty());
        assert_eq!(plan.lie_round(1), 4);
        assert_eq!(plan.lie_round(0), u64::MAX);
        assert_eq!(plan.corrupt_per_mille(0, 2), 75);
        assert_eq!(plan.corrupt_per_mille(2, 0), 0, "corruption is per ordered link");
        assert!(plan.equivocates(2));
        assert_eq!(plan.adversary_seed, 99);
        // Multiple lie entries for one machine: the earliest wins.
        let plan = plan.with_lie(1, 2);
        assert_eq!(plan.lie_round(1), 2);
        let cfg = NetConfig::new(4).with_adversary(plan.clone());
        assert_eq!(cfg.adversary, plan);
        // NetConfig convenience builders compose onto the plan in place.
        let cfg = NetConfig::new(4).with_lie(0, 1).with_corrupt_link(1, 2, 10).with_equivocate(0);
        assert_eq!(cfg.adversary.lie_round(0), 1);
        assert_eq!(cfg.adversary.corrupt_per_mille(1, 2), 10);
        assert!(cfg.adversary.equivocates(0));
    }

    #[test]
    fn adversary_plan_projection_drops_and_remaps() {
        let plan = AdversaryPlan::default()
            .with_lie(1, 3)
            .with_lie(3, 0)
            .with_corrupt_link(0, 1, 50)
            .with_corrupt_link(0, 3, 60)
            .with_corrupt_link(3, 2, 70)
            .with_equivocate(1)
            .with_equivocate(3)
            .with_adversary_seed(5);
        // Machine 1 was quarantined; 0, 2, 3 survive as 0, 1, 2.
        let sub = plan.project(&[0, 2, 3]);
        assert_eq!(sub.lies, vec![(2, 0)]);
        assert_eq!(sub.corrupt_links, vec![(0, 2, 60), (2, 1, 70)]);
        assert_eq!(sub.equivocators, vec![2]);
        assert_eq!(sub.adversary_seed, 5);
        // Quarantining a corrupt link's endpoint silences that link.
        let sub = plan.project(&[1, 2]);
        assert_eq!(sub.corrupt_links, Vec::<(usize, usize, u16)>::new());
    }

    #[test]
    fn delivery_mode_parses_normalized() {
        for mode in [DeliveryMode::Exact, DeliveryMode::Relaxed] {
            assert_eq!(mode.name().parse::<DeliveryMode>().unwrap(), mode);
        }
        assert_eq!(" Relaxed \n".parse::<DeliveryMode>().unwrap(), DeliveryMode::Relaxed);
        assert_eq!("EXACT".parse::<DeliveryMode>().unwrap(), DeliveryMode::Exact);
        let err = "lossy".parse::<DeliveryMode>().unwrap_err();
        assert!(err.contains("exact|relaxed"), "error must list the variants: {err}");
        let err = "   ".parse::<DeliveryMode>().unwrap_err();
        assert!(err.contains("exact|relaxed"), "empty input lists the variants too: {err}");
    }
}
