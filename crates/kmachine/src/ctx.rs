//! Per-round execution context handed to a protocol.

use rand::rngs::StdRng;

use crate::config::AdversaryPlan;
use crate::message::{Envelope, MachineId};
use crate::payload::Payload;

/// Per-run lying context derived from the [`AdversaryPlan`], shared by
/// every machine of a run (the engines build it once at entry). Holds only
/// what [`Ctx::send`] needs to decide, purely, whether and how an outgoing
/// message is perturbed — so all three engines fabricate identical lies.
#[derive(Debug)]
pub(crate) struct AdversaryCtx {
    /// Per-machine round from which the machine lies (`u64::MAX`: honest).
    /// An equivocator with no explicit lie entry lies from round 0.
    lie_rounds: Vec<u64>,
    /// Per-machine equivocation flags (lies vary per destination).
    equivocate: Vec<bool>,
    /// The plan's adversary seed.
    seed: u64,
}

impl AdversaryCtx {
    /// Build the shared lying context, or `None` when nobody lies (link
    /// corruption alone needs no `Ctx` wiring — it lives in the links).
    pub(crate) fn from_plan(plan: &AdversaryPlan, k: usize) -> Option<AdversaryCtx> {
        if plan.lies.is_empty() && plan.equivocators.is_empty() {
            return None;
        }
        let lie_rounds =
            (0..k).map(|m| if plan.equivocates(m) { 0 } else { plan.lie_round(m) }).collect();
        let equivocate = (0..k).map(|m| plan.equivocates(m)).collect();
        Some(AdversaryCtx { lie_rounds, equivocate, seed: plan.adversary_seed })
    }

    /// Whether `machine` lies in `round`.
    #[inline]
    pub(crate) fn lying(&self, machine: MachineId, round: u64) -> bool {
        round >= self.lie_rounds[machine]
    }

    /// The deterministic perturbation word for one send site. For a plain
    /// liar the word depends only on `(seed, src, round)` — its lie is
    /// consistent across a broadcast; an equivocator's word additionally
    /// keys on `dst`, so different peers receive different fabrications.
    pub(crate) fn tamper_word(&self, src: MachineId, dst: MachineId, round: u64) -> u64 {
        let mut x = self.seed
            ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ round.wrapping_mul(0x1656_67B1_9E37_79F9);
        if self.equivocate[src] {
            x ^= (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        }
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x
    }
}

/// Everything a machine can observe and do in one round: its identity, the
/// messages delivered this round, a deterministic private RNG, and the
/// ability to send messages (which arrive next round at the earliest).
pub struct Ctx<'a, M> {
    pub(crate) id: MachineId,
    pub(crate) k: usize,
    pub(crate) round: u64,
    pub(crate) inbox: &'a [Envelope<M>],
    pub(crate) outbox: &'a mut Vec<Envelope<M>>,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) next_seq: &'a mut u64,
    /// Per-machine crash horizons from the run's
    /// [`crate::config::FaultPlan`] (`u64::MAX`: never crashes). Shared by
    /// every machine of the run; observed through [`Ctx::crashed`].
    pub(crate) crash_rounds: &'a [u64],
    /// Per-machine rejoin rounds from the run's
    /// [`crate::config::RecoveryPlan`] (`u64::MAX`: never scheduled).
    /// Shared by every machine of the run; observed through
    /// [`Ctx::rejoined`].
    pub(crate) rejoin_rounds: &'a [u64],
    /// Shared lying context of the run's [`AdversaryPlan`] (`None` when
    /// nobody lies). Applied inside [`Ctx::send`].
    pub(crate) adversary: Option<&'a AdversaryCtx>,
}

impl<'a, M: Payload> Ctx<'a, M> {
    /// This machine's id in `0..k`.
    #[inline]
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Number of machines in the cluster.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current round number (0 is the initial round with an empty inbox).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Messages delivered this round, ordered by `(src, seq)`.
    #[inline]
    pub fn inbox(&self) -> &[Envelope<M>] {
        self.inbox
    }

    /// This machine's private random stream (identical across engines).
    #[inline]
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Send `msg` to machine `dst`.
    ///
    /// # Panics
    /// If `dst` is out of range or equal to the sender (the model has no
    /// self-loops; keep local state locally).
    pub fn send(&mut self, dst: MachineId, msg: M) {
        assert!(dst < self.k, "destination {dst} out of range (k = {})", self.k);
        assert_ne!(dst, self.id, "machine {dst} tried to message itself");
        let seq = *self.next_seq;
        *self.next_seq += 1;
        let mut msg = msg;
        if let Some(adv) = self.adversary {
            if adv.lying(self.id, self.round) {
                // A Byzantine machine perturbs what it announces; the lie
                // is deterministic so every engine fabricates the same one.
                msg.tamper(adv.tamper_word(self.id, dst, self.round));
            }
        }
        self.outbox.push(Envelope {
            src: self.id,
            dst,
            sent_round: self.round,
            seq,
            digest: 0,
            msg,
        });
    }

    /// Send a copy of `msg` to every other machine (`k − 1` messages).
    pub fn broadcast(&mut self, msg: M) {
        for dst in 0..self.k {
            if dst != self.id {
                self.send(dst, msg.clone());
            }
        }
    }

    /// First message from `src` in this round's inbox, if any.
    pub fn first_from(&self, src: MachineId) -> Option<&M> {
        self.inbox.iter().find(|e| e.src == src).map(|e| &e.msg)
    }

    /// Whether `peer` is observably crashed (fail-stop, injected via
    /// [`crate::config::FaultPlan`]): it executed its last round and will
    /// never send again. A peer crashing at round `r` becomes observable
    /// from round `r + 1` on — one round after its silence starts, the
    /// earliest a real cluster could detect the missing transport.
    /// Messages the peer sent before crashing may still be in flight and
    /// arrive after this turns true.
    #[inline]
    pub fn crashed(&self, peer: MachineId) -> bool {
        self.round > self.crash_rounds[peer]
    }

    /// Whether `peer` has observably completed a crash-then-rejoin cycle
    /// (see [`crate::config::RecoveryPlan`]): it went dark at its crash
    /// round, was restored from its last checkpoint at its rejoin round,
    /// and is serving again. Like [`Ctx::crashed`], the transition becomes
    /// observable one round after it happens — a peer rejoining at round
    /// `j` reports `true` from round `j + 1` on. During the outage itself
    /// the peer is simply silent: it is *not* [`Ctx::crashed`] (the pause
    /// is recoverable), so protocols that wait on its data keep waiting —
    /// which is exactly what makes the rejoined run's answers byte-identical
    /// to the fault-free run's.
    #[inline]
    pub fn rejoined(&self, peer: MachineId) -> bool {
        self.round > self.rejoin_rounds[peer]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::machine_rng;

    /// No machine ever crashes or rejoins in these unit fixtures.
    static NO_CRASHES: [u64; 4] = [u64::MAX; 4];
    static NO_REJOINS: [u64; 4] = [u64::MAX; 4];

    fn mk_ctx<'a>(
        inbox: &'a [Envelope<u64>],
        outbox: &'a mut Vec<Envelope<u64>>,
        rng: &'a mut StdRng,
        seq: &'a mut u64,
    ) -> Ctx<'a, u64> {
        Ctx {
            id: 1,
            k: 4,
            round: 3,
            inbox,
            outbox,
            rng,
            next_seq: seq,
            crash_rounds: &NO_CRASHES,
            rejoin_rounds: &NO_REJOINS,
            adversary: None,
        }
    }

    #[test]
    fn send_and_broadcast() {
        let inbox = vec![];
        let mut outbox = Vec::new();
        let mut rng = machine_rng(0, 1);
        let mut seq = 0;
        let mut ctx = mk_ctx(&inbox, &mut outbox, &mut rng, &mut seq);
        ctx.send(0, 10);
        ctx.broadcast(20);
        // broadcast reaches 0, 2, 3 (not self).
        assert_eq!(outbox.len(), 4);
        assert!(outbox.iter().all(|e| e.dst != 1));
        let seqs: Vec<u64> = outbox.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "message itself")]
    fn self_send_panics() {
        let inbox = vec![];
        let mut outbox = Vec::new();
        let mut rng = machine_rng(0, 1);
        let mut seq = 0;
        let mut ctx = mk_ctx(&inbox, &mut outbox, &mut rng, &mut seq);
        ctx.send(1, 0);
    }

    #[test]
    fn crash_horizon_becomes_observable_one_round_late() {
        let inbox: Vec<Envelope<u64>> = vec![];
        let mut outbox = Vec::new();
        let mut rng = machine_rng(0, 1);
        let mut seq = 0;
        // Machine 2 crashed at round 2; machine 0 rejoined at round 2,
        // machine 3 rejoins at round 3. This ctx executes round 3.
        let horizons = [u64::MAX, u64::MAX, 2, 3];
        let rejoins = [2, u64::MAX, u64::MAX, 3];
        let ctx = Ctx {
            id: 1,
            k: 4,
            round: 3,
            inbox: &inbox,
            outbox: &mut outbox,
            rng: &mut rng,
            next_seq: &mut seq,
            crash_rounds: &horizons,
            rejoin_rounds: &rejoins,
            adversary: None,
        };
        assert!(!ctx.crashed(0), "healthy peers are never crashed");
        assert!(ctx.crashed(2), "round 3 observes a round-2 crash");
        assert!(!ctx.crashed(3), "a crash at the current round is not yet observable");
        assert!(ctx.rejoined(0), "round 3 observes a round-2 rejoin");
        assert!(!ctx.rejoined(3), "a rejoin at the current round is not yet observable");
        assert!(!ctx.rejoined(1), "machines outside the plan never report rejoined");
    }

    /// A payload that records tampering: the perturbation word is XORed in.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Lying(u64);

    impl Payload for Lying {
        fn size_bits(&self) -> u64 {
            64
        }
        fn tamper(&mut self, word: u64) -> bool {
            self.0 ^= word;
            true
        }
    }

    #[test]
    fn liars_tamper_sends_deterministically() {
        let plan = AdversaryPlan::default().with_lie(1, 3).with_adversary_seed(7);
        let adv = AdversaryCtx::from_plan(&plan, 4).expect("a lie arms the context");
        let send_round = |round: u64, adv: Option<&AdversaryCtx>| {
            let inbox: Vec<Envelope<Lying>> = vec![];
            let mut outbox = Vec::new();
            let mut rng = machine_rng(0, 1);
            let mut seq = 0;
            let mut ctx = Ctx {
                id: 1,
                k: 4,
                round,
                inbox: &inbox,
                outbox: &mut outbox,
                rng: &mut rng,
                next_seq: &mut seq,
                crash_rounds: &NO_CRASHES,
                rejoin_rounds: &NO_REJOINS,
                adversary: adv,
            };
            ctx.send(0, Lying(5));
            ctx.send(2, Lying(5));
            (outbox[0].msg, outbox[1].msg)
        };
        let (a, b) = send_round(2, Some(&adv));
        assert_eq!((a, b), (Lying(5), Lying(5)), "before the lie round the machine is honest");
        let (a, b) = send_round(3, Some(&adv));
        assert_ne!(a, Lying(5), "from the lie round on, sends are perturbed");
        assert_eq!(a, b, "a plain liar lies consistently across destinations");
        assert_eq!(send_round(3, Some(&adv)), send_round(3, Some(&adv)), "lies are deterministic");
        let (honest, _) = send_round(9, None);
        assert_eq!(honest, Lying(5), "no adversary context: no tampering");

        // An equivocator's lies vary per destination, from round 0 even
        // without an explicit lie entry.
        let plan = AdversaryPlan::default().with_equivocate(1).with_adversary_seed(7);
        let adv = AdversaryCtx::from_plan(&plan, 4).expect("an equivocator arms the context");
        let (a, b) = send_round(0, Some(&adv));
        assert_ne!(a, Lying(5));
        assert_ne!(a, b, "equivocation: different peers receive different lies");
    }

    #[test]
    fn first_from_picks_lowest_seq() {
        let inbox = vec![
            Envelope { src: 2, dst: 1, sent_round: 2, seq: 0, digest: 0, msg: 5u64 },
            Envelope { src: 2, dst: 1, sent_round: 2, seq: 1, digest: 0, msg: 6u64 },
            Envelope { src: 3, dst: 1, sent_round: 2, seq: 0, digest: 0, msg: 7u64 },
        ];
        let mut outbox = Vec::new();
        let mut rng = machine_rng(0, 1);
        let mut seq = 0;
        let ctx = mk_ctx(&inbox, &mut outbox, &mut rng, &mut seq);
        assert_eq!(ctx.first_from(2), Some(&5));
        assert_eq!(ctx.first_from(3), Some(&7));
        assert_eq!(ctx.first_from(0), None);
    }
}
