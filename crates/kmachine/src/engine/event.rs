//! Event-driven engine: per-link dependency scheduling, no global barrier.
//!
//! [`run_threaded`](super::run_threaded) ends every simulated round with a
//! barrier across all k workers, so one slow machine (or one descheduled
//! thread) stalls everyone — the cost that caps the batched-serving wins at
//! wall-clock level. This engine replaces the barrier with **neighbor-local
//! synchronization** over a round-slotted extension of the dense
//! `Vec<LinkFifo>` lattice:
//!
//! * every machine gets two watermarks — `published` (how many transport
//!   phases it has completed, one release store per round no matter how
//!   many links it drove) and `consumed` (how many rounds it has drained) —
//!   and a round-slotted inbound staging ring: slot `t % window` of
//!   machine m's ring collects what every source's transport phase `t`
//!   delivered toward m. Sources append at different times; the engine's
//!   existing `(src, seq)` inbox sort restores the deterministic order, so
//!   sharing one slot per (destination, round) costs nothing and lets an
//!   idle link cost literally zero (an empty transport is just the one
//!   watermark store);
//! * machine `m` may execute round `r` as soon as every peer has
//!   `published ≥ r` (its inputs exist) and `consumed + window > r` (the
//!   staging slots it may write are free) — nothing else in the cluster
//!   matters. Note the honest limit of bit-exact simulation on a complete
//!   graph: because any peer may send to m in any round, m can only know
//!   its round-r inbox is complete once *every* peer has finished round
//!   r−1 (an empty transport is information too), so compute overlap
//!   between machines is inherently bounded at one round of skew. What
//!   the engine removes is the *cost* of synchronization, not its
//!   data-flow edges: no machine ever waits at a global round boundary,
//!   there are no 3k barrier waits per round, k machines share a few
//!   worker threads instead of owning one each, and a machine's
//!   synchronization is wait-free whenever its peers have kept pace;
//! * under [`DeliveryMode::Relaxed`] the one-round bound itself falls:
//!   senders publish **quiescence promises** — a monotone per-machine
//!   round horizon meaning "no messages from me before round X" — when a
//!   done machine's backlog drains (horizon ∞) or a protocol declares a
//!   silent phase via [`Protocol::quiet_until`] and its FIFOs are empty.
//!   The readiness check accepts a peer's promise in place of its
//!   published (empty) transport, so a machine runs up to `window − 1`
//!   rounds ahead of a quiet peer — real multi-round pipelining, PANDA
//!   style. A promise only ever substitutes for a **provably empty**
//!   transport, so every inbox is byte-identical to the lockstep engines'
//!   and outputs, rounds, and all of [`RunMetrics`] are unchanged; a send
//!   inside a promised window aborts the run with
//!   [`EngineError::PromiseViolated`] (promises are load-bearing and can
//!   never be revoked). The realized overlap is reported via
//!   [`SkewMetrics`] on the outcome;
//! * machines are cooperatively-scheduled tasks on a small worker pool
//!   ([`NetConfig::event_workers`], default: the ambient rayon pool size),
//!   not one OS thread each — and a pool of **one** worker takes the
//!   degenerate path outright: dependency scheduling with nobody to overlap
//!   with is exactly the lockstep sweep, so the engine runs [`run_sync`]'s
//!   loop instead of paying watermark bookkeeping for concurrency that
//!   cannot happen (the outcome is bit-identical either way — that is the
//!   engine contract this module's tests pin).
//!
//! Outputs, round counts, and every [`RunMetrics`] field are byte-identical
//! to [`run_sync`](super::run_sync) for deterministic protocols at any
//! worker count: per-round inboxes are reassembled in the same `(src, seq)`
//! order, RNG streams are untouched, and the run-ahead bookkeeping
//! (speculative transports past the final round, late deliveries consumed
//! out of lockstep) is filtered back to exactly what the lockstep engines
//! would have observed. `tests/parallel_determinism.rs` pins this for the
//! full serving pipeline; the unit tests below pin the error paths.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;

use crate::config::{DeliveryMode, NetConfig};
use crate::ctx::{AdversaryCtx, Ctx};
use crate::engine::sync::{build_link, crash_horizons, crashed_error};
use crate::engine::RunOutcome;
use crate::error::EngineError;
use crate::link::LinkFifo;
use crate::message::{Envelope, MachineId};
use crate::metrics::{AuditMetrics, FaultMetrics, RunMetrics, SkewMetrics, TagMetrics};
use crate::payload::Payload;
use crate::protocol::{Protocol, Step};
use crate::recovery;
use crate::rng::machine_rng;

/// How long an idle worker parks before re-sweeping, bounding the cost of a
/// lost wakeup (the fast path never sleeps: any publish bumps the epoch and
/// notifies parked workers).
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Wall-clock quantum a straggling machine loses per unit of slowdown: a
/// [`crate::config::FaultPlan`] speed factor of `f` delays each of the
/// machine's rounds by `(f − 1)` quanta. Purely a scheduling delay — the
/// simulated execution is unchanged, only the realized skew (and wall
/// clock) moves.
const STRAGGLE_QUANTUM: Duration = Duration::from_micros(200);

/// One machine's inbound staging ring: slot `t % window` collects what
/// every source's transport phase `t` delivered toward this machine,
/// consumed whole at round `t + 1`. Sources may append interleaved — the
/// `(src, seq)` inbox sort restores the deterministic delivery order — and
/// slot buffers keep their allocations warm across ring reuse.
///
/// Writers are gated by the owner's `consumed` watermark (slot space) and
/// readers by each peer's `published` watermark (content completeness), so
/// the mutex is held only for the append/take itself.
type InboundRing<M> = Mutex<Vec<Vec<Envelope<M>>>>;

/// Everything a machine owns: protocol, determinism state, outbound FIFOs,
/// reused buffers, and thread-free metric accumulators (merged once at the
/// end — the hot path touches no shared counters).
struct MachineState<P: Protocol> {
    proto: P,
    rng: StdRng,
    seq: u64,
    round: u64,
    /// Outbound FIFO toward each destination (`fifos[id]` stays empty).
    fifos: Vec<LinkFifo<P::Msg>>,
    outbox: Vec<Envelope<P::Msg>>,
    inbox: Vec<Envelope<P::Msg>>,
    done: bool,
    poisoned: bool,
    output: Option<P::Output>,
    /// Non-empty inbox rounds consumed after this machine was done, as
    /// `(round, count)`. Finalization keeps only rounds the lockstep
    /// engines would have executed (`round ≤ final_round`), discarding
    /// speculative overshoot (one round under exact delivery; up to
    /// `window` rounds when promises let a machine race ahead).
    late: Vec<(u64, u64)>,
    messages: u64,
    bits: u64,
    sends: u64,
    max_backlog: u64,
    tags: Vec<TagMetrics>,
    exited: bool,
    /// Relaxed delivery: this machine's own outstanding silence horizon
    /// (monotone mirror of `Shared::promised[id]`), used to detect
    /// promise violations without re-reading the atomic.
    promise: u64,
    /// Relaxed delivery: max of `executing round − slowest peer's
    /// published round` this machine ever observed at readiness.
    max_skew: u64,
    /// Relaxed delivery: rounds executed with a promise standing in for at
    /// least one peer's unpublished transport.
    promised_rounds: u64,
    /// Relaxed delivery: promise-horizon extensions this machine published.
    promises: u64,
}

/// Cross-machine coordination state.
struct Shared<M> {
    k: usize,
    budget: u64,
    window: u64,
    max_rounds: u64,
    /// Transport phases machine i has completed (one release store per
    /// round; transport `t` feeds every destination's round `t + 1`).
    published: Vec<AtomicU64>,
    /// Rounds machine i has consumed; gates writers of its staging ring.
    consumed: Vec<AtomicU64>,
    /// Relaxed delivery only: quiescence promises. `promised[i] = q` means
    /// machine i's unexecuted transport phases before round `q` are
    /// guaranteed empty (its backlog was drained and it will not send in
    /// any round `< q`), so peers may execute rounds `≤ q` without its
    /// publishes. Monotone (`fetch_max`); `u64::MAX` = silent forever.
    promised: Vec<AtomicU64>,
    /// Whether promises participate in readiness (cfg.delivery).
    relaxed: bool,
    /// Per-destination round-slotted staging rings.
    inbound: Vec<InboundRing<M>>,
    /// All machines finished (or an error was recorded); exit after
    /// consuming through `final_round`.
    stop: AtomicBool,
    /// Error shutdown: exit immediately, metrics are not reported.
    abort: AtomicBool,
    /// Highest round in which any machine produced its output — exactly
    /// `RunMetrics::rounds` of the lockstep engines.
    final_round: AtomicU64,
    done_count: AtomicUsize,
    exited_count: AtomicUsize,
    error: Mutex<Option<EngineError>>,
    /// Stall detector: slot `r % len` packs `(round << 16) | quiet_count`.
    /// When the count for one round reaches k, the run is stalled — the
    /// same "nothing sent, nothing delivered, nothing in flight, nobody
    /// progressed" conjunction `run_sync` checks every round.
    quiet: Vec<AtomicU64>,
    /// Bumped on every completed machine-round; parked workers recheck it.
    epoch: AtomicU64,
    sleepers: AtomicUsize,
    idle: Mutex<()>,
    cv: Condvar,
    /// Per-machine fail-stop horizons from the fault plan (`u64::MAX`:
    /// never crashes).
    crash_rounds: Vec<u64>,
    /// Per-machine rejoin horizons from the recovery plan (`u64::MAX`:
    /// never scheduled).
    rejoin_rounds: Vec<u64>,
    /// Shared rejoin state when a [`crate::config::RecoveryPlan`] is
    /// active: the quiet-ring stall detector consults it so a cluster
    /// waiting out an outage is not mistaken for a deadlock.
    recovering: Option<Arc<recovery::RecoveryShared>>,
    /// Per-machine speed factors from the fault plan (1: full speed).
    slowdowns: Vec<u32>,
    /// Retry budget a lossy link exhausts before going down (for the
    /// [`EngineError::LinkDown`] report).
    max_retries: u32,
    /// Machines that hit their fail-stop horizon (unordered; sorted at
    /// collection).
    crashed: Mutex<Vec<usize>>,
    /// Byzantine lying context when the run's
    /// [`crate::config::AdversaryPlan`] has liars or equivocators (`None`
    /// otherwise — the honest hot path pays one `Option` check per send).
    adversary: Option<AdversaryCtx>,
}

impl<M> Shared<M> {
    fn wake(&self) {
        if self.sleepers.load(Ordering::Acquire) > 0 {
            self.cv.notify_all();
        }
    }

    fn fail(&self, err: EngineError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        self.abort.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        self.cv.notify_all();
    }
}

/// Execute one protocol instance per machine with per-link dependency
/// scheduling on a small worker pool.
///
/// Semantics (outputs, rounds, messages, every metric) match
/// [`run_sync`](super::run_sync); wall-clock time reflects genuinely
/// parallel local computation *without* a per-round global barrier —
/// machines synchronize only against their slowest peer's previous round
/// (the data-flow minimum for bit-exact complete-graph delivery; see the
/// [module docs](self) for why that bounds skew at one round).
///
/// [`NetConfig::round_latency`] is ignored (there is no global round to
/// attach it to); use the threaded engine for synthetic-latency runs.
///
/// With an effective pool of one worker (including `k == 1`) the engine
/// takes the degenerate path: one worker sweeping dependency-ready machines
/// *is* the lockstep order, so it runs [`run_sync`]'s loop and pays zero
/// scheduling overhead. The outcome is identical by the engine contract.
///
/// Under [`NetConfig::delivery`]` == `[`DeliveryMode::Relaxed`], quiescence
/// promises may stand in for empty transports (see the [module
/// docs](self)): outputs and metrics stay byte-identical, machines may run
/// up to `event_window − 1` rounds apart, and the realized overlap is
/// reported in [`RunOutcome::skew`] (tracked only on this path — the
/// degenerate one-worker path cannot overlap anything and reports an empty
/// [`SkewMetrics`]).
///
/// # Panics
/// If `protocols.len() != cfg.k`, bandwidth is `Enforce { 0 }`, or
/// `k > 65535` (the stall detector packs per-round quiet counts in 16 bits).
pub fn run_event<P: Protocol>(
    cfg: &NetConfig,
    protocols: Vec<P>,
) -> Result<RunOutcome<P::Output>, EngineError> {
    recovery::validate(cfg)?;
    let k = protocols.len();
    assert_eq!(k, cfg.k, "protocol count {} != cfg.k {}", k, cfg.k);
    let workers = cfg.event_workers.unwrap_or_else(rayon::current_num_threads).clamp(1, k.max(1));
    if workers <= 1 {
        // Degenerate before wrapping: `run_sync` applies its own recovery
        // wrapper, so delegating here never double-wraps.
        return super::run_sync(cfg, protocols);
    }
    if cfg.recovery.is_empty() {
        return event_core(cfg, protocols, workers, None);
    }
    let (wrapped, state) = recovery::wrap(cfg, protocols);
    recovery::finish(event_core(cfg, wrapped, workers, Some(Arc::clone(&state))), &state)
}

/// The scheduler run itself; `recovering` carries the shared rejoin state
/// when a [`crate::config::RecoveryPlan`] is active.
fn event_core<P: Protocol>(
    cfg: &NetConfig,
    protocols: Vec<P>,
    workers: usize,
    recovering: Option<Arc<recovery::RecoveryShared>>,
) -> Result<RunOutcome<P::Output>, EngineError> {
    let k = protocols.len();
    let budget = cfg.bandwidth.budget();
    assert!(budget >= 1, "bandwidth must allow at least 1 bit per round");
    // Depth ≥ 2 keeps the minimum-round machine always runnable (its
    // consumers' `consumed` trails its round by at most one).
    let window = cfg.event_window.max(2);
    assert!(k <= u16::MAX as usize, "event engine supports at most 65535 machines");

    let shared = Shared::<P::Msg> {
        k,
        budget,
        window,
        max_rounds: cfg.max_rounds,
        published: (0..k).map(|_| AtomicU64::new(0)).collect(),
        consumed: (0..k).map(|_| AtomicU64::new(0)).collect(),
        promised: (0..k).map(|_| AtomicU64::new(0)).collect(),
        relaxed: cfg.delivery == DeliveryMode::Relaxed,
        inbound: (0..k).map(|_| Mutex::new((0..window).map(|_| Vec::new()).collect())).collect(),
        stop: AtomicBool::new(false),
        abort: AtomicBool::new(false),
        final_round: AtomicU64::new(0),
        done_count: AtomicUsize::new(0),
        exited_count: AtomicUsize::new(0),
        error: Mutex::new(None),
        quiet: (0..window + 2).map(|_| AtomicU64::new(0)).collect(),
        epoch: AtomicU64::new(0),
        sleepers: AtomicUsize::new(0),
        idle: Mutex::new(()),
        cv: Condvar::new(),
        crash_rounds: crash_horizons(cfg),
        rejoin_rounds: recovery::rejoin_horizons(cfg),
        recovering,
        slowdowns: (0..k).map(|i| cfg.faults.slowdown(i)).collect(),
        max_retries: cfg.faults.max_retries,
        crashed: Mutex::new(Vec::new()),
        adversary: AdversaryCtx::from_plan(&cfg.adversary, k),
    };
    let machines: Vec<Mutex<MachineState<P>>> = protocols
        .into_iter()
        .enumerate()
        .map(|(id, proto)| {
            Mutex::new(MachineState {
                proto,
                rng: machine_rng(cfg.seed, id),
                seq: 0,
                round: 0,
                fifos: (0..k).map(|dst| build_link(cfg, id, dst)).collect(),
                outbox: Vec::with_capacity(k),
                inbox: Vec::with_capacity(k),
                done: false,
                poisoned: false,
                output: None,
                late: Vec::new(),
                messages: 0,
                bits: 0,
                sends: 0,
                max_backlog: 0,
                tags: Vec::new(),
                exited: false,
                promise: 0,
                max_skew: 0,
                promised_rounds: 0,
                promises: 0,
            })
        })
        .collect();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            let machines = &machines;
            scope.spawn(move || worker(w, workers, machines, shared));
        }
    });
    let wall = start.elapsed();

    if let Some(err) = shared.error.lock().take() {
        return Err(err);
    }

    let fin = shared.final_round.load(Ordering::Acquire);
    let mut metrics = RunMetrics::new(k);
    metrics.rounds = fin;
    let mut skew = if shared.relaxed { SkewMetrics::new(k) } else { SkewMetrics::default() };
    let mut crashed = std::mem::take(&mut *shared.crashed.lock());
    crashed.sort_unstable();
    let mut faults = FaultMetrics { crashed, ..Default::default() };
    let mut audit = AuditMetrics::default();
    let mut outs = Vec::with_capacity(k);
    for (i, m) in machines.into_iter().enumerate() {
        let st = m.into_inner();
        for fifo in &st.fifos {
            faults.dropped_messages += fifo.dropped();
            faults.retransmitted_bits += fifo.retransmitted_bits();
            audit.digests_verified += fifo.digests_verified();
        }
        if shared.relaxed {
            skew.max_skew_per_machine[i] = st.max_skew;
            skew.max_skew = skew.max_skew.max(st.max_skew);
            skew.promised_rounds += st.promised_rounds;
            skew.promises_published += st.promises;
        }
        metrics.messages += st.messages;
        metrics.bits += st.bits;
        metrics.sends_per_machine[i] = st.sends;
        metrics.max_link_backlog_bits = metrics.max_link_backlog_bits.max(st.max_backlog);
        metrics.delivered_after_done +=
            st.late.iter().filter(|&&(r, _)| r <= fin).map(|&(_, c)| c).sum::<u64>();
        if metrics.per_tag.len() < st.tags.len() {
            metrics.per_tag.resize(st.tags.len(), TagMetrics::default());
        }
        for (total, mine) in metrics.per_tag.iter_mut().zip(&st.tags) {
            total.messages += mine.messages;
            total.bits += mine.bits;
        }
        match st.output {
            Some(o) => outs.push(o),
            // A missing output with no recorded panic means a crashed
            // machine's salvage hook declined — same report as `run_sync`.
            None if !faults.crashed.is_empty() => {
                return Err(crashed_error(&faults.crashed, &shared.crash_rounds))
            }
            None => return Err(EngineError::WorkerPanic { machine: i }),
        }
    }
    Ok(RunOutcome {
        outputs: outs,
        metrics,
        skew,
        wall,
        faults,
        recovery: crate::metrics::RecoveryMetrics::default(),
        audit,
    })
}

/// Worker loop: sweep the machines (staggered start per worker so workers
/// spread over distinct machines), advancing each as far as its link
/// dependencies allow; park briefly when a whole sweep makes no progress.
fn worker<P: Protocol>(
    w: usize,
    workers: usize,
    machines: &[Mutex<MachineState<P>>],
    shared: &Shared<P::Msg>,
) {
    let k = machines.len();
    let start = w * k / workers.max(1);
    loop {
        if shared.exited_count.load(Ordering::Acquire) == k {
            return;
        }
        let epoch_before = shared.epoch.load(Ordering::Acquire);
        let mut progressed = false;
        for i in 0..k {
            let m = (start + i) % k;
            // A machine locked by another worker is already being advanced.
            if let Some(mut st) = machines[m].try_lock() {
                progressed |= advance(m, &mut st, shared);
            }
        }
        if shared.exited_count.load(Ordering::Acquire) == k {
            return;
        }
        if !progressed {
            shared.sleepers.fetch_add(1, Ordering::AcqRel);
            let guard = shared.idle.lock();
            if shared.epoch.load(Ordering::Acquire) == epoch_before {
                let _ = shared.cv.wait_timeout(guard, IDLE_PARK);
            } else {
                drop(guard);
            }
            shared.sleepers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Advance one machine as many rounds as its dependencies currently allow.
/// Returns whether at least one round completed (or the machine exited).
fn advance<P: Protocol>(id: MachineId, st: &mut MachineState<P>, sh: &Shared<P::Msg>) -> bool {
    let k = sh.k;
    let mut progressed = false;
    loop {
        if st.exited {
            return progressed;
        }
        if sh.abort.load(Ordering::Acquire) {
            exit(st, sh);
            return true;
        }
        if sh.stop.load(Ordering::Acquire) {
            // Normal completion. Every transport the lockstep engines would
            // have run (rounds 0..final_round-1) is already published — some
            // machine computed round `final_round`, which required them all
            // — so drain the remaining rounds for exact late-delivery
            // accounting, then exit.
            let fin = sh.final_round.load(Ordering::Acquire);
            while st.round <= fin {
                let r = st.round;
                consume_round(id, st, sh, r);
                if !st.inbox.is_empty() {
                    st.late.push((r, st.inbox.len() as u64));
                    st.inbox.clear();
                }
                st.round += 1;
            }
            exit(st, sh);
            return true;
        }

        let r = st.round;
        if !st.done && !st.poisoned && r > sh.max_rounds {
            sh.fail(EngineError::MaxRounds { limit: sh.max_rounds });
            exit(st, sh);
            return true;
        }
        // Inbound dependency: every peer has published its round r-1
        // transport — or, under relaxed delivery, has promised that its
        // unexecuted transports through r-1 are empty. Outbound space:
        // slot r % window of every peer's staging ring is free (its round
        // r-window contents were consumed).
        let ready = if sh.relaxed {
            let mut min_pub = u64::MAX;
            let mut waived = false;
            let mut ok = true;
            for peer in 0..k {
                if peer == id {
                    continue;
                }
                let published = sh.published[peer].load(Ordering::Acquire);
                min_pub = min_pub.min(published);
                let covered = published >= r || sh.promised[peer].load(Ordering::Acquire) >= r;
                if !(covered && sh.consumed[peer].load(Ordering::Acquire) + sh.window > r) {
                    ok = false;
                    break;
                }
                waived |= published < r;
            }
            if ok {
                // min_pub is complete here (no peer broke the loop), so
                // this is exactly how far this round ran ahead of the
                // slowest peer — the overlap exact delivery forbids.
                st.max_skew = st.max_skew.max(r.saturating_sub(min_pub));
                st.promised_rounds += u64::from(waived);
            }
            ok
        } else {
            (0..k).all(|peer| {
                peer == id
                    || (sh.published[peer].load(Ordering::Acquire) >= r
                        && sh.consumed[peer].load(Ordering::Acquire) + sh.window > r)
            })
        };
        if !ready {
            return progressed;
        }

        // Straggler injection: a slowed machine loses wall-clock on every
        // round it executes. The simulated execution is untouched — under
        // relaxed delivery the realized skew shows up in [`SkewMetrics`].
        let slow = sh.slowdowns[id];
        if slow > 1 && !st.done && !st.poisoned {
            std::thread::sleep(STRAGGLE_QUANTUM * (slow - 1));
        }

        // --- consume: reassemble this round's inbox in (src, seq) order ---
        consume_round(id, st, sh, r);
        st.inbox.sort_unstable_by_key(|e| (e.src, e.seq));

        // --- compute ---
        let mut sent = 0u64;
        let mut became_done = false;
        if st.done || st.poisoned {
            if !st.inbox.is_empty() {
                st.late.push((r, st.inbox.len() as u64));
                st.inbox.clear();
            }
        } else if r >= sh.crash_rounds[id] {
            // Fail-stop: the machine never executes this round. The salvage
            // hook may still account for its output; from here on it cycles
            // like a done machine — earlier sends keep draining, late
            // arrivals are discarded (and the round-r inbox counts as late,
            // exactly as `run_sync` bills it).
            if !st.inbox.is_empty() {
                st.late.push((r, st.inbox.len() as u64));
                st.inbox.clear();
            }
            st.output = st.proto.on_crash();
            st.done = true;
            sh.crashed.lock().push(id);
            became_done = true;
        } else {
            let step = {
                let mut ctx = Ctx {
                    id,
                    k,
                    round: r,
                    inbox: &st.inbox,
                    outbox: &mut st.outbox,
                    rng: &mut st.rng,
                    next_seq: &mut st.seq,
                    crash_rounds: &sh.crash_rounds,
                    rejoin_rounds: &sh.rejoin_rounds,
                    adversary: sh.adversary.as_ref(),
                };
                catch_unwind(AssertUnwindSafe(|| st.proto.on_round(&mut ctx)))
            };
            st.inbox.clear();
            match step {
                Ok(Step::Continue) => {}
                Ok(Step::Done(out)) => {
                    st.output = Some(out);
                    st.done = true;
                    became_done = true;
                }
                Err(_) => {
                    // Record the panic, then keep cycling as a silent
                    // machine so nobody deadlocks on this link row.
                    let mut err = sh.error.lock();
                    if err.is_none() {
                        *err = Some(EngineError::WorkerPanic { machine: id });
                    }
                    drop(err);
                    st.poisoned = true;
                    became_done = true;
                }
            }
            if sh.relaxed && st.promise > r && !st.outbox.is_empty() {
                // The machine sent inside a window it promised to keep
                // silent. Peers already executed rounds on the strength of
                // that promise, so the send cannot be honored — drop it,
                // record the violation, and wind the run down like a
                // panic (cycling silently so nobody deadlocks).
                let mut err = sh.error.lock();
                if err.is_none() {
                    *err = Some(EngineError::PromiseViolated {
                        machine: id,
                        round: r,
                        promised_until: st.promise,
                    });
                }
                drop(err);
                st.outbox.clear();
                if !st.done {
                    st.poisoned = true;
                    became_done = true;
                }
            }
            for env in st.outbox.drain(..) {
                let bits = env.msg.size_bits().max(1);
                st.messages += 1;
                st.bits += bits;
                st.sends += 1;
                sent += 1;
                if let Some(tag) = env.msg.mux_tag() {
                    let idx = tag as usize;
                    if idx >= st.tags.len() {
                        st.tags.resize(idx + 1, TagMetrics::default());
                    }
                    st.tags[idx].messages += 1;
                    st.tags[idx].bits += bits;
                }
                st.fifos[env.dst].push(env, bits);
            }
        }
        if became_done {
            sh.final_round.fetch_max(r, Ordering::AcqRel);
            let done_now = sh.done_count.fetch_add(1, Ordering::AcqRel) + 1;
            if done_now == k {
                // Under exact delivery the wall-clock-last finisher
                // always holds the highest done round: any machine that
                // reached a higher round needed this one's transports
                // to get there, so this one would already have passed
                // that round (crashed machines keep publishing empty
                // transports as done machines, so the argument covers
                // them too). Like run_sync's break, round `r` sees no
                // transport. Under relaxed delivery a peer may have
                // raced past this machine on its promise and finished
                // in a *later* round, so the finisher must drain the
                // remaining rounds for exact late-delivery accounting
                // just like everyone else (the loop is empty when
                // `r == fin`, i.e. always in exact mode).
                debug_assert!(
                    sh.relaxed || sh.final_round.load(Ordering::Acquire) == r,
                    "exact delivery: last finisher must hold the final round"
                );
                st.round = r + 1;
                sh.stop.store(true, Ordering::Release);
                sh.cv.notify_all();
                let fin = sh.final_round.load(Ordering::Acquire);
                while st.round <= fin {
                    let rr = st.round;
                    consume_round(id, st, sh, rr);
                    if !st.inbox.is_empty() {
                        st.late.push((rr, st.inbox.len() as u64));
                        st.inbox.clear();
                    }
                    st.round += 1;
                }
                exit(st, sh);
                return true;
            }
        }

        // --- transport: drain one budget round per busy outbound FIFO into
        // the destination's staging slot; idle links cost nothing and the
        // whole phase publishes with one release store ---
        let mut delivered = false;
        let mut pending_total = 0u64;
        let slot_idx = (r % sh.window) as usize;
        for dst in 0..k {
            if dst == id {
                continue;
            }
            let fifo = &mut st.fifos[dst];
            if fifo.is_empty() {
                continue;
            }
            let mut ring = sh.inbound[dst].lock();
            let slot = &mut ring[slot_idx];
            let before = slot.len();
            fifo.drain_round(sh.budget, slot);
            delivered |= slot.len() > before;
            drop(ring);
            if fifo.integrity_violated() {
                sh.fail(EngineError::IntegrityViolation { src: id, dst, round: r });
                exit(st, sh);
                return true;
            }
            if fifo.is_down() {
                sh.fail(EngineError::LinkDown { src: id, dst, round: r, retries: sh.max_retries });
                exit(st, sh);
                return true;
            }
            let pending = fifo.pending_bits();
            st.max_backlog = st.max_backlog.max(pending);
            pending_total += pending;
        }
        sh.published[id].store(r + 1, Ordering::Release);

        // --- quiescence promises (relaxed delivery): with every outbound
        // FIFO drained, this machine's future transports are empty for as
        // long as it will not send — forever once done, or through the
        // protocol's declared silent horizon. Publishing the horizon lets
        // peers execute rounds up to it without waiting for the (empty)
        // publishes. Monotone: horizons only ever grow. ---
        if sh.relaxed {
            let drained = pending_total == 0;
            let horizon = if st.done || st.poisoned {
                if drained {
                    u64::MAX
                } else {
                    0
                }
            } else if drained {
                match st.proto.quiet_until() {
                    // A horizon at or below the next round promises
                    // nothing the publish watermark doesn't already say.
                    Some(q) if q > r + 1 => q,
                    _ => 0,
                }
            } else {
                0
            };
            if horizon > st.promise {
                st.promise = horizon;
                st.promises += 1;
                sh.promised[id].fetch_max(horizon, Ordering::AcqRel);
                sh.epoch.fetch_add(1, Ordering::AcqRel);
                sh.wake();
            }
        }

        // --- stall accounting: run_sync's per-round conjunction, split per
        // machine and joined through the per-round quiet counter. A quiet
        // cluster waiting out a scheduled rejoin is not a deadlock (mirrors
        // `run_sync`'s stall suppression; max_rounds still bounds the wait).
        if sent == 0
            && !became_done
            && !delivered
            && pending_total == 0
            && !sh.recovering.as_ref().is_some_and(|rec| rec.pending_at(r))
        {
            let slots = sh.quiet.len() as u64;
            let slot = &sh.quiet[(r % slots) as usize];
            let stalled = loop {
                let cur = slot.load(Ordering::Acquire);
                // Machines can spread at most `window` rounds, and the ring
                // has window + 2 slots, so a stale entry is always for an
                // older round — never a newer one.
                let count = if cur >> 16 == r { (cur & 0xffff) + 1 } else { 1 };
                let next = (r << 16) | count;
                if slot.compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                    break count as usize == k;
                }
            };
            if stalled {
                // Survivors deadlocked on a crashed peer report the crash,
                // not the stall — mirroring `run_sync`.
                let crashed = sh.crashed.lock();
                let err = if crashed.is_empty() {
                    EngineError::Stalled { round: r }
                } else {
                    crashed_error(&crashed, &sh.crash_rounds)
                };
                drop(crashed);
                sh.fail(err);
                exit(st, sh);
                return true;
            }
        }

        st.round = r + 1;
        progressed = true;
        sh.epoch.fetch_add(1, Ordering::AcqRel);
        sh.wake();
    }
}

/// Move this round's staging slot into the machine's inbox (`append` keeps
/// both allocations warm) and release the ring space. The slot holds every
/// source's deliveries in arrival order; the caller's `(src, seq)` sort
/// makes that order deterministic.
fn consume_round<P: Protocol>(
    id: MachineId,
    st: &mut MachineState<P>,
    sh: &Shared<P::Msg>,
    r: u64,
) {
    if r == 0 {
        return;
    }
    let mut ring = sh.inbound[id].lock();
    st.inbox.append(&mut ring[((r - 1) % sh.window) as usize]);
    drop(ring);
    sh.consumed[id].store(r, Ordering::Release);
}

fn exit<P: Protocol>(st: &mut MachineState<P>, sh: &Shared<P::Msg>) {
    if !st.exited {
        st.exited = true;
        sh.exited_count.fetch_add(1, Ordering::AcqRel);
        sh.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BandwidthMode;
    use crate::engine::run_sync;

    /// Unit tests pin the worker count ≥ 2: the ambient pool of a small CI
    /// host would otherwise send every run down the degenerate
    /// `run_sync` path and leave the scheduler untested.
    fn cfg(k: usize) -> NetConfig {
        NetConfig::new(k).with_event_workers(2)
    }

    /// Everyone broadcasts its id; everyone outputs the sum of what it saw.
    struct GossipSum {
        acc: u64,
        got: usize,
    }
    impl Protocol for GossipSum {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if ctx.round() == 0 {
                ctx.broadcast(ctx.id() as u64);
                return Step::Continue;
            }
            for e in ctx.inbox() {
                self.acc += e.msg;
                self.got += 1;
            }
            if self.got == ctx.k() - 1 {
                Step::Done(self.acc)
            } else {
                Step::Continue
            }
        }
    }

    #[test]
    fn matches_sync_engine_exactly() {
        let cfg = cfg(8).with_seed(5);
        let mk = || (0..8).map(|_| GossipSum { acc: 0, got: 0 }).collect::<Vec<_>>();
        let a = run_sync(&cfg, mk()).unwrap();
        let b = run_event(&cfg, mk()).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
    }

    /// Machine 0 streams values to machine 1 over a narrow link.
    struct Stream {
        n: u64,
        received: u64,
    }
    impl Protocol for Stream {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            match ctx.id() {
                0 => {
                    if ctx.round() == 0 {
                        for v in 0..self.n {
                            ctx.send(1, v);
                        }
                    }
                    Step::Done(0)
                }
                _ => {
                    self.received += ctx.inbox().len() as u64;
                    if self.received == self.n {
                        Step::Done(self.received)
                    } else {
                        Step::Continue
                    }
                }
            }
        }
    }

    /// A done sender keeps draining its backlog: the narrow link forces 32
    /// transport rounds long after machine 0 produced its output, and the
    /// round count must match the lockstep engines bit for bit.
    #[test]
    fn bandwidth_rounds_and_backlog_match_sync() {
        let cfg = cfg(2).with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 });
        let mk = || vec![Stream { n: 64, received: 0 }, Stream { n: 64, received: 0 }];
        let a = run_sync(&cfg, mk()).unwrap();
        let b = run_event(&cfg, mk()).unwrap();
        assert_eq!(b.metrics.rounds, 32);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
    }

    /// Late deliveries to a finished machine are counted exactly as the
    /// lockstep engines count them, even though the event engine's machines
    /// consume them out of lockstep (and may speculate past the final
    /// round).
    struct EarlyQuit {
        n: u64,
        received: u64,
    }
    impl Protocol for EarlyQuit {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            match ctx.id() {
                0 => {
                    if ctx.round() == 0 {
                        for v in 0..self.n {
                            ctx.send(1, v);
                        }
                        ctx.send(2, 1);
                    }
                    Step::Done(0)
                }
                1 => {
                    // Quits after the first delivery; the rest of machine
                    // 0's backlog arrives after done.
                    if ctx.round() >= 1 {
                        self.received += ctx.inbox().len() as u64;
                        return Step::Done(self.received);
                    }
                    Step::Continue
                }
                _ => {
                    // Keeps the run alive long enough for backlog to land.
                    self.received += ctx.inbox().len() as u64;
                    if ctx.round() == 6 {
                        Step::Done(self.received)
                    } else {
                        Step::Continue
                    }
                }
            }
        }
    }

    #[test]
    fn delivered_after_done_matches_sync() {
        let cfg = cfg(3).with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 });
        let mk = || (0..3).map(|_| EarlyQuit { n: 16, received: 0 }).collect::<Vec<_>>();
        let a = run_sync(&cfg, mk()).unwrap();
        let b = run_event(&cfg, mk()).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert!(a.metrics.delivered_after_done > 0, "test must exercise late deliveries");
        assert_eq!(a.metrics, b.metrics);
    }

    struct WaitForever;
    impl Protocol for WaitForever {
        type Msg = ();
        type Output = ();
        fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step<()> {
            Step::Continue
        }
    }

    #[test]
    fn stall_detected_without_deadlock() {
        let cfg = cfg(4);
        let err =
            run_event(&cfg, vec![WaitForever, WaitForever, WaitForever, WaitForever]).unwrap_err();
        assert!(matches!(err, EngineError::Stalled { .. }));
    }

    #[test]
    fn max_rounds_guard_trips() {
        let cfg = cfg(2)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 })
            .with_max_rounds(3);
        let err =
            run_event(&cfg, vec![Stream { n: 64, received: 0 }, Stream { n: 64, received: 0 }])
                .unwrap_err();
        assert_eq!(err, EngineError::MaxRounds { limit: 3 });
    }

    struct PanicsOnRoundOne;
    impl Protocol for PanicsOnRoundOne {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if ctx.id() == 1 {
                panic!("intentional test panic");
            }
            if ctx.round() == 0 {
                ctx.send(1, 7);
                return Step::Continue;
            }
            Step::Done(0)
        }
    }

    #[test]
    fn worker_panic_is_reported_not_hung() {
        let cfg = cfg(2);
        let err = run_event(&cfg, vec![PanicsOnRoundOne, PanicsOnRoundOne]).unwrap_err();
        assert_eq!(err, EngineError::WorkerPanic { machine: 1 });
    }

    /// Machine 2 sleeps before answering, so with several workers the other
    /// machines finish their rounds long before it and race one iteration
    /// past it through the slotted links — and the outcome still matches
    /// the lockstep engine exactly.
    struct Straggler {
        rounds: u64,
        acc: u64,
    }
    impl Protocol for Straggler {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if ctx.id() == 2 {
                std::thread::sleep(Duration::from_micros(300));
            }
            for e in ctx.inbox() {
                self.acc = self.acc.wrapping_mul(31).wrapping_add(e.msg);
            }
            if ctx.round() < self.rounds {
                let dst = (ctx.id() + 1) % ctx.k();
                ctx.send(dst, ctx.round() * 1000 + ctx.id() as u64);
                return Step::Continue;
            }
            Step::Done(self.acc)
        }
    }

    #[test]
    fn stragglers_do_not_change_the_outcome() {
        let cfg = NetConfig::new(4).with_seed(9).with_event_workers(3).with_event_window(4);
        let mk = || (0..4).map(|_| Straggler { rounds: 24, acc: 0 }).collect::<Vec<_>>();
        let want = run_sync(&cfg, mk()).unwrap();
        for _ in 0..3 {
            let got = run_event(&cfg, mk()).unwrap();
            assert_eq!(got.outputs, want.outputs);
            assert_eq!(got.metrics, want.metrics);
        }
    }

    #[test]
    fn worker_count_and_window_are_pure_wall_clock_knobs() {
        let base = NetConfig::new(6).with_seed(3);
        let mk = || (0..6).map(|_| GossipSum { acc: 0, got: 0 }).collect::<Vec<_>>();
        let want = run_sync(&base, mk()).unwrap();
        for workers in [1, 2, 6, 16] {
            for window in [2, 3, 8] {
                let cfg = base.clone().with_event_workers(workers).with_event_window(window);
                let got = run_event(&cfg, mk()).unwrap();
                assert_eq!(got.outputs, want.outputs, "workers {workers}, window {window}");
                assert_eq!(got.metrics, want.metrics, "workers {workers}, window {window}");
            }
        }
    }

    // ---- relaxed delivery: promises, skew, and the edge cases ----

    fn relaxed(k: usize) -> NetConfig {
        cfg(k).with_delivery(DeliveryMode::Relaxed)
    }

    /// Relaxed delivery with promise-less protocols degenerates gracefully:
    /// done machines still promise once drained, and outputs/metrics stay
    /// byte-identical to the lockstep engine.
    #[test]
    fn relaxed_matches_sync_for_promiseless_protocols() {
        let cfg = relaxed(8).with_seed(5);
        let mk = || (0..8).map(|_| GossipSum { acc: 0, got: 0 }).collect::<Vec<_>>();
        let want = run_sync(&cfg, mk()).unwrap();
        let got = run_event(&cfg, mk()).unwrap();
        assert_eq!(want.outputs, got.outputs);
        assert_eq!(want.metrics, got.metrics);
        assert!(got.skew.tracked(), "relaxed multi-worker runs must record skew");
        assert_eq!(got.skew.max_skew_per_machine.len(), 8);
        assert!(!want.skew.tracked(), "lockstep engines report no skew");
    }

    /// Exact-mode runs must not report skew — the readiness rule forbids
    /// overlap, and the accounting must say so.
    #[test]
    fn exact_mode_reports_no_skew() {
        let cfg = cfg(4).with_seed(2);
        let out = run_event(&cfg, (0..4).map(|_| GossipSum { acc: 0, got: 0 }).collect::<Vec<_>>())
            .unwrap();
        assert!(!out.skew.tracked());
        assert_eq!(out.skew, SkewMetrics::default());
    }

    /// Machine 0 feeds machine 1 one word per round; machine 1 never sends
    /// (a declared silent horizon of forever) and is slow. Under relaxed
    /// delivery machine 0 must pipeline multiple rounds past it — bounded
    /// by the staging window — while the outcome stays byte-identical.
    struct Pump {
        rounds: u64,
    }
    impl Protocol for Pump {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if ctx.round() < self.rounds {
                ctx.send(1, ctx.round());
                return Step::Continue;
            }
            Step::Done(ctx.round())
        }
    }
    struct QuietReceiver {
        expect: u64,
        got: u64,
        sleep: Duration,
    }
    impl Protocol for QuietReceiver {
        type Msg = u64;
        type Output = u64;
        fn quiet_until(&self) -> Option<u64> {
            Some(u64::MAX) // receives and accumulates, never sends
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if !self.sleep.is_zero() {
                std::thread::sleep(self.sleep);
            }
            self.got += ctx.inbox().len() as u64;
            if self.got == self.expect {
                Step::Done(self.got)
            } else {
                Step::Continue
            }
        }
    }

    /// Two-variant protocol so one run can mix a pump and a quiet receiver.
    enum PumpCluster {
        Pump(Pump),
        Quiet(QuietReceiver),
    }
    impl Protocol for PumpCluster {
        type Msg = u64;
        type Output = u64;
        fn quiet_until(&self) -> Option<u64> {
            match self {
                PumpCluster::Pump(_) => None,
                PumpCluster::Quiet(q) => q.quiet_until(),
            }
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            match self {
                PumpCluster::Pump(p) => p.on_round(ctx),
                PumpCluster::Quiet(q) => q.on_round(ctx),
            }
        }
    }

    fn pump_protocols(rounds: u64, sleep: Duration) -> Vec<PumpCluster> {
        vec![
            PumpCluster::Pump(Pump { rounds }),
            PumpCluster::Quiet(QuietReceiver { expect: rounds, got: 0, sleep }),
        ]
    }

    /// Window-saturation fairness: the pump runs ahead of the sleeping
    /// quiet receiver, but never farther than the staging window allows —
    /// and the skew counters prove multi-round pipelining actually
    /// happened, which exact delivery cannot express.
    #[test]
    fn relaxed_pipelines_past_a_quiet_straggler_bounded_by_window() {
        let window = 4u64;
        let cfg = NetConfig::new(2)
            .with_seed(3)
            .with_event_workers(2)
            .with_event_window(window)
            .with_delivery(DeliveryMode::Relaxed);
        let rounds = 24;
        let want = run_sync(&cfg, pump_protocols(rounds, Duration::ZERO)).unwrap();
        let got = run_event(&cfg, pump_protocols(rounds, Duration::from_micros(500))).unwrap();
        assert_eq!(want.outputs, got.outputs);
        assert_eq!(want.metrics, got.metrics);
        assert!(
            got.skew.max_skew <= window,
            "skew {} must stay within the window {window}",
            got.skew.max_skew
        );
        assert!(
            got.skew.max_skew > 1,
            "a 500µs/round straggler must force multi-round pipelining, got skew {}",
            got.skew.max_skew
        );
        assert!(got.skew.promised_rounds > 0, "the pump must have run on the promise");
        assert!(got.skew.promises_published >= 1);
    }

    /// A promise can never be revoked: sending inside the promised window
    /// aborts the run with a clean, attributed error instead of delivering
    /// a message that peers' executed rounds already assumed away.
    struct PromiseBreaker {
        breaker: bool,
    }
    impl Protocol for PromiseBreaker {
        type Msg = u64;
        type Output = u64;
        fn quiet_until(&self) -> Option<u64> {
            self.breaker.then_some(10)
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if self.breaker {
                if ctx.round() == 3 {
                    ctx.send(1, 7); // breaks the round-10 promise
                }
                return Step::Continue;
            }
            // The honest machine keeps the run alive and finishes on its
            // own, so the only error the run can end with is the violation.
            if ctx.round() < 3 {
                ctx.send(0, ctx.round());
                return Step::Continue;
            }
            if ctx.round() == 4 {
                return Step::Done(0);
            }
            Step::Continue
        }
    }

    #[test]
    fn promise_then_revoke_fails_cleanly() {
        // Machine 0's round-10 horizon is published after its silent round
        // 0 — and broken by the round-3 send: the run must abort with the
        // violation attributed to the breaker, not deliver the message.
        let cfg = relaxed(2);
        let err = run_event(
            &cfg,
            vec![PromiseBreaker { breaker: true }, PromiseBreaker { breaker: false }],
        )
        .unwrap_err();
        assert_eq!(err, EngineError::PromiseViolated { machine: 0, round: 3, promised_until: 10 });
    }

    /// A promise reaching past `max_rounds` cannot smuggle a run over the
    /// limit: the round guard trips exactly as the lockstep engine's does.
    struct EndlessSender;
    impl Protocol for EndlessSender {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if ctx.id() == 1 {
                ctx.send(0, ctx.round());
            }
            Step::Continue
        }
    }
    struct QuietForever;
    impl Protocol for QuietForever {
        type Msg = u64;
        type Output = u64;
        fn quiet_until(&self) -> Option<u64> {
            Some(u64::MAX)
        }
        fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            Step::Continue
        }
    }

    /// Heterogeneous pair for the max-rounds boundary case.
    enum Boundary {
        Quiet(QuietForever),
        Sender(EndlessSender),
    }
    impl Protocol for Boundary {
        type Msg = u64;
        type Output = u64;
        fn quiet_until(&self) -> Option<u64> {
            match self {
                Boundary::Quiet(q) => q.quiet_until(),
                Boundary::Sender(_) => None,
            }
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            match self {
                Boundary::Quiet(q) => q.on_round(ctx),
                Boundary::Sender(s) => s.on_round(ctx),
            }
        }
    }

    #[test]
    fn promise_at_max_rounds_boundary_still_trips_the_limit() {
        let mk = || vec![Boundary::Quiet(QuietForever), Boundary::Sender(EndlessSender)];
        let cfg = relaxed(2).with_max_rounds(5);
        let want = run_sync(&cfg, mk()).unwrap_err();
        assert_eq!(want, EngineError::MaxRounds { limit: 5 });
        let got = run_event(&cfg, mk()).unwrap_err();
        assert_eq!(got, want);
    }

    /// An all-quiet, never-done cluster is a stall in relaxed mode too —
    /// promises let machines spin a few rounds ahead, but the per-round
    /// quiet conjunction still detects round 0 exactly like `run_sync`.
    #[test]
    fn all_promised_quiet_cluster_stalls_like_sync() {
        let cfg = relaxed(4);
        let err = run_event(&cfg, vec![QuietForever, QuietForever, QuietForever, QuietForever])
            .unwrap_err();
        assert_eq!(err, EngineError::Stalled { round: 0 });
    }

    /// A quiet machine woken by a message mid-promise: it may absorb the
    /// wakeup (state change, no send) and answer once its horizon passes —
    /// outputs and rounds match the lockstep engine exactly.
    struct LateWakeup {
        horizon: u64,
        pinged: bool,
    }
    impl Protocol for LateWakeup {
        type Msg = u64;
        type Output = u64;
        fn quiet_until(&self) -> Option<u64> {
            (self.horizon > 0).then_some(self.horizon)
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if ctx.id() == 0 {
                if ctx.first_from(1).is_some() {
                    return Step::Done(ctx.round());
                }
                // Ping every round: a machine idling on a round *number*
                // with nothing in flight is a stall by the model's rules,
                // so the waiter must keep the network alive itself.
                ctx.send(1, 1);
                return Step::Continue;
            }
            // Machine 1: promised silence until `horizon`; pings land from
            // round 1 on, the pong may only go out at rounds >= horizon.
            self.pinged |= ctx.first_from(0).is_some();
            if self.pinged && ctx.round() >= self.horizon {
                ctx.send(0, 2);
                return Step::Done(ctx.round());
            }
            Step::Continue
        }
    }

    #[test]
    fn quiet_machine_handles_late_wakeup_and_answers_after_horizon() {
        let mk = || {
            vec![LateWakeup { horizon: 0, pinged: false }, LateWakeup { horizon: 6, pinged: false }]
        };
        let cfg = relaxed(2);
        let want = run_sync(&cfg, mk()).unwrap();
        assert_eq!(want.outputs, vec![7, 6], "pong sent at the horizon, received next round");
        let got = run_event(&cfg, mk()).unwrap();
        assert_eq!(want.outputs, got.outputs);
        assert_eq!(want.metrics, got.metrics);
    }

    /// Late deliveries to finished machines are counted identically under
    /// relaxed delivery (the done machine's drained-backlog promise races
    /// ahead, but its late accounting is filtered to the lockstep rounds).
    #[test]
    fn relaxed_delivered_after_done_matches_sync() {
        let cfg = relaxed(3).with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 });
        let mk = || (0..3).map(|_| EarlyQuit { n: 16, received: 0 }).collect::<Vec<_>>();
        let want = run_sync(&cfg, mk()).unwrap();
        assert!(want.metrics.delivered_after_done > 0);
        let got = run_event(&cfg, mk()).unwrap();
        assert_eq!(want.outputs, got.outputs);
        assert_eq!(want.metrics, got.metrics);
    }

    /// Worker count and window stay pure wall-clock knobs in relaxed mode.
    #[test]
    fn relaxed_workers_and_window_do_not_change_outcomes() {
        let base = NetConfig::new(6).with_seed(3).with_delivery(DeliveryMode::Relaxed);
        let mk = || (0..6).map(|_| GossipSum { acc: 0, got: 0 }).collect::<Vec<_>>();
        let want = run_sync(&base, mk()).unwrap();
        for workers in [2, 6, 16] {
            for window in [2, 3, 8] {
                let cfg = base.clone().with_event_workers(workers).with_event_window(window);
                let got = run_event(&cfg, mk()).unwrap();
                assert_eq!(got.outputs, want.outputs, "workers {workers}, window {window}");
                assert_eq!(got.metrics, want.metrics, "workers {workers}, window {window}");
            }
        }
    }

    // ---- fault injection: stragglers, crashes, lossy links ----

    use crate::config::FaultPlan;

    #[test]
    fn straggler_injection_changes_nothing_but_wall_clock() {
        let base = cfg(4).with_seed(7);
        let slow = base.clone().with_faults(FaultPlan::default().with_straggler(2, 3));
        let mk = || (0..4).map(|_| GossipSum { acc: 0, got: 0 }).collect::<Vec<_>>();
        let want = run_sync(&base, mk()).unwrap();
        let got = run_event(&slow, mk()).unwrap();
        assert_eq!(want.outputs, got.outputs);
        assert_eq!(want.metrics, got.metrics);
        assert!(!got.faults.any(), "a straggler is not a fault the answer can observe");
    }

    #[test]
    fn crash_deadlock_reports_crashed_not_stalled() {
        // Machine 0 crashes before sending anything; machine 1 waits for a
        // stream that never comes.
        let cfg = cfg(2).with_faults(FaultPlan::default().with_crash(0, 0));
        let err = run_event(&cfg, vec![Stream { n: 4, received: 0 }, Stream { n: 4, received: 0 }])
            .unwrap_err();
        assert_eq!(err, EngineError::Crashed { machine: 0, round: 0 });
    }

    /// Gossip that tolerates crashed peers via [`Ctx::crashed`] and
    /// salvages a sentinel output — parity with `run_sync`.
    struct CrashAwareGossip {
        acc: u64,
        heard: Vec<bool>,
    }
    impl Protocol for CrashAwareGossip {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if ctx.round() == 0 {
                ctx.broadcast(ctx.id() as u64);
                return Step::Continue;
            }
            for e in ctx.inbox() {
                self.acc += e.msg;
                self.heard[e.src] = true;
            }
            let id = ctx.id();
            let settled = (0..ctx.k()).all(|p| p == id || self.heard[p] || ctx.crashed(p));
            if settled {
                Step::Done(self.acc)
            } else {
                Step::Continue
            }
        }
        fn on_crash(&mut self) -> Option<u64> {
            Some(u64::MAX)
        }
    }

    #[test]
    fn salvageable_crash_matches_sync_exactly() {
        let k = 3;
        let cfg = cfg(k).with_faults(FaultPlan::default().with_crash(2, 0));
        let mk = || {
            (0..k).map(|_| CrashAwareGossip { acc: 0, heard: vec![false; k] }).collect::<Vec<_>>()
        };
        let a = run_sync(&cfg, mk()).unwrap();
        let b = run_event(&cfg, mk()).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.outputs, vec![1, 0, u64::MAX]);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.faults, b.faults);
        assert_eq!(b.faults.crashed, vec![2]);
    }

    #[test]
    fn lossy_run_matches_sync_exactly() {
        let cfg = cfg(2)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 })
            .with_faults(FaultPlan::default().with_loss(200, 64).with_fault_seed(5));
        let mk = || vec![Stream { n: 64, received: 0 }, Stream { n: 64, received: 0 }];
        let a = run_sync(&cfg, mk()).unwrap();
        let b = run_event(&cfg, mk()).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.faults, b.faults, "loss process must be keyed identically");
        assert!(b.faults.dropped_messages > 0);
    }

    #[test]
    fn retry_exhaustion_surfaces_as_link_down() {
        let cfg = cfg(2)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 })
            .with_faults(FaultPlan::default().with_loss(1000, 2));
        let err = run_event(&cfg, vec![Stream { n: 4, received: 0 }, Stream { n: 4, received: 0 }])
            .unwrap_err();
        assert_eq!(err, EngineError::LinkDown { src: 0, dst: 1, round: 1, retries: 2 });
    }

    #[test]
    fn single_machine_cluster_finishes() {
        struct Solo;
        impl Protocol for Solo {
            type Msg = ();
            type Output = u64;
            fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step<u64> {
                Step::Done(7)
            }
        }
        // A lone machine that keeps "continuing" without traffic is a stall
        // in every engine (there is nothing left that could wake it); one
        // that finishes immediately reports zero rounds.
        let cfg = NetConfig::new(1);
        let err = run_event(&cfg, vec![WaitForever]).unwrap_err();
        assert!(matches!(err, EngineError::Stalled { round: 0 }));
        let out = run_event(&cfg, vec![Solo]).unwrap();
        assert_eq!(out.outputs, vec![7]);
        let want = run_sync(&cfg, vec![Solo]).unwrap();
        assert_eq!(out.metrics, want.metrics);
    }
}
