//! Execution engines.
//!
//! All engines drive the *same* [`Protocol`](crate::Protocol) code and — for
//! protocols whose behavior is a deterministic function of state, inbox, and
//! the private RNG — produce identical outputs, round counts, and message
//! counts. [`run_sync`] is sequential and scales to thousands of simulated
//! machines; [`run_threaded`] runs one OS thread per machine with
//! barrier-synchronized rounds; [`run_event`] drops the global barrier for
//! per-link dependency scheduling on a small worker pool, letting fast
//! machines run rounds ahead of slow ones — the engine to use for wall-clock
//! measurements of batched serving.

mod event;
mod sync;
mod threaded;

pub use event::run_event;
pub use sync::run_sync;
pub use threaded::run_threaded;

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::config::NetConfig;
use crate::error::EngineError;
use crate::metrics::RunMetrics;
use crate::protocol::Protocol;

/// Environment variable that, when set, overrides every [`Engine::run`]
/// call's engine choice — `sync`, `threaded`, `event`, or `auto`. Used by CI
/// to force the whole test suite through one engine.
pub const ENGINE_ENV: &str = "KNN_ENGINE";

/// Below this much potential per-round work (`k × per-link budget bits`),
/// [`Engine::Auto`] keeps the sequential engine: rounds are too cheap for
/// cross-thread scheduling to pay for itself.
const AUTO_MIN_ROUND_BITS: u64 = 2048;

/// Result of a completed run.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// Per-machine outputs, indexed by machine id.
    pub outputs: Vec<T>,
    /// Exact communication accounting.
    pub metrics: RunMetrics,
    /// Wall-clock time of the run. Physically meaningful only for the
    /// threaded and event engines; for the sync engine it is simulation CPU
    /// time.
    pub wall: Duration,
}

/// Which engine to run a protocol on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Deterministic sequential lockstep simulation.
    Sync,
    /// One OS thread per machine, barrier-synchronized rounds.
    Threaded,
    /// Per-link dependency scheduling on a worker pool — no global barrier;
    /// machines may run up to [`NetConfig::event_window`] rounds apart.
    Event,
    /// Pick sync / threaded / event per run from the cluster size, the
    /// per-round payload budget, and the ambient pool size (see
    /// [`Engine::resolve`]).
    Auto,
}

impl Engine {
    /// Resolve [`Engine::Auto`] to a concrete engine for `cfg`; concrete
    /// engines resolve to themselves.
    ///
    /// The policy, in order:
    /// 1. a synthetic [`NetConfig::round_latency`] needs lockstep rounds on
    ///    real threads → `Threaded`;
    /// 2. an effective pool of one worker (`min(rayon pool, k)`) cannot
    ///    parallelize → `Sync`;
    /// 3. rounds with little potential work — fewer than
    ///    `AUTO_MIN_ROUND_BITS` of `k × per-link budget` payload bits — are
    ///    cheaper to simulate than to schedule → `Sync`;
    /// 4. otherwise → `Event`, the fastest engine wherever parallelism
    ///    exists (it pipelines instead of barriering).
    pub fn resolve(self, cfg: &NetConfig) -> Engine {
        match self {
            Engine::Auto => {
                if !cfg.round_latency.is_zero() {
                    return Engine::Threaded;
                }
                let pool =
                    cfg.event_workers.unwrap_or_else(rayon::current_num_threads).min(cfg.k.max(1));
                if pool <= 1 {
                    return Engine::Sync;
                }
                let per_link = match cfg.bandwidth {
                    crate::config::BandwidthMode::Unlimited => AUTO_MIN_ROUND_BITS,
                    crate::config::BandwidthMode::Enforce { bits_per_round } => bits_per_round,
                };
                if (cfg.k as u64).saturating_mul(per_link) < AUTO_MIN_ROUND_BITS {
                    Engine::Sync
                } else {
                    Engine::Event
                }
            }
            concrete => concrete,
        }
    }

    /// Short stable name for tables, CSV output, and [`ENGINE_ENV`].
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Sync => "sync",
            Engine::Threaded => "threaded",
            Engine::Event => "event",
            Engine::Auto => "auto",
        }
    }

    /// Run `protocols` (one per machine) under `cfg`.
    ///
    /// The [`ENGINE_ENV`] environment variable, when set, overrides `self`;
    /// [`Engine::Auto`] (from either source) is resolved per run via
    /// [`Engine::resolve`].
    pub fn run<P: Protocol>(
        self,
        cfg: &NetConfig,
        protocols: Vec<P>,
    ) -> Result<RunOutcome<P::Output>, EngineError> {
        match env_engine().unwrap_or(self).resolve(cfg) {
            Engine::Sync => run_sync(cfg, protocols),
            Engine::Threaded => run_threaded(cfg, protocols),
            Engine::Event => run_event(cfg, protocols),
            Engine::Auto => unreachable!("resolve() always returns a concrete engine"),
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sync" => Ok(Engine::Sync),
            "threaded" => Ok(Engine::Threaded),
            "event" => Ok(Engine::Event),
            "auto" => Ok(Engine::Auto),
            other => Err(format!("unknown engine {other:?}: expected sync|threaded|event|auto")),
        }
    }
}

/// The [`ENGINE_ENV`] override, if set.
///
/// # Panics
/// If the variable holds an unrecognized engine name — a forced-engine CI
/// run with a typo must fail loudly, not silently fall back.
fn env_engine() -> Option<Engine> {
    let v = std::env::var(ENGINE_ENV).ok()?;
    let v = v.trim();
    if v.is_empty() {
        return None;
    }
    Some(v.parse().unwrap_or_else(|e| panic!("{ENGINE_ENV}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BandwidthMode;

    #[test]
    fn names_round_trip_through_fromstr() {
        for e in [Engine::Sync, Engine::Threaded, Engine::Event, Engine::Auto] {
            assert_eq!(e.name().parse::<Engine>().unwrap(), e);
        }
        assert_eq!(" Event ".parse::<Engine>().unwrap(), Engine::Event);
        assert!("barrier".parse::<Engine>().is_err());
    }

    #[test]
    fn concrete_engines_resolve_to_themselves() {
        let cfg = NetConfig::new(8);
        for e in [Engine::Sync, Engine::Threaded, Engine::Event] {
            assert_eq!(e.resolve(&cfg), e);
        }
    }

    #[test]
    fn auto_policy_picks_by_latency_pool_and_payload() {
        // Latency modeling forces lockstep threads.
        let latency =
            NetConfig::new(8).with_round_latency(Duration::from_millis(1)).with_event_workers(8);
        assert_eq!(Engine::Auto.resolve(&latency), Engine::Threaded);
        // One effective worker cannot parallelize.
        let solo = NetConfig::new(8).with_event_workers(1);
        assert_eq!(Engine::Auto.resolve(&solo), Engine::Sync);
        // Tiny rounds (k × budget below the threshold) stay sequential.
        let tiny = NetConfig::new(2)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 512 })
            .with_event_workers(4);
        assert_eq!(Engine::Auto.resolve(&tiny), Engine::Sync);
        // Real per-round work with a real pool goes event-driven.
        let wide = NetConfig::new(8)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 512 })
            .with_event_workers(4);
        assert_eq!(Engine::Auto.resolve(&wide), Engine::Event);
        let unlimited =
            NetConfig::new(8).with_bandwidth(BandwidthMode::Unlimited).with_event_workers(4);
        assert_eq!(Engine::Auto.resolve(&unlimited), Engine::Event);
    }
}
