//! Execution engines.
//!
//! Both engines drive the *same* [`Protocol`](crate::Protocol) code and — for
//! protocols whose behavior is a deterministic function of state, inbox, and
//! the private RNG — produce identical outputs, round counts, and message
//! counts. [`run_sync`] is sequential and scales to thousands of simulated
//! machines; [`run_threaded`] runs one OS thread per machine and is the one
//! to use for wall-clock measurements.

mod sync;
mod threaded;

pub use sync::run_sync;
pub use threaded::run_threaded;

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::config::NetConfig;
use crate::error::EngineError;
use crate::metrics::RunMetrics;
use crate::protocol::Protocol;

/// Result of a completed run.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// Per-machine outputs, indexed by machine id.
    pub outputs: Vec<T>,
    /// Exact communication accounting.
    pub metrics: RunMetrics,
    /// Wall-clock time of the run. Physically meaningful only for the
    /// threaded engine; for the sync engine it is simulation CPU time.
    pub wall: Duration,
}

/// Which engine to run a protocol on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Deterministic sequential lockstep simulation.
    Sync,
    /// One OS thread per machine, barrier-synchronized rounds.
    Threaded,
}

impl Engine {
    /// Run `protocols` (one per machine) under `cfg`.
    pub fn run<P: Protocol>(
        self,
        cfg: &NetConfig,
        protocols: Vec<P>,
    ) -> Result<RunOutcome<P::Output>, EngineError> {
        match self {
            Engine::Sync => run_sync(cfg, protocols),
            Engine::Threaded => run_threaded(cfg, protocols),
        }
    }
}
