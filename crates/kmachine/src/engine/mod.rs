//! Execution engines.
//!
//! All engines drive the *same* [`Protocol`](crate::Protocol) code and — for
//! protocols whose behavior is a deterministic function of state, inbox, and
//! the private RNG — produce identical outputs, round counts, and message
//! counts. [`run_sync`] is sequential and scales to thousands of simulated
//! machines; [`run_threaded`] runs one OS thread per machine with
//! barrier-synchronized rounds; [`run_event`] drops the global barrier for
//! per-link dependency scheduling on a small worker pool, letting fast
//! machines run rounds ahead of slow ones — the engine to use for wall-clock
//! measurements of batched serving.

mod event;
mod sync;
mod threaded;

pub use event::run_event;
pub use sync::run_sync;
pub use threaded::run_threaded;

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::config::{DeliveryMode, NetConfig};
use crate::error::EngineError;
use crate::metrics::{AuditMetrics, FaultMetrics, RecoveryMetrics, RunMetrics, SkewMetrics};
use crate::protocol::Protocol;

/// Environment variable that, when set, overrides every [`Engine::run`]
/// call's engine choice — `sync`, `threaded`, `event`, or `auto`. Used by CI
/// to force the whole test suite through one engine.
pub const ENGINE_ENV: &str = "KNN_ENGINE";

/// Environment variable that, when set, overrides every [`Engine::run`]
/// call's delivery mode — `exact` or `relaxed`. Used by CI to force the
/// whole test suite through relaxed delivery (answers and metrics are
/// identical by contract; only wall-clock overlap changes).
pub const DELIVERY_ENV: &str = "KNN_DELIVERY";

/// Below this much potential per-round work (`k × per-link budget bits`),
/// [`Engine::Auto`] keeps the sequential engine: rounds are too cheap for
/// cross-thread scheduling to pay for itself.
const AUTO_MIN_ROUND_BITS: u64 = 2048;

/// Result of a completed run.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// Per-machine outputs, indexed by machine id.
    pub outputs: Vec<T>,
    /// Exact communication accounting. Identical across engines and
    /// delivery modes for deterministic protocols.
    pub metrics: RunMetrics,
    /// Pipelining evidence of a relaxed event run (max machine skew,
    /// promise counters); empty — [`SkewMetrics::tracked`] is false — for
    /// the lockstep engines and exact event runs.
    pub skew: SkewMetrics,
    /// Wall-clock time of the run. Physically meaningful only for the
    /// threaded and event engines; for the sync engine it is simulation CPU
    /// time.
    pub wall: Duration,
    /// Realized faults of the run (crashed machines, dropped and
    /// retransmitted traffic from the [`crate::config::FaultPlan`]). Like
    /// [`RunOutcome::skew`], this lives outside [`RunMetrics`] — the
    /// engine-equivalence contract covers it separately (same plan, same
    /// faults on every engine), and fault-free runs report it empty.
    pub faults: FaultMetrics,
    /// Realized crash-recoveries of the run (checkpoints taken, rounds
    /// replayed, machines rejoined — from the
    /// [`crate::config::RecoveryPlan`]). Lives outside [`RunMetrics`] like
    /// [`RunOutcome::faults`]: same plan, same recoveries on every engine,
    /// and recovery-free runs report it empty.
    pub recovery: RecoveryMetrics,
    /// Byzantine-audit accounting of the run (link digests verified under an
    /// armed [`crate::config::AdversaryPlan`]; the query layer above adds
    /// its semantic-audit counters on top). Lives outside [`RunMetrics`]
    /// like [`RunOutcome::faults`]: same plan, same counts on every engine,
    /// and adversary-free runs report it empty.
    pub audit: AuditMetrics,
}

/// Which engine to run a protocol on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Deterministic sequential lockstep simulation.
    Sync,
    /// One OS thread per machine, barrier-synchronized rounds.
    Threaded,
    /// Per-link dependency scheduling on a worker pool — no global barrier;
    /// machines may run up to [`NetConfig::event_window`] rounds apart.
    Event,
    /// Pick sync / threaded / event per run from the cluster size, the
    /// per-round payload budget, and the ambient pool size (see
    /// [`Engine::resolve`]).
    Auto,
}

impl Engine {
    /// Resolve [`Engine::Auto`] to a concrete engine for `cfg`; concrete
    /// engines resolve to themselves.
    ///
    /// The policy, in order:
    /// 1. a synthetic [`NetConfig::round_latency`] needs lockstep rounds on
    ///    real threads → `Threaded`;
    /// 2. an effective pool of one worker (`min(rayon pool, k)`) cannot
    ///    parallelize → `Sync`;
    /// 3. rounds with little potential work — fewer than
    ///    `AUTO_MIN_ROUND_BITS` of `k × per-link budget` payload bits — are
    ///    cheaper to simulate than to schedule → `Sync`;
    /// 4. otherwise → `Event`, the fastest engine wherever parallelism
    ///    exists (it pipelines instead of barriering).
    pub fn resolve(self, cfg: &NetConfig) -> Engine {
        match self {
            Engine::Auto => {
                if !cfg.round_latency.is_zero() {
                    return Engine::Threaded;
                }
                let pool =
                    cfg.event_workers.unwrap_or_else(rayon::current_num_threads).min(cfg.k.max(1));
                if pool <= 1 {
                    return Engine::Sync;
                }
                let per_link = match cfg.bandwidth {
                    crate::config::BandwidthMode::Unlimited => AUTO_MIN_ROUND_BITS,
                    crate::config::BandwidthMode::Enforce { bits_per_round } => bits_per_round,
                };
                if (cfg.k as u64).saturating_mul(per_link) < AUTO_MIN_ROUND_BITS {
                    Engine::Sync
                } else {
                    Engine::Event
                }
            }
            concrete => concrete,
        }
    }

    /// Short stable name for tables, CSV output, and [`ENGINE_ENV`].
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Sync => "sync",
            Engine::Threaded => "threaded",
            Engine::Event => "event",
            Engine::Auto => "auto",
        }
    }

    /// Run `protocols` (one per machine) under `cfg`.
    ///
    /// The [`ENGINE_ENV`] environment variable, when set, overrides `self`;
    /// [`Engine::Auto`] (from either source) is resolved per run via
    /// [`Engine::resolve`]. The delivery mode is
    /// [`NetConfig::delivery`] unless [`DELIVERY_ENV`] overrides it, with
    /// one guard: an **Auto** engine downgrades relaxed delivery to exact
    /// for protocols that do not opt in ([`Protocol::QUIET_AWARE`]) —
    /// without declared quiet phases, relaxed mode is bookkeeping with no
    /// pipelining to buy. Explicitly chosen engines honor the requested
    /// mode as-is.
    ///
    /// A set-but-unparseable override fails the run with
    /// [`EngineError::BadEnvOverride`] before any protocol executes.
    pub fn run<P: Protocol>(
        self,
        cfg: &NetConfig,
        protocols: Vec<P>,
    ) -> Result<RunOutcome<P::Output>, EngineError> {
        let engine = env_engine()?.unwrap_or(self);
        let delivery =
            effective_delivery(engine, env_delivery()?.unwrap_or(cfg.delivery), P::QUIET_AWARE);
        let relaxed_cfg;
        let cfg = if delivery == cfg.delivery {
            cfg
        } else {
            relaxed_cfg = cfg.clone().with_delivery(delivery);
            &relaxed_cfg
        };
        match engine.resolve(cfg) {
            Engine::Sync => run_sync(cfg, protocols),
            Engine::Threaded => run_threaded(cfg, protocols),
            Engine::Event => run_event(cfg, protocols),
            Engine::Auto => unreachable!("resolve() always returns a concrete engine"),
        }
    }
}

/// The delivery mode a run actually uses: `requested`, except that an
/// [`Engine::Auto`] choice keeps exact delivery for protocols that never
/// declare quiet phases (`quiet_aware == false`). Pure so the policy is
/// testable without touching process environment.
fn effective_delivery(engine: Engine, requested: DeliveryMode, quiet_aware: bool) -> DeliveryMode {
    if engine == Engine::Auto && !quiet_aware {
        DeliveryMode::Exact
    } else {
        requested
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sync" => Ok(Engine::Sync),
            "threaded" => Ok(Engine::Threaded),
            "event" => Ok(Engine::Event),
            "auto" => Ok(Engine::Auto),
            "" => Err("empty engine name: expected sync|threaded|event|auto".to_string()),
            other => Err(format!("unknown engine {other:?}: expected sync|threaded|event|auto")),
        }
    }
}

/// Shared normalization for the [`ENGINE_ENV`] / [`DELIVERY_ENV`]
/// overrides: an unset or whitespace-only variable means "no override"
/// (`Ok(None)`), and anything else must parse — a forced-engine CI run with
/// a typo must fail loudly (with the variants listed), not silently fall
/// back. The failure is a typed [`EngineError::BadEnvOverride`] surfaced
/// through [`Engine::run`], never a panic: library callers embed the engine
/// in long-lived services, and a typo in a deploy environment should be an
/// error they can report, not a process abort (the bench binaries turn it
/// back into a loud exit via `unwrap`/`expect`). Pure in the raw value so
/// the policy is testable without mutating process environment; both
/// FromStr impls trim and lowercase, so `" Event "` and `"RELAXED"` are
/// accepted.
fn parse_env_override<T: std::str::FromStr<Err = String>>(
    var: &'static str,
    raw: &str,
) -> Result<Option<T>, EngineError> {
    if raw.trim().is_empty() {
        return Ok(None);
    }
    raw.parse().map(Some).map_err(|reason| EngineError::BadEnvOverride { var, reason })
}

/// The [`ENGINE_ENV`] override, if set (see [`parse_env_override`]).
fn env_engine() -> Result<Option<Engine>, EngineError> {
    match std::env::var(ENGINE_ENV) {
        Ok(raw) => parse_env_override(ENGINE_ENV, &raw),
        Err(_) => Ok(None),
    }
}

/// The [`DELIVERY_ENV`] override, if set (see [`parse_env_override`]).
fn env_delivery() -> Result<Option<DeliveryMode>, EngineError> {
    match std::env::var(DELIVERY_ENV) {
        Ok(raw) => parse_env_override(DELIVERY_ENV, &raw),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BandwidthMode;

    #[test]
    fn names_round_trip_through_fromstr() {
        for e in [Engine::Sync, Engine::Threaded, Engine::Event, Engine::Auto] {
            assert_eq!(e.name().parse::<Engine>().unwrap(), e);
        }
        assert_eq!(" Event ".parse::<Engine>().unwrap(), Engine::Event);
        assert_eq!("SYNC\n".parse::<Engine>().unwrap(), Engine::Sync);
        let err = "barrier".parse::<Engine>().unwrap_err();
        assert!(err.contains("sync|threaded|event|auto"), "error must list the variants: {err}");
        let err = "  ".parse::<Engine>().unwrap_err();
        assert!(err.contains("sync|threaded|event|auto"), "empty input lists variants too: {err}");
    }

    #[test]
    fn env_override_parsing_is_normalized() {
        // Unset-like values mean "no override"...
        assert_eq!(parse_env_override::<Engine>(ENGINE_ENV, "").unwrap(), None);
        assert_eq!(parse_env_override::<Engine>(ENGINE_ENV, "  \t").unwrap(), None);
        assert_eq!(parse_env_override::<DeliveryMode>(DELIVERY_ENV, "").unwrap(), None);
        // ...valid values parse case/whitespace-insensitively...
        assert_eq!(parse_env_override(ENGINE_ENV, " Event ").unwrap(), Some(Engine::Event));
        assert_eq!(
            parse_env_override(DELIVERY_ENV, "RELAXED").unwrap(),
            Some(DeliveryMode::Relaxed)
        );
        assert_eq!(parse_env_override(DELIVERY_ENV, "exact\n").unwrap(), Some(DeliveryMode::Exact));
    }

    #[test]
    fn invalid_engine_env_is_a_typed_error() {
        let err = parse_env_override::<Engine>(ENGINE_ENV, "barrier").unwrap_err();
        match &err {
            EngineError::BadEnvOverride { var, reason } => {
                assert_eq!(*var, ENGINE_ENV);
                assert!(reason.contains("sync|threaded|event|auto"), "{reason}");
            }
            other => panic!("expected BadEnvOverride, got {other:?}"),
        }
        assert!(err.to_string().contains("KNN_ENGINE"), "{err}");
    }

    #[test]
    fn invalid_delivery_env_is_a_typed_error() {
        let err = parse_env_override::<DeliveryMode>(DELIVERY_ENV, "lossy").unwrap_err();
        match &err {
            EngineError::BadEnvOverride { var, reason } => {
                assert_eq!(*var, DELIVERY_ENV);
                assert!(reason.contains("exact|relaxed"), "{reason}");
            }
            other => panic!("expected BadEnvOverride, got {other:?}"),
        }
    }

    #[test]
    fn auto_downgrades_relaxed_without_protocol_opt_in() {
        // Auto + a protocol that never declares quiet phases: exact.
        assert_eq!(
            effective_delivery(Engine::Auto, DeliveryMode::Relaxed, false),
            DeliveryMode::Exact
        );
        // Auto + an opted-in protocol keeps the requested mode.
        assert_eq!(
            effective_delivery(Engine::Auto, DeliveryMode::Relaxed, true),
            DeliveryMode::Relaxed
        );
        // Explicit engines honor the request regardless of opt-in.
        for engine in [Engine::Sync, Engine::Threaded, Engine::Event] {
            assert_eq!(
                effective_delivery(engine, DeliveryMode::Relaxed, false),
                DeliveryMode::Relaxed
            );
        }
        // Exact stays exact everywhere.
        assert_eq!(
            effective_delivery(Engine::Auto, DeliveryMode::Exact, true),
            DeliveryMode::Exact
        );
    }

    #[test]
    fn concrete_engines_resolve_to_themselves() {
        let cfg = NetConfig::new(8);
        for e in [Engine::Sync, Engine::Threaded, Engine::Event] {
            assert_eq!(e.resolve(&cfg), e);
        }
    }

    #[test]
    fn auto_policy_picks_by_latency_pool_and_payload() {
        // Latency modeling forces lockstep threads.
        let latency =
            NetConfig::new(8).with_round_latency(Duration::from_millis(1)).with_event_workers(8);
        assert_eq!(Engine::Auto.resolve(&latency), Engine::Threaded);
        // One effective worker cannot parallelize.
        let solo = NetConfig::new(8).with_event_workers(1);
        assert_eq!(Engine::Auto.resolve(&solo), Engine::Sync);
        // Tiny rounds (k × budget below the threshold) stay sequential.
        let tiny = NetConfig::new(2)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 512 })
            .with_event_workers(4);
        assert_eq!(Engine::Auto.resolve(&tiny), Engine::Sync);
        // Real per-round work with a real pool goes event-driven.
        let wide = NetConfig::new(8)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 512 })
            .with_event_workers(4);
        assert_eq!(Engine::Auto.resolve(&wide), Engine::Event);
        let unlimited =
            NetConfig::new(8).with_bandwidth(BandwidthMode::Unlimited).with_event_workers(4);
        assert_eq!(Engine::Auto.resolve(&unlimited), Engine::Event);
    }
}
