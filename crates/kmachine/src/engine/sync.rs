//! Deterministic sequential lockstep engine.

use std::time::Instant;

use rand::rngs::StdRng;

use crate::config::NetConfig;
use crate::ctx::{AdversaryCtx, Ctx};
use crate::engine::RunOutcome;
use crate::error::EngineError;
use crate::link::{IntegrityConfig, LinkFifo, LossConfig};
use crate::message::Envelope;
use crate::metrics::{AuditMetrics, FaultMetrics, RunMetrics};
use crate::payload::Payload;
use crate::protocol::{Protocol, Step};
use crate::recovery;
use crate::rng::machine_rng;

/// One link `src → dst`, lossy when the fault plan says so and
/// integrity-armed when an [`crate::config::AdversaryPlan`] is active. All
/// three engines build their links through this, so the loss and corruption
/// processes are keyed identically everywhere.
pub(crate) fn build_link<M>(cfg: &NetConfig, src: usize, dst: usize) -> LinkFifo<M> {
    let link = if cfg.faults.loss_per_mille == 0 {
        LinkFifo::default()
    } else {
        LinkFifo::lossy(LossConfig {
            per_mille: cfg.faults.loss_per_mille,
            max_retries: cfg.faults.max_retries,
            seed: cfg.faults.fault_seed,
            src,
            dst,
        })
    };
    if cfg.adversary.is_empty() {
        link
    } else {
        link.with_integrity(IntegrityConfig {
            corrupt_per_mille: cfg.adversary.corrupt_per_mille(src, dst),
            seed: cfg.adversary.adversary_seed,
            src,
            dst,
        })
    }
}

/// Per-machine crash horizons from the fault plan (`u64::MAX`: never).
pub(crate) fn crash_horizons(cfg: &NetConfig) -> Vec<u64> {
    (0..cfg.k).map(|i| cfg.faults.crash_round(i)).collect()
}

/// The `Crashed` error every engine reports identically: the lowest
/// crashed machine id, with its scheduled crash round.
pub(crate) fn crashed_error(crashed: &[usize], crash_rounds: &[u64]) -> EngineError {
    let machine = *crashed.iter().min().expect("at least one crashed machine");
    EngineError::Crashed { machine, round: crash_rounds[machine] }
}

/// Execute one protocol instance per machine until every machine has
/// produced its output.
///
/// Each loop iteration is one synchronous round: every still-running machine
/// sees the messages delivered to it this round, performs local computation,
/// and hands new messages to the network; then every link drains at most `B`
/// bits toward the next round. The run is a pure function of
/// `(protocols, cfg.seed)` — useful both for tests and for exact round and
/// message accounting at machine counts far beyond the host's core count.
///
/// # Panics
/// If `protocols.len() != cfg.k`, or if bandwidth is `Enforce { 0 }`.
pub fn run_sync<P: Protocol>(
    cfg: &NetConfig,
    protocols: Vec<P>,
) -> Result<RunOutcome<P::Output>, EngineError> {
    recovery::validate(cfg)?;
    if cfg.recovery.is_empty() {
        return sync_core(cfg, protocols, None);
    }
    let (wrapped, state) = recovery::wrap(cfg, protocols);
    recovery::finish(sync_core(cfg, wrapped, Some(&state)), &state)
}

/// The lockstep loop itself, generic over whether a
/// [`recovery::RecoveryShared`] is tracking an active rejoin plan (it
/// suppresses the stall error while a scheduled rejoin is still ahead).
fn sync_core<P: Protocol>(
    cfg: &NetConfig,
    mut protocols: Vec<P>,
    recovering: Option<&recovery::RecoveryShared>,
) -> Result<RunOutcome<P::Output>, EngineError> {
    let k = protocols.len();
    assert_eq!(k, cfg.k, "protocol count {} != cfg.k {}", k, cfg.k);
    let budget = cfg.bandwidth.budget();
    assert!(budget >= 1, "bandwidth must allow at least 1 bit per round");

    let start = Instant::now();
    let mut metrics = RunMetrics::new(k);
    let mut rngs: Vec<StdRng> = (0..k).map(|i| machine_rng(cfg.seed, i)).collect();
    let mut seqs = vec![0u64; k];
    let mut inboxes: Vec<Vec<Envelope<P::Msg>>> = (0..k).map(|_| Vec::with_capacity(k)).collect();
    let mut outputs: Vec<Option<P::Output>> = (0..k).map(|_| None).collect();
    // Dense link lattice: slot `dst * k + src` holds the FIFO of the ordered
    // link `src → dst`. Allocated once per run (a `VecDeque::new` does not
    // allocate), so the per-round transport loop touches no allocator and no
    // tree/hash nodes; per-destination delivery walks sources in ascending
    // order — the same deterministic inbox order the threaded engine
    // recreates by sorting. Memory is O(k²) FIFO headers (~40 B each).
    let mut links: Vec<LinkFifo<P::Msg>> =
        (0..k * k).map(|idx| build_link(cfg, idx % k, idx / k)).collect();
    let mut outbox: Vec<Envelope<P::Msg>> = Vec::with_capacity(k);
    let crash_rounds = crash_horizons(cfg);
    let rejoin_rounds = recovery::rejoin_horizons(cfg);
    let adversary = AdversaryCtx::from_plan(&cfg.adversary, k);
    // Halted = produced an output OR crashed: either way the machine is no
    // longer scheduled and its late arrivals are discarded.
    let mut halted = vec![false; k];
    let mut crashed: Vec<usize> = Vec::new();
    let mut done_count = 0usize;
    let mut round: u64 = 0;

    loop {
        let mut sent_any = false;
        let mut progressed = false;
        for i in 0..k {
            if halted[i] {
                if !inboxes[i].is_empty() {
                    metrics.delivered_after_done += inboxes[i].len() as u64;
                    inboxes[i].clear();
                }
                continue;
            }
            if round >= crash_rounds[i] {
                // Fail-stop: the machine never executes this round. Its
                // salvage hook may still account for its output; messages
                // delivered to the corpse count as late.
                outputs[i] = protocols[i].on_crash();
                crashed.push(i);
                halted[i] = true;
                done_count += 1;
                progressed = true;
                if !inboxes[i].is_empty() {
                    metrics.delivered_after_done += inboxes[i].len() as u64;
                    inboxes[i].clear();
                }
                continue;
            }
            // Keys (src, seq) are unique per delivery, so stability buys
            // nothing — unstable sort avoids the temp-buffer allocation.
            inboxes[i].sort_unstable_by_key(|e| (e.src, e.seq));
            let step = {
                let mut ctx = Ctx {
                    id: i,
                    k,
                    round,
                    inbox: &inboxes[i],
                    outbox: &mut outbox,
                    rng: &mut rngs[i],
                    next_seq: &mut seqs[i],
                    crash_rounds: &crash_rounds,
                    rejoin_rounds: &rejoin_rounds,
                    adversary: adversary.as_ref(),
                };
                protocols[i].on_round(&mut ctx)
            };
            inboxes[i].clear();
            for env in outbox.drain(..) {
                let bits = env.msg.size_bits().max(1);
                metrics.on_send(i, bits, env.msg.mux_tag());
                links[env.dst * k + env.src].push(env, bits);
                sent_any = true;
            }
            if let Step::Done(out) = step {
                outputs[i] = Some(out);
                halted[i] = true;
                done_count += 1;
                progressed = true;
            }
        }

        if done_count == k {
            break;
        }

        // Transport: each busy link drains one round of budget; idle links
        // cost one emptiness check.
        let mut delivered_any = false;
        let mut backlog_bits = 0u64;
        for (dst, inbox) in inboxes.iter_mut().enumerate() {
            let before = inbox.len();
            for (src, link) in links[dst * k..(dst + 1) * k].iter_mut().enumerate() {
                if link.is_empty() {
                    continue;
                }
                link.drain_round(budget, inbox);
                if link.integrity_violated() {
                    return Err(EngineError::IntegrityViolation { src, dst, round });
                }
                if link.is_down() {
                    return Err(EngineError::LinkDown {
                        src,
                        dst,
                        round,
                        retries: cfg.faults.max_retries,
                    });
                }
                let pending = link.pending_bits();
                metrics.max_link_backlog_bits = metrics.max_link_backlog_bits.max(pending);
                backlog_bits += pending;
            }
            delivered_any |= inbox.len() > before;
        }

        if !sent_any
            && !delivered_any
            && !progressed
            && backlog_bits == 0
            // A quiet cluster waiting out a scheduled rejoin is not a
            // deadlock: the rejoining machine's deferred sends arrive once
            // its rejoin round comes (max_rounds still bounds the wait). A
            // *failed* rejoin clears the pending flag, so its recorded
            // error surfaces through this very stall.
            && !recovering.is_some_and(|rec| rec.pending_at(round))
        {
            // Survivors deadlocked waiting for a crashed peer's messages:
            // report the crash, not the stall, so callers know a retry over
            // the survivors can succeed.
            if !crashed.is_empty() {
                return Err(crashed_error(&crashed, &crash_rounds));
            }
            return Err(EngineError::Stalled { round });
        }
        round += 1;
        if round > cfg.max_rounds {
            return Err(EngineError::MaxRounds { limit: cfg.max_rounds });
        }
    }

    // A crashed machine whose salvage hook declined leaves a hole no output
    // can fill: collection fails with the (deterministic) crash report.
    if outputs.iter().any(|o| o.is_none()) {
        return Err(crashed_error(&crashed, &crash_rounds));
    }

    metrics.rounds = round;
    crashed.sort_unstable();
    let mut faults = FaultMetrics { crashed, ..Default::default() };
    let mut audit = AuditMetrics::default();
    for link in &links {
        faults.dropped_messages += link.dropped();
        faults.retransmitted_bits += link.retransmitted_bits();
        audit.digests_verified += link.digests_verified();
    }
    Ok(RunOutcome {
        outputs: outputs.into_iter().map(|o| o.expect("all machines done")).collect(),
        metrics,
        skew: crate::metrics::SkewMetrics::default(),
        wall: start.elapsed(),
        faults,
        recovery: crate::metrics::RecoveryMetrics::default(),
        audit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BandwidthMode;

    /// Machine 0 streams `n` 64-bit values to machine 1.
    struct Stream {
        n: u64,
        received: u64,
    }
    impl Protocol for Stream {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            match ctx.id() {
                0 => {
                    if ctx.round() == 0 {
                        for v in 0..self.n {
                            ctx.send(1, v);
                        }
                    }
                    Step::Done(0)
                }
                _ => {
                    self.received += ctx.inbox().len() as u64;
                    if self.received == self.n {
                        Step::Done(self.received)
                    } else {
                        Step::Continue
                    }
                }
            }
        }
    }

    #[test]
    fn bandwidth_dictates_round_count() {
        // 64 values of 64 bits over a 128-bit link: 2 values per round,
        // so 32 transport rounds.
        let cfg = NetConfig::new(2).with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 });
        let out =
            run_sync(&cfg, vec![Stream { n: 64, received: 0 }, Stream { n: 64, received: 0 }])
                .unwrap();
        assert_eq!(out.outputs[1], 64);
        assert_eq!(out.metrics.rounds, 32);
        assert_eq!(out.metrics.messages, 64);
        assert_eq!(out.metrics.bits, 64 * 64);
        assert!(out.metrics.max_link_backlog_bits > 0);
    }

    #[test]
    fn unlimited_bandwidth_is_one_round() {
        let cfg = NetConfig::new(2).with_bandwidth(BandwidthMode::Unlimited);
        let out =
            run_sync(&cfg, vec![Stream { n: 64, received: 0 }, Stream { n: 64, received: 0 }])
                .unwrap();
        assert_eq!(out.metrics.rounds, 1);
    }

    /// A deadlocked protocol: everyone waits forever.
    struct WaitForever;
    impl Protocol for WaitForever {
        type Msg = ();
        type Output = ();
        fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step<()> {
            Step::Continue
        }
    }

    #[test]
    fn stall_is_detected() {
        let cfg = NetConfig::new(3);
        let err = run_sync(&cfg, vec![WaitForever, WaitForever, WaitForever]).unwrap_err();
        assert!(matches!(err, EngineError::Stalled { .. }));
    }

    /// Ping-pong `rounds` times between machines 0 and 1.
    struct PingPong {
        remaining: u64,
    }
    impl Protocol for PingPong {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            let peer = 1 - ctx.id();
            if ctx.id() == 0 && ctx.round() == 0 {
                self.remaining -= 1;
                ctx.send(peer, self.remaining);
                return Step::Continue;
            }
            if let Some(&v) = ctx.first_from(peer) {
                if v == 0 {
                    return Step::Done(ctx.round());
                }
                self.remaining = v - 1;
                ctx.send(peer, self.remaining);
                if self.remaining == 0 {
                    // Sent the final token; it will terminate the peer.
                    return Step::Done(ctx.round());
                }
            }
            Step::Continue
        }
    }

    #[test]
    fn ping_pong_round_count_exact() {
        let cfg = NetConfig::new(2);
        let out =
            run_sync(&cfg, vec![PingPong { remaining: 6 }, PingPong { remaining: 6 }]).unwrap();
        // Tokens 5,4,3,2,1,0 are exchanged: 6 messages, each one round apart.
        assert_eq!(out.metrics.messages, 6);
        assert_eq!(out.metrics.rounds, 6);
    }

    #[test]
    fn max_rounds_guard_trips() {
        // Ping-pong needs 6 rounds but we only allow 3.
        let cfg = NetConfig::new(2).with_max_rounds(3);
        let err =
            run_sync(&cfg, vec![PingPong { remaining: 6 }, PingPong { remaining: 6 }]).unwrap_err();
        assert_eq!(err, EngineError::MaxRounds { limit: 3 });
    }

    /// Everyone broadcasts its id; everyone outputs the sum of what it saw.
    struct GossipSum {
        acc: u64,
        got: usize,
    }
    impl Protocol for GossipSum {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if ctx.round() == 0 {
                ctx.broadcast(ctx.id() as u64);
                return Step::Continue;
            }
            for e in ctx.inbox() {
                self.acc += e.msg;
                self.got += 1;
            }
            if self.got == ctx.k() - 1 {
                Step::Done(self.acc)
            } else {
                Step::Continue
            }
        }
    }

    #[test]
    fn all_to_all_broadcast() {
        let k = 8;
        let cfg = NetConfig::new(k);
        let protos = (0..k).map(|_| GossipSum { acc: 0, got: 0 }).collect();
        let out = run_sync(&cfg, protos).unwrap();
        let expected: u64 = (0..k as u64).sum();
        for (i, got) in out.outputs.iter().enumerate() {
            assert_eq!(*got + i as u64, expected, "machine {i}");
        }
        assert_eq!(out.metrics.messages, (k * (k - 1)) as u64);
        assert_eq!(out.metrics.rounds, 1);
    }

    #[test]
    fn determinism_same_seed_same_everything() {
        let cfg = NetConfig::new(4).with_seed(99);
        let mk = || (0..4).map(|_| GossipSum { acc: 0, got: 0 }).collect::<Vec<_>>();
        let a = run_sync(&cfg, mk()).unwrap();
        let b = run_sync(&cfg, mk()).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
    }

    use crate::config::FaultPlan;

    #[test]
    fn unsalvageable_crash_fails_collection() {
        // Machine 1 crashes before running at all; Stream has no salvage
        // hook, so the run reports the crash even though machine 0 is done.
        let cfg = NetConfig::new(2).with_faults(FaultPlan::default().with_crash(1, 0));
        let err = run_sync(&cfg, vec![Stream { n: 4, received: 0 }, Stream { n: 4, received: 0 }])
            .unwrap_err();
        assert_eq!(err, EngineError::Crashed { machine: 1, round: 0 });
    }

    #[test]
    fn deadlock_on_crashed_peer_reports_crashed_not_stalled() {
        // Machine 1 crashes after round 0 and never returns the token;
        // machine 0 waits forever. The stall must be attributed to the
        // crash so callers know retrying over survivors can work.
        let cfg = NetConfig::new(2).with_faults(FaultPlan::default().with_crash(1, 1));
        let err =
            run_sync(&cfg, vec![PingPong { remaining: 6 }, PingPong { remaining: 6 }]).unwrap_err();
        assert_eq!(err, EngineError::Crashed { machine: 1, round: 1 });
    }

    /// Gossip that tolerates crashed peers: done once every peer has either
    /// been heard from or is observably crashed; a crashed machine salvages
    /// a sentinel output.
    struct CrashAwareGossip {
        acc: u64,
        heard: Vec<bool>,
    }
    impl Protocol for CrashAwareGossip {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if ctx.round() == 0 {
                ctx.broadcast(ctx.id() as u64);
                return Step::Continue;
            }
            for e in ctx.inbox() {
                self.acc += e.msg;
                self.heard[e.src] = true;
            }
            let id = ctx.id();
            let settled = (0..ctx.k()).all(|p| p == id || self.heard[p] || ctx.crashed(p));
            if settled {
                Step::Done(self.acc)
            } else {
                Step::Continue
            }
        }
        fn on_crash(&mut self) -> Option<u64> {
            Some(u64::MAX)
        }
    }

    #[test]
    fn salvageable_crash_completes_with_fault_accounting() {
        let k = 3;
        let cfg = NetConfig::new(k).with_faults(FaultPlan::default().with_crash(2, 0));
        let protos = (0..k).map(|_| CrashAwareGossip { acc: 0, heard: vec![false; k] }).collect();
        let out = run_sync(&cfg, protos).unwrap();
        // Machines 0 and 1 heard only each other; machine 2 never ran.
        assert_eq!(out.outputs, vec![1, 0, u64::MAX]);
        assert_eq!(out.faults.crashed, vec![2]);
        assert!(out.faults.any());
    }

    #[test]
    fn lossy_links_retry_to_the_same_answer() {
        let mk = || vec![Stream { n: 64, received: 0 }, Stream { n: 64, received: 0 }];
        let clean_cfg =
            NetConfig::new(2).with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 });
        let clean = run_sync(&clean_cfg, mk()).unwrap();
        let lossy_cfg = clean_cfg
            .clone()
            .with_faults(FaultPlan::default().with_loss(200, 64).with_fault_seed(5));
        let lossy = run_sync(&lossy_cfg, mk()).unwrap();
        assert_eq!(lossy.outputs, clean.outputs, "retries must deliver everything");
        assert!(lossy.faults.dropped_messages > 0, "20% loss over 64 messages drops some");
        assert_eq!(
            lossy.faults.retransmitted_bits,
            lossy.faults.dropped_messages * 64,
            "every drop re-pays the full message"
        );
        // The protocol's bill is unchanged — retransmission is fault-layer
        // bookkeeping — but the retries consume real rounds of bandwidth.
        assert_eq!(lossy.metrics.messages, clean.metrics.messages);
        assert_eq!(lossy.metrics.bits, clean.metrics.bits);
        assert!(lossy.metrics.rounds > clean.metrics.rounds);
    }

    use crate::config::AdversaryPlan;

    #[test]
    fn corrupt_link_surfaces_integrity_violation() {
        let cfg = NetConfig::new(2)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 })
            .with_adversary(AdversaryPlan::default().with_corrupt_link(0, 1, 1000));
        let err = run_sync(&cfg, vec![Stream { n: 4, received: 0 }, Stream { n: 4, received: 0 }])
            .unwrap_err();
        assert!(
            matches!(err, EngineError::IntegrityViolation { src: 0, dst: 1, .. }),
            "guaranteed corruption must be detected at delivery: {err:?}"
        );
    }

    #[test]
    fn armed_but_clean_run_verifies_every_delivery() {
        // A plan with a 0‰ corrupt link still arms the digest machinery:
        // every delivered message is verified, none violate.
        let cfg =
            NetConfig::new(2).with_adversary(AdversaryPlan::default().with_corrupt_link(0, 1, 0));
        let out = run_sync(&cfg, vec![Stream { n: 8, received: 0 }, Stream { n: 8, received: 0 }])
            .unwrap();
        assert_eq!(out.outputs[1], 8);
        assert_eq!(out.audit.digests_verified, 8);
        assert_eq!(out.audit.integrity_violations, 0);
        // An unarmed run reports an empty audit block.
        let clean = run_sync(
            &NetConfig::new(2),
            vec![Stream { n: 8, received: 0 }, Stream { n: 8, received: 0 }],
        )
        .unwrap();
        assert!(!clean.audit.any());
    }

    #[test]
    fn retry_exhaustion_surfaces_as_link_down() {
        let cfg = NetConfig::new(2)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 })
            .with_faults(FaultPlan::default().with_loss(1000, 2));
        let err = run_sync(&cfg, vec![Stream { n: 4, received: 0 }, Stream { n: 4, received: 0 }])
            .unwrap_err();
        assert_eq!(err, EngineError::LinkDown { src: 0, dst: 1, round: 1, retries: 2 });
    }
}
