//! Threaded engine: one OS thread per machine.
//!
//! Every simulated round is three barrier phases:
//!
//! 1. **decide** — thread 0 checks termination / stall / round-limit using
//!    the counters committed by the previous round, and applies the optional
//!    synthetic per-round latency;
//! 2. **take** — every thread drains its column of the staging matrix into
//!    its private inbox buffer (all takes complete before anyone sends, so a
//!    round's deliveries can never mix with the next round's);
//! 3. **compute + transport** — every thread runs its protocol, enqueues
//!    sends on its private dense per-destination link row, and drains one
//!    round of bandwidth budget from each busy FIFO into its own staging
//!    slots.
//!
//! Delivery goes through a k×k **staging matrix**: slot `dst · k + src` is
//! written only by thread `src` (during phase 3) and read only by thread
//! `dst` (during phase 2 of the next round), with a barrier between — so
//! every lock acquisition is uncontended, unlike a mutex-per-inbox design
//! where all k−1 senders serialize on the recipient's lock. The slot `Vec`s
//! and each thread's inbox buffer are drained with `append`, which moves the
//! elements but keeps both allocations warm across rounds.
//!
//! Inboxes are sorted by `(src, seq)` before delivery to the protocol, so
//! executions are bit-identical to [`run_sync`](super::run_sync) for
//! deterministic protocols — the only difference is that local computation
//! genuinely runs in parallel, which is what the wall-clock experiments
//! measure.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use parking_lot::Mutex;

use crate::config::NetConfig;
use crate::ctx::{AdversaryCtx, Ctx};
use crate::engine::sync::{build_link, crash_horizons, crashed_error};
use crate::engine::RunOutcome;
use crate::error::EngineError;
use crate::link::LinkFifo;
use crate::message::{Envelope, MachineId};
use crate::metrics::{AuditMetrics, FaultMetrics, RunMetrics, TagMetrics};
use crate::payload::Payload;
use crate::protocol::{Protocol, Step};
use crate::recovery;
use crate::rng::machine_rng;

/// Initial capacity of each staging-matrix slot (and, scaled by k, of each
/// inbox buffer): enough for a typical bandwidth round of small messages,
/// so the hot path starts warm instead of growing every buffer on first
/// use.
const STAGE_SLOT_PREALLOC: usize = 8;

struct Shared<M> {
    barrier: Barrier,
    /// k×k staging matrix: slot `dst * k + src` carries messages from `src`
    /// to `dst` between one round's transport phase and the next round's
    /// take phase. Single-writer / single-reader per slot, phases separated
    /// by a barrier — the mutexes are never contended.
    stage: Vec<Mutex<Vec<Envelope<M>>>>,
    stop: AtomicBool,
    error: Mutex<Option<EngineError>>,
    done_count: AtomicUsize,
    backlog_bits: AtomicI64,
    activity: AtomicBool,
    rounds: AtomicU64,
    messages: AtomicU64,
    bits: AtomicU64,
    delivered_after_done: AtomicU64,
    max_backlog: AtomicU64,
    per_tag: Mutex<Vec<TagMetrics>>,
    /// Machines that hit their fail-stop horizon (unordered; sorted once at
    /// collection).
    crashed: Mutex<Vec<usize>>,
    dropped: AtomicU64,
    retransmitted_bits: AtomicU64,
    digests_verified: AtomicU64,
}

/// Execute one protocol instance per machine, each on its own OS thread.
///
/// Semantics (outputs, rounds, messages) match [`run_sync`](super::run_sync);
/// wall-clock time additionally reflects parallel local computation, barrier
/// synchronization, and the configured [`NetConfig::round_latency`].
///
/// # Panics
/// If `protocols.len() != cfg.k` or bandwidth is `Enforce { 0 }`.
pub fn run_threaded<P: Protocol>(
    cfg: &NetConfig,
    protocols: Vec<P>,
) -> Result<RunOutcome<P::Output>, EngineError> {
    recovery::validate(cfg)?;
    if cfg.recovery.is_empty() {
        return threaded_core(cfg, protocols, None);
    }
    let (wrapped, state) = recovery::wrap(cfg, protocols);
    recovery::finish(threaded_core(cfg, wrapped, Some(&state)), &state)
}

/// The barrier-lockstep run itself; `recovering` carries the shared rejoin
/// state when a [`crate::config::RecoveryPlan`] is active (thread 0 consults
/// it to keep a quiet cluster alive while a rejoin is still pending).
fn threaded_core<P: Protocol>(
    cfg: &NetConfig,
    protocols: Vec<P>,
    recovering: Option<&recovery::RecoveryShared>,
) -> Result<RunOutcome<P::Output>, EngineError> {
    let k = protocols.len();
    assert_eq!(k, cfg.k, "protocol count {} != cfg.k {}", k, cfg.k);
    let budget = cfg.bandwidth.budget();
    assert!(budget >= 1, "bandwidth must allow at least 1 bit per round");

    let shared = Shared::<P::Msg> {
        barrier: Barrier::new(k),
        // Staging slots carry at most one bandwidth round of messages each;
        // seeding a small capacity up front replaces the doubling-growth
        // reallocations every run used to re-pay on each slot's first use
        // (`append` then keeps the buffers warm for the rest of the run).
        stage: (0..k * k).map(|_| Mutex::new(Vec::with_capacity(STAGE_SLOT_PREALLOC))).collect(),
        stop: AtomicBool::new(false),
        error: Mutex::new(None),
        done_count: AtomicUsize::new(0),
        backlog_bits: AtomicI64::new(0),
        activity: AtomicBool::new(false),
        rounds: AtomicU64::new(0),
        messages: AtomicU64::new(0),
        bits: AtomicU64::new(0),
        delivered_after_done: AtomicU64::new(0),
        max_backlog: AtomicU64::new(0),
        per_tag: Mutex::new(Vec::new()),
        crashed: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
        retransmitted_bits: AtomicU64::new(0),
        digests_verified: AtomicU64::new(0),
    };
    let outputs: Vec<Mutex<Option<P::Output>>> = (0..k).map(|_| Mutex::new(None)).collect();
    let sends: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
    let crash_rounds = crash_horizons(cfg);
    let rejoin_rounds = recovery::rejoin_horizons(cfg);
    let adversary = AdversaryCtx::from_plan(&cfg.adversary, k);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (id, proto) in protocols.into_iter().enumerate() {
            let shared = &shared;
            let outputs = &outputs;
            let sends = &sends;
            let crash_rounds = &crash_rounds;
            let rejoin_rounds = &rejoin_rounds;
            let adversary = adversary.as_ref();
            scope.spawn(move || {
                machine_main(
                    id,
                    k,
                    cfg,
                    budget,
                    proto,
                    shared,
                    outputs,
                    sends,
                    crash_rounds,
                    rejoin_rounds,
                    adversary,
                    recovering,
                );
            });
        }
    });
    let wall = start.elapsed();

    if let Some(err) = shared.error.lock().take() {
        return Err(err);
    }
    let mut metrics = RunMetrics::new(k);
    metrics.rounds = shared.rounds.load(Ordering::Acquire);
    metrics.messages = shared.messages.load(Ordering::Acquire);
    metrics.bits = shared.bits.load(Ordering::Acquire);
    metrics.delivered_after_done = shared.delivered_after_done.load(Ordering::Acquire);
    metrics.max_link_backlog_bits = shared.max_backlog.load(Ordering::Acquire);
    metrics.sends_per_machine = sends.iter().map(|a| a.load(Ordering::Acquire)).collect();
    metrics.per_tag = std::mem::take(&mut *shared.per_tag.lock());

    let mut crashed = std::mem::take(&mut *shared.crashed.lock());
    crashed.sort_unstable();
    let mut outs = Vec::with_capacity(k);
    for (i, slot) in outputs.iter().enumerate() {
        match slot.lock().take() {
            Some(o) => outs.push(o),
            // A missing output with no recorded panic means a crashed
            // machine's salvage hook declined — same report as `run_sync`.
            None if !crashed.is_empty() => return Err(crashed_error(&crashed, &crash_rounds)),
            None => return Err(EngineError::WorkerPanic { machine: i }),
        }
    }
    let faults = FaultMetrics {
        crashed,
        dropped_messages: shared.dropped.load(Ordering::Acquire),
        retransmitted_bits: shared.retransmitted_bits.load(Ordering::Acquire),
    };
    Ok(RunOutcome {
        outputs: outs,
        metrics,
        skew: crate::metrics::SkewMetrics::default(),
        wall,
        faults,
        recovery: crate::metrics::RecoveryMetrics::default(),
        audit: AuditMetrics {
            digests_verified: shared.digests_verified.load(Ordering::Acquire),
            ..Default::default()
        },
    })
}

#[allow(clippy::too_many_arguments)]
fn machine_main<P: Protocol>(
    id: MachineId,
    k: usize,
    cfg: &NetConfig,
    budget: u64,
    mut proto: P,
    shared: &Shared<P::Msg>,
    outputs: &[Mutex<Option<P::Output>>],
    sends: &[AtomicU64],
    crash_rounds: &[u64],
    rejoin_rounds: &[u64],
    adversary: Option<&AdversaryCtx>,
    recovering: Option<&recovery::RecoveryShared>,
) {
    let mut rng = machine_rng(cfg.seed, id);
    let mut seq = 0u64;
    // Dense link row: `links[dst]` is this sender's FIFO toward `dst`
    // (`links[id]` stays empty — the model has no self-loops). Allocated
    // once, reused every round.
    let mut links: Vec<LinkFifo<P::Msg>> = (0..k).map(|dst| build_link(cfg, id, dst)).collect();
    let mut outbox: Vec<Envelope<P::Msg>> = Vec::with_capacity(k);
    let mut msgs: Vec<Envelope<P::Msg>> = Vec::with_capacity(k * STAGE_SLOT_PREALLOC);
    let mut my_pending_bits = 0u64;
    // Thread-local per-tag totals, merged into the shared table once at
    // exit — the send path stays lock-free.
    let mut my_tags: Vec<TagMetrics> = Vec::new();
    let mut round = 0u64;
    let mut done = false;
    let mut poisoned = false;

    loop {
        // Phase 1: decide. All sends of the previous round are committed.
        shared.barrier.wait();
        if id == 0 {
            let all_done = shared.done_count.load(Ordering::Acquire) == k;
            let backlog = shared.backlog_bits.load(Ordering::Acquire);
            let active = shared.activity.swap(false, Ordering::AcqRel);
            if shared.error.lock().is_some() {
                // A fault (link down) or panic was recorded last round;
                // stop the lockstep rather than grinding toward a stall.
                shared.stop.store(true, Ordering::Release);
            } else if all_done {
                shared.rounds.store(round.saturating_sub(1), Ordering::Release);
                shared.stop.store(true, Ordering::Release);
            } else if round > cfg.max_rounds {
                *shared.error.lock() = Some(EngineError::MaxRounds { limit: cfg.max_rounds });
                shared.stop.store(true, Ordering::Release);
            } else if round > 0
                && !active
                && backlog == 0
                // A quiet cluster waiting out a scheduled rejoin is not a
                // deadlock (mirrors `run_sync`'s stall suppression).
                && !recovering.is_some_and(|rec| rec.pending_at(round))
            {
                // Survivors deadlocked on a crashed peer report the crash,
                // not the stall — mirroring `run_sync`.
                let crashed = shared.crashed.lock();
                *shared.error.lock() = Some(if crashed.is_empty() {
                    EngineError::Stalled { round: round - 1 }
                } else {
                    crashed_error(&crashed, crash_rounds)
                });
                shared.stop.store(true, Ordering::Release);
            } else if !cfg.round_latency.is_zero() {
                std::thread::sleep(cfg.round_latency);
            }
        }
        // Phase 2: the decision (and everyone's inbox take) is published.
        shared.barrier.wait();
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        // Take: drain this machine's column of the staging matrix into the
        // reused inbox buffer (sources in ascending order; `append` keeps
        // both allocations warm for the next round).
        for src in 0..k {
            if src != id {
                msgs.append(&mut shared.stage[id * k + src].lock());
            }
        }
        shared.barrier.wait();

        // Phase 3: compute + transport. Keys (src, seq) are unique, so the
        // unstable sort's lack of stability is unobservable.
        msgs.sort_unstable_by_key(|e| (e.src, e.seq));
        if !done && !poisoned && round >= crash_rounds[id] {
            // Fail-stop: this machine never executes this round. The
            // salvage hook may still account for its output; from here on
            // it behaves like a done machine (earlier sends keep draining,
            // late arrivals are discarded).
            *outputs[id].lock() = proto.on_crash();
            shared.crashed.lock().push(id);
            shared.done_count.fetch_add(1, Ordering::AcqRel);
            shared.activity.store(true, Ordering::Release);
            done = true;
        }
        if done || poisoned {
            if !msgs.is_empty() {
                shared.delivered_after_done.fetch_add(msgs.len() as u64, Ordering::AcqRel);
                msgs.clear();
            }
        } else {
            let step = {
                let inbox = &msgs;
                let mut ctx = Ctx {
                    id,
                    k,
                    round,
                    inbox,
                    outbox: &mut outbox,
                    rng: &mut rng,
                    next_seq: &mut seq,
                    crash_rounds,
                    rejoin_rounds,
                    adversary,
                };
                catch_unwind(AssertUnwindSafe(|| proto.on_round(&mut ctx)))
            };
            msgs.clear();
            match step {
                Ok(Step::Continue) => {}
                Ok(Step::Done(out)) => {
                    *outputs[id].lock() = Some(out);
                    shared.done_count.fetch_add(1, Ordering::AcqRel);
                    shared.activity.store(true, Ordering::Release);
                    done = true;
                }
                Err(_) => {
                    // Record the failure, then keep participating in the
                    // barrier dance as a silent machine so nobody deadlocks.
                    let mut err = shared.error.lock();
                    if err.is_none() {
                        *err = Some(EngineError::WorkerPanic { machine: id });
                    }
                    shared.done_count.fetch_add(1, Ordering::AcqRel);
                    shared.activity.store(true, Ordering::Release);
                    poisoned = true;
                }
            }
            let mut sent = 0u64;
            for env in outbox.drain(..) {
                let bits = env.msg.size_bits().max(1);
                shared.messages.fetch_add(1, Ordering::AcqRel);
                shared.bits.fetch_add(bits, Ordering::AcqRel);
                if let Some(tag) = env.msg.mux_tag() {
                    let idx = tag as usize;
                    if idx >= my_tags.len() {
                        my_tags.resize(idx + 1, TagMetrics::default());
                    }
                    my_tags[idx].messages += 1;
                    my_tags[idx].bits += bits;
                }
                links[env.dst].push(env, bits);
                sent += 1;
            }
            if sent > 0 {
                sends[id].fetch_add(sent, Ordering::AcqRel);
                shared.activity.store(true, Ordering::Release);
            }
        }

        // Transport: drain each busy link straight into this sender's own
        // staging slots — uncontended locks, no intermediate buffer.
        let mut delivered_any = false;
        let mut now_pending = 0u64;
        for (dst, link) in links.iter_mut().enumerate() {
            if link.is_empty() {
                continue;
            }
            let mut slot = shared.stage[dst * k + id].lock();
            let before = slot.len();
            link.drain_round(budget, &mut slot);
            delivered_any |= slot.len() > before;
            drop(slot);
            if link.integrity_violated() {
                let mut err = shared.error.lock();
                if err.is_none() {
                    *err = Some(EngineError::IntegrityViolation { src: id, dst, round });
                }
            }
            if link.is_down() {
                let mut err = shared.error.lock();
                if err.is_none() {
                    *err = Some(EngineError::LinkDown {
                        src: id,
                        dst,
                        round,
                        retries: cfg.faults.max_retries,
                    });
                }
            }
            let pending = link.pending_bits();
            shared.max_backlog.fetch_max(pending, Ordering::AcqRel);
            now_pending += pending;
        }
        if delivered_any {
            shared.activity.store(true, Ordering::Release);
        }
        let delta = now_pending as i64 - my_pending_bits as i64;
        if delta != 0 {
            shared.backlog_bits.fetch_add(delta, Ordering::AcqRel);
        }
        my_pending_bits = now_pending;
        round += 1;
    }

    if !my_tags.is_empty() {
        let mut per_tag = shared.per_tag.lock();
        if per_tag.len() < my_tags.len() {
            per_tag.resize(my_tags.len(), TagMetrics::default());
        }
        for (total, mine) in per_tag.iter_mut().zip(&my_tags) {
            total.messages += mine.messages;
            total.bits += mine.bits;
        }
    }
    let (mut dropped, mut retransmitted, mut verified) = (0u64, 0u64, 0u64);
    for link in &links {
        dropped += link.dropped();
        retransmitted += link.retransmitted_bits();
        verified += link.digests_verified();
    }
    if dropped > 0 {
        shared.dropped.fetch_add(dropped, Ordering::AcqRel);
        shared.retransmitted_bits.fetch_add(retransmitted, Ordering::AcqRel);
    }
    if verified > 0 {
        shared.digests_verified.fetch_add(verified, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BandwidthMode;
    use crate::engine::run_sync;

    /// Everyone broadcasts its id; everyone outputs the sum of what it saw.
    struct GossipSum {
        acc: u64,
        got: usize,
    }
    impl Protocol for GossipSum {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if ctx.round() == 0 {
                ctx.broadcast(ctx.id() as u64);
                return Step::Continue;
            }
            for e in ctx.inbox() {
                self.acc += e.msg;
                self.got += 1;
            }
            if self.got == ctx.k() - 1 {
                Step::Done(self.acc)
            } else {
                Step::Continue
            }
        }
    }

    #[test]
    fn matches_sync_engine_exactly() {
        let cfg = NetConfig::new(8).with_seed(5);
        let mk = || (0..8).map(|_| GossipSum { acc: 0, got: 0 }).collect::<Vec<_>>();
        let a = run_sync(&cfg, mk()).unwrap();
        let b = run_threaded(&cfg, mk()).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(a.metrics.messages, b.metrics.messages);
        assert_eq!(a.metrics.bits, b.metrics.bits);
    }

    /// Machine 0 streams values to machine 1 over a narrow link.
    struct Stream {
        n: u64,
        received: u64,
    }
    impl Protocol for Stream {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            match ctx.id() {
                0 => {
                    if ctx.round() == 0 {
                        for v in 0..self.n {
                            ctx.send(1, v);
                        }
                    }
                    Step::Done(0)
                }
                _ => {
                    self.received += ctx.inbox().len() as u64;
                    if self.received == self.n {
                        Step::Done(self.received)
                    } else {
                        Step::Continue
                    }
                }
            }
        }
    }

    #[test]
    fn bandwidth_rounds_match_sync() {
        let cfg = NetConfig::new(2).with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 });
        let mk = || vec![Stream { n: 64, received: 0 }, Stream { n: 64, received: 0 }];
        let a = run_sync(&cfg, mk()).unwrap();
        let b = run_threaded(&cfg, mk()).unwrap();
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(b.metrics.rounds, 32);
        assert_eq!(a.outputs, b.outputs);
    }

    struct WaitForever;
    impl Protocol for WaitForever {
        type Msg = ();
        type Output = ();
        fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step<()> {
            Step::Continue
        }
    }

    #[test]
    fn stall_detected_without_deadlock() {
        let cfg = NetConfig::new(4);
        let err = run_threaded(&cfg, vec![WaitForever, WaitForever, WaitForever, WaitForever])
            .unwrap_err();
        assert!(matches!(err, EngineError::Stalled { .. }));
    }

    struct PanicsOnRoundOne;
    impl Protocol for PanicsOnRoundOne {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            if ctx.id() == 1 {
                panic!("intentional test panic");
            }
            if ctx.round() == 0 {
                ctx.send(1, 7);
                return Step::Continue;
            }
            Step::Done(0)
        }
    }

    #[test]
    fn worker_panic_is_reported_not_hung() {
        let cfg = NetConfig::new(2);
        let err = run_threaded(&cfg, vec![PanicsOnRoundOne, PanicsOnRoundOne]).unwrap_err();
        assert_eq!(err, EngineError::WorkerPanic { machine: 1 });
    }

    use crate::config::FaultPlan;

    #[test]
    fn unsalvageable_crash_reported_identically_to_sync() {
        let cfg = NetConfig::new(2).with_faults(FaultPlan::default().with_crash(1, 0));
        let mk = || vec![Stream { n: 4, received: 0 }, Stream { n: 4, received: 0 }];
        let a = run_sync(&cfg, mk()).unwrap_err();
        let b = run_threaded(&cfg, mk()).unwrap_err();
        assert_eq!(a, EngineError::Crashed { machine: 1, round: 0 });
        assert_eq!(a, b);
    }

    #[test]
    fn deadlock_on_crashed_peer_reports_crashed_not_stalled() {
        // Machine 0 crashes before sending anything; machine 1 waits for a
        // stream that never comes. The stall is attributed to the crash.
        let cfg = NetConfig::new(2).with_faults(FaultPlan::default().with_crash(0, 0));
        let err =
            run_threaded(&cfg, vec![Stream { n: 4, received: 0 }, Stream { n: 4, received: 0 }])
                .unwrap_err();
        assert_eq!(err, EngineError::Crashed { machine: 0, round: 0 });
    }

    #[test]
    fn lossy_run_matches_sync_exactly() {
        let cfg = NetConfig::new(2)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 })
            .with_faults(FaultPlan::default().with_loss(200, 64).with_fault_seed(5));
        let mk = || vec![Stream { n: 64, received: 0 }, Stream { n: 64, received: 0 }];
        let a = run_sync(&cfg, mk()).unwrap();
        let b = run_threaded(&cfg, mk()).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(a.metrics.messages, b.metrics.messages);
        assert_eq!(a.metrics.bits, b.metrics.bits);
        assert_eq!(a.faults, b.faults, "loss process must be keyed identically");
        assert!(b.faults.dropped_messages > 0);
    }

    #[test]
    fn retry_exhaustion_surfaces_as_link_down() {
        let cfg = NetConfig::new(2)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 128 })
            .with_faults(FaultPlan::default().with_loss(1000, 2));
        let err =
            run_threaded(&cfg, vec![Stream { n: 4, received: 0 }, Stream { n: 4, received: 0 }])
                .unwrap_err();
        assert_eq!(err, EngineError::LinkDown { src: 0, dst: 1, round: 1, retries: 2 });
    }

    #[test]
    fn round_latency_slows_wall_clock() {
        use std::time::Duration;
        let cfg = NetConfig::new(2).with_round_latency(Duration::from_millis(2));
        let mk = || vec![Stream { n: 8, received: 0 }, Stream { n: 8, received: 0 }];
        let out = run_threaded(&cfg, mk()).unwrap();
        // 2 transport rounds at 512 bits => at least ~2 * 2ms of latency.
        assert!(out.wall >= Duration::from_millis(4), "wall = {:?}", out.wall);
    }
}
