//! Engine errors.

use std::fmt;

/// Failure modes of a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// No machine progressed, nothing was in flight, and not everyone was
    /// done — the protocol deadlocked (it is waiting for a message that will
    /// never arrive).
    Stalled {
        /// Round at which the stall was detected.
        round: u64,
    },
    /// The run exceeded [`crate::NetConfig::max_rounds`].
    MaxRounds {
        /// The configured limit.
        limit: u64,
    },
    /// A worker thread of the threaded engine panicked.
    WorkerPanic {
        /// Machine whose thread panicked.
        machine: usize,
    },
    /// Under relaxed delivery, a machine sent a message inside a round it
    /// had promised to stay silent for (see
    /// [`crate::Protocol::quiet_until`]). Promises are load-bearing —
    /// peers already executed rounds on the strength of this one — so the
    /// run aborts instead of delivering the contradicting message.
    PromiseViolated {
        /// Machine that broke its own promise.
        machine: usize,
        /// Round in which the forbidden send happened.
        round: u64,
        /// The silent horizon the machine had promised.
        promised_until: u64,
    },
    /// A machine crashed (fail-stop, injected via
    /// [`crate::config::FaultPlan`]) and the run could not complete
    /// without it: either the protocol's [`crate::Protocol::on_crash`]
    /// salvage hook declined to produce an output for it, or surviving
    /// machines deadlocked waiting for its messages. Callers recover by
    /// retrying over the surviving machines.
    Crashed {
        /// The crashed machine (lowest id when several crashed).
        machine: usize,
        /// The round it was scheduled to crash at (its first unexecuted
        /// round).
        round: u64,
    },
    /// A lossy link dropped one message more than
    /// [`crate::config::FaultPlan::max_retries`] times; the link is
    /// declared down and the run aborts instead of hanging on traffic that
    /// will never arrive.
    LinkDown {
        /// Sending machine of the dead link.
        src: usize,
        /// Receiving machine of the dead link.
        dst: usize,
        /// Round in which the retry budget ran out.
        round: u64,
        /// The exhausted retry budget.
        retries: u32,
    },
    /// The run's [`crate::config::FaultPlan`] / [`crate::config::
    /// RecoveryPlan`] pair is self-contradictory (a loss rate above 100%,
    /// duplicate crash entries for one machine, a rejoin scheduled
    /// at-or-before its crash round, a machine both fail-stopped and
    /// scheduled to rejoin, …). Rejected by every engine before any
    /// protocol executes.
    InvalidPlan {
        /// Human-readable description of the contradiction.
        reason: String,
    },
    /// A scheduled rejoin needs to replay more rounds than the
    /// [`crate::config::RecoveryPlan::retention`] window keeps: the gap
    /// between the machine's last (possible) checkpoint and its rejoin
    /// round exceeds the retained per-link transports.
    CheckpointTooOld {
        /// The rejoining machine.
        machine: usize,
        /// Round of the newest checkpoint the replay could start from.
        checkpoint_round: u64,
        /// The scheduled rejoin round.
        rejoin_round: u64,
        /// The configured retention window the gap exceeds.
        retention: u64,
    },
    /// A message arrived whose chained link-layer integrity digest did not
    /// match the receiver's chain: the payload was corrupted in flight
    /// (injected via [`crate::config::AdversaryPlan::corrupt_links`]).
    /// The run aborts at the first mismatch instead of delivering poisoned
    /// data; callers recover by quarantining the sending machine and
    /// retrying over the survivors.
    IntegrityViolation {
        /// Sending machine of the corrupted link.
        src: usize,
        /// Receiving machine of the corrupted link.
        dst: usize,
        /// Round in which the mismatch was detected at delivery.
        round: u64,
    },
    /// A checkpoint blob failed its integrity seal on restore: the snapshot
    /// was truncated or corrupted between [`crate::Protocol::checkpoint`]
    /// and the rejoin's [`crate::Protocol::restore`]. Surfaced as a typed
    /// error — never a panic, never a silent wrong restore.
    SnapshotCorrupt {
        /// The machine whose rejoin found the bad blob.
        machine: usize,
        /// Round of the checkpoint the blob claimed to be.
        round: u64,
    },
    /// A `KNN_ENGINE` / `KNN_DELIVERY` environment override did not parse.
    /// Surfaced as an error (not a panic) so long-running serving binaries
    /// report a typo instead of aborting.
    BadEnvOverride {
        /// The offending environment variable.
        var: &'static str,
        /// Why its value was rejected.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Stalled { round } => {
                write!(
                    f,
                    "protocol stalled at round {round}: no progress and no messages in flight"
                )
            }
            EngineError::MaxRounds { limit } => {
                write!(f, "exceeded the configured round limit ({limit})")
            }
            EngineError::WorkerPanic { machine } => {
                write!(f, "worker thread for machine {machine} panicked")
            }
            EngineError::PromiseViolated { machine, round, promised_until } => {
                write!(
                    f,
                    "machine {machine} sent in round {round} after promising silence until \
                     round {promised_until}"
                )
            }
            EngineError::Crashed { machine, round } => {
                write!(f, "machine {machine} crashed at round {round} and the run cannot complete without it")
            }
            EngineError::LinkDown { src, dst, round, retries } => {
                write!(
                    f,
                    "link {src} -> {dst} went down at round {round} after exhausting {retries} \
                     retransmissions"
                )
            }
            EngineError::InvalidPlan { reason } => {
                write!(f, "invalid fault/recovery plan: {reason}")
            }
            EngineError::CheckpointTooOld {
                machine,
                checkpoint_round,
                rejoin_round,
                retention,
            } => {
                write!(
                    f,
                    "machine {machine} cannot rejoin at round {rejoin_round}: its last \
                     checkpoint (round {checkpoint_round}) is outside the {retention}-round \
                     retention window"
                )
            }
            EngineError::IntegrityViolation { src, dst, round } => {
                write!(
                    f,
                    "integrity violation on link {src} -> {dst}: digest mismatch detected at \
                     delivery in round {round}"
                )
            }
            EngineError::SnapshotCorrupt { machine, round } => {
                write!(
                    f,
                    "machine {machine} cannot restore from its round-{round} checkpoint: the \
                     blob failed its integrity seal (truncated or corrupted)"
                )
            }
            EngineError::BadEnvOverride { var, reason } => {
                write!(f, "invalid {var} environment override: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let s = EngineError::Stalled { round: 5 }.to_string();
        assert!(s.contains("round 5"));
        let s = EngineError::MaxRounds { limit: 10 }.to_string();
        assert!(s.contains("10"));
        let s = EngineError::WorkerPanic { machine: 3 }.to_string();
        assert!(s.contains("3"));
        let s =
            EngineError::PromiseViolated { machine: 2, round: 7, promised_until: 12 }.to_string();
        assert!(s.contains("machine 2") && s.contains("round 7") && s.contains("12"));
        let s = EngineError::Crashed { machine: 1, round: 4 }.to_string();
        assert!(s.contains("machine 1") && s.contains("round 4"));
        let s = EngineError::LinkDown { src: 0, dst: 2, round: 9, retries: 3 }.to_string();
        assert!(s.contains("0 -> 2") && s.contains("round 9") && s.contains("3"));
        let s =
            EngineError::BadEnvOverride { var: "KNN_ENGINE", reason: "nope".into() }.to_string();
        assert!(s.contains("KNN_ENGINE") && s.contains("nope"));
        let s = EngineError::InvalidPlan { reason: "duplicate crash".into() }.to_string();
        assert!(s.contains("duplicate crash"));
        let s = EngineError::CheckpointTooOld {
            machine: 2,
            checkpoint_round: 4,
            rejoin_round: 90,
            retention: 64,
        }
        .to_string();
        assert!(s.contains("machine 2") && s.contains("round 90") && s.contains("64"));
        let s = EngineError::IntegrityViolation { src: 1, dst: 3, round: 6 }.to_string();
        assert!(s.contains("1 -> 3") && s.contains("round 6"));
        let s = EngineError::SnapshotCorrupt { machine: 4, round: 8 }.to_string();
        assert!(s.contains("machine 4") && s.contains("round-8"));
    }
}
