//! Engine errors.

use std::fmt;

/// Failure modes of a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// No machine progressed, nothing was in flight, and not everyone was
    /// done — the protocol deadlocked (it is waiting for a message that will
    /// never arrive).
    Stalled {
        /// Round at which the stall was detected.
        round: u64,
    },
    /// The run exceeded [`crate::NetConfig::max_rounds`].
    MaxRounds {
        /// The configured limit.
        limit: u64,
    },
    /// A worker thread of the threaded engine panicked.
    WorkerPanic {
        /// Machine whose thread panicked.
        machine: usize,
    },
    /// Under relaxed delivery, a machine sent a message inside a round it
    /// had promised to stay silent for (see
    /// [`crate::Protocol::quiet_until`]). Promises are load-bearing —
    /// peers already executed rounds on the strength of this one — so the
    /// run aborts instead of delivering the contradicting message.
    PromiseViolated {
        /// Machine that broke its own promise.
        machine: usize,
        /// Round in which the forbidden send happened.
        round: u64,
        /// The silent horizon the machine had promised.
        promised_until: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Stalled { round } => {
                write!(
                    f,
                    "protocol stalled at round {round}: no progress and no messages in flight"
                )
            }
            EngineError::MaxRounds { limit } => {
                write!(f, "exceeded the configured round limit ({limit})")
            }
            EngineError::WorkerPanic { machine } => {
                write!(f, "worker thread for machine {machine} panicked")
            }
            EngineError::PromiseViolated { machine, round, promised_until } => {
                write!(
                    f,
                    "machine {machine} sent in round {round} after promising silence until \
                     round {promised_until}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let s = EngineError::Stalled { round: 5 }.to_string();
        assert!(s.contains("round 5"));
        let s = EngineError::MaxRounds { limit: 10 }.to_string();
        assert!(s.contains("10"));
        let s = EngineError::WorkerPanic { machine: 3 }.to_string();
        assert!(s.contains("3"));
        let s =
            EngineError::PromiseViolated { machine: 2, round: 7, promised_until: 12 }.to_string();
        assert!(s.contains("machine 2") && s.contains("round 7") && s.contains("12"));
    }
}
