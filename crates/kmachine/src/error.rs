//! Engine errors.

use std::fmt;

/// Failure modes of a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// No machine progressed, nothing was in flight, and not everyone was
    /// done — the protocol deadlocked (it is waiting for a message that will
    /// never arrive).
    Stalled {
        /// Round at which the stall was detected.
        round: u64,
    },
    /// The run exceeded [`crate::NetConfig::max_rounds`].
    MaxRounds {
        /// The configured limit.
        limit: u64,
    },
    /// A worker thread of the threaded engine panicked.
    WorkerPanic {
        /// Machine whose thread panicked.
        machine: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Stalled { round } => {
                write!(
                    f,
                    "protocol stalled at round {round}: no progress and no messages in flight"
                )
            }
            EngineError::MaxRounds { limit } => {
                write!(f, "exceeded the configured round limit ({limit})")
            }
            EngineError::WorkerPanic { machine } => {
                write!(f, "worker thread for machine {machine} panicked")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let s = EngineError::Stalled { round: 5 }.to_string();
        assert!(s.contains("round 5"));
        let s = EngineError::MaxRounds { limit: 10 }.to_string();
        assert!(s.contains("10"));
        let s = EngineError::WorkerPanic { machine: 3 }.to_string();
        assert!(s.contains("3"));
    }
}
