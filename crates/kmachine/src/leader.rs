//! Leader election protocols.
//!
//! The paper (following Kutten, Pandurangan, Peleg, Robinson, Trehan;
//! TCS 2015, reference \[9\]) elects a leader in O(1) rounds and
//! O(√k·log^{3/2} k) messages and then treats it as a black box. In this
//! simulator machine indices `0..k` are globally known — exactly as in the
//! k-machine model, where machines have distinct known IDs — so three
//! elections of increasing communication cost are provided:
//!
//! * [`fixed_leader`] — zero communication: everyone agrees on machine 0.
//!   The default for the paper's algorithms, whose theorems assume a leader
//!   is already known or charge the election separately.
//! * [`RandRankStar`] — 2 rounds, `2(k−1)` messages: every machine draws a
//!   random rank and sends it to machine 0, which announces the argmin.
//!   Random ranks (not indices) make the choice adversary-independent.
//! * [`RandRankFlood`] — 1 round, `k(k−1)` messages: everyone broadcasts its
//!   rank; everyone takes the argmin locally. Fewest rounds, most messages.
//!
//! All three produce the same *type* of output — the elected
//! [`MachineId`] — so the distributed k-NN runner can compose any of them
//! before its main protocol. Election message costs are reported by the
//! normal engine metrics.

use rand::RngExt;

use crate::ctx::Ctx;
use crate::message::MachineId;
use crate::payload::Payload;
use crate::protocol::{Protocol, Step};

/// The leader every machine agrees on without communication: machine 0.
///
/// Valid in the k-machine model because machine identifiers are common
/// knowledge; included so experiments can exclude election cost, matching
/// how the paper states its round/message bounds.
pub fn fixed_leader(_k: usize) -> MachineId {
    0
}

/// Message carrying a random 64-bit rank (and implicitly the sender id).
#[derive(Debug, Clone, Copy)]
pub struct Rank(pub u64);

impl Payload for Rank {
    fn size_bits(&self) -> u64 {
        64
    }
}

/// Election by rank gathering through machine 0 ("star"): 2 rounds,
/// `2(k−1)` messages.
#[derive(Debug, Default)]
pub struct RandRankStar {
    my_rank: u64,
    best: Option<(u64, MachineId)>,
    got: usize,
}

impl RandRankStar {
    /// Fresh instance (one per machine).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Announcement of the winning machine.
#[derive(Debug, Clone, Copy)]
pub enum StarMsg {
    /// A machine's rank, sent to the coordinator.
    Rank(u64),
    /// The coordinator's announcement of the elected leader.
    Winner(u64),
}

impl Payload for StarMsg {
    fn size_bits(&self) -> u64 {
        // One value plus a 1-bit tag.
        65
    }
}

impl Protocol for RandRankStar {
    type Msg = StarMsg;
    type Output = MachineId;

    fn on_round(&mut self, ctx: &mut Ctx<'_, StarMsg>) -> Step<MachineId> {
        if ctx.round() == 0 {
            self.my_rank = ctx.rng().random();
            if ctx.id() == 0 {
                self.best = Some((self.my_rank, 0));
                self.got = 1;
                if ctx.k() == 1 {
                    return Step::Done(0);
                }
            } else {
                ctx.send(0, StarMsg::Rank(self.my_rank));
            }
            return Step::Continue;
        }
        if ctx.id() == 0 {
            for env in ctx.inbox() {
                if let StarMsg::Rank(r) = env.msg {
                    self.got += 1;
                    // Ties broken by machine index (ranks are 64-bit random,
                    // so ties are vanishingly rare anyway).
                    let cand = (r, env.src);
                    if self.best.is_none_or(|b| cand < b) {
                        self.best = Some(cand);
                    }
                }
            }
            if self.got == ctx.k() {
                let winner = self.best.expect("at least own rank").1;
                ctx.broadcast(StarMsg::Winner(winner as u64));
                return Step::Done(winner);
            }
            return Step::Continue;
        }
        if let Some(StarMsg::Winner(w)) = ctx.first_from(0) {
            return Step::Done(*w as MachineId);
        }
        Step::Continue
    }
}

/// Election by all-to-all rank flooding: 1 round, `k(k−1)` messages.
#[derive(Debug, Default)]
pub struct RandRankFlood {
    my_rank: u64,
    best: Option<(u64, MachineId)>,
    got: usize,
}

impl RandRankFlood {
    /// Fresh instance (one per machine).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Protocol for RandRankFlood {
    type Msg = Rank;
    type Output = MachineId;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Rank>) -> Step<MachineId> {
        if ctx.round() == 0 {
            self.my_rank = ctx.rng().random();
            self.best = Some((self.my_rank, ctx.id()));
            self.got = 1;
            if ctx.k() == 1 {
                return Step::Done(0);
            }
            ctx.broadcast(Rank(self.my_rank));
            return Step::Continue;
        }
        for env in ctx.inbox() {
            self.got += 1;
            let cand = (env.msg.0, env.src);
            if self.best.is_none_or(|b| cand < b) {
                self.best = Some(cand);
            }
        }
        if self.got == ctx.k() {
            Step::Done(self.best.expect("has own rank").1)
        } else {
            Step::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use crate::engine::{run_sync, run_threaded};

    #[test]
    fn fixed_leader_is_zero() {
        assert_eq!(fixed_leader(17), 0);
    }

    #[test]
    fn star_election_agrees_and_costs_two_rounds() {
        let k = 9;
        let cfg = NetConfig::new(k).with_seed(11);
        let out = run_sync(&cfg, (0..k).map(|_| RandRankStar::new()).collect()).unwrap();
        let leader = out.outputs[0];
        assert!(out.outputs.iter().all(|&l| l == leader));
        assert_eq!(out.metrics.rounds, 2);
        assert_eq!(out.metrics.messages, 2 * (k as u64 - 1));
    }

    #[test]
    fn flood_election_agrees_and_costs_one_round() {
        let k = 9;
        let cfg = NetConfig::new(k).with_seed(12);
        let out = run_sync(&cfg, (0..k).map(|_| RandRankFlood::new()).collect()).unwrap();
        let leader = out.outputs[0];
        assert!(out.outputs.iter().all(|&l| l == leader));
        assert_eq!(out.metrics.rounds, 1);
        assert_eq!(out.metrics.messages, (k * (k - 1)) as u64);
    }

    #[test]
    fn elections_are_uniformish_over_seeds() {
        // Each machine's rank is uniform, so the winner should vary by seed.
        let k = 4;
        let mut winners = std::collections::HashSet::new();
        for seed in 0..32 {
            let cfg = NetConfig::new(k).with_seed(seed);
            let out = run_sync(&cfg, (0..k).map(|_| RandRankFlood::new()).collect()).unwrap();
            winners.insert(out.outputs[0]);
        }
        assert!(winners.len() >= 3, "winners seen: {winners:?}");
    }

    #[test]
    fn engines_agree_on_star_election() {
        let k = 6;
        let cfg = NetConfig::new(k).with_seed(3);
        let a = run_sync(&cfg, (0..k).map(|_| RandRankStar::new()).collect()).unwrap();
        let b = run_threaded(&cfg, (0..k).map(|_| RandRankStar::new()).collect()).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(a.metrics.messages, b.metrics.messages);
    }

    #[test]
    fn single_machine_elects_itself() {
        let cfg = NetConfig::new(1);
        let out = run_sync(&cfg, vec![RandRankStar::new()]).unwrap();
        assert_eq!(out.outputs, vec![0]);
        assert_eq!(out.metrics.rounds, 0);
    }
}
