//! # kmachine — a simulator for the *k-machine model* of distributed computing
//!
//! The k-machine model (Klauck, Nanongkai, Pandurangan, Robinson; SODA 2015)
//! consists of `k ≥ 2` machines pairwise interconnected by bidirectional
//! point-to-point links. Computation proceeds in **synchronous rounds**: in
//! each round every machine may perform arbitrary local computation and send
//! at most `B` bits over each of its `k − 1` links. Local computation is free
//! in the model; the costs that matter are **rounds** and **messages**.
//!
//! This crate provides:
//!
//! * a [`Protocol`] trait — distributed algorithms are written once as
//!   per-machine state machines driven round by round;
//! * three engines that execute the *same* protocol code bit-identically:
//!   * [`engine::run_sync`] — a deterministic sequential lockstep simulator
//!     with exact round/message/bit accounting (scales to thousands of
//!     simulated machines);
//!   * [`engine::run_threaded`] — one OS thread per machine with
//!     barrier-synchronized rounds, for latency-modeling experiments;
//!   * [`engine::run_event`] — no global barrier: per-link dependency
//!     scheduling over round-slotted links on a worker pool, so fast
//!     machines run rounds ahead of slow ones ([`Engine::Auto`] picks an
//!     engine per run, and the `KNN_ENGINE` environment variable forces
//!     one). With [`DeliveryMode::Relaxed`] (`KNN_DELIVERY=relaxed`),
//!     quiescence promises — "nothing from me before round X", published
//!     by drained done machines or via [`Protocol::quiet_until`] — stand
//!     in for empty transports, unlocking multi-round pipelining with
//!     byte-identical outputs and metrics (skew is reported in
//!     [`RunOutcome::skew`]);
//! * bandwidth-limited links ([`BandwidthMode::Enforce`]): each ordered link
//!   drains at most `B` bits per round, store-and-forward, so protocols that
//!   ship a lot of data genuinely pay for it in rounds;
//! * protocol multiplexing ([`mux::MuxProtocol`]): m instances of any
//!   protocol pipelined over one run, sharing link FIFOs and bandwidth, with
//!   per-instance message/bit attribution
//!   ([`RunMetrics::per_tag`](metrics::RunMetrics::per_tag));
//! * leader election protocols ([`leader`]);
//! * deterministic fault injection ([`FaultPlan`]): seeded per-link message
//!   loss with bounded retransmission ([`EngineError::LinkDown`] once the
//!   retry budget is exhausted), fail-stop crashes with a salvage hook
//!   ([`Protocol::on_crash`], observed by peers via [`Ctx::crashed`]), and
//!   wall-clock stragglers — the realized faults are identical on every
//!   engine and reported in [`RunOutcome::faults`];
//! * deterministic Byzantine injection ([`AdversaryPlan`]): machines that
//!   lie from a scheduled round on ([`Payload::tamper`] perturbs their
//!   outgoing values with pure seeded words, equivocators telling each peer
//!   a *different* lie) and links that corrupt payload bits in flight —
//!   caught at delivery by chained per-link integrity digests
//!   ([`EngineError::IntegrityViolation`]); verification counts ride
//!   [`RunOutcome::audit`], identically on every engine. Semantic detection
//!   of lies (and quarantine of liars) is the query layer's job, built on
//!   the same seeded determinism;
//! * deterministic crash-recovery ([`config::RecoveryPlan`]): protocols
//!   serialize their state through [`Protocol::checkpoint`] /
//!   [`Protocol::restore`] (blobs built with [`snapshot`]); a machine
//!   scheduled to crash-then-rejoin goes dark at its crash round and is
//!   restored from its last checkpoint at its rejoin round, replaying the
//!   missed rounds from retained inboxes (bounded by
//!   [`config::RecoveryPlan::retention`], else
//!   [`EngineError::CheckpointTooOld`]). Peers observe the comeback via
//!   [`Ctx::rejoined`]; realized recoveries ride
//!   [`RunOutcome::recovery`] and the recovered run's outputs are
//!   byte-identical to the fault-free run on every engine;
//! * reproducible per-machine randomness derived from a single master seed.
//!
//! ## Example
//!
//! ```
//! use kmachine::{NetConfig, Protocol, Ctx, Step, Payload, engine::run_sync};
//!
//! /// Every machine sends its value to machine 0, which sums them.
//! struct SumToZero { value: u64, acc: u64, got: usize }
//!
//! #[derive(Clone, Debug)]
//! struct Val(u64);
//! impl Payload for Val {
//!     fn size_bits(&self) -> u64 { 64 }
//! }
//!
//! impl Protocol for SumToZero {
//!     type Msg = Val;
//!     type Output = u64;
//!     fn on_round(&mut self, ctx: &mut Ctx<'_, Val>) -> Step<u64> {
//!         if ctx.id() != 0 {
//!             if ctx.round() == 0 {
//!                 ctx.send(0, Val(self.value));
//!             }
//!             return Step::Done(0);
//!         }
//!         for env in ctx.inbox() {
//!             self.acc += env.msg.0;
//!             self.got += 1;
//!         }
//!         if self.got == ctx.k() - 1 {
//!             Step::Done(self.acc + self.value)
//!         } else {
//!             Step::Continue
//!         }
//!     }
//! }
//!
//! let cfg = NetConfig::new(4);
//! let protos = (0..4).map(|i| SumToZero { value: i as u64, acc: 0, got: 0 }).collect();
//! let out = run_sync(&cfg, protos).unwrap();
//! assert_eq!(out.outputs[0], 0 + 1 + 2 + 3);
//! assert_eq!(out.metrics.rounds, 1); // one communication round
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod ctx;
pub mod engine;
pub mod error;
pub mod leader;
pub mod link;
pub mod message;
pub mod metrics;
pub mod mux;
pub mod payload;
pub mod protocol;
pub(crate) mod recovery;
pub mod rng;
pub mod snapshot;

pub use config::{AdversaryPlan, BandwidthMode, DeliveryMode, FaultPlan, NetConfig, RecoveryPlan};
pub use ctx::Ctx;
pub use engine::{run_event, run_sync, run_threaded, Engine, RunOutcome, DELIVERY_ENV, ENGINE_ENV};
pub use error::EngineError;
pub use link::{IntegrityConfig, LinkFifo, LossConfig};
pub use message::{Envelope, MachineId, ENVELOPE_HEADER_BITS};
pub use metrics::{
    AuditMetrics, FaultMetrics, RecoveryMetrics, RunMetrics, SkewMetrics, TagMetrics,
};
pub use mux::{MuxOutput, MuxProtocol, Tagged, MUX_TAG_BITS};
pub use payload::Payload;
pub use protocol::{Protocol, Step};
pub use snapshot::{SnapshotReader, SnapshotWriter};
