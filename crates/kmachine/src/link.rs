//! Bandwidth-limited links.
//!
//! Each ordered pair of machines `(u, v)` has a dedicated link modeled as a
//! store-and-forward FIFO. A message of `s` bits sent in round `r` starts
//! transmitting in the transition to round `r + 1`; every transition drains
//! at most `B` bits from the queue. A message is delivered in the round in
//! which its last bit drains, so an `s`-bit message on an idle link arrives
//! at round `r + ⌈s / B⌉` and a backlogged link delays it further. This is
//! exactly the accounting that makes the "simple method" baseline of the
//! paper cost `Θ(ℓ)` rounds.

use std::collections::VecDeque;

use crate::message::{Envelope, MachineId};

/// Loss process of one lossy link, derived from the run's
/// [`crate::config::FaultPlan`]. The drop decision for a message is a pure
/// hash of `(seed, src, dst, message index on this link, attempt)` — no
/// shared RNG, no dependence on drain cadence — so every engine at every
/// pool size loses exactly the same messages.
#[derive(Debug, Clone, Copy)]
pub struct LossConfig {
    /// Drop probability in thousandths (≤ 1000).
    pub per_mille: u16,
    /// Retransmissions allowed per message before the link goes down.
    pub max_retries: u32,
    /// Seed of the loss process.
    pub seed: u64,
    /// Sending machine (part of the hash, so each ordered link draws an
    /// independent stream).
    pub src: MachineId,
    /// Receiving machine.
    pub dst: MachineId,
}

/// Integrity/corruption process of one ordered link, derived from the
/// run's [`crate::config::AdversaryPlan`]. When armed, the link stamps a
/// chained digest into every pushed envelope and verifies the chain at
/// delivery; the corruption decision for a message is a pure hash of
/// `(seed, src, dst, message index on this link)` — the same scheme as
/// [`LossConfig`] — so every engine at every pool size corrupts exactly
/// the same messages.
#[derive(Debug, Clone, Copy)]
pub struct IntegrityConfig {
    /// In-flight corruption probability in thousandths (≤ 1000; 0 = the
    /// link only verifies, never corrupts).
    pub corrupt_per_mille: u16,
    /// Seed of the corruption process.
    pub seed: u64,
    /// Sending machine (part of both the chain and the corruption hash).
    pub src: MachineId,
    /// Receiving machine.
    pub dst: MachineId,
}

/// One queued message: the envelope, its transmission progress, and the
/// retry bookkeeping the loss layer needs to re-send it at full size.
#[derive(Debug)]
struct InFlight<M> {
    env: Envelope<M>,
    /// Bits still to transmit (counts down; reset to `full` on a drop).
    remaining: u64,
    /// Wire size of the message.
    full: u64,
    /// Position of this message in the link's push order (the loss hash
    /// key, engine-invariant because pushes happen in execution order).
    index: u64,
    /// Transmission attempts so far (0 = first try).
    tries: u32,
}

/// FIFO state of one ordered link.
#[derive(Debug)]
pub struct LinkFifo<M> {
    queue: VecDeque<InFlight<M>>,
    pending_bits: u64,
    loss: Option<LossConfig>,
    integrity: Option<IntegrityConfig>,
    /// Sender-side digest chain (advanced at push).
    send_chain: u64,
    /// Receiver-side digest chain (advanced at delivery).
    recv_chain: u64,
    digests_verified: u64,
    violated: bool,
    next_index: u64,
    dropped: u64,
    retransmitted_bits: u64,
    down: bool,
}

impl<M> Default for LinkFifo<M> {
    fn default() -> Self {
        LinkFifo {
            queue: VecDeque::new(),
            pending_bits: 0,
            loss: None,
            integrity: None,
            send_chain: 0,
            recv_chain: 0,
            digests_verified: 0,
            violated: false,
            next_index: 0,
            dropped: 0,
            retransmitted_bits: 0,
            down: false,
        }
    }
}

/// splitmix64-style finalizer over the loss hash inputs: cheap, stateless,
/// and well-mixed enough that per-link drop streams are independent.
fn loss_roll(seed: u64, src: MachineId, dst: MachineId, index: u64, tries: u32) -> u64 {
    let mut x = seed
        ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ index.wrapping_mul(0x1656_67B1_9E37_79F9)
        ^ u64::from(tries).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Advance a per-link digest chain over one envelope's identity. Chaining
/// (rather than hashing each message independently) means a mismatch also
/// catches reordering and replay, not just bit-flips.
fn chain_digest(prev: u64, src: MachineId, dst: MachineId, seq: u64, sent_round: u64) -> u64 {
    let mut x = prev
        ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ seq.wrapping_mul(0x1656_67B1_9E37_79F9)
        ^ sent_round.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Salt decorrelating the corruption stream from the loss stream when both
/// run off related seeds.
const CORRUPT_SALT: u64 = 0xB5E0_C0DE_D16E_5751;

impl<M> LinkFifo<M> {
    /// A link that drops messages according to `loss` (a `per_mille` of 0
    /// behaves exactly like [`LinkFifo::default`]).
    pub fn lossy(loss: LossConfig) -> Self {
        LinkFifo { loss: (loss.per_mille > 0).then_some(loss), ..Default::default() }
    }

    /// Arm the integrity layer: stamp a chained digest into every pushed
    /// envelope, verify it at delivery, and corrupt in-flight messages
    /// according to `integrity.corrupt_per_mille`.
    pub fn with_integrity(mut self, integrity: IntegrityConfig) -> Self {
        self.integrity = Some(integrity);
        self
    }

    /// Enqueue a message whose wire size is `bits` (clamped to ≥ 1).
    pub fn push(&mut self, mut env: Envelope<M>, bits: u64) {
        let bits = bits.max(1);
        self.pending_bits += bits;
        let index = self.next_index;
        self.next_index += 1;
        if let Some(integrity) = self.integrity {
            self.send_chain =
                chain_digest(self.send_chain, env.src, env.dst, env.seq, env.sent_round);
            env.digest = self.send_chain;
            if integrity.corrupt_per_mille > 0 {
                let roll = loss_roll(
                    integrity.seed ^ CORRUPT_SALT,
                    integrity.src,
                    integrity.dst,
                    index,
                    0,
                );
                if roll % 1000 < u64::from(integrity.corrupt_per_mille) {
                    // The in-flight bit-flip: the payload is corrupted on
                    // the wire, which the digest (standing in for a
                    // checksum over the payload) no longer matches.
                    env.digest ^= roll | 1;
                }
            }
        }
        self.queue.push_back(InFlight { env, remaining: bits, full: bits, index, tries: 0 });
    }

    /// Drain one round's worth of budget, appending fully-transmitted
    /// messages to `out`. Partial progress on the head message is retained.
    ///
    /// On a lossy link, a message whose last bit drains may be dropped
    /// instead of delivered: it re-enqueues at full size (the retransmit
    /// pays bandwidth again, immediately competing for the remaining
    /// budget) until its retry budget runs out, at which point the link is
    /// [`LinkFifo::is_down`] and stops transmitting — the engines turn
    /// that into [`crate::EngineError::LinkDown`].
    ///
    /// Idle links return immediately — the engines additionally use
    /// [`LinkFifo::is_empty`] to skip them without a call at all, so a
    /// mostly-quiet k² lattice costs one flag check per link per round.
    pub fn drain_round(&mut self, mut budget: u64, out: &mut Vec<Envelope<M>>) {
        if self.queue.is_empty() || self.down {
            return;
        }
        while budget > 0 {
            let Some(front) = self.queue.front_mut() else { break };
            if front.remaining <= budget {
                budget -= front.remaining;
                self.pending_bits -= front.remaining;
                if let Some(loss) = self.loss {
                    let roll = loss_roll(loss.seed, loss.src, loss.dst, front.index, front.tries);
                    if roll % 1000 < u64::from(loss.per_mille) {
                        if front.tries >= loss.max_retries {
                            // Retry budget exhausted: the message is never
                            // delivered and the link stops. Restore its full
                            // size so backlog accounting stays truthful.
                            front.remaining = front.full;
                            self.pending_bits += front.full;
                            self.down = true;
                            return;
                        }
                        self.dropped += 1;
                        self.retransmitted_bits += front.full;
                        self.pending_bits += front.full;
                        front.remaining = front.full;
                        front.tries += 1;
                        continue;
                    }
                }
                let head = self.queue.pop_front().expect("front exists");
                if self.integrity.is_some() {
                    self.recv_chain = chain_digest(
                        self.recv_chain,
                        head.env.src,
                        head.env.dst,
                        head.env.seq,
                        head.env.sent_round,
                    );
                    if head.env.digest != self.recv_chain {
                        // Poisoned payload: never deliver it. The engines
                        // observe the violation and abort the run with a
                        // typed error instead of executing on bad data.
                        self.violated = true;
                        return;
                    }
                    self.digests_verified += 1;
                }
                out.push(head.env);
            } else {
                front.remaining -= budget;
                self.pending_bits -= budget;
                break;
            }
        }
    }

    /// Bits still queued (including partially-transmitted head).
    #[inline]
    pub fn pending_bits(&self) -> u64 {
        self.pending_bits
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True once a message exhausted its retries: the link is dead and will
    /// never deliver again.
    #[inline]
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Messages dropped (and retransmitted) so far.
    #[inline]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Bits spent on retransmissions so far.
    #[inline]
    pub fn retransmitted_bits(&self) -> u64 {
        self.retransmitted_bits
    }

    /// Messages whose chained digest was verified at delivery (always 0 on
    /// an unarmed link).
    #[inline]
    pub fn digests_verified(&self) -> u64 {
        self.digests_verified
    }

    /// True once a delivery found a digest mismatch: the link saw a
    /// corrupted payload and the engines must abort with
    /// [`crate::EngineError::IntegrityViolation`].
    #[inline]
    pub fn integrity_violated(&self) -> bool {
        self.violated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(seq: u64) -> Envelope<u64> {
        Envelope { src: 0, dst: 1, sent_round: 0, seq, digest: 0, msg: seq }
    }

    #[test]
    fn small_messages_fit_in_one_round() {
        let mut link = LinkFifo::default();
        link.push(env(0), 64);
        link.push(env(1), 64);
        let mut out = Vec::new();
        link.drain_round(512, &mut out);
        assert_eq!(out.len(), 2);
        assert!(link.is_empty());
        assert_eq!(link.pending_bits(), 0);
    }

    #[test]
    fn big_message_takes_multiple_rounds() {
        let mut link = LinkFifo::default();
        link.push(env(0), 1000);
        let mut out = Vec::new();
        link.drain_round(512, &mut out);
        assert!(out.is_empty());
        assert_eq!(link.pending_bits(), 488);
        link.drain_round(512, &mut out);
        assert_eq!(out.len(), 1);
        assert!(link.is_empty());
    }

    #[test]
    fn budget_spans_messages_cut_through() {
        let mut link = LinkFifo::default();
        link.push(env(0), 300);
        link.push(env(1), 300);
        link.push(env(2), 300);
        let mut out = Vec::new();
        // Round 1: 300 + 212 of the second message.
        link.drain_round(512, &mut out);
        assert_eq!(out.len(), 1);
        // Round 2: remaining 88 + 300 of the third + leftover budget unused.
        link.drain_round(512, &mut out);
        assert_eq!(out.len(), 3);
        assert!(link.is_empty());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut link = LinkFifo::default();
        for i in 0..10 {
            link.push(env(i), 64);
        }
        let mut out = Vec::new();
        while !link.is_empty() {
            link.drain_round(128, &mut out);
        }
        let seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_bit_message_clamped_to_one() {
        let mut link = LinkFifo::default();
        link.push(env(0), 0);
        assert_eq!(link.pending_bits(), 1);
        let mut out = Vec::new();
        link.drain_round(1, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn conservation_no_loss_no_duplication() {
        let mut link = LinkFifo::default();
        let n = 100u64;
        for i in 0..n {
            link.push(env(i), 17 + (i % 91));
        }
        let mut out = Vec::new();
        let mut rounds = 0;
        while !link.is_empty() {
            link.drain_round(64, &mut out);
            rounds += 1;
            assert!(rounds < 10_000, "link failed to drain");
        }
        assert_eq!(out.len(), n as usize);
        let mut seen: Vec<u64> = out.iter().map(|e| e.seq).collect();
        seen.dedup();
        assert_eq!(seen.len(), n as usize);
    }

    fn lossy_link(per_mille: u16, max_retries: u32, seed: u64) -> LinkFifo<u64> {
        LinkFifo::lossy(LossConfig { per_mille, max_retries, seed, src: 0, dst: 1 })
    }

    #[test]
    fn lossless_loss_config_is_inert() {
        let mut link = lossy_link(0, 3, 7);
        link.push(env(0), 64);
        let mut out = Vec::new();
        link.drain_round(512, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(link.dropped(), 0);
        assert!(!link.is_down());
    }

    #[test]
    fn drops_retransmit_and_eventually_deliver() {
        // Moderate loss, generous retries: everything must get through,
        // with the retransmission bill recorded.
        let mut link = lossy_link(300, 64, 11);
        let n = 50u64;
        for i in 0..n {
            link.push(env(i), 64);
        }
        let mut out = Vec::new();
        let mut rounds = 0;
        while !link.is_empty() {
            link.drain_round(128, &mut out);
            rounds += 1;
            assert!(rounds < 10_000, "lossy link failed to drain");
            assert!(!link.is_down());
        }
        assert_eq!(out.len(), n as usize, "retries must deliver every message");
        let seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..n).collect::<Vec<_>>(), "FIFO order survives retransmission");
        assert!(link.dropped() > 0, "30% loss over 50 messages must drop something");
        assert_eq!(link.retransmitted_bits(), link.dropped() * 64);
    }

    #[test]
    fn retry_exhaustion_takes_the_link_down() {
        // Certain loss: the first message burns its retries and the link
        // dies without delivering anything.
        let mut link = lossy_link(1000, 2, 3);
        link.push(env(0), 64);
        link.push(env(1), 64);
        let mut out = Vec::new();
        for _ in 0..10 {
            link.drain_round(512, &mut out);
        }
        assert!(out.is_empty());
        assert!(link.is_down());
        assert!(!link.is_empty(), "the undeliverable message stays queued");
        assert_eq!(link.pending_bits(), 128, "backlog accounting stays truthful");
        // A dead link never delivers, however often it is drained.
        link.drain_round(u64::MAX / 2, &mut out);
        assert!(out.is_empty());
    }

    fn armed_link(corrupt_per_mille: u16, seed: u64) -> LinkFifo<u64> {
        LinkFifo::default().with_integrity(IntegrityConfig {
            corrupt_per_mille,
            seed,
            src: 0,
            dst: 1,
        })
    }

    #[test]
    fn clean_armed_link_verifies_every_delivery() {
        let mut link = armed_link(0, 7);
        for i in 0..20 {
            link.push(env(i), 64);
        }
        let mut out = Vec::new();
        while !link.is_empty() {
            link.drain_round(256, &mut out);
        }
        assert_eq!(out.len(), 20);
        assert_eq!(link.digests_verified(), 20);
        assert!(!link.integrity_violated());
        assert!(out.iter().all(|e| e.digest != 0), "every envelope is stamped");
        let seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn corruption_is_caught_at_delivery_and_stops_the_link() {
        // Certain corruption: the very first delivery must mismatch.
        let mut link = armed_link(1000, 3);
        link.push(env(0), 64);
        link.push(env(1), 64);
        let mut out = Vec::new();
        for _ in 0..5 {
            link.drain_round(512, &mut out);
        }
        assert!(out.is_empty(), "a poisoned payload is never delivered");
        assert!(link.integrity_violated());
        assert_eq!(link.digests_verified(), 0);
    }

    #[test]
    fn corruption_draws_are_deterministic_and_seeded() {
        let run = |per_mille: u16, seed: u64| {
            let mut link = armed_link(per_mille, seed);
            for i in 0..60 {
                link.push(env(i), 64);
            }
            let mut out = Vec::new();
            for _ in 0..200 {
                link.drain_round(256, &mut out);
            }
            (out.len(), link.integrity_violated())
        };
        assert_eq!(run(200, 9), run(200, 9), "same link, same seed: same corruption");
        assert!(run(200, 9).1, "20% corruption over 60 messages must hit");
        assert!(!run(0, 9).1, "a verify-only link never violates");
        // Loss and integrity compose: a lossy + armed link still verifies
        // the messages that survive retransmission.
        let mut link = LinkFifo::lossy(LossConfig {
            per_mille: 300,
            max_retries: 64,
            seed: 11,
            src: 0,
            dst: 1,
        })
        .with_integrity(IntegrityConfig {
            corrupt_per_mille: 0,
            seed: 11,
            src: 0,
            dst: 1,
        });
        for i in 0..30 {
            link.push(env(i), 64);
        }
        let mut out = Vec::new();
        while !link.is_empty() {
            link.drain_round(256, &mut out);
        }
        assert_eq!(out.len(), 30);
        assert_eq!(link.digests_verified(), 30);
        assert!(link.dropped() > 0);
        assert!(!link.integrity_violated());
    }

    #[test]
    fn loss_draws_are_deterministic_and_per_link() {
        let run = |src: MachineId, dst: MachineId, seed: u64| {
            let mut link: LinkFifo<u64> =
                LinkFifo::lossy(LossConfig { per_mille: 400, max_retries: 64, seed, src, dst });
            for i in 0..40 {
                link.push(env(i), 64);
            }
            let mut out = Vec::new();
            while !link.is_empty() {
                link.drain_round(256, &mut out);
            }
            link.dropped()
        };
        assert_eq!(run(0, 1, 9), run(0, 1, 9), "same link, same seed: same drops");
        // Different links and different seeds draw different streams (these
        // particular values differ; equality would mean the hash ignores
        // its inputs).
        assert!(
            run(0, 1, 9) != run(1, 0, 9) || run(0, 1, 9) != run(0, 2, 9),
            "link identity must enter the loss hash"
        );
        assert!(
            run(0, 1, 9) != run(0, 1, 10) || run(0, 1, 9) != run(0, 1, 11),
            "the seed must enter the loss hash"
        );
    }
}
