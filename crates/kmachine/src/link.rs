//! Bandwidth-limited links.
//!
//! Each ordered pair of machines `(u, v)` has a dedicated link modeled as a
//! store-and-forward FIFO. A message of `s` bits sent in round `r` starts
//! transmitting in the transition to round `r + 1`; every transition drains
//! at most `B` bits from the queue. A message is delivered in the round in
//! which its last bit drains, so an `s`-bit message on an idle link arrives
//! at round `r + ⌈s / B⌉` and a backlogged link delays it further. This is
//! exactly the accounting that makes the "simple method" baseline of the
//! paper cost `Θ(ℓ)` rounds.

use std::collections::VecDeque;

use crate::message::Envelope;

/// FIFO state of one ordered link.
#[derive(Debug)]
pub struct LinkFifo<M> {
    queue: VecDeque<(Envelope<M>, u64)>,
    pending_bits: u64,
}

impl<M> Default for LinkFifo<M> {
    fn default() -> Self {
        LinkFifo { queue: VecDeque::new(), pending_bits: 0 }
    }
}

impl<M> LinkFifo<M> {
    /// Enqueue a message whose wire size is `bits` (clamped to ≥ 1).
    pub fn push(&mut self, env: Envelope<M>, bits: u64) {
        let bits = bits.max(1);
        self.pending_bits += bits;
        self.queue.push_back((env, bits));
    }

    /// Drain one round's worth of budget, appending fully-transmitted
    /// messages to `out`. Partial progress on the head message is retained.
    ///
    /// Idle links return immediately — the engines additionally use
    /// [`LinkFifo::is_empty`] to skip them without a call at all, so a
    /// mostly-quiet k² lattice costs one flag check per link per round.
    pub fn drain_round(&mut self, mut budget: u64, out: &mut Vec<Envelope<M>>) {
        if self.queue.is_empty() {
            return;
        }
        while budget > 0 {
            let Some(front) = self.queue.front_mut() else { break };
            if front.1 <= budget {
                budget -= front.1;
                self.pending_bits -= front.1;
                let (env, _) = self.queue.pop_front().expect("front exists");
                out.push(env);
            } else {
                front.1 -= budget;
                self.pending_bits -= budget;
                break;
            }
        }
    }

    /// Bits still queued (including partially-transmitted head).
    #[inline]
    pub fn pending_bits(&self) -> u64 {
        self.pending_bits
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(seq: u64) -> Envelope<u64> {
        Envelope { src: 0, dst: 1, sent_round: 0, seq, msg: seq }
    }

    #[test]
    fn small_messages_fit_in_one_round() {
        let mut link = LinkFifo::default();
        link.push(env(0), 64);
        link.push(env(1), 64);
        let mut out = Vec::new();
        link.drain_round(512, &mut out);
        assert_eq!(out.len(), 2);
        assert!(link.is_empty());
        assert_eq!(link.pending_bits(), 0);
    }

    #[test]
    fn big_message_takes_multiple_rounds() {
        let mut link = LinkFifo::default();
        link.push(env(0), 1000);
        let mut out = Vec::new();
        link.drain_round(512, &mut out);
        assert!(out.is_empty());
        assert_eq!(link.pending_bits(), 488);
        link.drain_round(512, &mut out);
        assert_eq!(out.len(), 1);
        assert!(link.is_empty());
    }

    #[test]
    fn budget_spans_messages_cut_through() {
        let mut link = LinkFifo::default();
        link.push(env(0), 300);
        link.push(env(1), 300);
        link.push(env(2), 300);
        let mut out = Vec::new();
        // Round 1: 300 + 212 of the second message.
        link.drain_round(512, &mut out);
        assert_eq!(out.len(), 1);
        // Round 2: remaining 88 + 300 of the third + leftover budget unused.
        link.drain_round(512, &mut out);
        assert_eq!(out.len(), 3);
        assert!(link.is_empty());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut link = LinkFifo::default();
        for i in 0..10 {
            link.push(env(i), 64);
        }
        let mut out = Vec::new();
        while !link.is_empty() {
            link.drain_round(128, &mut out);
        }
        let seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_bit_message_clamped_to_one() {
        let mut link = LinkFifo::default();
        link.push(env(0), 0);
        assert_eq!(link.pending_bits(), 1);
        let mut out = Vec::new();
        link.drain_round(1, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn conservation_no_loss_no_duplication() {
        let mut link = LinkFifo::default();
        let n = 100u64;
        for i in 0..n {
            link.push(env(i), 17 + (i % 91));
        }
        let mut out = Vec::new();
        let mut rounds = 0;
        while !link.is_empty() {
            link.drain_round(64, &mut out);
            rounds += 1;
            assert!(rounds < 10_000, "link failed to drain");
        }
        assert_eq!(out.len(), n as usize);
        let mut seen: Vec<u64> = out.iter().map(|e| e.seq).collect();
        seen.dedup();
        assert_eq!(seen.len(), n as usize);
    }
}
