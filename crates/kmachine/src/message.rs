//! Message envelopes.

/// Index of a machine, in `0..k`.
///
/// The k-machine model gives machines distinct identifiers; this simulator
/// exposes them as dense indices.
pub type MachineId = usize;

/// Wire size in bits of the framing a batched key message carries on top of
/// its keys: a 32-bit element count plus a 1-bit "last chunk" flag.
///
/// Both sides of the size accounting use this constant — protocols charge it
/// in [`crate::Payload::size_bits`], and runners subtract it from the link
/// budget when sizing chunks so that one batch fills exactly one link-round.
pub const ENVELOPE_HEADER_BITS: u64 = 33;

/// A message in flight: payload plus routing metadata.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sender.
    pub src: MachineId,
    /// Receiver.
    pub dst: MachineId,
    /// Round in which the sender handed this to the network.
    pub sent_round: u64,
    /// Per-sender monotone sequence number; with `src` it gives every
    /// delivery a deterministic total order, so both engines present
    /// identical inboxes.
    pub seq: u64,
    /// Link-layer integrity digest: a chained per-link digest stamped by
    /// the sending link at push and verified at delivery (see
    /// [`crate::link::LinkFifo`]). Zero until stamped, and left zero
    /// entirely when the run has no [`crate::config::AdversaryPlan`] — the
    /// integrity machinery is armed only for adversarial runs so honest
    /// runs pay nothing.
    pub digest: u64,
    /// The protocol payload.
    pub msg: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_plain_data() {
        let e = Envelope { src: 1, dst: 2, sent_round: 3, seq: 4, digest: 0, msg: 5u64 };
        let f = e.clone();
        assert_eq!(f.src, 1);
        assert_eq!(f.dst, 2);
        assert_eq!(f.sent_round, 3);
        assert_eq!(f.seq, 4);
        assert_eq!(f.digest, 0);
        assert_eq!(f.msg, 5);
    }
}
