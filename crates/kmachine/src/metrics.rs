//! Run accounting: rounds, messages, bits.

use serde::{Deserialize, Serialize};

/// Exact communication costs of one protocol run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Number of communication rounds used: the index of the last round in
    /// which any machine was still executing. A protocol that never
    /// communicates finishes in round 0 and reports `rounds == 0`.
    pub rounds: u64,
    /// Total messages handed to the network.
    pub messages: u64,
    /// Total payload bits handed to the network (each message ≥ 1 bit).
    pub bits: u64,
    /// Messages sent by each machine.
    pub sends_per_machine: Vec<u64>,
    /// Largest backlog (queued bits) observed on any single link at any
    /// round boundary. Zero when bandwidth is unlimited or never exceeded.
    pub max_link_backlog_bits: u64,
    /// Messages that arrived at a machine after it had already produced its
    /// output (they are discarded; a nonzero value is normal for protocols
    /// whose completion broadcast races with stragglers).
    pub delivered_after_done: u64,
}

impl RunMetrics {
    /// New zeroed metrics for `k` machines.
    pub fn new(k: usize) -> Self {
        RunMetrics { sends_per_machine: vec![0; k], ..Default::default() }
    }

    /// Record one send.
    #[inline]
    pub fn on_send(&mut self, src: usize, bits: u64) {
        self.messages += 1;
        self.bits += bits.max(1);
        self.sends_per_machine[src] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_accounting() {
        let mut m = RunMetrics::new(3);
        m.on_send(0, 64);
        m.on_send(0, 0); // clamped
        m.on_send(2, 100);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bits, 64 + 1 + 100);
        assert_eq!(m.sends_per_machine, vec![2, 0, 1]);
    }

    #[test]
    fn serializes_to_json() {
        let m = RunMetrics::new(2);
        let s = serde_json::to_string(&m).unwrap();
        assert!(s.contains("\"rounds\":0"));
    }
}
