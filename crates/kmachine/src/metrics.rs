//! Run accounting: rounds, messages, bits.

use serde::{Deserialize, Serialize};

/// Communication totals attributed to one multiplexing tag (one protocol
/// instance inside a [`crate::mux::MuxProtocol`] run).
///
/// Rounds are a property of the whole run, not of a single instance — the
/// instances share every link — so per-tag accounting covers messages and
/// bits; per-instance completion rounds are reported by
/// [`crate::mux::MuxOutput::done_round`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagMetrics {
    /// Messages sent carrying this tag.
    pub messages: u64,
    /// Payload bits sent carrying this tag (tag framing included).
    pub bits: u64,
}

/// Pipelining observability of one relaxed-delivery event-engine run.
///
/// Skew is how far a machine's executing round ran **ahead of its slowest
/// peer's published transport** at the moment the round became ready —
/// exactly the overlap that exact delivery forbids (under
/// [`crate::config::DeliveryMode::Exact`] the readiness rule forces it to
/// zero, so these counters are reported only by relaxed runs; the lockstep
/// engines leave the struct empty). Carried on
/// [`crate::RunOutcome::skew`], *not* inside [`RunMetrics`]: the
/// engine-equivalence contract — identical outputs and identical
/// `RunMetrics` in every engine and delivery mode — stays byte-exact,
/// while the wall-clock-shape evidence lives here.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewMetrics {
    /// Per-machine maximum of `executing round − min peer published round`,
    /// indexed by machine id. Empty unless a relaxed event run recorded it.
    pub max_skew_per_machine: Vec<u64>,
    /// Cluster-wide maximum skew; > 1 proves multi-round pipelining that
    /// exact delivery cannot express.
    pub max_skew: u64,
    /// Rounds executed with a quiescence promise standing in for at least
    /// one peer's unpublished transport.
    pub promised_rounds: u64,
    /// Promise-horizon extensions published across all machines (a done
    /// machine draining its backlog publishes one `u64::MAX` horizon; a
    /// [`crate::Protocol::quiet_until`] horizon counts each time it grows).
    pub promises_published: u64,
}

impl SkewMetrics {
    /// New zeroed skew counters for `k` machines (marks the run as having
    /// tracked skew, unlike the empty [`Default`]).
    pub fn new(k: usize) -> Self {
        SkewMetrics { max_skew_per_machine: vec![0; k], ..Default::default() }
    }

    /// Whether this run tracked skew at all (relaxed event runs do; the
    /// lockstep engines and exact event runs return an empty struct).
    pub fn tracked(&self) -> bool {
        !self.max_skew_per_machine.is_empty()
    }
}

/// Realized-fault accounting of one run under a
/// [`crate::config::FaultPlan`].
///
/// Carried on [`crate::RunOutcome::faults`], *not* inside [`RunMetrics`],
/// for the same reason as [`SkewMetrics`]: the engine-equivalence contract
/// compares `RunMetrics` byte-for-byte across engines, and retransmission
/// traffic is fault-layer bookkeeping, not protocol cost — the protocol's
/// bill stays identical whether or not the network dropped and re-sent
/// under it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMetrics {
    /// Machines that executed their scheduled crash during this run,
    /// ascending. Empty in a fault-free (or crash-free) run.
    pub crashed: Vec<usize>,
    /// Messages dropped by lossy links (each drop triggers a
    /// retransmission until the retry budget runs out).
    pub dropped_messages: u64,
    /// Bits re-transmitted after drops (charged to the fault layer, not to
    /// [`RunMetrics::bits`]).
    pub retransmitted_bits: u64,
}

impl FaultMetrics {
    /// True when the run realized at least one injected fault (a crash or
    /// a dropped message; stragglers are wall-clock-only and show up in
    /// [`SkewMetrics`] instead).
    pub fn any(&self) -> bool {
        !self.crashed.is_empty() || self.dropped_messages > 0
    }
}

/// Realized-recovery accounting of one run under a
/// [`crate::config::RecoveryPlan`].
///
/// Carried on [`crate::RunOutcome::recovery`], *not* inside [`RunMetrics`],
/// for the same reason as [`FaultMetrics`]: checkpointing and replay are
/// recovery-layer bookkeeping — the protocol's communication bill stays
/// identical whether or not a machine paused and caught back up under it —
/// so the cross-engine `RunMetrics` equality asserts survive unchanged.
/// The recovery realization itself is deterministic too: the same plan
/// yields byte-identical `RecoveryMetrics` on every engine.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryMetrics {
    /// Checkpoints recorded across all machines in the rejoin plan (the
    /// implicit pristine round-0 snapshot counts as one).
    pub checkpoints: u64,
    /// Total serialized bytes of all recorded checkpoint blobs.
    pub checkpoint_bytes: u64,
    /// Rounds re-executed from retained transports during rejoins.
    pub replayed_rounds: u64,
    /// Machines that completed a crash-then-rejoin cycle, ascending.
    pub rejoined: Vec<usize>,
}

impl RecoveryMetrics {
    /// True when the run realized at least one recovery action (a
    /// checkpoint, a replayed round, or a completed rejoin).
    pub fn any(&self) -> bool {
        self.checkpoints > 0 || self.replayed_rounds > 0 || !self.rejoined.is_empty()
    }
}

/// Byzantine-audit accounting of one run (and, in `knn-core`, of one
/// query's quarantine-and-retry loop) under a
/// [`crate::config::AdversaryPlan`].
///
/// Carried on [`crate::RunOutcome::audit`], *not* inside [`RunMetrics`],
/// for the same reason as [`FaultMetrics`]: integrity verification and
/// semantic auditing are defense-layer bookkeeping — the protocol's
/// communication bill stays identical whether or not anyone was checking —
/// so the cross-engine `RunMetrics` equality asserts survive unchanged.
/// The audit realization is deterministic: the same plan yields
/// byte-identical `AuditMetrics` on every engine and at every pool size.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditMetrics {
    /// Messages whose chained link digest was verified at delivery (zero
    /// when the run had no adversary plan — integrity is armed only then).
    pub digests_verified: u64,
    /// Digest mismatches caught at delivery. At the engine layer a
    /// violation aborts the run with
    /// [`crate::EngineError::IntegrityViolation`], so a single run reports
    /// at most the violations it died on; the query layer accumulates them
    /// across its quarantine retries.
    pub integrity_violations: u64,
    /// Semantic audit passes run by the query layer (leader recomputation
    /// of claimed contributions against the shard-local oracles).
    pub audits_run: u64,
    /// Machines quarantined out of the run by failed audits or integrity
    /// violations.
    pub suspects_quarantined: u64,
}

impl AuditMetrics {
    /// True when the run recorded any audit activity at all.
    pub fn any(&self) -> bool {
        self.digests_verified > 0
            || self.integrity_violations > 0
            || self.audits_run > 0
            || self.suspects_quarantined > 0
    }
}

/// Exact communication costs of one protocol run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Number of communication rounds used: the index of the last round in
    /// which any machine was still executing. A protocol that never
    /// communicates finishes in round 0 and reports `rounds == 0`.
    pub rounds: u64,
    /// Total messages handed to the network.
    pub messages: u64,
    /// Total payload bits handed to the network (each message ≥ 1 bit).
    pub bits: u64,
    /// Messages sent by each machine.
    pub sends_per_machine: Vec<u64>,
    /// Largest backlog (queued bits) observed on any single link at any
    /// round boundary. Zero when bandwidth is unlimited or never exceeded.
    pub max_link_backlog_bits: u64,
    /// Messages that arrived at a machine after it had already produced its
    /// output (they are discarded; a nonzero value is normal for protocols
    /// whose completion broadcast races with stragglers).
    pub delivered_after_done: u64,
    /// Per-tag message and bit totals, indexed by multiplexing tag. Empty
    /// unless the protocol's payload reports [`crate::Payload::mux_tag`]s
    /// (i.e. the run multiplexed several instances over shared links).
    pub per_tag: Vec<TagMetrics>,
}

impl RunMetrics {
    /// New zeroed metrics for `k` machines.
    pub fn new(k: usize) -> Self {
        RunMetrics { sends_per_machine: vec![0; k], ..Default::default() }
    }

    /// Record one send; `tag` attributes it to a multiplexed instance.
    #[inline]
    pub fn on_send(&mut self, src: usize, bits: u64, tag: Option<u32>) {
        let bits = bits.max(1);
        self.messages += 1;
        self.bits += bits;
        self.sends_per_machine[src] += 1;
        if let Some(tag) = tag {
            self.on_tagged(tag, bits);
        }
    }

    /// Attribute `bits` (one message) to `tag`, growing the table on demand.
    #[inline]
    pub fn on_tagged(&mut self, tag: u32, bits: u64) {
        let idx = tag as usize;
        if idx >= self.per_tag.len() {
            self.per_tag.resize(idx + 1, TagMetrics::default());
        }
        self.per_tag[idx].messages += 1;
        self.per_tag[idx].bits += bits;
    }

    /// Totals attributed to `tag` (zeros when the tag never sent).
    #[inline]
    pub fn tag(&self, tag: u32) -> TagMetrics {
        self.per_tag.get(tag as usize).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_accounting() {
        let mut m = RunMetrics::new(3);
        m.on_send(0, 64, None);
        m.on_send(0, 0, None); // clamped
        m.on_send(2, 100, None);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bits, 64 + 1 + 100);
        assert_eq!(m.sends_per_machine, vec![2, 0, 1]);
        assert!(m.per_tag.is_empty());
    }

    #[test]
    fn tagged_sends_are_attributed() {
        let mut m = RunMetrics::new(2);
        m.on_send(0, 64, Some(2));
        m.on_send(1, 32, Some(0));
        m.on_send(1, 16, Some(2));
        m.on_send(0, 8, None);
        assert_eq!(m.messages, 4);
        assert_eq!(m.bits, 64 + 32 + 16 + 8);
        assert_eq!(m.per_tag.len(), 3);
        assert_eq!(m.tag(0), TagMetrics { messages: 1, bits: 32 });
        assert_eq!(m.tag(1), TagMetrics::default());
        assert_eq!(m.tag(2), TagMetrics { messages: 2, bits: 80 });
        assert_eq!(m.tag(9), TagMetrics::default());
        // Tagged traffic is a subset of the aggregate totals.
        let tagged_bits: u64 = m.per_tag.iter().map(|t| t.bits).sum();
        assert!(tagged_bits <= m.bits);
    }

    #[test]
    fn serializes_to_json() {
        let m = RunMetrics::new(2);
        let s = serde_json::to_string(&m).unwrap();
        assert!(s.contains("\"rounds\":0"));
    }

    #[test]
    fn fault_metrics_flag_realized_faults() {
        let mut f = FaultMetrics::default();
        assert!(!f.any());
        f.dropped_messages = 1;
        f.retransmitted_bits = 64;
        assert!(f.any());
        let f = FaultMetrics { crashed: vec![2], ..Default::default() };
        assert!(f.any());
    }

    #[test]
    fn recovery_metrics_flag_realized_recoveries() {
        let mut r = RecoveryMetrics::default();
        assert!(!r.any());
        r.checkpoints = 2;
        r.checkpoint_bytes = 48;
        assert!(r.any());
        let r = RecoveryMetrics { rejoined: vec![1], ..Default::default() };
        assert!(r.any());
        let s = serde_json::to_string(&r).unwrap();
        assert!(s.contains("\"rejoined\":[1]"));
    }

    #[test]
    fn audit_metrics_flag_realized_audits() {
        let mut a = AuditMetrics::default();
        assert!(!a.any());
        a.digests_verified = 12;
        assert!(a.any());
        let a = AuditMetrics { suspects_quarantined: 1, ..Default::default() };
        assert!(a.any());
        let s = serde_json::to_string(&a).unwrap();
        assert!(s.contains("\"suspects_quarantined\":1"));
    }

    #[test]
    fn skew_tracking_is_explicit() {
        assert!(!SkewMetrics::default().tracked());
        let mut s = SkewMetrics::new(3);
        assert!(s.tracked());
        assert_eq!(s.max_skew_per_machine, vec![0, 0, 0]);
        s.max_skew_per_machine[1] = 4;
        s.max_skew = 4;
        assert_eq!(s.max_skew, *s.max_skew_per_machine.iter().max().unwrap());
    }
}
