//! Protocol multiplexing: m instances of one protocol over one engine run.
//!
//! The k-machine model charges per round and per link, so running q queries
//! as q separate engine runs pays q times every fixed cost: leader election,
//! round-0 scheduling, completion broadcasts. [`MuxProtocol`] instead runs m
//! instances of any [`Protocol`] *concurrently* on each machine: messages are
//! wrapped in [`Tagged`] envelopes carrying a 32-bit instance tag, share the
//! same link FIFOs, and compete for the same per-link bandwidth `B` — real
//! query pipelining, with the contention accounted rather than assumed away.
//!
//! Determinism: each instance gets its own RNG stream (derived from the
//! machine RNG at round 0) and its own send-sequence counter, and instances
//! execute in tag order every round — so a multiplexed run is a pure
//! function of `(protocols, seed)` on both engines, exactly like a solo run.
//!
//! Attribution: the engines split message/bit totals by tag into
//! [`RunMetrics::per_tag`](crate::RunMetrics::per_tag) (via
//! [`Payload::mux_tag`]), and [`MuxOutput::done_round`] records the round in
//! which each instance finished on each machine, so per-query costs survive
//! the sharing.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::ctx::Ctx;
use crate::message::Envelope;
use crate::payload::Payload;
use crate::protocol::{Protocol, Step};
use crate::snapshot::{SnapshotReader, SnapshotWriter};

/// Wire size of the multiplexing tag prepended to every tagged message.
pub const MUX_TAG_BITS: u64 = 32;

/// A payload wrapped with the instance tag that owns it.
#[derive(Debug, Clone)]
pub struct Tagged<M> {
    /// Index of the protocol instance this message belongs to.
    pub tag: u32,
    /// The instance's own payload.
    pub msg: M,
}

impl<M: Payload> Payload for Tagged<M> {
    fn size_bits(&self) -> u64 {
        MUX_TAG_BITS + self.msg.size_bits()
    }

    fn mux_tag(&self) -> Option<u32> {
        Some(self.tag)
    }

    /// A lying mux machine lies in every instance: tampering passes through
    /// to the inner payload (the tag itself is never perturbed — a wrong
    /// *value* inside the right instance, per the [`Payload::tamper`]
    /// contract).
    fn tamper(&mut self, word: u64) -> bool {
        self.msg.tamper(word)
    }
}

/// Per-machine output of a multiplexed run.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct MuxOutput<T> {
    /// Instance outputs, indexed by tag. `None` marks an instance **lost to
    /// a crash**: the machine went down mid-batch and that instance had
    /// neither finished nor could its [`Protocol::on_crash`] hook salvage
    /// an answer. A fault-free (or fully salvaged) run is all `Some`;
    /// callers re-plan only the `None` holes instead of retrying the whole
    /// batch.
    pub outputs: Vec<Option<T>>,
    /// Round in which each instance produced its output on this machine
    /// (0 for instances lost to a crash).
    pub done_round: Vec<u64>,
}

/// One instance plus its private determinism state. The protocol value is
/// kept after the instance finishes (`live == false`) — never stepped
/// again, but [`MuxProtocol::restore`] needs a body to rebuild when a
/// checkpoint predates the instance's completion.
struct Slot<P> {
    proto: P,
    rng: StdRng,
    seq: u64,
    live: bool,
}

/// Runs m instances of `P` as one protocol, multiplexing their messages
/// over the shared links. See the [module docs](self) for the semantics.
///
/// The machine is done when *all* of its instances are done; messages
/// addressed to an already-finished instance are discarded, mirroring the
/// engine's treatment of messages delivered to finished machines.
pub struct MuxProtocol<P: Protocol> {
    slots: Vec<Slot<P>>,
    outputs: Vec<Option<P::Output>>,
    done_round: Vec<u64>,
    remaining: usize,
    /// Per-tag demux buffers, cleared and refilled every round — kept in the
    /// struct so the per-round hot path reuses their allocations instead of
    /// building m fresh `Vec`s per machine per round.
    parts: Vec<Vec<Envelope<P::Msg>>>,
    /// Scratch outbox handed to each instance's inner `Ctx`, same reuse.
    inner_outbox: Vec<Envelope<P::Msg>>,
}

impl<P: Protocol> MuxProtocol<P> {
    /// Multiplex `instances` (tag = position) over one engine run.
    ///
    /// Every machine of the run must be handed the same number of instances
    /// in the same tag order; tags above `u32::MAX` are rejected.
    pub fn new(instances: Vec<P>) -> Self {
        assert!(
            u32::try_from(instances.len().saturating_sub(1)).is_ok(),
            "mux tags are 32-bit: {} instances is too many",
            instances.len()
        );
        let m = instances.len();
        MuxProtocol {
            // RNG streams are derived lazily in round 0 from the machine
            // RNG; a placeholder seed keeps the slot layout simple.
            slots: instances
                .into_iter()
                .map(|proto| Slot { proto, rng: StdRng::seed_from_u64(0), seq: 0, live: true })
                .collect(),
            outputs: (0..m).map(|_| None).collect(),
            done_round: vec![0; m],
            remaining: m,
            parts: (0..m).map(|_| Vec::new()).collect(),
            inner_outbox: Vec::new(),
        }
    }

    /// Number of multiplexed instances.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when multiplexing zero instances.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl<P: Protocol> Protocol for MuxProtocol<P> {
    type Msg = Tagged<P::Msg>;
    type Output = MuxOutput<P::Output>;

    /// A mux machine pipelines its instances' quiet phases too: it opts
    /// into relaxed delivery exactly when its inner protocol does.
    const QUIET_AWARE: bool = P::QUIET_AWARE;

    /// A mux machine is silent only when **all** of its instances are: the
    /// aggregated horizon is the minimum over the live instances' declared
    /// horizons (one undeclared instance vetoes the promise), and finished
    /// instances are silent forever.
    fn quiet_until(&self) -> Option<u64> {
        let mut horizon = u64::MAX;
        for slot in self.slots.iter().filter(|s| s.live) {
            match slot.proto.quiet_until() {
                None => return None,
                Some(q) => horizon = horizon.min(q),
            }
        }
        Some(horizon)
    }

    /// Per-instance crash salvage: a crashed mux machine always accounts
    /// for its batch, instance by instance. Finished instances keep their
    /// outputs, still-live instances get one [`Protocol::on_crash`] call
    /// each, and instances that can salvage nothing become `None` holes in
    /// [`MuxOutput::outputs`] — so callers re-plan exactly the lost
    /// queries instead of failing (and retrying) the whole batch.
    fn on_crash(&mut self) -> Option<Self::Output> {
        let mut outputs = Vec::with_capacity(self.slots.len());
        for (tag, slot) in self.slots.iter_mut().enumerate() {
            if slot.live {
                outputs.push(slot.proto.on_crash());
            } else {
                outputs.push(Some(self.outputs[tag].take().expect("done instance has output")));
            }
        }
        Some(MuxOutput { outputs, done_round: std::mem::take(&mut self.done_round) })
    }

    /// Snapshot every instance: finished ones as a done marker (their
    /// output survives the crash inside this same value and is re-certified
    /// by [`MuxProtocol::restore`]), live ones as their inner checkpoint
    /// blob plus the per-instance RNG state and send-sequence counter. One
    /// live instance without checkpoint support makes the whole machine
    /// unsnapshottable (`None`).
    fn checkpoint(&self) -> Option<Vec<u8>> {
        let mut w = SnapshotWriter::new();
        w.u64(self.slots.len() as u64);
        for slot in &self.slots {
            w.flag(slot.live);
            if slot.live {
                w.bytes(&slot.proto.checkpoint()?);
                for word in slot.rng.to_state() {
                    w.u64(word);
                }
                w.u64(slot.seq);
            }
        }
        Some(w.finish())
    }

    /// Rebuild the batch from a [`MuxProtocol::checkpoint`] blob. Instances
    /// the blob marks live are rewound — inner state restored, RNG stream
    /// and sequence counter reset, any post-checkpoint output discarded (the
    /// replay recomputes it). Instances the blob marks done must already
    /// hold their output (completion is monotone: a checkpoint never knows
    /// *more* finished instances than the state being restored), and keep
    /// it.
    fn restore(&mut self, blob: &[u8]) -> bool {
        let mut r = SnapshotReader::new(blob);
        if r.u64() != Some(self.slots.len() as u64) {
            return false;
        }
        let mut remaining = 0usize;
        for (tag, slot) in self.slots.iter_mut().enumerate() {
            let Some(live) = r.flag() else { return false };
            if live {
                let Some(inner) = r.bytes() else { return false };
                if !slot.proto.restore(inner) {
                    return false;
                }
                let mut state = [0u64; 4];
                for word in &mut state {
                    let Some(v) = r.u64() else { return false };
                    *word = v;
                }
                let Some(seq) = r.u64() else { return false };
                slot.rng = StdRng::from_state(state);
                slot.seq = seq;
                slot.live = true;
                self.outputs[tag] = None;
                self.done_round[tag] = 0;
                remaining += 1;
            } else if slot.live || self.outputs[tag].is_none() {
                // The blob claims this instance was done at checkpoint time
                // but the state being restored has no output for it — the
                // blob cannot belong to this run.
                return false;
            }
        }
        if !r.done() {
            return false;
        }
        self.remaining = remaining;
        true
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, Tagged<P::Msg>>) -> Step<MuxOutput<P::Output>> {
        let m = self.slots.len();
        if ctx.round() == 0 {
            // Give each instance an independent deterministic RNG stream, so
            // its random choices do not depend on what the *other* instances
            // draw (their consumption interleaves otherwise).
            for slot in self.slots.iter_mut() {
                slot.rng = StdRng::seed_from_u64(ctx.rng().random());
            }
        }

        // Demultiplex this round's inbox by tag into the reused per-tag
        // buffers, preserving the engine's deterministic (src, seq) delivery
        // order within each instance.
        for part in &mut self.parts {
            part.clear();
        }
        for env in ctx.inbox() {
            let tag = env.msg.tag as usize;
            assert!(tag < m, "message for unknown mux tag {tag} (m = {m})");
            if self.slots[tag].live {
                self.parts[tag].push(Envelope {
                    src: env.src,
                    dst: env.dst,
                    sent_round: env.sent_round,
                    seq: env.seq,
                    digest: env.digest,
                    msg: env.msg.msg.clone(),
                });
            }
        }

        let inner_outbox = &mut self.inner_outbox;
        for (tag, part) in self.parts.iter().enumerate() {
            let slot = &mut self.slots[tag];
            if !slot.live {
                continue;
            }
            let step = {
                let mut inner = Ctx {
                    id: ctx.id,
                    k: ctx.k,
                    round: ctx.round,
                    inbox: part,
                    outbox: inner_outbox,
                    rng: &mut slot.rng,
                    next_seq: &mut slot.seq,
                    crash_rounds: ctx.crash_rounds,
                    rejoin_rounds: ctx.rejoin_rounds,
                    // The outer ctx applies the adversary when the instance's
                    // sends are re-wrapped below ([`Tagged::tamper`] passes
                    // the lie through); arming the inner ctx too would
                    // double-tamper.
                    adversary: None,
                };
                slot.proto.on_round(&mut inner)
            };
            // Re-wrap the instance's sends; the outer ctx re-sequences them,
            // which keeps the global (src, seq) order consistent with the
            // tag-ordered execution above.
            for env in inner_outbox.drain(..) {
                ctx.send(env.dst, Tagged { tag: tag as u32, msg: env.msg });
            }
            if let Step::Done(out) = step {
                self.outputs[tag] = Some(out);
                self.done_round[tag] = ctx.round();
                self.slots[tag].live = false;
                self.remaining -= 1;
            }
        }

        if self.remaining == 0 {
            Step::Done(MuxOutput {
                outputs: self
                    .outputs
                    .iter_mut()
                    .map(|o| Some(o.take().expect("all instances done")))
                    .collect(),
                done_round: std::mem::take(&mut self.done_round),
            })
        } else {
            Step::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BandwidthMode, FaultPlan, NetConfig};
    use crate::engine::{run_event, run_sync, run_threaded};

    /// Every non-leader streams `payload` values to machine 0; machine 0
    /// acknowledges once everything arrived and outputs the sum; workers
    /// wait for the ack. The gather contends for bandwidth and the ack
    /// round-trip is pure latency — the mix the real serving protocols have.
    #[derive(Clone)]
    struct StreamSum {
        payload: u64,
        acc: u64,
        finished: usize,
    }

    #[derive(Debug, Clone)]
    enum SsMsg {
        Val(u64),
        Last,
        Ack(u64),
    }
    impl Payload for SsMsg {
        fn size_bits(&self) -> u64 {
            match self {
                SsMsg::Val(_) | SsMsg::Ack(_) => 64,
                SsMsg::Last => 1,
            }
        }
    }

    impl Protocol for StreamSum {
        type Msg = SsMsg;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, SsMsg>) -> Step<u64> {
            if ctx.id() != 0 {
                if ctx.round() == 0 {
                    for v in 1..=self.payload {
                        ctx.send(0, SsMsg::Val(v * ctx.id() as u64));
                    }
                    ctx.send(0, SsMsg::Last);
                    return Step::Continue;
                }
                if let Some(&SsMsg::Ack(total)) = ctx.first_from(0) {
                    return Step::Done(total);
                }
                return Step::Continue;
            }
            if ctx.k() == 1 {
                return Step::Done(0);
            }
            for env in ctx.inbox() {
                match env.msg {
                    SsMsg::Val(v) => self.acc += v,
                    SsMsg::Last => self.finished += 1,
                    SsMsg::Ack(_) => unreachable!("leader never receives an ack"),
                }
            }
            if self.finished == ctx.k() - 1 {
                ctx.broadcast(SsMsg::Ack(self.acc));
                Step::Done(self.acc)
            } else {
                Step::Continue
            }
        }

        fn checkpoint(&self) -> Option<Vec<u8>> {
            let mut w = SnapshotWriter::new();
            w.u64(self.payload);
            w.u64(self.acc);
            w.u64(self.finished as u64);
            Some(w.finish())
        }

        fn restore(&mut self, blob: &[u8]) -> bool {
            let mut r = SnapshotReader::new(blob);
            let (Some(payload), Some(acc), Some(finished)) = (r.u64(), r.u64(), r.u64()) else {
                return false;
            };
            if !r.done() {
                return false;
            }
            self.payload = payload;
            self.acc = acc;
            self.finished = finished as usize;
            true
        }
    }

    fn solo(k: usize, payload: u64, seed: u64) -> crate::engine::RunOutcome<u64> {
        let cfg = NetConfig::new(k)
            .with_seed(seed)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 256 });
        let protos: Vec<StreamSum> =
            (0..k).map(|_| StreamSum { payload, acc: 0, finished: 0 }).collect();
        run_sync(&cfg, protos).unwrap()
    }

    fn mux_fleet(k: usize, payloads: &[u64]) -> Vec<MuxProtocol<StreamSum>> {
        (0..k)
            .map(|_| {
                MuxProtocol::new(
                    payloads
                        .iter()
                        .map(|&p| StreamSum { payload: p, acc: 0, finished: 0 })
                        .collect(),
                )
            })
            .collect()
    }

    fn muxed(k: usize, payloads: &[u64], seed: u64) -> crate::engine::RunOutcome<MuxOutput<u64>> {
        let cfg = NetConfig::new(k)
            .with_seed(seed)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 256 });
        run_sync(&cfg, mux_fleet(k, payloads)).unwrap()
    }

    #[test]
    fn instances_match_solo_runs_under_bandwidth_enforcement() {
        let k = 4;
        let payloads = [3u64, 10, 1];
        let out = muxed(k, &payloads, 7);
        for (tag, &p) in payloads.iter().enumerate() {
            let want = solo(k, p, 7);
            assert_eq!(
                out.outputs[0].outputs[tag],
                Some(want.outputs[0]),
                "instance {tag} diverged from its solo run"
            );
        }
    }

    #[test]
    fn mux_is_deterministic_and_engine_agnostic() {
        let k = 3;
        let payloads = [5u64, 2, 8, 1];
        let mk = || {
            (0..k)
                .map(|_| {
                    MuxProtocol::new(
                        payloads
                            .iter()
                            .map(|&p| StreamSum { payload: p, acc: 0, finished: 0 })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let cfg = NetConfig::new(k)
            .with_seed(11)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 200 });
        let a = run_sync(&cfg, mk()).unwrap();
        let b = run_sync(&cfg, mk()).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
        let c = run_threaded(&cfg, mk()).unwrap();
        assert_eq!(a.outputs, c.outputs);
        assert_eq!(a.metrics.rounds, c.metrics.rounds);
        assert_eq!(a.metrics.messages, c.metrics.messages);
        assert_eq!(a.metrics.bits, c.metrics.bits);
        assert_eq!(a.metrics.per_tag, c.metrics.per_tag);
        // The event engine lets instances pipeline rounds ahead of each
        // other; the outcome must still be the lockstep one, byte for byte.
        let d = run_event(&cfg, mk()).unwrap();
        assert_eq!(a.outputs, d.outputs);
        assert_eq!(a.metrics, d.metrics);
        // Relaxed delivery additionally lets *machines* pipeline past
        // drained done peers — still the same bytes.
        let relaxed = cfg.with_delivery(crate::config::DeliveryMode::Relaxed).with_event_workers(2);
        let e = run_event(&relaxed, mk()).unwrap();
        assert_eq!(a.outputs, e.outputs);
        assert_eq!(a.metrics, e.metrics);
        assert!(e.skew.tracked());
    }

    /// The per-tag quiet horizon is the minimum over live instances, and
    /// any live undeclared instance vetoes the whole machine's promise.
    #[test]
    fn mux_quiet_horizon_aggregates_across_instances() {
        struct FixedQuiet(Option<u64>);
        impl Protocol for FixedQuiet {
            type Msg = u64;
            type Output = ();
            fn quiet_until(&self) -> Option<u64> {
                self.0
            }
            fn on_round(&mut self, _ctx: &mut Ctx<'_, u64>) -> Step<()> {
                Step::Done(())
            }
        }
        let all_quiet = MuxProtocol::new(vec![FixedQuiet(Some(9)), FixedQuiet(Some(4))]);
        assert_eq!(all_quiet.quiet_until(), Some(4));
        let vetoed = MuxProtocol::new(vec![FixedQuiet(Some(9)), FixedQuiet(None)]);
        assert_eq!(vetoed.quiet_until(), None);
        let empty: MuxProtocol<FixedQuiet> = MuxProtocol::new(Vec::new());
        assert_eq!(empty.quiet_until(), Some(u64::MAX), "nothing left to send, ever");
        // QUIET_AWARE is inherited from the inner protocol (checked at
        // compile time — it is an associated const equal to the inner's).
        const _: () = assert!(!MuxProtocol::<FixedQuiet>::QUIET_AWARE);
    }

    #[test]
    fn per_tag_metrics_partition_the_totals() {
        let k = 4;
        let payloads = [4u64, 9, 2];
        let out = muxed(k, &payloads, 3);
        let m = &out.metrics;
        assert_eq!(m.per_tag.len(), payloads.len());
        assert_eq!(m.per_tag.iter().map(|t| t.messages).sum::<u64>(), m.messages);
        assert_eq!(m.per_tag.iter().map(|t| t.bits).sum::<u64>(), m.bits);
        // Bigger payloads cost proportionally more bits.
        assert!(m.per_tag[1].bits > m.per_tag[0].bits);
        assert!(m.per_tag[0].bits > m.per_tag[2].bits);
        // Each instance: (k-1) senders × (payload Vals + 1 Last), plus the
        // leader's (k-1) ack broadcasts.
        for (tag, &p) in payloads.iter().enumerate() {
            assert_eq!(m.per_tag[tag].messages, (k as u64 - 1) * (p + 2));
        }
    }

    #[test]
    fn pipelining_beats_sequential_rounds() {
        let k = 3;
        let payloads = [6u64; 8];
        let batched = muxed(k, &payloads, 5).metrics.rounds;
        let sequential: u64 = payloads.iter().map(|&p| solo(k, p, 5).metrics.rounds).sum();
        assert!(
            batched < sequential,
            "muxing must amortize rounds: batched {batched} vs sequential {sequential}"
        );
    }

    #[test]
    fn done_rounds_are_monotone_in_fifo_order() {
        let k = 2;
        let payloads = [20u64, 20, 20];
        let out = muxed(k, &payloads, 1);
        let leader: &MuxOutput<u64> = &out.outputs[0];
        // All instances enqueue at round 0 on the same FIFO, so the leader
        // finishes them in tag order.
        assert!(leader.done_round.windows(2).all(|w| w[0] <= w[1]));
        assert!(out.metrics.rounds >= *leader.done_round.last().unwrap());
    }

    #[test]
    fn empty_mux_finishes_immediately() {
        let cfg = NetConfig::new(2);
        let protos: Vec<MuxProtocol<StreamSum>> =
            (0..2).map(|_| MuxProtocol::new(Vec::new())).collect();
        assert!(protos[0].is_empty());
        let out = run_sync(&cfg, protos).unwrap();
        assert_eq!(out.metrics.rounds, 0);
        assert_eq!(out.metrics.messages, 0);
        for o in &out.outputs {
            assert!(o.outputs.is_empty());
        }
    }

    #[test]
    fn tagged_payload_charges_the_tag() {
        let t = Tagged { tag: 3, msg: SsMsg::Val(7) };
        assert_eq!(t.size_bits(), MUX_TAG_BITS + 64);
        assert_eq!(t.mux_tag(), Some(3));
        assert_eq!(SsMsg::Last.mux_tag(), None);
    }

    #[test]
    fn single_instance_mux_matches_solo_answer() {
        let k = 5;
        let out = muxed(k, &[12], 9);
        let want = solo(k, 12, 9);
        assert_eq!(out.outputs[0].outputs[0], Some(want.outputs[0]));
        // One tag owns all traffic.
        assert_eq!(out.metrics.per_tag.len(), 1);
        assert_eq!(out.metrics.per_tag[0].messages, out.metrics.messages);
    }

    #[test]
    fn mux_crash_then_rejoin_matches_fault_free_run() {
        let k = 3;
        let payloads = [2u64, 9, 4];
        let clean = muxed(k, &payloads, 13);
        // Crash round 2 lands after the short tag finishes on the worker, so
        // the checkpoint carries a mix of done and live instances and the
        // restore exercises both the rewind and the kept-output branch.
        for (crash, rejoin) in [(1u64, 3u64), (2, 6)] {
            let cfg = NetConfig::new(k)
                .with_seed(13)
                .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 256 })
                .with_rejoin(1, crash, rejoin);
            let out = run_sync(&cfg, mux_fleet(k, &payloads)).unwrap();
            assert_eq!(out.outputs, clean.outputs, "crash {crash} rejoin {rejoin}");
            assert_eq!(out.metrics.messages, clean.metrics.messages);
            assert_eq!(out.metrics.bits, clean.metrics.bits);
            assert_eq!(out.recovery.rejoined, vec![1]);
            assert!(out.recovery.checkpoints > 0);
            assert!(out.faults.crashed.is_empty());
        }
    }

    #[test]
    fn crashed_mux_salvages_finished_instances_with_holes() {
        let k = 3;
        let payloads = [1u64, 30];
        // Worker 2 finishes the one-value tag within a couple of rounds but
        // the 30-value tag outlives the crash. Its round-0 sends are already
        // in the link queues and keep draining, so the survivors complete.
        let cfg = NetConfig::new(k)
            .with_seed(5)
            .with_bandwidth(BandwidthMode::Enforce { bits_per_round: 256 })
            .with_faults(FaultPlan::default().with_crash(2, 4));
        let out = run_sync(&cfg, mux_fleet(k, &payloads)).unwrap();
        assert_eq!(out.faults.crashed, vec![2]);
        let salvaged = &out.outputs[2];
        assert!(salvaged.outputs[0].is_some(), "finished instance survives the crash");
        assert_eq!(salvaged.outputs[1], None, "live instance is lost to the crash");
        assert!(salvaged.done_round[0] > 0);
        assert_eq!(salvaged.done_round[1], 0);
        // Survivors still agree with fault-free solo runs on every tag.
        for (tag, &p) in payloads.iter().enumerate() {
            let want = solo(k, p, 5);
            assert_eq!(out.outputs[0].outputs[tag], Some(want.outputs[0]));
            assert_eq!(out.outputs[1].outputs[tag], Some(want.outputs[0]));
        }
    }
}
