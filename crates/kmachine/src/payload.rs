//! Message payloads and their size accounting.

/// A protocol message type.
///
/// The simulator never serializes messages; it only needs to know how many
/// bits a message *would* occupy on the wire so that bandwidth-limited links
/// can be enforced and message/bit totals reported. Implementations should
/// return the information-theoretic size of the fields they carry (e.g. a
/// 64-bit value plus a 64-bit id is 128 bits). Sizes are clamped to a minimum
/// of 1 bit by the engines so that "free" messages cannot bypass links.
pub trait Payload: Clone + Send + 'static {
    /// Wire size of this message in bits.
    fn size_bits(&self) -> u64;

    /// Multiplexing tag of this message, when it belongs to one instance of
    /// a [multiplexed protocol](crate::mux::MuxProtocol).
    ///
    /// The engines use this to attribute per-instance message and bit counts
    /// in [`crate::RunMetrics::per_tag`]. Plain (non-multiplexed) payloads
    /// return `None` and are accounted only in the aggregate totals.
    fn mux_tag(&self) -> Option<u32> {
        None
    }

    /// Byzantine lying hook: perturb this message's announced data using
    /// the deterministic `word` (a pure splitmix64 draw keyed by the
    /// [`crate::config::AdversaryPlan`] seed and the send site, so all
    /// three engines fabricate the *same* lies). Returns `true` when the
    /// message actually changed.
    ///
    /// The default is a no-op — a payload opts in by overriding this, and
    /// implementations must preserve the message's variant structure
    /// (protocols are entitled to panic on impossible variants; a lie is a
    /// wrong *value*, not a malformed message). Size accounting
    /// ([`Payload::size_bits`]) must be unchanged by tampering so that
    /// every cross-engine metric-equality assert survives.
    fn tamper(&mut self, word: u64) -> bool {
        let _ = word;
        false
    }
}

impl Payload for () {
    fn size_bits(&self) -> u64 {
        1
    }
}

impl Payload for u32 {
    fn size_bits(&self) -> u64 {
        32
    }
}

impl Payload for u64 {
    fn size_bits(&self) -> u64 {
        64
    }
}

impl Payload for (u64, u64) {
    fn size_bits(&self) -> u64 {
        128
    }
}

impl Payload for Vec<u64> {
    fn size_bits(&self) -> u64 {
        64 * self.len() as u64
    }
}

/// Bits needed to carry `len` items of `item_bits` each plus a small header.
#[inline]
pub fn batch_bits(len: usize, item_bits: u64) -> u64 {
    32 + item_bits * len as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().size_bits(), 1);
        assert_eq!(7u32.size_bits(), 32);
        assert_eq!(7u64.size_bits(), 64);
        assert_eq!((1u64, 2u64).size_bits(), 128);
        assert_eq!(vec![1u64, 2, 3].size_bits(), 192);
    }

    #[test]
    fn batch_header() {
        assert_eq!(batch_bits(0, 128), 32);
        assert_eq!(batch_bits(4, 128), 32 + 512);
    }
}
