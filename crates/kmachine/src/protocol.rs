//! The protocol trait: distributed algorithms as per-machine state machines.

use crate::ctx::Ctx;
use crate::payload::Payload;

/// Result of one round of execution on one machine.
#[derive(Debug)]
pub enum Step<T> {
    /// Keep running; the engine will call `on_round` again next round.
    Continue,
    /// This machine is finished and yields its local output. The engine
    /// stops scheduling it; late messages addressed to it are discarded
    /// (and counted in [`crate::RunMetrics::delivered_after_done`]).
    Done(T),
}

/// A distributed algorithm written from the point of view of one machine.
///
/// The engines call [`Protocol::on_round`] once per synchronous round, with
/// round 0 having an empty inbox (the "initial" round in which first sends
/// happen). Protocol code must be a deterministic function of its own state,
/// the inbox contents, and the private RNG — both engines then produce
/// bit-identical executions.
pub trait Protocol: Send {
    /// Message type exchanged by this protocol.
    type Msg: Payload;
    /// Per-machine output.
    type Output: Send;

    /// Whether this protocol declares meaningful silent horizons through
    /// [`Protocol::quiet_until`]. [`crate::Engine::Auto`] upgrades to
    /// relaxed delivery only for opted-in protocols — without the hook,
    /// relaxed mode adds promise bookkeeping that only pays off in narrow
    /// end-of-run windows. Explicitly requested engines honor
    /// [`crate::config::NetConfig::delivery`] regardless of this flag.
    const QUIET_AWARE: bool = false;

    /// Execute one round.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) -> Step<Self::Output>;

    /// Declare a silent horizon: `Some(q)` promises that this machine will
    /// not hand **any** message to the network in any round `< q`, *no
    /// matter what it receives in the meantime* (`u64::MAX`: never again).
    ///
    /// The relaxed-delivery event engine ([`crate::config::DeliveryMode::
    /// Relaxed`]) consults this after every non-final round; once the
    /// machine's outbound backlog drains, the promise lets peers execute
    /// rounds up to `q` without waiting for this machine's (empty)
    /// transports. Promises are monotone — they can be extended, never
    /// revoked — and a send inside a promised window aborts the run with
    /// [`crate::EngineError::PromiseViolated`]. The default declares
    /// nothing; the lockstep engines never call this.
    fn quiet_until(&self) -> Option<u64> {
        None
    }

    /// Salvage hook for fail-stop crash injection (see
    /// [`crate::config::FaultPlan::crashes`]): called exactly once, in
    /// place of the `on_round` the machine was scheduled to crash at.
    /// Returning `Some(output)` lets the run complete with whatever the
    /// machine can still account for (e.g. "my shard contributes
    /// nothing"); the machine then behaves like a done machine — its
    /// earlier sends keep draining, late arrivals are discarded. Returning
    /// `None` (the default) means the run cannot produce this machine's
    /// output, and collection fails with [`crate::EngineError::Crashed`]
    /// so callers can retry over the survivors.
    fn on_crash(&mut self) -> Option<Self::Output> {
        None
    }

    /// Serialize this machine's protocol state for crash-recovery (see
    /// [`crate::config::RecoveryPlan`]). Called at the top of a round,
    /// before that round executes; the blob must capture everything
    /// [`Protocol::restore`] needs to resume from exactly that point.
    ///
    /// Returning `None` (the default) means the state is not serializable
    /// right now — a scheduled rejoin that finds no usable checkpoint fails
    /// loudly with [`crate::EngineError::Crashed`] rather than silently
    /// degrading to a permanent fail-stop (the one exception: a machine
    /// that crashes at round 0 never executed, so its untouched instance
    /// rejoins from the implicit pristine snapshot even without this hook).
    fn checkpoint(&self) -> Option<Vec<u8>> {
        None
    }

    /// Rebuild this instance's state from a blob produced by
    /// [`Protocol::checkpoint`], discarding whatever state it currently
    /// holds. Returns whether the restore succeeded; `false` (the default)
    /// marks the rejoin unsupported and the run fails with
    /// [`crate::EngineError::Crashed`].
    fn restore(&mut self, _blob: &[u8]) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Protocol for Nop {
        type Msg = ();
        type Output = u8;
        fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>) -> Step<u8> {
            Step::Done(9)
        }
    }

    #[test]
    fn trait_is_object_safe_enough_for_generics() {
        // Compile-time check that a trivial protocol satisfies the bounds.
        fn assert_protocol<P: Protocol>(_p: P) {}
        assert_protocol(Nop);
    }

    #[test]
    fn quiet_hook_defaults_to_no_promise() {
        assert_eq!(Nop.quiet_until(), None);
        const _: () = assert!(!Nop::QUIET_AWARE, "default is opted out");
    }

    #[test]
    fn crash_hook_defaults_to_unsalvageable() {
        assert_eq!(Nop.on_crash(), None);
    }

    #[test]
    fn checkpoint_hooks_default_to_unsupported() {
        assert_eq!(Nop.checkpoint(), None);
        assert!(!Nop.restore(&[1, 2, 3]));
    }
}
