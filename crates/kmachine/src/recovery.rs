//! Crash-recovery: protocol checkpoints, outage buffering, and replay.
//!
//! A [`crate::config::RecoveryPlan`] schedules machines to *crash then
//! rejoin*: go dark at a crash round, come back at a rejoin round restored
//! from their last [`crate::Protocol::checkpoint`], and catch up by
//! replaying the rounds in between from retained per-round inboxes. The
//! whole mechanism lives in one engine-agnostic protocol wrapper,
//! [`Recovering`], that each engine entry point applies when the plan is
//! non-empty — so the sync, threaded, and event engines recover machines
//! byte-identically *by construction*, and each engine's own footprint
//! shrinks to plan validation, stall suppression while a rejoin is still
//! pending, and attaching [`RecoveryMetrics`] to the outcome.
//!
//! # Why the recovered run's answers match the fault-free run's
//!
//! During the outage the wrapper keeps cycling rounds but executes nothing
//! and sends nothing; peers that need the machine's data simply wait (every
//! protocol in this tree is content-driven — it waits for messages, not for
//! round numbers — which it already must be to survive bandwidth-induced
//! delivery delay). At the rejoin round the wrapper restores the inner
//! protocol from the checkpoint *with the checkpointed RNG and send-sequence
//! counter*, then re-executes the missing rounds against the retained
//! inboxes. Replayed rounds the machine had really executed before crashing
//! regenerate sends that were already delivered — those are discarded (their
//! sequence numbers are still consumed, reproducing fault-free numbering) —
//! while sends from outage rounds are emitted now, carrying their replayed
//! `sent_round` and sequence numbers. The effect on the network is exactly a
//! temporary bandwidth narrowing on the machine's outgoing links: the same
//! messages flow with the same identities, only later. Outputs, message
//! totals, and per-machine send counts therefore equal the fault-free run;
//! only the round count may stretch.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;

use crate::config::NetConfig;
use crate::ctx::Ctx;
use crate::engine::RunOutcome;
use crate::error::EngineError;
use crate::message::Envelope;
use crate::metrics::RecoveryMetrics;
use crate::protocol::{Protocol, Step};

/// Per-machine rejoin horizons for [`Ctx::rejoined`] (`u64::MAX`: never
/// scheduled), indexed by machine id.
pub(crate) fn rejoin_horizons(cfg: &NetConfig) -> Vec<u64> {
    (0..cfg.k).map(|i| cfg.recovery.rejoin_round(i)).collect()
}

/// Reject self-contradictory fault/recovery plans before any protocol
/// executes, identically in every engine.
pub(crate) fn validate(cfg: &NetConfig) -> Result<(), EngineError> {
    let invalid = |reason: String| Err(EngineError::InvalidPlan { reason });
    if cfg.faults.loss_per_mille > 1000 {
        return invalid(format!(
            "loss_per_mille {} exceeds 1000 (100% loss)",
            cfg.faults.loss_per_mille
        ));
    }
    for (i, &(m, r)) in cfg.faults.crashes.iter().enumerate() {
        if cfg.faults.crashes[..i].iter().any(|&(m2, _)| m2 == m) {
            return invalid(format!(
                "machine {m} has duplicate crash entries (second at round {r})"
            ));
        }
    }
    for &(m, _) in &cfg.adversary.lies {
        if m >= cfg.k {
            return invalid(format!("lie entry for machine {m} out of range (k = {})", cfg.k));
        }
    }
    for &m in &cfg.adversary.equivocators {
        if m >= cfg.k {
            return invalid(format!(
                "equivocator entry for machine {m} out of range (k = {})",
                cfg.k
            ));
        }
    }
    for &(src, dst, p) in &cfg.adversary.corrupt_links {
        if p > 1000 {
            return invalid(format!(
                "corrupt link {src} -> {dst}: per_mille {p} exceeds 1000 (100% corruption)"
            ));
        }
        if src >= cfg.k || dst >= cfg.k || src == dst {
            return invalid(format!(
                "corrupt link {src} -> {dst} is not an ordered link of a {}-machine cluster",
                cfg.k
            ));
        }
    }
    let plan = &cfg.recovery;
    for (i, &(m, c, j)) in plan.rejoins.iter().enumerate() {
        if m >= cfg.k {
            return invalid(format!("rejoin entry for machine {m} out of range (k = {})", cfg.k));
        }
        if j <= c {
            return invalid(format!(
                "machine {m} rejoins at round {j}, at-or-before its crash round {c}"
            ));
        }
        if plan.rejoins[..i].iter().any(|&(m2, _, _)| m2 == m) {
            return invalid(format!("machine {m} has duplicate rejoin entries"));
        }
        if cfg.faults.crashes.iter().any(|&(m2, _)| m2 == m) {
            return invalid(format!(
                "machine {m} is both fail-stopped (FaultPlan) and scheduled to rejoin \
                 (RecoveryPlan)"
            ));
        }
        // Best case the machine checkpoints at every interval boundary up to
        // the crash; if even that newest possible checkpoint is outside the
        // retention window, the plan can never be satisfied — fail before
        // running anything. (A protocol that skips checkpoints can still hit
        // the dynamic variant of this error at its crash round.)
        let interval = plan.checkpoint_interval.max(1);
        let best = c - c % interval;
        if j - best > plan.retention.max(1) {
            return Err(EngineError::CheckpointTooOld {
                machine: m,
                checkpoint_round: best,
                rejoin_round: j,
                retention: plan.retention.max(1),
            });
        }
    }
    Ok(())
}

/// State shared between the wrapped machines of one recovering run and its
/// engine: realized metrics, the first recovery failure, and the rejoin
/// horizons the engine consults to keep a quiet cluster alive while an
/// outage is in progress.
pub(crate) struct RecoveryShared {
    metrics: Mutex<RecoveryMetrics>,
    error: Mutex<Option<EngineError>>,
    /// Rejoin rounds of every planned machine (for stall suppression).
    horizons: Vec<u64>,
}

impl RecoveryShared {
    /// Whether the engine should suppress its stall/quiescence error at
    /// `round`: some machine's rejoin is still ahead (the cluster is
    /// legitimately idle, waiting out an outage) and no recovery has failed
    /// yet (a failed rejoin goes permanently silent, and the resulting
    /// stall is how its error surfaces).
    pub(crate) fn pending_at(&self, round: u64) -> bool {
        self.error.lock().is_none() && self.horizons.iter().any(|&j| j >= round)
    }

    /// The first recorded recovery failure, if any.
    pub(crate) fn error(&self) -> Option<EngineError> {
        self.error.lock().clone()
    }

    fn record_error(&self, err: EngineError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    /// Drain the realized metrics (rejoined list sorted for determinism
    /// across engine scheduling orders).
    pub(crate) fn take_metrics(&self) -> RecoveryMetrics {
        let mut m = std::mem::take(&mut *self.metrics.lock());
        m.rejoined.sort_unstable();
        m
    }
}

/// Map a recovering run's result: a recorded recovery failure wins over the
/// engine's own (stall-shaped) error, and realized metrics ride the outcome.
pub(crate) fn finish<T>(
    result: Result<RunOutcome<T>, EngineError>,
    state: &RecoveryShared,
) -> Result<RunOutcome<T>, EngineError> {
    if let Some(err) = state.error() {
        return Err(err);
    }
    let mut out = result?;
    out.recovery = state.take_metrics();
    Ok(out)
}

/// Wrap every protocol instance of a run in [`Recovering`] according to the
/// config's [`crate::config::RecoveryPlan`].
pub(crate) fn wrap<P: Protocol>(
    cfg: &NetConfig,
    protocols: Vec<P>,
) -> (Vec<Recovering<P>>, Arc<RecoveryShared>) {
    let shared = Arc::new(RecoveryShared {
        metrics: Mutex::new(RecoveryMetrics::default()),
        error: Mutex::new(None),
        horizons: cfg.recovery.rejoins.iter().map(|&(_, _, j)| j).collect(),
    });
    let interval = cfg.recovery.checkpoint_interval.max(1);
    let retention = cfg.recovery.retention.max(1);
    let wrapped = protocols
        .into_iter()
        .enumerate()
        .map(|(id, inner)| {
            let spec = cfg
                .recovery
                .rejoins
                .iter()
                .find(|&&(m, _, _)| m == id)
                .map(|&(_, crash, rejoin)| RejoinSpec { crash, rejoin });
            Recovering {
                id,
                inner,
                spec,
                interval,
                retention,
                shared: Arc::clone(&shared),
                ckpt: None,
                retained: VecDeque::new(),
                offline: false,
                joined: false,
                failed: false,
            }
        })
        .collect();
    (wrapped, shared)
}

/// Crash-then-rejoin schedule of one machine.
#[derive(Clone, Copy)]
struct RejoinSpec {
    /// First round the machine does not execute.
    crash: u64,
    /// Round at which it is restored and catches up.
    rejoin: u64,
}

/// A recorded checkpoint: the inner protocol's blob plus the engine-side
/// state (RNG, send-sequence counter) needed to replay deterministically.
struct Ckpt {
    round: u64,
    /// `None` only as the implicit pristine round-0 marker (usable only if
    /// the machine crashes at round 0, i.e. never executed).
    blob: Option<Vec<u8>>,
    rng: StdRng,
    seq: u64,
}

/// Protocol wrapper implementing checkpoint / crash / rejoin-with-replay
/// around an inner protocol. Machines outside the rejoin plan pass through
/// untouched.
pub(crate) struct Recovering<P: Protocol> {
    id: usize,
    inner: P,
    spec: Option<RejoinSpec>,
    interval: u64,
    retention: u64,
    shared: Arc<RecoveryShared>,
    ckpt: Option<Ckpt>,
    /// Inboxes of every round since the recorded checkpoint, in round order
    /// (pre-crash rounds for state replay, outage rounds for catch-up).
    retained: VecDeque<(u64, Vec<Envelope<P::Msg>>)>,
    offline: bool,
    joined: bool,
    failed: bool,
}

impl<P: Protocol> Recovering<P> {
    /// Record a checkpoint at the top of round `r` when the schedule says
    /// so. A `None` blob from the inner protocol keeps the previous
    /// checkpoint (and its retained inboxes) instead — except at round 0,
    /// where it records the implicit pristine marker.
    fn maybe_checkpoint(&mut self, r: u64, crash: u64, rng: &StdRng, seq: u64) {
        if !r.is_multiple_of(self.interval) || r > crash {
            return;
        }
        // The blob is sealed here — at the recovery layer, not inside the
        // protocol — so every stored snapshot carries an integrity digest
        // without any protocol's blob format changing. `rejoin` verifies
        // the seal before handing the payload to `restore`.
        let blob = self.inner.checkpoint().map(crate::snapshot::seal);
        if blob.is_none() && r > 0 {
            return;
        }
        let bytes = blob.as_ref().map_or(0, |b| b.len() as u64);
        self.ckpt = Some(Ckpt { round: r, blob, rng: rng.clone(), seq });
        self.retained.clear();
        let mut m = self.shared.metrics.lock();
        m.checkpoints += 1;
        m.checkpoint_bytes += bytes;
    }

    /// Mark this machine's recovery as failed: record the first error and
    /// go permanently silent (fail-stop); the engine's resulting stall is
    /// mapped back to this error by [`finish`].
    fn fail(&mut self, err: EngineError) {
        self.shared.record_error(err);
        self.failed = true;
        self.ckpt = None;
        self.retained.clear();
    }

    /// At the crash round, decide whether the scheduled rejoin can work at
    /// all with the checkpoints actually recorded.
    fn check_rejoinable(&mut self, spec: RejoinSpec) {
        let usable = match &self.ckpt {
            Some(c) if c.blob.is_some() => true,
            // Pristine marker: only usable if the machine never executed.
            Some(c) => c.round == 0 && spec.crash == 0,
            None => false,
        };
        if !usable {
            self.fail(EngineError::Crashed { machine: self.id, round: spec.crash });
            return;
        }
        let p = self.ckpt.as_ref().expect("checked above").round;
        if spec.rejoin - p > self.retention {
            self.fail(EngineError::CheckpointTooOld {
                machine: self.id,
                checkpoint_round: p,
                rejoin_round: spec.rejoin,
                retention: self.retention,
            });
        }
    }

    /// Restore from the checkpoint, replay the retained rounds, then execute
    /// the rejoin round itself. Runs inside the engine's normal `on_round`
    /// slot for the rejoin round, so the catch-up is atomic from every
    /// peer's point of view.
    fn rejoin(&mut self, ctx: &mut Ctx<'_, P::Msg>, spec: RejoinSpec) -> Step<P::Output> {
        let ck = self.ckpt.take().expect("validated at crash round");
        if let Some(blob) = &ck.blob {
            // Seal first: a truncated or bit-flipped blob is a typed
            // corruption report, never a panic and never a silent wrong
            // restore. Only a seal-verified payload reaches `restore` —
            // if *that* fails, the blob was written by a different state
            // and the rejoin is unsalvageable (same report as no blob).
            let Some(payload) = crate::snapshot::unseal(blob) else {
                self.fail(EngineError::SnapshotCorrupt { machine: self.id, round: ck.round });
                return Step::Continue;
            };
            if !self.inner.restore(payload) {
                self.fail(EngineError::Crashed { machine: self.id, round: spec.crash });
                return Step::Continue;
            }
        }
        let mut rng = ck.rng;
        let mut seq = ck.seq;
        let mut scratch: Vec<Envelope<P::Msg>> = Vec::new();
        let mut deferred: Vec<Envelope<P::Msg>> = Vec::new();
        let mut finished = None;
        let mut replayed = 0u64;
        for (s, inbox) in std::mem::take(&mut self.retained) {
            let step = {
                let mut ictx = Ctx {
                    id: ctx.id,
                    k: ctx.k,
                    round: s,
                    inbox: &inbox,
                    outbox: &mut scratch,
                    rng: &mut rng,
                    next_seq: &mut seq,
                    crash_rounds: ctx.crash_rounds,
                    rejoin_rounds: ctx.rejoin_rounds,
                    // A lying machine replays its lies: tamper words are
                    // pure in (machine, round), so the regenerated sends
                    // are bit-identical to the originals.
                    adversary: ctx.adversary,
                };
                self.inner.on_round(&mut ictx)
            };
            replayed += 1;
            if s < spec.crash {
                // The machine really executed this round before crashing:
                // its sends were already delivered, so the regenerated
                // copies are discarded. Their sequence numbers stay
                // consumed, reproducing the fault-free numbering exactly.
                scratch.clear();
            } else {
                deferred.append(&mut scratch);
            }
            if let Step::Done(out) = step {
                finished = Some(out);
                break;
            }
        }
        // The replayed state is now the canonical machine state.
        *ctx.rng = rng;
        *ctx.next_seq = seq;
        ctx.outbox.append(&mut deferred);
        self.joined = true;
        {
            let mut m = self.shared.metrics.lock();
            m.replayed_rounds += replayed;
            m.rejoined.push(self.id);
        }
        match finished {
            Some(out) => Step::Done(out),
            None => self.inner.on_round(ctx),
        }
    }
}

impl<P: Protocol> Protocol for Recovering<P> {
    type Msg = P::Msg;
    type Output = P::Output;
    const QUIET_AWARE: bool = P::QUIET_AWARE;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>) -> Step<Self::Output> {
        let Some(spec) = self.spec else {
            return self.inner.on_round(ctx);
        };
        if self.joined {
            return self.inner.on_round(ctx);
        }
        if self.failed {
            // Silent fail-stop: keep cycling (the engine's stall detection
            // will fire once the rejoin horizon passes) without executing.
            return Step::Continue;
        }
        let r = ctx.round;
        if r < spec.crash {
            self.maybe_checkpoint(r, spec.crash, ctx.rng, *ctx.next_seq);
            self.retained.push_back((r, ctx.inbox.to_vec()));
            return self.inner.on_round(ctx);
        }
        if r == spec.crash && !self.offline {
            // Checkpoint-then-crash: a checkpoint scheduled for the crash
            // round itself is taken (the round never executes live).
            self.maybe_checkpoint(r, spec.crash, ctx.rng, *ctx.next_seq);
            self.offline = true;
            self.check_rejoinable(spec);
            if self.failed {
                return Step::Continue;
            }
        }
        if r < spec.rejoin {
            // Outage: buffer the inbox for replay, execute nothing, send
            // nothing. The machine keeps cycling rounds so every engine's
            // transport bookkeeping stays uniform.
            self.retained.push_back((r, ctx.inbox.to_vec()));
            return Step::Continue;
        }
        self.rejoin(ctx, spec)
    }

    fn quiet_until(&self) -> Option<u64> {
        // No *new* promises while offline or failed; promises published
        // before the crash stay valid (replayed sends regenerate only from
        // rounds at-or-after the promised horizon).
        if self.spec.is_some() && !self.joined && (self.offline || self.failed) {
            return None;
        }
        self.inner.quiet_until()
    }

    fn on_crash(&mut self) -> Option<Self::Output> {
        // Only reachable for machines outside the rejoin plan (validation
        // rejects machines in both plans): forward the salvage hook.
        self.inner.on_crash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecoveryPlan;
    use crate::engine::run_sync;
    use crate::snapshot::{SnapshotReader, SnapshotWriter};

    /// Two-phase checkpointable gossip: round 0 broadcasts a hello; once a
    /// machine holds every hello it broadcasts an ack; done once it holds
    /// every ack. Output is the sum of hello payloads — any lost or
    /// double-counted replay message changes it.
    #[derive(Default)]
    struct TwoPhase {
        hellos: u64,
        acks: u64,
        acc: u64,
        sent_hello: bool,
        sent_ack: bool,
    }

    const HELLO: u64 = 1 << 32;
    const ACK: u64 = 1 << 33;

    impl Protocol for TwoPhase {
        type Msg = u64;
        type Output = u64;

        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            for env in ctx.inbox().to_vec() {
                if env.msg & HELLO != 0 {
                    self.hellos += 1;
                    self.acc += env.msg & 0xffff_ffff;
                } else {
                    self.acks += 1;
                }
            }
            if !self.sent_hello {
                self.sent_hello = true;
                let id = ctx.id() as u64;
                ctx.broadcast(HELLO | (id * 10 + 1));
                self.acc += ctx.id() as u64 * 10 + 1;
            }
            let everyone = ctx.k() as u64 - 1;
            if self.hellos == everyone && !self.sent_ack {
                self.sent_ack = true;
                ctx.broadcast(ACK);
            }
            if self.sent_ack && self.acks == everyone {
                return Step::Done(self.acc);
            }
            Step::Continue
        }

        fn checkpoint(&self) -> Option<Vec<u8>> {
            let mut w = SnapshotWriter::new();
            w.u64(self.hellos);
            w.u64(self.acks);
            w.u64(self.acc);
            w.flag(self.sent_hello);
            w.flag(self.sent_ack);
            Some(w.finish())
        }

        fn restore(&mut self, blob: &[u8]) -> bool {
            let mut r = SnapshotReader::new(blob);
            let Some((hellos, acks, acc, sent_hello, sent_ack)) =
                (|| Some((r.u64()?, r.u64()?, r.u64()?, r.flag()?, r.flag()?)))()
            else {
                return false;
            };
            if !r.done() {
                return false;
            }
            *self = TwoPhase { hellos, acks, acc, sent_hello, sent_ack };
            true
        }
    }

    /// Like [`TwoPhase`] but with checkpointing unimplemented.
    #[derive(Default)]
    struct NoCkpt(TwoPhase);
    impl Protocol for NoCkpt {
        type Msg = u64;
        type Output = u64;
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Step<u64> {
            self.0.on_round(ctx)
        }
    }

    fn fleet(k: usize) -> Vec<TwoPhase> {
        (0..k).map(|_| TwoPhase::default()).collect()
    }

    fn cfg(k: usize) -> NetConfig {
        NetConfig::new(k).with_seed(7)
    }

    #[test]
    fn rejoin_is_byte_identical_to_fault_free() {
        let k = 4;
        let clean = run_sync(&cfg(k), fleet(k)).unwrap();
        for (crash, rejoin) in [(1, 4), (2, 3), (1, 9)] {
            let cfg = cfg(k).with_rejoin(2, crash, rejoin);
            let out = run_sync(&cfg, fleet(k)).unwrap();
            assert_eq!(out.outputs, clean.outputs, "crash {crash} rejoin {rejoin}");
            assert_eq!(out.metrics.messages, clean.metrics.messages);
            assert_eq!(out.metrics.bits, clean.metrics.bits);
            assert_eq!(out.metrics.sends_per_machine, clean.metrics.sends_per_machine);
            assert_eq!(out.recovery.rejoined, vec![2]);
            assert!(out.recovery.checkpoints > 0);
            // Replay may end early when the protocol reaches Done mid-replay,
            // so only a lower bound of one re-executed round is guaranteed.
            assert!(out.recovery.replayed_rounds >= 1);
            assert!(out.faults.crashed.is_empty(), "a rejoined machine is not crashed");
        }
        assert!(!clean.recovery.any(), "fault-free runs carry empty recovery metrics");
    }

    #[test]
    fn crash_at_round_zero_rejoins_from_pristine_state() {
        let k = 3;
        let clean = run_sync(&cfg(k), fleet(k)).unwrap();
        let out = run_sync(&cfg(k).with_rejoin(1, 0, 3), fleet(k)).unwrap();
        assert_eq!(out.outputs, clean.outputs);
        assert_eq!(out.recovery.rejoined, vec![1]);

        // Even a protocol without checkpoint support survives a round-0
        // crash: the instance never executed, so the pristine marker is a
        // complete snapshot.
        let protos: Vec<NoCkpt> = (0..k).map(|_| NoCkpt::default()).collect();
        let out = run_sync(&cfg(k).with_rejoin(1, 0, 3), protos).unwrap();
        assert_eq!(out.outputs, clean.outputs);
    }

    #[test]
    fn unsupported_checkpoint_fails_loudly_not_silently() {
        let k = 3;
        let protos: Vec<NoCkpt> = (0..k).map(|_| NoCkpt::default()).collect();
        let err = run_sync(&cfg(k).with_rejoin(1, 2, 4), protos).unwrap_err();
        assert_eq!(err, EngineError::Crashed { machine: 1, round: 2 });
    }

    #[test]
    fn sparse_checkpoints_replay_executed_rounds_too() {
        let k = 4;
        let clean = run_sync(&cfg(k), fleet(k)).unwrap();
        // Interval 4 means the newest checkpoint before a round-2 crash is
        // round 0: the replay must re-execute rounds 0 and 1 (discarding
        // their regenerated, already-delivered sends) before catching up on
        // the missed round 2.
        let plan = RecoveryPlan::default().with_rejoin(0, 2, 4).with_checkpoint_interval(4);
        let out = run_sync(&cfg(k).with_recovery(plan), fleet(k)).unwrap();
        assert_eq!(out.outputs, clean.outputs);
        assert_eq!(out.metrics.messages, clean.metrics.messages);
        assert_eq!(out.recovery.rejoined, vec![0]);
        assert!(out.recovery.replayed_rounds >= 3, "rounds 0..=2 replayed");
    }

    #[test]
    fn stale_checkpoint_is_rejected_statically() {
        let k = 3;
        let plan = RecoveryPlan::default()
            .with_rejoin(1, 2, 20)
            .with_retention(4)
            .with_checkpoint_interval(1);
        let err = run_sync(&cfg(k).with_recovery(plan), fleet(k)).unwrap_err();
        assert_eq!(
            err,
            EngineError::CheckpointTooOld {
                machine: 1,
                checkpoint_round: 2,
                rejoin_round: 20,
                retention: 4
            }
        );
    }

    #[test]
    fn invalid_adversary_plans_are_rejected_before_execution() {
        use crate::config::AdversaryPlan;
        let k = 3;
        let bad = [
            cfg(k).with_adversary(AdversaryPlan::default().with_lie(5, 0)),
            cfg(k).with_adversary(AdversaryPlan::default().with_equivocate(3)),
            cfg(k).with_adversary(AdversaryPlan::default().with_corrupt_link(0, 1, 1001)),
            cfg(k).with_adversary(AdversaryPlan::default().with_corrupt_link(0, 7, 10)),
            cfg(k).with_adversary(AdversaryPlan::default().with_corrupt_link(1, 1, 10)),
        ];
        for cfg in bad {
            match run_sync(&cfg, fleet(k)) {
                Err(EngineError::InvalidPlan { .. }) => {}
                other => panic!("expected InvalidPlan, got {other:?}"),
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Satellite hardening: no mutation of a sealed checkpoint blob ever
        /// restores — a flipped byte, a truncation, or trailing garbage is
        /// rejected by the seal (and even a hypothetical seal pass must make
        /// `restore` return a bool, never panic).
        #[test]
        fn fuzzed_snapshot_mutations_never_restore_and_never_panic(
            flip_at in 0usize..512,
            flip_bits in 1u8..=255,
            cut in 0usize..512,
        ) {
            let state = TwoPhase { hellos: 2, acks: 1, acc: 77, sent_hello: true, sent_ack: false };
            let sealed = crate::snapshot::seal(state.checkpoint().expect("supported"));
            // Bit-flip mutation.
            let mut flipped = sealed.clone();
            let at = flip_at % flipped.len();
            flipped[at] ^= flip_bits;
            proptest::prop_assert!(crate::snapshot::unseal(&flipped).is_none());
            let mut target = TwoPhase::default();
            // Even handed the mutated payload directly, restore returns a
            // verdict (the call simply must not panic; most mutations that
            // keep the length decode to *some* state, which is exactly why
            // the seal layer exists above it).
            let _ = target.restore(&flipped);
            // Truncation mutation.
            let cut = cut % sealed.len();
            proptest::prop_assert!(crate::snapshot::unseal(&sealed[..cut]).is_none());
            let _ = TwoPhase::default().restore(&sealed[..cut]);
            // Extension mutation.
            let mut extended = sealed.clone();
            extended.push(flip_bits);
            proptest::prop_assert!(crate::snapshot::unseal(&extended).is_none());
        }
    }

    #[test]
    fn invalid_plans_are_rejected_before_execution() {
        let k = 3;
        let bad = [
            cfg(k).with_faults(crate::config::FaultPlan::default().with_loss(1001, 3)),
            cfg(k)
                .with_faults(crate::config::FaultPlan::default().with_crash(1, 2).with_crash(1, 5)),
            cfg(k).with_rejoin(1, 5, 5),
            cfg(k).with_rejoin(1, 5, 3),
            cfg(k).with_rejoin(1, 2, 4).with_rejoin(1, 6, 8),
            cfg(k).with_rejoin(7, 2, 4),
            cfg(k)
                .with_faults(crate::config::FaultPlan::default().with_crash(1, 9))
                .with_rejoin(1, 2, 4),
        ];
        for cfg in bad {
            match run_sync(&cfg, fleet(k)) {
                Err(EngineError::InvalidPlan { .. }) => {}
                other => panic!("expected InvalidPlan, got {other:?}"),
            }
        }
    }
}
