//! Deterministic per-machine randomness.
//!
//! The model gives each machine a private source of true random bits. For
//! reproducibility every machine's stream is derived from the run's master
//! seed and the machine id through SplitMix64, so a run is a pure function
//! of `(protocols, NetConfig)` regardless of which engine executes it.

use rand::{rngs::StdRng, SeedableRng};

/// SplitMix64 step: a high-quality 64-bit mixer (Steele et al.).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a `(master seed, stream index)` pair into an independent sub-seed.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut s = master ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(32)
}

/// The RNG handed to machine `id` for a run with the given master seed.
pub fn machine_rng(master: u64, id: usize) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, id as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
    }

    #[test]
    fn different_streams_differ() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn machine_rngs_are_reproducible_and_distinct() {
        let x: u64 = machine_rng(7, 0).random();
        let y: u64 = machine_rng(7, 0).random();
        let z: u64 = machine_rng(7, 1).random();
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn splitmix_known_behaviour() {
        // Mixing from zero state must not return zero and must advance state.
        let mut s = 0u64;
        let v1 = splitmix64(&mut s);
        let v2 = splitmix64(&mut s);
        assert_ne!(v1, 0);
        assert_ne!(v1, v2);
    }
}
