//! Tiny byte codec for [`crate::Protocol::checkpoint`] blobs.
//!
//! Checkpoint blobs are opaque to the engines, but every protocol that
//! implements them needs the same few primitives: fixed-width integers,
//! flags, and length-prefixed byte runs, written and read in one
//! deterministic order. This module provides exactly that — little-endian,
//! no framing, no versioning — so protocol snapshots stay small and their
//! encode/decode pairs stay obviously symmetric. [`SnapshotReader`] returns
//! `Option` everywhere: a truncated or misaligned blob decodes to `None`,
//! which [`crate::Protocol::restore`] maps to `false` (rejoin unsupported)
//! instead of panicking inside an engine.

/// Domain-separation salt of the checkpoint seal digest (distinct from the
/// link-layer chain and corruption salts).
const SEAL_SALT: u64 = 0x5EA1_C4EC_4B01_7B10;

/// Content digest of a checkpoint blob: a seeded multiply-xor chain over
/// the bytes (length-prefixed, splitmix64-finalized). Not cryptographic —
/// the threat model is the repo's seeded fault injection plus accidental
/// truncation, not a forging adversary — but any single flipped or missing
/// byte changes the digest.
fn seal_digest(bytes: &[u8]) -> u64 {
    let mut h = SEAL_SALT ^ (bytes.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h ^= u64::from_le_bytes(word);
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h
}

/// Seal a checkpoint blob: append its [content digest](seal_digest) so a
/// later [`unseal`] can prove the bytes are the ones the checkpoint wrote.
/// The inner blob format is untouched — sealing happens at the recovery
/// layer, protocols never see it.
pub fn seal(mut blob: Vec<u8>) -> Vec<u8> {
    let digest = seal_digest(&blob);
    blob.extend_from_slice(&digest.to_le_bytes());
    blob
}

/// Verify a sealed blob and return the payload, or `None` when the seal
/// fails — the blob was truncated, extended, or any byte changed since
/// [`seal`]. Callers map `None` to
/// [`crate::EngineError::SnapshotCorrupt`], never a panic.
pub fn unseal(sealed: &[u8]) -> Option<&[u8]> {
    let split = sealed.len().checked_sub(8)?;
    let (payload, tail) = sealed.split_at(split);
    let claimed = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    (seal_digest(payload) == claimed).then_some(payload)
}

/// Append-only writer for a checkpoint blob.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Start an empty blob.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u128` (16 bytes — the widest key ordinal in the tree).
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a boolean as one byte.
    pub fn flag(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a length-prefixed byte run.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// The finished blob.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential reader over a blob produced by [`SnapshotWriter`].
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
}

impl<'a> SnapshotReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader { buf }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    /// Next `u32`, or `None` if the blob is exhausted.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Next `u64`, or `None` if the blob is exhausted.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Next `u128`, or `None` if the blob is exhausted.
    pub fn u128(&mut self) -> Option<u128> {
        self.take(16).map(|b| u128::from_le_bytes(b.try_into().expect("16 bytes")))
    }

    /// Next flag byte; only 0 and 1 decode (anything else is corruption).
    pub fn flag(&mut self) -> Option<bool> {
        match self.take(1)? {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }

    /// Next length-prefixed byte run.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u64()?;
        self.take(usize::try_from(len).ok()?)
    }

    /// Whether every byte has been consumed (restores should end `true` —
    /// trailing garbage means the blob was not written by the matching
    /// checkpoint).
    pub fn done(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = SnapshotWriter::new();
        w.u32(7);
        w.u64(u64::MAX - 1);
        w.u128(1 << 90);
        w.flag(true);
        w.flag(false);
        w.bytes(b"shard");
        w.bytes(b"");
        let blob = w.finish();

        let mut r = SnapshotReader::new(&blob);
        assert_eq!(r.u32(), Some(7));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.u128(), Some(1 << 90));
        assert_eq!(r.flag(), Some(true));
        assert_eq!(r.flag(), Some(false));
        assert_eq!(r.bytes(), Some(&b"shard"[..]));
        assert_eq!(r.bytes(), Some(&b""[..]));
        assert!(r.done());
    }

    #[test]
    fn seal_round_trips_and_rejects_every_mutation() {
        for payload in [&b""[..], b"x", b"a longer checkpoint blob with content"] {
            let sealed = seal(payload.to_vec());
            assert_eq!(sealed.len(), payload.len() + 8);
            assert_eq!(unseal(&sealed), Some(payload), "clean seal must verify");
            // Every single-byte flip is caught — payload and seal alike.
            for i in 0..sealed.len() {
                let mut bad = sealed.clone();
                bad[i] ^= 0x40;
                assert_eq!(unseal(&bad), None, "flip at byte {i} must fail the seal");
            }
            // Every truncation is caught, including cutting into the seal.
            for len in 0..sealed.len() {
                assert_eq!(unseal(&sealed[..len]), None, "truncation to {len} must fail");
            }
            // Trailing garbage is caught too.
            let mut extended = sealed.clone();
            extended.push(0);
            assert_eq!(unseal(&extended), None);
        }
    }

    #[test]
    fn truncated_and_corrupt_blobs_decode_to_none() {
        let mut w = SnapshotWriter::new();
        w.u64(3);
        let blob = w.finish();
        let mut r = SnapshotReader::new(&blob[..4]);
        assert_eq!(r.u64(), None);
        // A flag byte outside {0, 1} is corruption, not `true`.
        let mut r = SnapshotReader::new(&[7]);
        assert_eq!(r.flag(), None);
        // A length prefix past the end of the blob must not read garbage.
        let mut w = SnapshotWriter::new();
        w.u64(1000);
        let blob = w.finish();
        let mut r = SnapshotReader::new(&blob);
        assert_eq!(r.bytes(), None);
    }
}
