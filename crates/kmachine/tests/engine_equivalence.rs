//! Property tests: all three engines are observationally identical for
//! deterministic protocols, and the network conserves messages, under
//! randomized traffic patterns.

use kmachine::engine::{run_event, run_sync, run_threaded};
use kmachine::{BandwidthMode, Ctx, DeliveryMode, Engine, NetConfig, Payload, Protocol, Step};
use proptest::prelude::*;
use rand::RngExt;

/// Randomized scatter: in round 0 every machine generates a random batch
/// of random-sized messages for random peers, tells every peer how many to
/// expect (a header message), and sends them. A machine finishes once it
/// has every peer's header and all announced messages — fully
/// message-driven termination, as the engine contract requires.
struct Scatter {
    max_msgs: usize,
    expected: Vec<Option<u64>>,
    got: Vec<u64>,
    digest: u64,
    received_data: u64,
}

#[derive(Clone, Debug)]
enum Msg {
    /// "I will send you this many Data messages."
    Header(u64),
    /// A data blob with an arbitrary wire size.
    Data { tag: u64, bits: u64 },
}

impl Payload for Msg {
    fn size_bits(&self) -> u64 {
        match self {
            Msg::Header(_) => 64,
            Msg::Data { bits, .. } => *bits,
        }
    }
}

impl Protocol for Scatter {
    type Msg = Msg;
    type Output = (u64, u64);

    fn on_round(&mut self, ctx: &mut Ctx<'_, Msg>) -> Step<(u64, u64)> {
        let (k, me, max) = (ctx.k(), ctx.id(), self.max_msgs);
        if ctx.round() == 0 {
            if k == 1 {
                return Step::Done((0, 0));
            }
            let n = ctx.rng().random_range(0..=max);
            let mut plan: Vec<(usize, u64, u64)> = Vec::with_capacity(n);
            let mut counts = vec![0u64; k];
            for _ in 0..n {
                let dst = loop {
                    let d = ctx.rng().random_range(0..k);
                    if d != me {
                        break d;
                    }
                };
                let tag: u64 = ctx.rng().random();
                let bits = ctx.rng().random_range(1..2000);
                plan.push((dst, tag, bits));
                counts[dst] += 1;
            }
            for (dst, &count) in counts.iter().enumerate() {
                if dst != me {
                    ctx.send(dst, Msg::Header(count));
                }
            }
            for (dst, tag, bits) in plan {
                ctx.send(dst, Msg::Data { tag, bits });
            }
            return Step::Continue;
        }

        for env in ctx.inbox() {
            match env.msg {
                Msg::Header(c) => self.expected[env.src] = Some(c),
                Msg::Data { tag, .. } => {
                    self.got[env.src] += 1;
                    self.received_data += 1;
                    // Order-sensitive digest: catches delivery-order
                    // divergence between the engines.
                    self.digest = self
                        .digest
                        .rotate_left(7)
                        .wrapping_add(tag ^ ((env.src as u64) << 32) ^ env.seq);
                }
            }
        }
        let all_in = (0..ctx.k())
            .filter(|&s| s != ctx.id())
            .all(|s| self.expected[s].is_some_and(|c| self.got[s] == c));
        if all_in {
            Step::Done((self.digest, self.received_data))
        } else {
            Step::Continue
        }
    }
}

fn scatter_run(
    k: usize,
    seed: u64,
    bits_per_round: u64,
    max_msgs: usize,
    engine: Engine,
    delivery: DeliveryMode,
) -> (Vec<(u64, u64)>, u64, u64) {
    let cfg = NetConfig::new(k)
        .with_seed(seed)
        .with_bandwidth(BandwidthMode::Enforce { bits_per_round })
        .with_delivery(delivery);
    let protos: Vec<Scatter> = (0..k)
        .map(|_| Scatter {
            max_msgs,
            expected: vec![None; k],
            got: vec![0; k],
            digest: 0,
            received_data: 0,
        })
        .collect();
    let out = match engine {
        Engine::Sync => run_sync(&cfg, protos),
        Engine::Threaded => run_threaded(&cfg, protos),
        _ => run_event(&cfg, protos),
    }
    .expect("scatter run");
    (out.outputs, out.metrics.messages, out.metrics.bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn engines_agree_under_random_traffic(
        k in 1usize..7,
        seed in any::<u64>(),
        bits in prop_oneof![Just(64u64), Just(512), Just(4096)],
        max_msgs in 0usize..12,
    ) {
        let a = scatter_run(k, seed, bits, max_msgs, Engine::Sync, DeliveryMode::Exact);
        for (engine, delivery) in [
            (Engine::Threaded, DeliveryMode::Exact),
            (Engine::Event, DeliveryMode::Exact),
            (Engine::Event, DeliveryMode::Relaxed),
        ] {
            let b = scatter_run(k, seed, bits, max_msgs, engine, delivery);
            prop_assert_eq!(
                &a.0, &b.0,
                "per-machine digests must match ({:?}, {:?})", engine, delivery
            );
            prop_assert_eq!(a.1, b.1, "message totals must match ({:?}, {:?})", engine, delivery);
            prop_assert_eq!(a.2, b.2, "bit totals must match ({:?}, {:?})", engine, delivery);
        }
    }

    #[test]
    fn network_conserves_messages(
        k in 2usize..7,
        seed in any::<u64>(),
        max_msgs in 0usize..12,
    ) {
        let (outputs, sent_total, _) =
            scatter_run(k, seed, 256, max_msgs, Engine::Sync, DeliveryMode::Exact);
        let received: u64 = outputs.iter().map(|&(_, r)| r).sum();
        let headers = (k * (k - 1)) as u64;
        prop_assert_eq!(
            received, sent_total - headers,
            "every data message is delivered exactly once"
        );
    }
}
