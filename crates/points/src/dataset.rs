//! Labeled datasets and the brute-force reference oracle.

use serde::{Deserialize, Serialize};

use crate::id::{IdAssigner, PointId};
use crate::key::DistKey;
use crate::metric::Metric;
use crate::point::Point;

/// A training label: class for classification, value for regression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Label {
    /// Categorical class.
    Class(u32),
    /// Real-valued target.
    Value(f64),
}

/// One training record: identified, located, optionally labeled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record<P> {
    /// Unique id (see [`crate::IdAssigner`]).
    pub id: PointId,
    /// The point.
    pub point: P,
    /// Optional supervision.
    pub label: Option<Label>,
}

/// An in-memory dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset<P> {
    /// All records.
    pub records: Vec<Record<P>>,
}

impl<P: Point> Dataset<P> {
    /// Wrap existing records.
    pub fn new(records: Vec<Record<P>>) -> Self {
        Dataset { records }
    }

    /// Build from bare points, assigning fresh unique ids.
    pub fn from_points(points: Vec<P>, ids: &mut IdAssigner) -> Self {
        let records = points
            .into_iter()
            .map(|point| Record { id: ids.next_id(), point, label: None })
            .collect();
        Dataset { records }
    }

    /// Build from labeled points.
    pub fn from_labeled(points: Vec<(P, Label)>, ids: &mut IdAssigner) -> Self {
        let records = points
            .into_iter()
            .map(|(point, label)| Record { id: ids.next_id(), point, label: Some(label) })
            .collect();
        Dataset { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Look up a record by id (linear scan; test/diagnostic use).
    pub fn by_id(&self, id: PointId) -> Option<&Record<P>> {
        self.records.iter().find(|r| r.id == id)
    }

    /// The largest id held, or `None` when empty — what an id generator
    /// must resume *after* so fresh ids never collide with loaded data.
    pub fn max_id(&self) -> Option<PointId> {
        self.records.iter().map(|r| r.id).max()
    }
}

/// The sequential oracle: exact ℓ-nearest neighbors by full sort.
///
/// `O(n log n)`; used as ground truth in tests and as the reference the
/// paper reduces to ("compute all n distances, select the ℓ smallest",
/// §1.2). Ties are broken by point id, the same total order the distributed
/// protocols use, so results are always uniquely determined.
pub fn brute_force_knn<'a, P: Point>(
    records: &'a [Record<P>],
    query: &P,
    ell: usize,
    metric: Metric,
) -> Vec<(DistKey, &'a Record<P>)> {
    let mut keyed: Vec<(DistKey, &Record<P>)> =
        records.iter().map(|r| (DistKey::new(r.point.distance(query, metric), r.id), r)).collect();
    keyed.sort_by_key(|(k, _)| *k);
    keyed.truncate(ell);
    keyed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::ScalarPoint;

    fn dataset(values: &[u64]) -> Dataset<ScalarPoint> {
        let mut ids = IdAssigner::new(0);
        Dataset::from_points(values.iter().map(|&v| ScalarPoint(v)).collect(), &mut ids)
    }

    #[test]
    fn brute_force_finds_nearest() {
        let ds = dataset(&[10, 20, 30, 40, 50]);
        let nn = brute_force_knn(&ds.records, &ScalarPoint(24), 2, Metric::Euclidean);
        let vals: Vec<u64> = nn.iter().map(|(_, r)| r.point.0).collect();
        assert_eq!(vals, vec![20, 30]);
    }

    #[test]
    fn brute_force_truncates_to_available() {
        let ds = dataset(&[1, 2]);
        let nn = brute_force_knn(&ds.records, &ScalarPoint(0), 10, Metric::Euclidean);
        assert_eq!(nn.len(), 2);
    }

    #[test]
    fn ties_broken_by_id_deterministically() {
        // Two points at the same distance from the query.
        let ds = dataset(&[10, 30]);
        let a = brute_force_knn(&ds.records, &ScalarPoint(20), 1, Metric::Euclidean);
        let b = brute_force_knn(&ds.records, &ScalarPoint(20), 1, Metric::Euclidean);
        assert_eq!(a[0].1.id, b[0].1.id);
        let lo = ds.records.iter().map(|r| r.id).min().unwrap();
        assert_eq!(a[0].1.id, lo, "smaller id wins ties");
    }

    #[test]
    fn labels_survive_construction() {
        let mut ids = IdAssigner::new(1);
        let ds = Dataset::from_labeled(
            vec![(ScalarPoint(1), Label::Class(7)), (ScalarPoint(2), Label::Value(0.5))],
            &mut ids,
        );
        assert_eq!(ds.records[0].label, Some(Label::Class(7)));
        assert_eq!(ds.records[1].label, Some(Label::Value(0.5)));
        assert_eq!(ds.len(), 2);
        assert!(!ds.is_empty());
        assert!(ds.by_id(ds.records[1].id).is_some());
    }

    #[test]
    fn max_id_tracks_the_largest_record() {
        assert_eq!(Dataset::<ScalarPoint>::new(Vec::new()).max_id(), None);
        let ds = dataset(&[5, 6, 7]);
        assert_eq!(ds.max_id(), ds.records.iter().map(|r| r.id).max());
    }
}
