//! Total-ordered distance values.

use serde::{Deserialize, Serialize};

/// A distance encoded so that the *encoding's* integer order equals the
/// distance order — the protocols can then treat distances as opaque
/// `u64` keys, exactly as the paper assumes ("all distances are polynomial
/// in n", §2).
///
/// Two encoding families exist and must not be mixed within one dataset
/// (a dataset has a single point type and metric, so this holds by
/// construction):
///
/// * [`Dist::from_u64`] — integer distances, stored verbatim. Used by
///   [`crate::ScalarPoint`] and [`crate::BitsPoint`].
/// * [`Dist::from_f64`] — non-negative finite floats, stored via their IEEE
///   754 bit pattern, whose unsigned order matches numeric order on
///   non-negative values. Used by [`crate::VecPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dist(u64);

impl Dist {
    /// Zero distance (identical points), valid in both families.
    pub const ZERO: Dist = Dist(0);
    /// The largest encodable distance.
    pub const MAX: Dist = Dist(u64::MAX);

    /// Encode an integer distance.
    #[inline]
    pub fn from_u64(d: u64) -> Dist {
        Dist(d)
    }

    /// Encode a non-negative finite float distance.
    ///
    /// # Panics
    /// If `d` is negative or not finite — a distance function returning
    /// either is a bug worth failing loudly on.
    #[inline]
    pub fn from_f64(d: f64) -> Dist {
        assert!(d.is_finite() && d >= 0.0, "invalid distance {d}");
        Dist(d.to_bits())
    }

    /// Raw ordered encoding (also the wire representation).
    #[inline]
    pub fn encoding(self) -> u64 {
        self.0
    }

    /// Rebuild from a wire encoding.
    #[inline]
    pub fn from_encoding(bits: u64) -> Dist {
        Dist(bits)
    }

    /// Decode an integer-family distance.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Decode a float-family distance.
    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from_bits(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_family_orders() {
        assert!(Dist::from_u64(3) < Dist::from_u64(5));
        assert_eq!(Dist::from_u64(0), Dist::ZERO);
        assert!(Dist::from_u64(u64::MAX) <= Dist::MAX);
    }

    #[test]
    fn f64_family_orders() {
        let ds = [0.0, 1e-300, 0.5, 1.0, 2.5, 1e300];
        for w in ds.windows(2) {
            assert!(Dist::from_f64(w[0]) < Dist::from_f64(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert_eq!(Dist::from_f64(0.0), Dist::ZERO);
    }

    #[test]
    fn f64_roundtrip() {
        let d = Dist::from_f64(123.456);
        assert_eq!(d.as_f64(), 123.456);
        let e = Dist::from_encoding(d.encoding());
        assert_eq!(d, e);
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn negative_distance_rejected() {
        let _ = Dist::from_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn nan_distance_rejected() {
        let _ = Dist::from_f64(f64::NAN);
    }

    #[test]
    fn ordering_matches_encoding_order() {
        let a = Dist::from_u64(10);
        let b = Dist::from_u64(20);
        assert_eq!(a.cmp(&b), a.encoding().cmp(&b.encoding()));
    }
}
