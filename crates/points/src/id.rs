//! Random unique point identifiers.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A point identifier.
///
/// The paper (§2) assigns each point a random number in `[1, n³]`, unique
/// with high probability, and uses ids to break ties between points at equal
/// distance from the query. We draw 64-bit ids, unique with probability
/// `≥ 1 − n²/2⁶⁴` by the birthday bound, and additionally guarantee
/// uniqueness *within one assigner* by construction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PointId(pub u64);

/// Deterministic generator of unique random [`PointId`]s.
///
/// Ids are random (so they carry no positional information an adversary
/// could exploit) yet unique by construction. The 64-bit id is laid out as
/// `[stream:10][counter:30][random:24]`: distinct *streams* (e.g. one per
/// machine generating data independently) and distinct counter values can
/// never collide, while the 24 random low bits keep tie-breaking unbiased.
#[derive(Debug)]
pub struct IdAssigner {
    rng: StdRng,
    stream: u64,
    counter: u64,
}

impl IdAssigner {
    /// A fresh assigner on stream 0.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0)
    }

    /// A fresh assigner for `stream` (e.g. the generating machine's index).
    ///
    /// # Panics
    /// If `stream >= 1024`.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        assert!(stream < (1 << 10), "IdAssigner stream must be < 1024");
        IdAssigner {
            rng: StdRng::seed_from_u64(seed ^ 0x0B10_C1D5_u64 ^ stream.wrapping_mul(0x9E37_79B9)),
            stream,
            counter: 0,
        }
    }

    /// Next unique id.
    pub fn next_id(&mut self) -> PointId {
        let c = self.counter;
        self.counter += 1;
        assert!(self.counter < (1 << 30), "IdAssigner exhausted");
        let lo: u64 = self.rng.random_range(0..(1u64 << 24));
        PointId((self.stream << 54) | (c << 24) | lo)
    }

    /// Assign `n` unique ids.
    pub fn assign(&mut self, n: usize) -> Vec<PointId> {
        (0..n).map(|_| self.next_id()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique() {
        let mut a = IdAssigner::new(7);
        let ids = a.assign(10_000);
        let set: HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn ids_are_deterministic_per_seed() {
        let x = IdAssigner::new(3).assign(16);
        let y = IdAssigner::new(3).assign(16);
        let z = IdAssigner::new(4).assign(16);
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ids_look_random_in_low_bits() {
        // All-zero low bits for every id would mean the RNG is not wired in.
        let mut a = IdAssigner::new(1);
        let ids = a.assign(64);
        assert!(ids.iter().any(|id| id.0 & ((1 << 24) - 1) != 0));
    }

    #[test]
    fn streams_never_collide() {
        let mut set = HashSet::new();
        for stream in 0..8 {
            // Same seed on purpose: uniqueness must come from the layout.
            let mut a = IdAssigner::with_stream(42, stream);
            for id in a.assign(1000) {
                assert!(set.insert(id), "collision at stream {stream}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "stream must be")]
    fn stream_range_checked() {
        let _ = IdAssigner::with_stream(0, 1024);
    }
}
