//! Ordered keys exchanged by the distributed protocols.

use std::fmt::Debug;

use serde::{Deserialize, Serialize};

use crate::dist::Dist;
use crate::id::PointId;

/// A totally ordered, copyable value small enough to ship over a
/// bandwidth-limited link; the protocols in `knn-core` are generic over this.
///
/// `BITS` is the wire size used for bandwidth accounting — the model assumes
/// keys are `O(log n)` bits (§2 of the paper: transfer ids and distances,
/// never the points themselves).
pub trait Key: Copy + Ord + Send + Sync + Debug + 'static {
    /// Wire size of one key in bits.
    const BITS: u64;
}

impl Key for u32 {
    const BITS: u64 = 32;
}

impl Key for u64 {
    const BITS: u64 = 64;
}

impl Key for i64 {
    const BITS: u64 = 64;
}

/// The key the ℓ-NN algorithms select on: distance to the query, with the
/// point id as a tiebreaker. Making keys distinct even for duplicate points
/// is exactly the paper's device for handling non-distinct inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DistKey {
    /// Distance from the query (most significant in the ordering).
    pub dist: Dist,
    /// Tie-breaking unique point id.
    pub id: PointId,
}

impl DistKey {
    /// Construct a key.
    #[inline]
    pub fn new(dist: Dist, id: PointId) -> Self {
        DistKey { dist, id }
    }
}

impl Key for DistKey {
    const BITS: u64 = 128;
}

/// A key with an order-preserving embedding into `u128` — what the
/// *value-domain* algorithms (binary search over distances, \[3, 18\]) need
/// beyond comparisons. Implementations must satisfy
/// `a <= b  ⟺  a.to_ordinal() <= b.to_ordinal()` and
/// `from_ordinal(to_ordinal(x)) == x`.
pub trait NumericKey: Key {
    /// Order-preserving embedding.
    fn to_ordinal(self) -> u128;
    /// Inverse of [`NumericKey::to_ordinal`] on embedded values.
    fn from_ordinal(ord: u128) -> Self;
}

impl NumericKey for u32 {
    fn to_ordinal(self) -> u128 {
        self as u128
    }
    fn from_ordinal(ord: u128) -> Self {
        ord as u32
    }
}

impl NumericKey for u64 {
    fn to_ordinal(self) -> u128 {
        self as u128
    }
    fn from_ordinal(ord: u128) -> Self {
        ord as u64
    }
}

impl NumericKey for DistKey {
    fn to_ordinal(self) -> u128 {
        ((self.dist.encoding() as u128) << 64) | self.id.0 as u128
    }
    fn from_ordinal(ord: u128) -> Self {
        DistKey::new(Dist::from_encoding((ord >> 64) as u64), PointId(ord as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_dominates_order() {
        let a = DistKey::new(Dist::from_u64(1), PointId(999));
        let b = DistKey::new(Dist::from_u64(2), PointId(0));
        assert!(a < b);
    }

    #[test]
    fn id_breaks_ties() {
        let a = DistKey::new(Dist::from_u64(5), PointId(1));
        let b = DistKey::new(Dist::from_u64(5), PointId(2));
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn key_bits() {
        assert_eq!(<u64 as Key>::BITS, 64);
        assert_eq!(<DistKey as Key>::BITS, 128);
    }

    #[test]
    fn ordinal_roundtrip_and_order() {
        let keys = [
            DistKey::new(Dist::from_u64(0), PointId(0)),
            DistKey::new(Dist::from_u64(0), PointId(u64::MAX)),
            DistKey::new(Dist::from_u64(1), PointId(0)),
            DistKey::new(Dist::from_u64(u64::MAX), PointId(7)),
        ];
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].to_ordinal() < w[1].to_ordinal());
        }
        for k in keys {
            assert_eq!(DistKey::from_ordinal(k.to_ordinal()), k);
        }
        assert_eq!(u64::from_ordinal(42u64.to_ordinal()), 42);
    }
}
