//! # knn-points — points, metrics, and distance keys
//!
//! Geometry substrate for the SPAA 2020 k-NN reproduction. The paper's key
//! observation (§2) is that the distributed algorithms never need to ship
//! points — only **distances** and **point identifiers**:
//!
//! * every point gets a random unique [`PointId`] (the paper draws from
//!   `[1, n³]`; we draw 64-bit ids, collision-free with even higher
//!   probability), which also breaks ties between equidistant points;
//! * a distance is encoded as a total-ordered [`Dist`];
//! * the pair `(Dist, PointId)` forms a [`DistKey`] — the `O(log n)`-bit
//!   value the protocols actually exchange.
//!
//! Point flavors: [`ScalarPoint`] (the paper's experimental workload:
//! unsigned integers on a line), [`VecPoint`] (dense `f64` vectors under
//! [`Metric::Euclidean`] and friends), and [`BitsPoint`] (bit strings under
//! Hamming distance).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod dist;
pub mod id;
pub mod key;
pub mod metric;
pub mod point;

pub use dataset::{brute_force_knn, Dataset, Label, Record};
pub use dist::Dist;
pub use id::{IdAssigner, PointId};
pub use key::{DistKey, Key, NumericKey};
pub use metric::Metric;
pub use point::{BitsPoint, Point, ScalarPoint, VecPoint};
