//! Distance metrics.

use serde::{Deserialize, Serialize};

use crate::dist::Dist;

/// Which norm to use between points. The paper allows "any absolute norm
/// ||p − q||" (§1.5); these are the standard choices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Metric {
    /// L2 norm.
    #[default]
    Euclidean,
    /// Squared L2: same ordering as L2 without the square root — a common
    /// implementation choice for nearest-neighbor work since ranking is all
    /// that matters.
    SquaredEuclidean,
    /// L1 norm.
    Manhattan,
    /// L∞ norm.
    Chebyshev,
    /// General Minkowski p-norm (`p ≥ 1`).
    Minkowski(f64),
    /// Number of differing coordinates.
    Hamming,
}

impl Metric {
    /// Distance between two equal-length `f64` slices.
    ///
    /// # Panics
    /// If the slices have different lengths, or `Minkowski(p)` with `p < 1`.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> Dist {
        assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
        match *self {
            Metric::Euclidean => Dist::from_f64(sum_sq(a, b).sqrt()),
            Metric::SquaredEuclidean => Dist::from_f64(sum_sq(a, b)),
            Metric::Manhattan => Dist::from_f64(a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()),
            Metric::Chebyshev => {
                Dist::from_f64(a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max))
            }
            Metric::Minkowski(p) => {
                assert!(p >= 1.0, "Minkowski exponent must be >= 1, got {p}");
                let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs().powf(p)).sum();
                Dist::from_f64(s.powf(1.0 / p))
            }
            Metric::Hamming => {
                Dist::from_u64(a.iter().zip(b).filter(|(x, y)| x != y).count() as u64)
            }
        }
    }
}

#[inline]
fn sum_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [0.0, 0.0, 0.0];
    const B: [f64; 3] = [3.0, 4.0, 0.0];

    #[test]
    fn euclidean() {
        assert_eq!(Metric::Euclidean.distance(&A, &B).as_f64(), 5.0);
    }

    #[test]
    fn squared_euclidean_monotone_with_euclidean() {
        let c = [1.0, 1.0, 1.0];
        let d1 = Metric::Euclidean.distance(&A, &B);
        let d2 = Metric::Euclidean.distance(&A, &c);
        let s1 = Metric::SquaredEuclidean.distance(&A, &B);
        let s2 = Metric::SquaredEuclidean.distance(&A, &c);
        assert_eq!(d1 < d2, s1 < s2);
    }

    #[test]
    fn manhattan() {
        assert_eq!(Metric::Manhattan.distance(&A, &B).as_f64(), 7.0);
    }

    #[test]
    fn chebyshev() {
        assert_eq!(Metric::Chebyshev.distance(&A, &B).as_f64(), 4.0);
    }

    #[test]
    fn minkowski_matches_l1_l2_extremes() {
        let l1 = Metric::Minkowski(1.0).distance(&A, &B).as_f64();
        let l2 = Metric::Minkowski(2.0).distance(&A, &B).as_f64();
        assert!((l1 - 7.0).abs() < 1e-9);
        assert!((l2 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn hamming_counts_differences() {
        assert_eq!(Metric::Hamming.distance(&A, &B).as_u64(), 2);
        assert_eq!(Metric::Hamming.distance(&A, &A).as_u64(), 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = Metric::Euclidean.distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "Minkowski exponent")]
    fn bad_minkowski_panics() {
        let _ = Metric::Minkowski(0.5).distance(&A, &B);
    }
}
