//! Point types.

use serde::{Deserialize, Serialize};

use crate::dist::Dist;
use crate::metric::Metric;

/// Anything with a distance to another value of the same type.
///
/// Implementations must be symmetric (`d(a,b) = d(b,a)`) and satisfy
/// `d(a,a) = 0`; all the provided ones also satisfy the triangle inequality
/// for the true metrics (squared Euclidean being the usual
/// ranking-equivalent exception).
pub trait Point: Clone + Send + Sync + 'static {
    /// Distance under `metric`.
    fn distance(&self, other: &Self, metric: Metric) -> Dist;
}

/// A point on the integer line — the paper's experimental workload
/// (each process draws 2²² values in `[0, 2³² − 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ScalarPoint(pub u64);

impl Point for ScalarPoint {
    fn distance(&self, other: &Self, metric: Metric) -> Dist {
        match metric {
            Metric::Hamming => Dist::from_u64(u64::from(self.0 != other.0)),
            Metric::SquaredEuclidean => {
                let d = self.0.abs_diff(other.0);
                Dist::from_u64(d.saturating_mul(d))
            }
            // Euclidean = Manhattan = Chebyshev = Minkowski on a line.
            _ => Dist::from_u64(self.0.abs_diff(other.0)),
        }
    }
}

/// A dense vector in `R^d`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VecPoint(pub Box<[f64]>);

impl VecPoint {
    /// Build from any iterable of coordinates.
    pub fn new(coords: impl Into<Vec<f64>>) -> Self {
        VecPoint(coords.into().into_boxed_slice())
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.0.len()
    }
}

impl Point for VecPoint {
    fn distance(&self, other: &Self, metric: Metric) -> Dist {
        metric.distance(&self.0, &other.0)
    }
}

/// A bit string, e.g. a binary fingerprint; distance is Hamming weight of
/// the XOR regardless of the requested metric (the only norm that makes
/// sense on bits).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitsPoint(pub Box<[u64]>);

impl BitsPoint {
    /// Build from 64-bit words.
    pub fn new(words: impl Into<Vec<u64>>) -> Self {
        BitsPoint(words.into().into_boxed_slice())
    }
}

impl Point for BitsPoint {
    fn distance(&self, other: &Self, _metric: Metric) -> Dist {
        assert_eq!(self.0.len(), other.0.len(), "bit-length mismatch");
        let d: u64 =
            self.0.iter().zip(other.0.iter()).map(|(a, b)| (a ^ b).count_ones() as u64).sum();
        Dist::from_u64(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_distance_is_abs_diff() {
        let a = ScalarPoint(10);
        let b = ScalarPoint(3);
        assert_eq!(a.distance(&b, Metric::Euclidean).as_u64(), 7);
        assert_eq!(b.distance(&a, Metric::Euclidean).as_u64(), 7);
        assert_eq!(a.distance(&a, Metric::Euclidean), Dist::ZERO);
    }

    #[test]
    fn scalar_hamming_is_equality() {
        let a = ScalarPoint(10);
        let b = ScalarPoint(3);
        assert_eq!(a.distance(&b, Metric::Hamming).as_u64(), 1);
        assert_eq!(a.distance(&a, Metric::Hamming).as_u64(), 0);
    }

    #[test]
    fn scalar_squared_saturates() {
        let a = ScalarPoint(0);
        let b = ScalarPoint(u64::MAX);
        assert_eq!(a.distance(&b, Metric::SquaredEuclidean), Dist::from_u64(u64::MAX));
    }

    #[test]
    fn vec_point_distance() {
        let a = VecPoint::new(vec![0.0, 0.0]);
        let b = VecPoint::new(vec![3.0, 4.0]);
        assert_eq!(a.distance(&b, Metric::Euclidean).as_f64(), 5.0);
        assert_eq!(a.dims(), 2);
    }

    #[test]
    fn bits_point_hamming() {
        let a = BitsPoint::new(vec![0b1010, 0]);
        let b = BitsPoint::new(vec![0b0110, 1]);
        assert_eq!(a.distance(&b, Metric::Hamming).as_u64(), 3);
        assert_eq!(a.distance(&a, Metric::Euclidean).as_u64(), 0);
    }

    #[test]
    fn symmetry_holds_for_all_types() {
        let a = VecPoint::new(vec![1.0, 2.0, -3.0]);
        let b = VecPoint::new(vec![-4.0, 0.5, 9.0]);
        for m in [
            Metric::Euclidean,
            Metric::SquaredEuclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Minkowski(3.0),
            Metric::Hamming,
        ] {
            assert_eq!(a.distance(&b, m), b.distance(&a, m), "{m:?}");
        }
    }
}
