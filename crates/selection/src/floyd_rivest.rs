//! Floyd–Rivest SELECT (CACM 1975) — the classic expected
//! `n + min(k, n−k) + O(√n)`-comparison selection algorithm.
//!
//! Included alongside quickselect and median-of-medians because it is the
//! strongest *sequential* selection competitor: the distributed layer's
//! local truncation step spends most of its time here, and the benchmark
//! suite compares all three.

use rand::RngExt;

/// In-place Floyd–Rivest selection: after the call `data[n]` holds the
/// rank-`n` (0-based) value with the partition invariant around it.
///
/// Falls back to plain partitioning on small ranges; on large ranges it
/// first recursively selects within a `O(n^{2/3})`-sized sample to obtain
/// two pivots that bracket the target rank with high probability, then
/// partitions against them — touching most elements only once.
///
/// # Panics
/// If `n >= data.len()`.
// `rng` is threaded only into the recursive narrowing step; it is kept in
// the signature for parity with the other selectors so callers can swap
// algorithms freely.
#[allow(clippy::only_used_in_recursion)]
pub fn floyd_rivest_select<T: Ord + Copy, R: RngExt>(data: &mut [T], n: usize, rng: &mut R) {
    assert!(n < data.len(), "rank {n} out of bounds for length {}", data.len());
    let mut left = 0usize;
    let mut right = data.len() - 1;
    while right > left {
        if right - left > 600 {
            // Sample bounds (constants from the original paper).
            let len = (right - left + 1) as f64;
            let i = (n - left + 1) as f64;
            let z = len.ln();
            let s = 0.5 * (2.0 * z / 3.0).exp();
            let sign = if i < len / 2.0 { -1.0 } else { 1.0 };
            let sd = 0.5 * (z * s * (len - s) / len).sqrt() * sign;
            let new_left = (n as f64 - i * s / len + sd).max(left as f64) as usize;
            let new_right = (n as f64 + (len - i) * s / len + sd).min(right as f64) as usize;
            if new_left <= n && n <= new_right && new_right - new_left < right - left {
                floyd_rivest_select(&mut data[new_left..=new_right], n - new_left, rng);
            }
        }
        // Hoare partition around data[n].
        let t = data[n];
        let mut i = left;
        let mut j = right;
        data.swap(left, n);
        if data[right] > t {
            data.swap(left, right);
        }
        while i < j {
            data.swap(i, j);
            i += 1;
            j -= 1;
            while data[i] < t {
                i += 1;
            }
            while data[j] > t {
                j -= 1;
            }
        }
        if data[left] == t {
            data.swap(left, j);
        } else {
            j += 1;
            data.swap(j, right);
        }
        // Narrow to the side containing rank n.
        if j <= n {
            left = j + 1;
        }
        if n <= j {
            if j == 0 {
                break; // n == 0 and it is already in place.
            }
            right = j - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn check(mut data: Vec<u64>, n: usize, seed: u64) {
        let mut expected = data.clone();
        expected.sort_unstable();
        let mut rng = StdRng::seed_from_u64(seed);
        floyd_rivest_select(&mut data, n, &mut rng);
        assert_eq!(data[n], expected[n], "rank {n} of {} elements", expected.len());
        assert!(data[..n].iter().all(|&x| x <= data[n]));
        assert!(data[n + 1..].iter().all(|&x| x >= data[n]));
    }

    #[test]
    fn all_ranks_small() {
        let base: Vec<u64> = vec![9, 3, 7, 1, 5, 5, 5, 0, 2, 8, 100, 42];
        for n in 0..base.len() {
            check(base.clone(), n, n as u64);
        }
    }

    #[test]
    fn large_inputs_all_patterns() {
        let n = 50_000usize;
        check((0..n as u64).collect(), n / 2, 1);
        check((0..n as u64).rev().collect(), n / 3, 2);
        check(vec![7; n], n - 1, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let random: Vec<u64> = (0..n).map(|_| rng.random()).collect();
        check(random.clone(), 0, 5);
        check(random.clone(), n - 1, 6);
        check(random, 617, 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_sort(
            data in proptest::collection::vec(0u64..10_000, 1..2000),
            n_frac in 0.0f64..1.0,
            seed in 0u64..1000,
        ) {
            let n = ((data.len() - 1) as f64 * n_frac) as usize;
            check(data, n, seed);
        }
    }
}
