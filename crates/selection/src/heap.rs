//! Bounded-heap streaming top-ℓ.

use std::collections::BinaryHeap;

/// Streaming accumulator of the `k` smallest items seen, `O(log k)` per
/// push. This is what each machine uses to truncate its local input to its
/// ℓ best candidates (Algorithm 2, step 2) in one pass and `O(ℓ)` memory.
#[derive(Debug, Clone)]
pub struct TopK<T: Ord> {
    k: usize,
    // Max-heap: the root is the *worst* of the current best-k, evicted first.
    heap: BinaryHeap<T>,
}

impl<T: Ord + Copy> TopK<T> {
    /// An accumulator keeping the `k` smallest items.
    pub fn new(k: usize) -> Self {
        TopK { k, heap: BinaryHeap::with_capacity(k.saturating_add(1)) }
    }

    /// Offer one item.
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(item);
        } else if let Some(&worst) = self.heap.peek() {
            if item < worst {
                self.heap.pop();
                self.heap.push(item);
            }
        }
    }

    /// Number of items currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current threshold: the largest kept item, if the buffer is full.
    pub fn threshold(&self) -> Option<T> {
        if self.heap.len() == self.k {
            self.heap.peek().copied()
        } else {
            None
        }
    }

    /// Finish, returning the kept items in ascending order.
    pub fn into_sorted(self) -> Vec<T> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

/// The `k` smallest items of `iter`, ascending. `O(n log k)` time,
/// `O(k)` memory.
pub fn smallest_k<T: Ord + Copy>(iter: impl IntoIterator<Item = T>, k: usize) -> Vec<T> {
    let mut top = TopK::new(k);
    for item in iter {
        top.push(item);
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_smallest() {
        let got = smallest_k([5u64, 1, 9, 3, 7, 2, 8], 3);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn k_zero_and_k_big() {
        assert!(smallest_k([1u64, 2, 3], 0).is_empty());
        assert_eq!(smallest_k([3u64, 1, 2], 10), vec![1, 2, 3]);
    }

    #[test]
    fn threshold_only_when_full() {
        let mut t = TopK::new(2);
        assert!(t.is_empty());
        t.push(5u64);
        assert_eq!(t.threshold(), None);
        t.push(3);
        assert_eq!(t.threshold(), Some(5));
        t.push(1);
        assert_eq!(t.threshold(), Some(3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.into_sorted(), vec![1, 3]);
    }

    #[test]
    fn duplicates_kept_up_to_k() {
        let got = smallest_k([2u64, 2, 2, 1, 1], 4);
        assert_eq!(got, vec![1, 1, 2, 2]);
    }

    proptest! {
        #[test]
        fn prop_matches_sort(
            data in proptest::collection::vec(0u64..1000, 0..200),
            k in 0usize..32,
        ) {
            let got = smallest_k(data.iter().copied(), k);
            let mut expected = data;
            expected.sort_unstable();
            expected.truncate(k);
            prop_assert_eq!(got, expected);
        }
    }
}
