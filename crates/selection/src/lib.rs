//! # knn-selection — sequential selection algorithms
//!
//! The paper reduces ℓ-nearest-neighbors to the *selection problem*: find
//! the ℓ-smallest of n values (§1.2, citing CLRS). This crate provides the
//! sequential selection toolbox the distributed layer builds on:
//!
//! * [`quickselect`] — randomized in-place selection, expected `O(n)`; the
//!   sequential analogue of the paper's Algorithm 1.
//! * [`median_of_medians`] — the deterministic worst-case `O(n)` algorithm
//!   (Blum–Floyd–Pratt–Rivest–Tarjan) the paper cites via CLRS \[5\].
//! * [`select_nth`] — introselect: randomized pivots with a deterministic
//!   fallback, the production entry point.
//! * [`heap`] — bounded-heap streaming top-ℓ, `O(n log ℓ)`, used by every
//!   machine to truncate its local set to its ℓ best (Algorithm 2, step 2).
//! * [`weighted_median`] — the weighted median of medians underlying the
//!   Saukas–Song deterministic distributed baseline \[16\].
//! * [`floyd_rivest_select`] — Floyd–Rivest SELECT, the strongest
//!   sequential competitor, for the substrate benchmarks.
//!
//! All functions operate on `T: Ord + Copy` — in this workspace keys are
//! 128-bit `(distance, id)` pairs, so copying is cheaper than chasing
//! references.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod floyd_rivest;
pub mod heap;
pub mod median_of_medians;
pub mod partition;
pub mod quickselect;
pub mod reference;
pub mod weighted_median;

pub use floyd_rivest::floyd_rivest_select;
pub use heap::{smallest_k, TopK};
pub use median_of_medians::median_of_medians;
pub use quickselect::quickselect;
pub use weighted_median::{weighted_median, WeightedMedianError};

use rand::RngExt;

/// Introselect: randomized quickselect with a deterministic
/// median-of-medians fallback once the recursion misbehaves, guaranteeing
/// worst-case `O(n)` while keeping quickselect's constants on typical data.
///
/// After the call, `data[n]` is the value with rank `n` (0-based) and
/// everything before it is `≤` it, everything after `≥` it.
///
/// # Panics
/// If `n >= data.len()`.
pub fn select_nth<T: Ord + Copy, R: RngExt>(data: &mut [T], n: usize, rng: &mut R) {
    quickselect::select_with_depth_limit(data, n, rng);
}

/// The ℓ smallest values of `data`, ascending. Convenience wrapper choosing
/// between the heap (`ℓ ≪ n`) and select-then-sort strategies.
pub fn smallest_k_sorted<T: Ord + Copy, R: RngExt>(data: &[T], k: usize, rng: &mut R) -> Vec<T> {
    if k == 0 || data.is_empty() {
        return Vec::new();
    }
    if k >= data.len() {
        let mut all = data.to_vec();
        all.sort_unstable();
        return all;
    }
    // Heuristic: k log k work for the heap vs a full copy + linear select.
    if k < data.len() / 8 {
        smallest_k(data.iter().copied(), k)
    } else {
        let mut copy = data.to_vec();
        select_nth(&mut copy, k - 1, rng);
        copy.truncate(k);
        copy.sort_unstable();
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn smallest_k_sorted_matches_sort() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u64> = (0..500).map(|_| rng.random_range(0..100)).collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        for k in [0, 1, 7, 63, 250, 499, 500, 600] {
            let got = smallest_k_sorted(&data, k, &mut rng);
            assert_eq!(got, expected[..k.min(data.len())], "k = {k}");
        }
    }

    #[test]
    fn select_nth_places_rank() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut data: Vec<u64> = (0..1000).rev().collect();
        select_nth(&mut data, 123, &mut rng);
        assert_eq!(data[123], 123);
        assert!(data[..123].iter().all(|&x| x <= 123));
        assert!(data[124..].iter().all(|&x| x >= 123));
    }
}
