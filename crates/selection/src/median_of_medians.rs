//! Deterministic linear-time selection (BFPRT / "median of medians").

use crate::partition::partition3;

/// The value of rank `n` (0-based) in `data`, computed in worst-case
/// `O(len)` time with the groups-of-5 pivot rule. `data` is reordered.
///
/// # Panics
/// If `n >= data.len()`.
pub fn median_of_medians<T: Ord + Copy>(data: &mut [T], n: usize) -> T {
    assert!(n < data.len(), "rank {n} out of bounds for length {}", data.len());
    median_of_medians_select(data, n);
    data[n]
}

/// In-place variant: after the call `data[n]` is the rank-`n` value with the
/// usual partition invariant around it.
pub(crate) fn median_of_medians_select<T: Ord + Copy>(data: &mut [T], n: usize) {
    debug_assert!(n < data.len());
    let mut lo = 0usize;
    let mut hi = data.len();
    loop {
        if hi - lo <= 1 {
            return;
        }
        if hi - lo <= 10 {
            data[lo..hi].sort_unstable();
            return;
        }
        let pivot = pick_pivot(&mut data[lo..hi]);
        let (lt, gt) = {
            let (l, g) = partition3(&mut data[lo..hi], pivot);
            (lo + l, lo + g)
        };
        if n < lt {
            hi = lt;
        } else if n >= gt {
            lo = gt;
        } else {
            return;
        }
    }
}

/// Median of the medians of groups of 5 — guaranteed to sit between the
/// 30th and 70th percentile, bounding the recursion.
fn pick_pivot<T: Ord + Copy>(data: &mut [T]) -> T {
    let len = data.len();
    let groups = len / 5;
    for g in 0..groups {
        let start = g * 5;
        data[start..start + 5].sort_unstable();
        // Move the group median to the front block.
        data.swap(g, start + 2);
    }
    if groups == 0 {
        // len < 5: median of the whole slice.
        let mut tmp = data.to_vec();
        tmp.sort_unstable();
        return tmp[tmp.len() / 2];
    }
    let mid = groups / 2;
    median_of_medians_recurse(&mut data[..groups], mid);
    data[mid]
}

fn median_of_medians_recurse<T: Ord + Copy>(data: &mut [T], n: usize) {
    median_of_medians_select(data, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check(mut data: Vec<u64>, n: usize) {
        let mut expected = data.clone();
        expected.sort_unstable();
        let got = median_of_medians(&mut data, n);
        assert_eq!(got, expected[n], "rank {n} of len {}", expected.len());
    }

    #[test]
    fn all_ranks_small_inputs() {
        for len in 1..=30usize {
            let data: Vec<u64> = (0..len as u64).map(|i| (i * 7919) % 100).collect();
            for n in 0..len {
                check(data.clone(), n);
            }
        }
    }

    #[test]
    fn adversarial_patterns() {
        check((0..10_000).collect(), 5_000);
        check((0..10_000).rev().collect(), 5_000);
        check(vec![42; 10_000], 9_999);
        // Organ pipe.
        let mut organ: Vec<u64> = (0..5000).chain((0..5000).rev()).collect();
        let mut expected = organ.clone();
        expected.sort_unstable();
        assert_eq!(median_of_medians(&mut organ, 7000), expected[7000]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        median_of_medians::<u64>(&mut [1], 1);
    }

    proptest! {
        #[test]
        fn prop_matches_sort(
            data in proptest::collection::vec(0u64..500, 1..300),
            n_frac in 0.0f64..1.0,
        ) {
            let n = ((data.len() - 1) as f64 * n_frac) as usize;
            check(data, n);
        }
    }
}
