//! Three-way (Dutch national flag) partitioning.

/// Partition `data` around `pivot` in place. Returns `(lt, gt)` such that
/// afterwards:
///
/// * `data[..lt]    <  pivot`
/// * `data[lt..gt] == pivot`
/// * `data[gt..]    >  pivot`
///
/// Three-way partitioning keeps selection linear even on inputs that are
/// mostly duplicates — the degenerate case the paper handles with unique
/// tie-breaking ids, and that a plain two-way Lomuto partition turns
/// quadratic.
pub fn partition3<T: Ord + Copy>(data: &mut [T], pivot: T) -> (usize, usize) {
    let mut lt = 0;
    let mut i = 0;
    let mut gt = data.len();
    while i < gt {
        if data[i] < pivot {
            data.swap(lt, i);
            lt += 1;
            i += 1;
        } else if data[i] > pivot {
            gt -= 1;
            data.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(data: &mut [u64], pivot: u64) {
        let mut sorted_before = data.to_vec();
        sorted_before.sort_unstable();
        let (lt, gt) = partition3(data, pivot);
        assert!(data[..lt].iter().all(|&x| x < pivot));
        assert!(data[lt..gt].iter().all(|&x| x == pivot));
        assert!(data[gt..].iter().all(|&x| x > pivot));
        let mut sorted_after = data.to_vec();
        sorted_after.sort_unstable();
        assert_eq!(sorted_before, sorted_after, "partition must be a permutation");
    }

    #[test]
    fn basic_partition() {
        check(&mut [5, 1, 9, 5, 3, 7, 5], 5);
    }

    #[test]
    fn pivot_absent() {
        check(&mut [1, 9, 3, 7], 5);
    }

    #[test]
    fn all_equal() {
        check(&mut [4, 4, 4, 4], 4);
    }

    #[test]
    fn empty_and_singleton() {
        check(&mut [], 1);
        check(&mut [2], 2);
        check(&mut [2], 1);
        check(&mut [2], 3);
    }

    #[test]
    fn already_sorted_and_reversed() {
        let mut a: Vec<u64> = (0..100).collect();
        check(&mut a, 50);
        let mut b: Vec<u64> = (0..100).rev().collect();
        check(&mut b, 50);
    }
}
