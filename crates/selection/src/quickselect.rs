//! Randomized quickselect — the sequential analogue of the paper's
//! distributed Algorithm 1.

use rand::RngExt;

use crate::median_of_medians::median_of_medians_select;
use crate::partition::partition3;

/// In-place randomized selection: after the call `data[n]` holds the value
/// of rank `n` (0-based), with `data[..n] ≤ data[n] ≤ data[n+1..]`.
/// Expected `O(len)` comparisons; see CLRS §9.2 (the paper's reference \[5\]).
///
/// # Panics
/// If `n >= data.len()`.
pub fn quickselect<T: Ord + Copy, R: RngExt>(data: &mut [T], n: usize, rng: &mut R) {
    assert!(n < data.len(), "rank {n} out of bounds for length {}", data.len());
    let mut lo = 0usize;
    let mut hi = data.len();
    loop {
        if hi - lo <= 1 {
            return;
        }
        let pivot = data[rng.random_range(lo..hi)];
        let (lt, gt) = partition3_offset(data, lo, hi, pivot);
        if n < lt {
            hi = lt;
        } else if n >= gt {
            lo = gt;
        } else {
            return; // n lands in the equal run.
        }
    }
}

/// Quickselect with a depth limit: after `2 * ceil(log2 len) + 8` shrinking
/// iterations that failed to finish, switch to deterministic
/// median-of-medians. Worst case `O(len)` regardless of RNG behavior.
pub fn select_with_depth_limit<T: Ord + Copy, R: RngExt>(data: &mut [T], n: usize, rng: &mut R) {
    assert!(n < data.len(), "rank {n} out of bounds for length {}", data.len());
    let mut lo = 0usize;
    let mut hi = data.len();
    let mut budget = 2 * (usize::BITS - data.len().leading_zeros()) as usize + 8;
    loop {
        if hi - lo <= 1 {
            return;
        }
        if budget == 0 {
            median_of_medians_select(&mut data[lo..hi], n - lo);
            return;
        }
        budget -= 1;
        let pivot = data[rng.random_range(lo..hi)];
        let (lt, gt) = partition3_offset(data, lo, hi, pivot);
        if n < lt {
            hi = lt;
        } else if n >= gt {
            lo = gt;
        } else {
            return;
        }
    }
}

/// [`partition3`] on `data[lo..hi]`, returning absolute boundaries.
fn partition3_offset<T: Ord + Copy>(
    data: &mut [T],
    lo: usize,
    hi: usize,
    pivot: T,
) -> (usize, usize) {
    let (lt, gt) = partition3(&mut data[lo..hi], pivot);
    (lo + lt, lo + gt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn check_select(mut data: Vec<u64>, n: usize, seed: u64) {
        let mut expected = data.clone();
        expected.sort_unstable();
        let mut rng = StdRng::seed_from_u64(seed);
        quickselect(&mut data, n, &mut rng);
        assert_eq!(data[n], expected[n], "rank {n}");
        assert!(data[..n].iter().all(|&x| x <= data[n]));
        assert!(data[n + 1..].iter().all(|&x| x >= data[n]));
    }

    #[test]
    fn selects_every_rank_small() {
        let base: Vec<u64> = vec![9, 3, 7, 1, 5, 5, 5, 0, 2, 8];
        for n in 0..base.len() {
            check_select(base.clone(), n, n as u64);
        }
    }

    #[test]
    fn handles_sorted_reverse_and_constant() {
        check_select((0..1000).collect(), 500, 1);
        check_select((0..1000).rev().collect(), 500, 2);
        check_select(vec![7; 1000], 123, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rank_out_of_bounds_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        quickselect::<u64, _>(&mut [1, 2, 3], 3, &mut rng);
    }

    #[test]
    fn depth_limited_variant_agrees() {
        let mut rng = StdRng::seed_from_u64(4);
        for len in [1usize, 2, 3, 10, 100, 1000] {
            let data: Vec<u64> = (0..len as u64).map(|i| i * 37 % (len as u64)).collect();
            for n in [0, len / 3, len / 2, len - 1] {
                let mut a = data.clone();
                let mut b = data.clone();
                select_with_depth_limit(&mut a, n, &mut rng);
                let mut expected = b.clone();
                expected.sort_unstable();
                quickselect(&mut b, n, &mut rng);
                assert_eq!(a[n], expected[n]);
                assert_eq!(b[n], expected[n]);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_quickselect_matches_sort(
            data in proptest::collection::vec(0u64..1000, 1..200),
            n_frac in 0.0f64..1.0,
            seed in 0u64..u64::MAX,
        ) {
            let n = ((data.len() - 1) as f64 * n_frac) as usize;
            let mut expected = data.clone();
            expected.sort_unstable();
            let mut got = data;
            let mut rng = StdRng::seed_from_u64(seed);
            quickselect(&mut got, n, &mut rng);
            prop_assert_eq!(got[n], expected[n]);
        }

        #[test]
        fn prop_partition_invariant_after_select(
            data in proptest::collection::vec(0i64..50, 2..100),
            seed in 0u64..u64::MAX,
        ) {
            let n = data.len() / 2;
            let mut got = data;
            let mut rng = StdRng::seed_from_u64(seed);
            select_with_depth_limit(&mut got, n, &mut rng);
            let v = got[n];
            prop_assert!(got[..n].iter().all(|&x| x <= v));
            prop_assert!(got[n + 1..].iter().all(|&x| x >= v));
        }
    }
}
