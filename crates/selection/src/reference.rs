//! Sort-based reference implementations used as test oracles.

/// The rank-`n` (0-based) value by full sort — `O(n log n)`, trivially
/// correct, the oracle every selection algorithm is tested against.
pub fn nth_by_sort<T: Ord + Copy>(data: &[T], n: usize) -> T {
    assert!(n < data.len(), "rank {n} out of bounds for length {}", data.len());
    let mut copy = data.to_vec();
    copy.sort_unstable();
    copy[n]
}

/// The `k` smallest values by full sort, ascending.
pub fn smallest_k_by_sort<T: Ord + Copy>(data: &[T], k: usize) -> Vec<T> {
    let mut copy = data.to_vec();
    copy.sort_unstable();
    copy.truncate(k);
    copy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_behaviour() {
        let data = [5u64, 1, 4, 1, 5, 9, 2, 6];
        assert_eq!(nth_by_sort(&data, 0), 1);
        assert_eq!(nth_by_sort(&data, 7), 9);
        assert_eq!(smallest_k_by_sort(&data, 3), vec![1, 1, 2]);
        assert_eq!(smallest_k_by_sort(&data, 0), Vec::<u64>::new());
        assert_eq!(smallest_k_by_sort(&data, 100).len(), 8);
    }
}
