//! Weighted median — the pivot rule of the Saukas–Song deterministic
//! distributed selection baseline \[16\].

use std::fmt;

/// Error for an empty or zero-weight input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedMedianError;

impl fmt::Display for WeightedMedianError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "weighted median of an empty or zero-weight collection")
    }
}

impl std::error::Error for WeightedMedianError {}

/// The *lower weighted median*: the smallest value `m` such that the total
/// weight of items `≤ m` is at least half the total weight.
///
/// In Saukas–Song each machine contributes its local median weighted by its
/// live count; partitioning at the weighted median of those medians is
/// guaranteed to discard at least a quarter of the live items per iteration,
/// giving the deterministic `O(log(kℓ))` round bound the paper compares
/// against.
///
/// `O(m log m)` in the number of items `m` (which is `k` in the protocol —
/// negligible against the point counts).
pub fn weighted_median<T: Ord + Copy>(items: &mut [(T, u64)]) -> Result<T, WeightedMedianError> {
    let total: u64 = items.iter().map(|&(_, w)| w).sum();
    if total == 0 {
        return Err(WeightedMedianError);
    }
    items.sort_unstable_by_key(|&(v, _)| v);
    let half = total.div_ceil(2);
    let mut acc = 0u64;
    for &(v, w) in items.iter() {
        acc += w;
        if acc >= half {
            return Ok(v);
        }
    }
    unreachable!("cumulative weight reaches total");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unweighted_median() {
        let mut items: Vec<(u64, u64)> = [1, 2, 3, 4, 5].iter().map(|&v| (v, 1)).collect();
        assert_eq!(weighted_median(&mut items), Ok(3));
    }

    #[test]
    fn heavy_item_dominates() {
        let mut items = vec![(10u64, 1), (20, 100), (30, 1)];
        assert_eq!(weighted_median(&mut items), Ok(20));
    }

    #[test]
    fn lower_median_on_even_split() {
        // Weight 1 each: half = 1, first item already reaches it.
        let mut items = vec![(1u64, 1), (2, 1)];
        assert_eq!(weighted_median(&mut items), Ok(1));
    }

    #[test]
    fn zero_weights_are_skippable() {
        let mut items = vec![(5u64, 0), (7, 3), (9, 0)];
        assert_eq!(weighted_median(&mut items), Ok(7));
    }

    #[test]
    fn empty_and_all_zero_error() {
        let mut empty: Vec<(u64, u64)> = vec![];
        assert_eq!(weighted_median(&mut empty), Err(WeightedMedianError));
        let mut zeros = vec![(1u64, 0), (2, 0)];
        assert_eq!(weighted_median(&mut zeros), Err(WeightedMedianError));
    }

    proptest! {
        /// Definition check: weight strictly below the median is < half the
        /// total, and weight at or below it is >= half.
        #[test]
        fn prop_weighted_median_definition(
            items in proptest::collection::vec((0u64..100, 1u64..50), 1..60),
        ) {
            let total: u64 = items.iter().map(|&(_, w)| w).sum();
            let mut work = items.clone();
            let m = weighted_median(&mut work).unwrap();
            let below: u64 = items.iter().filter(|&&(v, _)| v < m).map(|&(_, w)| w).sum();
            let at_or_below: u64 = items.iter().filter(|&&(v, _)| v <= m).map(|&(_, w)| w).sum();
            prop_assert!(below < total.div_ceil(2) || items.iter().all(|&(v, _)| v >= m));
            prop_assert!(at_or_below >= total.div_ceil(2));
        }
    }
}
