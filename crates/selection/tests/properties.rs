//! Cross-algorithm property suite: every selection algorithm in this crate
//! must agree with the sort-based oracles in `reference.rs`, on random and
//! on adversarial (sorted / reversed / duplicate-heavy) inputs, and
//! `weighted_median` must match a brute-force weighted-rank oracle.

use knn_selection::reference::{nth_by_sort, smallest_k_by_sort};
use knn_selection::{
    floyd_rivest_select, median_of_medians, quickselect, select_nth, smallest_k, smallest_k_sorted,
    weighted_median,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run every rank-`n` selection algorithm on its own copy of `data` and
/// assert each lands exactly on the oracle value with a correct partition
/// around it.
/// One selection algorithm under test: selects rank `n` in place and
/// returns the value it placed there.
type SelectFn = fn(&mut [u64], usize, &mut StdRng) -> u64;

fn assert_all_select_rank(data: &[u64], n: usize, seed: u64) {
    let expected = nth_by_sort(data, n);
    let algorithms: &[(&str, SelectFn)] = &[
        ("quickselect", |d, n, rng| {
            quickselect(d, n, rng);
            d[n]
        }),
        ("floyd_rivest", |d, n, rng| {
            floyd_rivest_select(d, n, rng);
            d[n]
        }),
        ("median_of_medians", |d, n, _rng| median_of_medians(d, n)),
        ("select_nth (introselect)", |d, n, rng| {
            select_nth(d, n, rng);
            d[n]
        }),
    ];
    for (name, run) in algorithms {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut copy = data.to_vec();
        let got = run(&mut copy, n, &mut rng);
        assert_eq!(got, expected, "{name} disagrees with sort oracle at rank {n}");
        assert!(
            copy[..n].iter().all(|&x| x <= expected),
            "{name} left a value > rank-{n} element on the low side"
        );
        assert!(
            copy[n + 1..].iter().all(|&x| x >= expected),
            "{name} left a value < rank-{n} element on the high side"
        );
    }
}

/// Brute-force lower weighted median: smallest value whose at-or-below
/// weight reaches half the total. Mirrors the documented definition, not
/// the implementation.
fn weighted_median_oracle(items: &[(u64, u64)]) -> Option<u64> {
    let total: u64 = items.iter().map(|&(_, w)| w).sum();
    if total == 0 {
        return None;
    }
    let mut values: Vec<u64> = items.iter().map(|&(v, _)| v).collect();
    values.sort_unstable();
    values.dedup();
    values.into_iter().find(|&m| {
        let at_or_below: u64 = items.iter().filter(|&&(v, _)| v <= m).map(|&(_, w)| w).sum();
        2 * at_or_below >= total
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_algorithms_agree_on_random_input(
        data in proptest::collection::vec(any::<u64>(), 1..300),
        n_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let n = ((data.len() - 1) as f64 * n_frac) as usize;
        assert_all_select_rank(&data, n, seed);
    }

    #[test]
    fn all_algorithms_agree_on_duplicate_heavy_input(
        data in proptest::collection::vec(0u64..4, 1..300),
        n_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let n = ((data.len() - 1) as f64 * n_frac) as usize;
        assert_all_select_rank(&data, n, seed);
    }

    #[test]
    fn all_algorithms_agree_on_sorted_and_reversed_input(
        data in proptest::collection::vec(any::<u64>(), 1..300),
        n_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let n = ((sorted.len() - 1) as f64 * n_frac) as usize;
        assert_all_select_rank(&sorted, n, seed);
        sorted.reverse();
        assert_all_select_rank(&sorted, n, seed);
    }

    #[test]
    fn top_k_variants_match_sort_oracle(
        data in proptest::collection::vec(any::<u64>(), 0..300),
        k in 0usize..350,
        seed in any::<u64>(),
    ) {
        let expected = smallest_k_by_sort(&data, k);
        prop_assert_eq!(&smallest_k(data.iter().copied(), k), &expected);
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(&smallest_k_sorted(&data, k, &mut rng), &expected);
    }

    #[test]
    fn weighted_median_matches_brute_force_oracle(
        items in proptest::collection::vec((any::<u64>(), 0u64..50), 0..80),
    ) {
        let mut work = items.clone();
        let got = weighted_median(&mut work).ok();
        prop_assert_eq!(got, weighted_median_oracle(&items));
    }
}

#[test]
fn adversarial_fixed_patterns() {
    // Constant, organ-pipe, sawtooth, and two-value patterns: classic
    // quickselect pathologies.
    let constant = vec![7u64; 101];
    let organ_pipe: Vec<u64> = (0..50u64).chain((0..51u64).rev()).collect();
    let sawtooth: Vec<u64> = (0..120u64).map(|i| i % 7).collect();
    let two_values: Vec<u64> = (0..99u64).map(|i| i & 1).collect();
    for data in [constant, organ_pipe, sawtooth, two_values] {
        for n in [0, 1, data.len() / 2, data.len() - 1] {
            assert_all_select_rank(&data, n, 0xDEAD_BEEF);
        }
    }
}

#[test]
fn weighted_median_rejects_degenerate_inputs() {
    let mut empty: Vec<(u64, u64)> = Vec::new();
    assert!(weighted_median(&mut empty).is_err());
    let mut zero_weight = vec![(3u64, 0u64), (9, 0)];
    assert!(weighted_median(&mut zero_weight).is_err());
    assert_eq!(weighted_median_oracle(&[(3, 0), (9, 0)]), None);
}
