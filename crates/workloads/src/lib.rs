//! # knn-workloads — reproducible synthetic workloads
//!
//! Data generation for the reproduction's tests, examples, and experiment
//! harness:
//!
//! * [`scalar`] — the paper's exact experimental workload (§3): every
//!   machine independently draws uniform integers in `[0, 2³² − 1]`
//!   (2²² of them in the paper's full-scale runs);
//! * [`vector`] — labeled Gaussian mixtures and uniform cubes in `R^d` for
//!   the classification / regression examples;
//! * [`partition`] — how a *global* dataset is laid out across the k
//!   machines, including the adversarial layouts the model allows
//!   ("adversarially distributed", §1.1): sorted-contiguous (all small
//!   values on one machine), power-law skew, everything-on-one-machine;
//! * [`query`] — query-point streams, including batched
//!   [`query::QueryStream`]s for the serving layer.
//!
//! Everything is a pure function of explicit seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod partition;
pub mod query;
pub mod scalar;
pub mod vector;

pub use partition::PartitionStrategy;
pub use query::QueryStream;
pub use scalar::ScalarWorkload;
pub use vector::{GaussianMixture, GEN_CHUNK};
