//! Partitioning a global dataset across k machines.
//!
//! The model allows points to be "adversarially distributed" as long as
//! every machine holds `O(n/k)` of them — and for the selection protocols
//! even that balance is not required for correctness. These layouts let the
//! tests and benchmarks exercise both the friendly and the hostile cases.

use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
use serde::{Deserialize, Serialize};

/// How a global dataset is laid out across machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Round-robin in input order: balanced, value-agnostic.
    RoundRobin,
    /// Uniform random assignment after a shuffle: balanced in expectation.
    Shuffled,
    /// Contiguous chunks of the *input order* — adversarial when the input
    /// is sorted (machine 0 then holds all the smallest values).
    Contiguous,
    /// Machine `i` receives a share proportional to `1/(i+1)`: heavily
    /// skewed sizes, stressing the "arbitrary distribution" claim.
    Skewed,
    /// Everything on machine 0; the rest start empty.
    OneMachine,
}

impl PartitionStrategy {
    /// Split `items` into exactly `k` shards according to the strategy.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn split<T>(self, items: Vec<T>, k: usize, seed: u64) -> Vec<Vec<T>> {
        assert!(k > 0, "cannot partition over zero machines");
        match self {
            PartitionStrategy::RoundRobin => split_round_robin(items, k),
            PartitionStrategy::Shuffled => {
                let mut items = items;
                let mut rng = StdRng::seed_from_u64(seed ^ 0x5851_F42D_4C95_7F2D);
                items.shuffle(&mut rng);
                split_round_robin(items, k)
            }
            PartitionStrategy::Contiguous => split_contiguous(items, k),
            PartitionStrategy::Skewed => split_skewed(items, k),
            PartitionStrategy::OneMachine => {
                let mut shards: Vec<Vec<T>> = (0..k).map(|_| Vec::new()).collect();
                shards[0] = items;
                shards
            }
        }
    }
}

/// Deal items one at a time: shard sizes differ by at most 1.
pub fn split_round_robin<T>(items: Vec<T>, k: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let mut shards: Vec<Vec<T>> = (0..k).map(|_| Vec::with_capacity(n / k + 1)).collect();
    for (i, item) in items.into_iter().enumerate() {
        shards[i % k].push(item);
    }
    shards
}

/// Contiguous chunks in input order; sizes differ by at most 1.
pub fn split_contiguous<T>(items: Vec<T>, k: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let base = n / k;
    let extra = n % k;
    let mut shards = Vec::with_capacity(k);
    let mut it = items.into_iter();
    for i in 0..k {
        let take = base + usize::from(i < extra);
        shards.push(it.by_ref().take(take).collect());
    }
    shards
}

/// Harmonic shares: machine `i` gets a share proportional to `1/(i+1)`.
pub fn split_skewed<T>(items: Vec<T>, k: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let h: f64 = (1..=k).map(|i| 1.0 / i as f64).sum();
    let mut sizes: Vec<usize> =
        (0..k).map(|i| ((n as f64 / h) * (1.0 / (i + 1) as f64)).floor() as usize).collect();
    let assigned: usize = sizes.iter().sum();
    sizes[0] += n - assigned; // Remainder goes to the biggest shard.
    let mut shards = Vec::with_capacity(k);
    let mut it = items.into_iter();
    for size in sizes {
        shards.push(it.by_ref().take(size).collect());
    }
    shards
}

/// All strategies, for exhaustive test sweeps.
pub const ALL_STRATEGIES: [PartitionStrategy; 5] = [
    PartitionStrategy::RoundRobin,
    PartitionStrategy::Shuffled,
    PartitionStrategy::Contiguous,
    PartitionStrategy::Skewed,
    PartitionStrategy::OneMachine,
];

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn flatten_sorted(shards: &[Vec<u64>]) -> Vec<u64> {
        let mut all: Vec<u64> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn every_strategy_conserves_items() {
        let items: Vec<u64> = (0..103).collect();
        for s in ALL_STRATEGIES {
            let shards = s.split(items.clone(), 7, 42);
            assert_eq!(shards.len(), 7, "{s:?}");
            assert_eq!(flatten_sorted(&shards), items, "{s:?}");
        }
    }

    #[test]
    fn round_robin_is_balanced() {
        let shards = split_round_robin((0..100u64).collect(), 8);
        for s in &shards {
            assert!(s.len() == 12 || s.len() == 13);
        }
    }

    #[test]
    fn contiguous_keeps_order() {
        let shards = split_contiguous((0..10u64).collect(), 3);
        assert_eq!(shards[0], vec![0, 1, 2, 3]);
        assert_eq!(shards[1], vec![4, 5, 6]);
        assert_eq!(shards[2], vec![7, 8, 9]);
    }

    #[test]
    fn skewed_is_decreasing() {
        let shards = split_skewed((0..1000u64).collect(), 5);
        for w in shards.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
        assert!(shards[0].len() > shards[4].len() * 2);
    }

    #[test]
    fn one_machine_hoards_everything() {
        let shards = PartitionStrategy::OneMachine.split((0..50u64).collect(), 4, 0);
        assert_eq!(shards[0].len(), 50);
        assert!(shards[1..].iter().all(|s| s.is_empty()));
    }

    #[test]
    fn shuffled_is_deterministic_per_seed() {
        let items: Vec<u64> = (0..64).collect();
        let a = PartitionStrategy::Shuffled.split(items.clone(), 4, 9);
        let b = PartitionStrategy::Shuffled.split(items.clone(), 4, 9);
        let c = PartitionStrategy::Shuffled.split(items, 4, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn more_machines_than_items() {
        for s in ALL_STRATEGIES {
            let shards = s.split(vec![1u64, 2], 5, 1);
            assert_eq!(shards.len(), 5);
            assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 2, "{s:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_conservation(
            items in proptest::collection::vec(any::<u64>(), 0..200),
            k in 1usize..12,
            seed in any::<u64>(),
            strat_idx in 0usize..5,
        ) {
            let strat = ALL_STRATEGIES[strat_idx];
            let shards = strat.split(items.clone(), k, seed);
            prop_assert_eq!(shards.len(), k);
            let mut got: Vec<u64> = shards.into_iter().flatten().collect();
            let mut want = items;
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
