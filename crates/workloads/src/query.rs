//! Query-point streams.
//!
//! Two APIs over the same generators:
//!
//! * [`scalar_queries`] / [`vector_queries`] — materialize `n` queries at
//!   once (what the one-shot experiments use);
//! * [`QueryStream`] — an iterator of query **batches** for the serving
//!   layer: seeded, deterministic, with a configurable batch size so a
//!   sweep can replay the *same* query sequence at different batching
//!   granularities (batch size never changes which queries are drawn).

use knn_points::{ScalarPoint, VecPoint};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Seed whitening for the scalar stream (distinct from the vector stream so
/// equal seeds do not correlate the two).
const SCALAR_STREAM_SALT: u64 = 0x94D0_49BB_1331_11EB;
/// Seed whitening for the vector stream.
const VECTOR_STREAM_SALT: u64 = 0xBF58_476D_1CE4_E5B9;

/// `n` uniform scalar queries in `[lo, hi)` — the paper draws each query
/// uniformly from the data range (§3).
pub fn scalar_queries(n: usize, lo: u64, hi: u64, seed: u64) -> Vec<ScalarPoint> {
    QueryStream::scalar(n, n.max(1), lo, hi, seed).next().unwrap_or_default()
}

/// `n` uniform vector queries in `[lo, hi)^dims`.
pub fn vector_queries(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> Vec<VecPoint> {
    QueryStream::vector(n, n.max(1), dims, lo, hi, seed).next().unwrap_or_default()
}

/// A deterministic stream of query batches.
///
/// Yields `⌈total / batch_size⌉` batches; every batch has `batch_size`
/// queries except possibly the last. The underlying query *sequence* is a
/// pure function of the constructor arguments minus `batch_size`, so
/// serving benchmarks can sweep batch sizes over identical traffic.
pub struct QueryStream<P> {
    remaining: usize,
    batch_size: usize,
    gen: Box<dyn FnMut() -> P + Send>,
}

impl<P> QueryStream<P> {
    /// A stream of `total` queries drawn from `gen`, in batches of
    /// `batch_size`.
    ///
    /// # Panics
    /// If `batch_size` is zero.
    pub fn from_fn(
        total: usize,
        batch_size: usize,
        gen: impl FnMut() -> P + Send + 'static,
    ) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        QueryStream { remaining: total, batch_size, gen: Box::new(gen) }
    }

    /// Queries not yet yielded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Batch size (the last batch may be smaller).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

impl QueryStream<ScalarPoint> {
    /// Uniform scalar queries in `[lo, hi)`, batched.
    ///
    /// # Panics
    /// If the range is empty or `batch_size` is zero.
    pub fn scalar(total: usize, batch_size: usize, lo: u64, hi: u64, seed: u64) -> Self {
        assert!(lo < hi, "empty query range");
        let mut rng = StdRng::seed_from_u64(seed ^ SCALAR_STREAM_SALT);
        Self::from_fn(total, batch_size, move || ScalarPoint(rng.random_range(lo..hi)))
    }
}

impl QueryStream<VecPoint> {
    /// Uniform vector queries in `[lo, hi)^dims`, batched.
    ///
    /// # Panics
    /// If the range is empty or `batch_size` is zero.
    pub fn vector(
        total: usize,
        batch_size: usize,
        dims: usize,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Self {
        assert!(lo < hi, "empty query range");
        let mut rng = StdRng::seed_from_u64(seed ^ VECTOR_STREAM_SALT);
        Self::from_fn(total, batch_size, move || {
            VecPoint::new((0..dims).map(|_| rng.random_range(lo..hi)).collect::<Vec<f64>>())
        })
    }
}

impl<P> Iterator for QueryStream<P> {
    type Item = Vec<P>;

    fn next(&mut self) -> Option<Vec<P>> {
        if self.remaining == 0 {
            return None;
        }
        let take = self.batch_size.min(self.remaining);
        self.remaining -= take;
        Some((0..take).map(|_| (self.gen)()).collect())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let batches = self.remaining.div_ceil(self.batch_size);
        (batches, Some(batches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_queries_in_range_and_deterministic() {
        let a = scalar_queries(100, 5, 50, 1);
        let b = scalar_queries(100, 5, 50, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|q| (5..50).contains(&q.0)));
    }

    #[test]
    fn vector_queries_shape() {
        let qs = vector_queries(10, 3, -1.0, 1.0, 2);
        assert_eq!(qs.len(), 10);
        assert!(qs.iter().all(|q| q.dims() == 3));
    }

    #[test]
    #[should_panic(expected = "empty query range")]
    fn bad_range_panics() {
        let _ = scalar_queries(1, 9, 9, 0);
    }

    #[test]
    fn stream_batches_cover_the_sequence_exactly() {
        let whole = scalar_queries(23, 0, 1000, 7);
        for batch_size in [1, 4, 8, 23, 100] {
            let stream = QueryStream::scalar(23, batch_size, 0, 1000, 7);
            let sizes: Vec<usize> =
                QueryStream::scalar(23, batch_size, 0, 1000, 7).map(|b| b.len()).collect();
            let flat: Vec<ScalarPoint> = stream.flatten().collect();
            assert_eq!(flat, whole, "batch size {batch_size} changed the sequence");
            assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == batch_size));
            assert_eq!(sizes.iter().sum::<usize>(), 23);
        }
    }

    #[test]
    fn stream_bookkeeping() {
        let mut stream = QueryStream::scalar(10, 4, 0, 10, 0);
        assert_eq!(stream.batch_size(), 4);
        assert_eq!(stream.size_hint(), (3, Some(3)));
        assert_eq!(stream.next().unwrap().len(), 4);
        assert_eq!(stream.remaining(), 6);
        assert_eq!(stream.next().unwrap().len(), 4);
        assert_eq!(stream.next().unwrap().len(), 2);
        assert!(stream.next().is_none());
        assert_eq!(stream.remaining(), 0);
    }

    #[test]
    fn vector_stream_matches_materialized_queries() {
        let whole = vector_queries(12, 2, -3.0, 3.0, 9);
        let flat: Vec<VecPoint> = QueryStream::vector(12, 5, 2, -3.0, 3.0, 9).flatten().collect();
        assert_eq!(flat, whole);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert!(QueryStream::scalar(0, 8, 0, 10, 0).next().is_none());
        assert!(scalar_queries(0, 0, 10, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let _ = QueryStream::scalar(5, 0, 0, 10, 0);
    }

    #[test]
    fn from_fn_custom_generator() {
        let mut i = 0u64;
        let stream = QueryStream::from_fn(5, 2, move || {
            i += 1;
            ScalarPoint(i)
        });
        let flat: Vec<u64> = stream.flatten().map(|p| p.0).collect();
        assert_eq!(flat, vec![1, 2, 3, 4, 5]);
    }
}
