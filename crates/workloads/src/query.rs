//! Query-point streams.

use knn_points::{ScalarPoint, VecPoint};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// `n` uniform scalar queries in `[lo, hi)` — the paper draws each query
/// uniformly from the data range (§3).
pub fn scalar_queries(n: usize, lo: u64, hi: u64, seed: u64) -> Vec<ScalarPoint> {
    assert!(lo < hi, "empty query range");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x94D0_49BB_1331_11EB);
    (0..n).map(|_| ScalarPoint(rng.random_range(lo..hi))).collect()
}

/// `n` uniform vector queries in `[lo, hi)^dims`.
pub fn vector_queries(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> Vec<VecPoint> {
    assert!(lo < hi, "empty query range");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBF58_476D_1CE4_E5B9);
    (0..n)
        .map(|_| VecPoint::new((0..dims).map(|_| rng.random_range(lo..hi)).collect::<Vec<f64>>()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_queries_in_range_and_deterministic() {
        let a = scalar_queries(100, 5, 50, 1);
        let b = scalar_queries(100, 5, 50, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|q| (5..50).contains(&q.0)));
    }

    #[test]
    fn vector_queries_shape() {
        let qs = vector_queries(10, 3, -1.0, 1.0, 2);
        assert_eq!(qs.len(), 10);
        assert!(qs.iter().all(|q| q.dims() == 3));
    }

    #[test]
    #[should_panic(expected = "empty query range")]
    fn bad_range_panics() {
        let _ = scalar_queries(1, 9, 9, 0);
    }
}
