//! Labeled vector workloads for the ML examples.
//!
//! Generation is parallel: points are produced in fixed-size chunks of
//! [`GEN_CHUNK`], each chunk drawing from its own RNG stream derived from
//! `(seed, chunk index)`. Chunk boundaries never depend on the pool size,
//! so the generated dataset is byte-identical whether rayon runs on 1
//! thread or 64 — only the wall clock changes.

use knn_points::{Label, VecPoint};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Points per generation chunk (and per-chunk RNG stream). Fixed — never
/// derived from the pool size — so outputs are pool-size-invariant.
pub const GEN_CHUNK: usize = 4096;

/// Run `fill` over `[0, n)` in parallel [`GEN_CHUNK`]-sized chunks, each
/// with a private RNG stream derived from `(seed, chunk index)`, and
/// concatenate the per-chunk outputs in index order.
fn par_chunks<T: Send>(
    n: usize,
    seed: u64,
    fill: impl Fn(&mut StdRng, std::ops::Range<usize>) -> Vec<T> + Sync,
) -> Vec<T> {
    let chunks = n.div_ceil(GEN_CHUNK);
    (0..chunks)
        .into_par_iter()
        .map(|c| {
            // SplitMix64-style odd multiplier decorrelates the per-chunk
            // streams from each other and from the center stream.
            let mut rng =
                StdRng::seed_from_u64(seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            fill(&mut rng, c * GEN_CHUNK..((c + 1) * GEN_CHUNK).min(n))
        })
        .collect::<Vec<Vec<T>>>()
        .into_iter()
        .flatten()
        .collect()
}

/// A mixture of isotropic Gaussian clusters in `R^d`, labeled by cluster —
/// the classic synthetic benchmark for a k-NN *classifier* (the paper's
/// motivating application, §1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixture {
    /// Dimensionality.
    pub dims: usize,
    /// Number of clusters (= number of classes).
    pub clusters: usize,
    /// Standard deviation of each cluster.
    pub spread: f64,
    /// Cluster centers are drawn uniformly from `[-range, range]^dims`.
    pub range: f64,
}

impl Default for GaussianMixture {
    fn default() -> Self {
        GaussianMixture { dims: 2, clusters: 3, spread: 0.5, range: 10.0 }
    }
}

impl GaussianMixture {
    /// The cluster centers this configuration induces for `seed`.
    pub fn centers(&self, seed: u64) -> Vec<VecPoint> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC3A5_C85C_97CB_3127);
        (0..self.clusters)
            .map(|_| {
                VecPoint::new(
                    (0..self.dims)
                        .map(|_| rng.random_range(-self.range..self.range))
                        .collect::<Vec<f64>>(),
                )
            })
            .collect()
    }

    /// Draw `n` labeled points; point i belongs to cluster `i % clusters`,
    /// so classes are balanced.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<(VecPoint, Label)> {
        self.generate_with(n, seed, seed)
    }

    /// Like [`GaussianMixture::generate`], but with independent seeds for
    /// the cluster centers and the per-point noise — use the same
    /// `centers_seed` with different `noise_seed`s to draw train and test
    /// sets from the *same* distribution.
    pub fn generate_with(
        &self,
        n: usize,
        centers_seed: u64,
        noise_seed: u64,
    ) -> Vec<(VecPoint, Label)> {
        assert!(self.clusters > 0 && self.dims > 0, "degenerate mixture");
        let centers = self.centers(centers_seed);
        par_chunks(n, noise_seed ^ 0x2545_F491_4F6C_DD1D, |rng, range| {
            range
                .map(|i| {
                    let c = i % self.clusters;
                    let coords: Vec<f64> =
                        centers[c].0.iter().map(|&mu| mu + self.spread * gaussian(rng)).collect();
                    (VecPoint::new(coords), Label::Class(c as u32))
                })
                .collect()
        })
    }

    /// Draw `n` points with a *regression* target: the value is a smooth
    /// function (sum of coordinates) plus Gaussian noise.
    pub fn generate_regression(&self, n: usize, noise: f64, seed: u64) -> Vec<(VecPoint, Label)> {
        let dims = self.dims;
        let range = self.range;
        par_chunks(n, seed ^ 0x9E6C_63D0_876A_9D7B, |rng, idx| {
            idx.map(|_| {
                let coords: Vec<f64> = (0..dims).map(|_| rng.random_range(-range..range)).collect();
                let target: f64 = coords.iter().sum::<f64>() + noise * gaussian(rng);
                (VecPoint::new(coords), Label::Value(target))
            })
            .collect()
        })
    }
}

/// Uniform points in the cube `[lo, hi]^dims`.
pub fn uniform_cube(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> Vec<VecPoint> {
    assert!(lo < hi, "empty cube");
    par_chunks(n, seed ^ 0x8533_41F0_4A1C_2E09, |rng, idx| {
        idx.map(|_| {
            VecPoint::new((0..dims).map(|_| rng.random_range(lo..hi)).collect::<Vec<f64>>())
        })
        .collect()
    })
}

/// A standard normal sample via Box–Muller (the offline crate set has no
/// `rand_distr`, and two lines of math beat a dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_labels_are_balanced() {
        let gm = GaussianMixture { clusters: 4, ..Default::default() };
        let data = gm.generate(400, 1);
        for c in 0..4u32 {
            let count = data.iter().filter(|(_, l)| *l == Label::Class(c)).count();
            assert_eq!(count, 100);
        }
    }

    #[test]
    fn points_cluster_near_their_centers() {
        let gm = GaussianMixture { dims: 2, clusters: 2, spread: 0.1, range: 100.0 };
        let centers = gm.centers(9);
        let data = gm.generate(200, 9);
        for (i, (p, _)) in data.iter().enumerate() {
            let c = &centers[i % 2];
            let d: f64 =
                p.0.iter().zip(c.0.iter()).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt();
            assert!(d < 2.0, "point {i} is {d} from its center");
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn regression_targets_track_coordinates() {
        let gm = GaussianMixture { dims: 3, range: 5.0, ..Default::default() };
        let data = gm.generate_regression(100, 0.0, 2);
        for (p, l) in &data {
            let Label::Value(v) = l else { panic!("expected value label") };
            let s: f64 = p.0.iter().sum();
            assert!((s - v).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_cube_bounds() {
        let pts = uniform_cube(100, 4, -1.0, 2.0, 3);
        assert_eq!(pts.len(), 100);
        assert!(pts.iter().all(|p| p.0.iter().all(|&x| (-1.0..2.0).contains(&x))));
    }

    #[test]
    fn deterministic_per_seed() {
        let gm = GaussianMixture::default();
        assert_eq!(gm.generate(50, 5), gm.generate(50, 5));
        assert_ne!(gm.generate(50, 5), gm.generate(50, 6));
    }

    #[test]
    fn generation_is_pool_size_invariant() {
        // Chunk boundaries are fixed, so the dataset is byte-identical at
        // any pool size — spanning a chunk boundary on purpose.
        let n = GEN_CHUNK + 100;
        let gm = GaussianMixture::default();
        let pool = |t: usize| rayon::ThreadPoolBuilder::new().num_threads(t).build().expect("pool");
        let base = pool(1).install(|| gm.generate(n, 5));
        let base_reg = pool(1).install(|| gm.generate_regression(n, 0.3, 5));
        let base_cube = pool(1).install(|| uniform_cube(n, 3, -1.0, 1.0, 5));
        for t in [2usize, 8] {
            assert_eq!(pool(t).install(|| gm.generate(n, 5)), base, "pool {t}");
            assert_eq!(pool(t).install(|| gm.generate_regression(n, 0.3, 5)), base_reg);
            assert_eq!(pool(t).install(|| uniform_cube(n, 3, -1.0, 1.0, 5)), base_cube);
        }
    }

    #[test]
    fn split_seeds_share_centers_but_not_noise() {
        let gm = GaussianMixture { spread: 0.05, ..Default::default() };
        let a = gm.generate_with(30, 7, 1);
        let b = gm.generate_with(30, 7, 2);
        assert_ne!(a, b, "different noise streams");
        // Same centers: matched pairs are close.
        for ((p, la), (q, lb)) in a.iter().zip(&b) {
            assert_eq!(la, lb);
            let d: f64 =
                p.0.iter().zip(q.0.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
            assert!(d < 1.0, "points from the same center should be close, got {d}");
        }
    }
}
