//! ℓ-NN classification — the application motivating the paper (§1).
//!
//! ```text
//! cargo run --release --example classification
//! ```
//!
//! Trains nothing (k-NN is non-parametric): a labeled Gaussian-mixture
//! dataset is distributed over the cluster, and test points are classified
//! by majority vote over their ℓ nearest neighbors, computed by the
//! paper's distributed algorithm.

use knn_repro::prelude::*;

fn main() {
    let mixture = GaussianMixture { dims: 4, clusters: 5, spread: 1.2, range: 12.0 };
    // Same centers (seed 11) for train and test; independent noise.
    let train = mixture.generate_with(4000, 11, 1);
    let test = mixture.generate_with(300, 11, 2);

    let mut ids = IdAssigner::new(3);
    let data = Dataset::from_labeled(train, &mut ids);

    let mut cluster: KnnCluster<VecPoint> =
        KnnCluster::builder().machines(16).seed(5).metric(Metric::Euclidean).build();
    cluster.load(data, PartitionStrategy::Shuffled);

    let ell = 15;
    let classifier = KnnClassifier::new(cluster, ell);

    let mut correct = 0;
    let mut rounds_total = 0u64;
    let mut messages_total = 0u64;
    for (point, label) in &test {
        let answer = classifier.cluster().query(point, ell).expect("query");
        rounds_total += answer.metrics.rounds;
        messages_total += answer.metrics.messages;
        let predicted = knn_repro::core::ml::majority_class(&answer.neighbors);
        let Label::Class(truth) = label else { unreachable!() };
        if predicted == Some(*truth) {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / test.len() as f64;
    println!(
        "classified {} test points with ell = {ell} over {} machines",
        test.len(),
        classifier.cluster().k()
    );
    println!("accuracy: {:.1}%", accuracy * 100.0);
    println!(
        "average cost per query: {:.1} rounds, {:.1} messages",
        rounds_total as f64 / test.len() as f64,
        messages_total as f64 / test.len() as f64
    );
    assert!(
        accuracy > 0.8,
        "well-separated Gaussian mixture should classify at >80%, got {accuracy}"
    );
}
