//! The paper's privacy scenario (§1): "data is naturally distributed at
//! k sites (e.g., patients data in different hospitals) and it is too
//! costly or undesirable (say for privacy reasons) to transfer all the
//! data to a single location".
//!
//! ```text
//! cargo run --release --example hospitals
//! ```
//!
//! Six hospitals each hold their own patients (feature vectors + outcome
//! labels). A new patient arrives; the network classifies them by ℓ-NN
//! without any patient record ever leaving its hospital — only distance
//! values and opaque random ids cross the wire, and the example proves it
//! by accounting every bit.

use knn_repro::prelude::*;

fn main() {
    let hospitals = 6;
    // Each hospital has its own patient population (slightly different
    // demographics => different mixture seed per site).
    let mut shards = Vec::new();
    let mut total_patients = 0;
    for h in 0..hospitals {
        let mixture = GaussianMixture { dims: 5, clusters: 2, spread: 1.0, range: 8.0 };
        let patients = mixture.generate(500 + 200 * h, 1000 + h as u64);
        total_patients += patients.len();
        let mut ids = IdAssigner::with_stream(77, h as u64);
        shards.push(Dataset::from_labeled(patients, &mut ids));
    }

    let mut cluster: KnnCluster<VecPoint> = KnnCluster::builder()
        .machines(hospitals)
        .seed(9)
        .bandwidth_bits(512)
        .election(ElectionKind::Star) // no pre-agreed coordinator
        .build();
    cluster.load_shards(shards).expect("one shard per hospital");

    // A new patient's feature vector.
    let new_patient = VecPoint::new(vec![1.2, -0.4, 3.3, 0.0, -2.1]);
    let ell = 11;
    let answer = cluster.query(&new_patient, ell).expect("query");

    let diagnosis = knn_repro::core::ml::majority_class(&answer.neighbors);
    println!("{total_patients} patients across {hospitals} hospitals");
    println!(
        "leader elected: hospital {} (election cost: {} messages)",
        answer.leader,
        answer.election_metrics.as_ref().map_or(0, |m| m.messages)
    );
    println!("\nnearest {ell} cases come from hospitals:");
    for n in &answer.neighbors {
        println!(
            "  hospital {} | case id {:#018x} | distance {:.3} | outcome {:?}",
            n.machine,
            n.id.0,
            n.dist.as_f64(),
            n.label
        );
    }
    println!("\npredicted outcome class: {:?}", diagnosis);

    // The privacy argument, quantified: the full dataset is 5 f64s per
    // patient; the query moved only O(k log ell) small messages.
    let raw_bits = total_patients as u64 * 5 * 64;
    println!(
        "\nbits that would move to centralize the data: {raw_bits}\n\
         bits that actually moved for this query:      {}\n\
         (a {:.0}x reduction; no coordinates ever left a hospital)",
        answer.metrics.bits,
        raw_bits as f64 / answer.metrics.bits as f64
    );
    assert!(answer.metrics.bits < raw_bits / 10);
}
