//! Quickstart: distributed ℓ-NN over a simulated k-machine cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Loads the paper's synthetic workload (uniform integers on a line) into
//! an 8-machine cluster, answers one query with the paper's Algorithm 2,
//! and contrasts the communication cost with the simple baseline.

use knn_repro::prelude::*;

fn main() {
    // 1. Generate the paper's workload: every machine draws uniform
    //    integers in [0, 2^32). (Scaled down from the paper's 2^22 per
    //    machine so the example finishes instantly.)
    let k = 8;
    let shards = ScalarWorkload { per_machine: 1 << 14, lo: 0, hi: 1 << 32 }.generate(k, 42);

    // 2. Build the simulated cluster and install the shards as-is — the
    //    data never needs to be co-located.
    let mut cluster: KnnCluster = KnnCluster::builder()
        .machines(k)
        .seed(7)
        .bandwidth_bits(512) // the model's B = Θ(log n)
        .build();
    cluster.load_shards(shards).expect("k shards for k machines");
    println!("cluster: {} machines, {} points total", cluster.k(), cluster.total_points());

    // 3. One ℓ-NN query with the paper's O(log ℓ)-round algorithm.
    let query = ScalarPoint(1 << 31);
    let ell = 256;
    let fast = cluster.query(&query, ell).expect("query");
    println!("\nAlgorithm 2 (the paper):");
    print_answer(&fast, ell);

    // 4. The same query through the Θ(ℓ)-round baseline.
    let slow = cluster.query_with(Algorithm::Simple, &query, ell).expect("query");
    println!("\nSimple method (baseline):");
    print_answer(&slow, ell);

    assert_eq!(
        fast.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
        slow.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
        "both algorithms must return the identical neighbor set",
    );
    println!(
        "\nsame answer, {:.1}x fewer rounds, {:.1}x fewer messages with Algorithm 2",
        slow.metrics.rounds as f64 / fast.metrics.rounds as f64,
        slow.metrics.messages as f64 / fast.metrics.messages as f64,
    );
}

fn print_answer(answer: &KnnAnswer, ell: usize) {
    assert_eq!(answer.neighbors.len(), ell);
    let nearest = &answer.neighbors[0];
    println!(
        "  nearest: id {:#018x} at distance {} (held by machine {})",
        nearest.id.0,
        nearest.dist.as_u64(),
        nearest.machine
    );
    println!(
        "  cost: {} rounds, {} messages, {} bits on the wire",
        answer.metrics.rounds, answer.metrics.messages, answer.metrics.bits
    );
    if let Some(stats) = answer.stats {
        println!(
            "  sampling: {} samples/machine, {} of {} candidates survived pruning{}",
            stats.sample_size,
            stats.survivors,
            stats.total_candidates,
            if stats.rolled_back { " (rolled back)" } else { "" }
        );
    }
}
