//! ℓ-NN regression — the paper's second motivating application: "assign
//! the average of the labels" of the ℓ nearest neighbors (§1).
//!
//! ```text
//! cargo run --release --example regression
//! ```

use knn_repro::prelude::*;

fn main() {
    // Target function: sum of coordinates, plus noise on the training set.
    let gen = GaussianMixture { dims: 3, clusters: 1, spread: 1.0, range: 10.0 };
    let train = gen.generate_regression(6000, 0.5, 21);
    let test = gen.generate_regression(200, 0.0, 22); // noise-free truth

    let mut ids = IdAssigner::new(4);
    let data = Dataset::from_labeled(train, &mut ids);

    let mut cluster: KnnCluster<VecPoint> =
        KnnCluster::builder().machines(12).seed(6).metric(Metric::Euclidean).build();
    cluster.load(data, PartitionStrategy::Shuffled);

    for (name, weighted) in [("plain mean", false), ("rank-weighted mean", true)] {
        let mut sq_err = 0.0;
        let mut var_acc = 0.0;
        let mean_truth: f64 = test
            .iter()
            .map(|(_, l)| match l {
                Label::Value(v) => *v,
                _ => unreachable!(),
            })
            .sum::<f64>()
            / test.len() as f64;

        for (point, label) in &test {
            let answer = cluster.query(point, 10).expect("query");
            let predicted = if weighted {
                knn_repro::core::ml::weighted_mean_value(&answer.neighbors)
            } else {
                knn_repro::core::ml::mean_value(&answer.neighbors)
            }
            .expect("labeled neighbors");
            let Label::Value(truth) = label else { unreachable!() };
            sq_err += (predicted - truth) * (predicted - truth);
            var_acc += (truth - mean_truth) * (truth - mean_truth);
        }
        let rmse = (sq_err / test.len() as f64).sqrt();
        let r2 = 1.0 - sq_err / var_acc;
        println!("{name:>18}: RMSE = {rmse:.3}, R^2 = {r2:.4}");
        assert!(r2 > 0.9, "{name} should explain >90% of variance, got {r2}");
    }
}
