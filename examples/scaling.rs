//! A miniature of the paper's Figure 2, runnable in seconds.
//!
//! ```text
//! cargo run --release --example scaling
//! ```
//!
//! For a grid of (k, ℓ) it runs both Algorithm 2 and the simple baseline
//! on the threaded engine (one OS thread per machine, 20 µs synthetic
//! per-round latency) and prints the wall-clock ratio — the paper's
//! Figure 2 y-axis. The full-scale reproduction lives in
//! `cargo run -p knn-bench --release --bin fig2`.

use std::time::Duration;

use knn_repro::prelude::*;

fn main() {
    let per_machine = 1 << 14;
    println!("points per machine: {per_machine}");
    println!("{:>4} {:>8} {:>14} {:>14} {:>8}", "k", "ell", "simple", "algorithm2", "ratio");

    for &k in &[2usize, 4, 8] {
        let shards = ScalarWorkload { per_machine, lo: 0, hi: 1 << 32 }.generate(k, 7);
        let mut cluster: KnnCluster = KnnCluster::builder()
            .machines(k)
            .seed(1)
            .engine(Engine::Threaded)
            .round_latency(Duration::from_micros(20))
            .build();
        cluster.load_shards(shards).expect("shards");

        for &ell in &[64usize, 512, 4096] {
            let q = ScalarPoint(1 << 31);
            let fast = cluster.query_with(Algorithm::Knn, &q, ell).expect("knn");
            let slow = cluster.query_with(Algorithm::Simple, &q, ell).expect("simple");
            assert_eq!(
                fast.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
                slow.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
            );
            println!(
                "{:>4} {:>8} {:>12.2?} {:>12.2?} {:>7.1}x",
                k,
                ell,
                slow.wall,
                fast.wall,
                slow.wall.as_secs_f64() / fast.wall.as_secs_f64()
            );
        }
    }
    println!("\nratio > 1 means the paper's algorithm wins; it grows with ell and k.");
}
