//! Serving queries in batches: the amortized path for query streams.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! A serving system doesn't answer one query — it answers a stream of them
//! against one loaded cluster. This example serves the same 64-query stream
//! twice: sequentially (one election and one engine run per query, the
//! paper's per-query cost model) and batched through `query_batch` (one
//! election, one engine run, all queries multiplexed over the shared
//! links), then compares the per-query round bill.

use knn_repro::prelude::*;

fn main() {
    let k = 8;
    let ell = 64;
    let total = 64;
    let shards = ScalarWorkload { per_machine: 1 << 14, lo: 0, hi: 1 << 32 }.generate(k, 42);
    let mut cluster: KnnCluster = KnnCluster::builder()
        .machines(k)
        .seed(7)
        .election(ElectionKind::Star) // pay for real elections, then amortize them
        .build();
    cluster.load_shards(shards).expect("k shards for k machines");
    println!(
        "cluster: {} machines, {} points; serving {total} queries at ell = {ell}\n",
        cluster.k(),
        cluster.total_points()
    );

    // The same deterministic query stream, replayed at two batch sizes.
    let queries: Vec<ScalarPoint> =
        QueryStream::scalar(total, total, 0, 1 << 32, 99).next().unwrap();

    // Sequential serving: every query pays the full fixed cost.
    let mut seq_rounds = 0u64;
    let mut seq_elections = 0u64;
    let mut seq_answers = Vec::new();
    for q in &queries {
        let ans = cluster.query(q, ell).expect("query");
        seq_rounds += ans.metrics.rounds;
        seq_rounds += ans.election_metrics.as_ref().map_or(0, |em| em.rounds);
        seq_elections += u64::from(ans.election_metrics.is_some());
        seq_answers.push(ans);
    }
    println!(
        "sequential: {seq_rounds} rounds total ({:.2}/query), {seq_elections} elections",
        seq_rounds as f64 / total as f64
    );

    // Batched serving: one election, one engine run, pipelined instances.
    let batch = cluster.query_batch(&queries, ell).expect("batch");
    let em = batch.election_metrics.as_ref().expect("one election ran");
    let batch_rounds = batch.metrics.rounds + em.rounds;
    println!(
        "batched:    {batch_rounds} rounds total ({:.2}/query), 1 election",
        batch_rounds as f64 / total as f64
    );

    // Same answers, by construction.
    for (j, solo) in seq_answers.iter().enumerate() {
        assert_eq!(batch.answers[j].neighbors, solo.neighbors, "query {j}");
    }
    println!(
        "\nidentical answers; batching cut rounds/query by {:.1}x",
        seq_rounds as f64 / batch_rounds as f64
    );

    // Per-query attribution survives the sharing: each answer still knows
    // its own traffic and completion round.
    let first = &batch.answers[0];
    let last = &batch.answers[total - 1];
    println!(
        "attribution: query 0 used {} msgs / {} bits, done at round {}; \
         query {} used {} msgs / {} bits, done at round {}",
        first.metrics.messages,
        first.metrics.bits,
        first.metrics.rounds,
        total - 1,
        last.metrics.messages,
        last.metrics.bits,
        last.metrics.rounds,
    );
}
