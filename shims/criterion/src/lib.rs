//! # criterion (offline shim)
//!
//! A stand-in for `criterion` written for this workspace's hermetic (no
//! crates.io) build environment. It implements the API surface the bench
//! targets use — [`Criterion::benchmark_group`], `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with plain wall-clock
//! measurement: geometric ramp-up until a time budget is spent, then a
//! mean ns/iter (plus derived throughput) on stdout. There is no
//! statistical analysis, HTML report, or baseline comparison; the point is
//! that `cargo bench` compiles, runs, and prints honest numbers.
//!
//! Set `CRITERION_MEASURE_MS` to change the per-benchmark time budget
//! (default 150 ms; CI smoke runs can set it to 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so user code written against real criterion's `black_box`
/// keeps compiling (std's is the canonical one nowadays).
pub use std::hint::black_box;

/// The benchmark manager handed to `criterion_group!` target functions.
#[derive(Debug)]
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(150);
        Criterion { measure: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Parse CLI/env configuration. The shim has none; kept for source
    /// compatibility with real criterion's generated `main`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { criterion: self, name, throughput: None }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.label(), self.measure, None, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used to derive rate numbers.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f`, passing it `input` each iteration batch.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_one(&label, self.criterion.measure, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Benchmark a function with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_one(&label, self.criterion.measure, self.throughput, &mut f);
        self
    }

    /// End the group. (The shim prints as it goes; this is a no-op kept
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value, e.g. `kdtree/128`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// Only a parameter value (the group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: Some(s.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: Some(s), parameter: None }
    }
}

/// Work performed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for this batch's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Like `iter`, but `f` times itself over `iters` iterations and
    /// returns the measured duration (criterion's `iter_custom`).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    budget: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up: one single-iteration batch (JIT-free Rust still benefits
    // from cache/branch warm-up and lazy initialization).
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);

    // Geometric ramp: double the batch size until one batch exceeds a
    // quarter of the budget, then spend the rest of the budget at that size.
    let mut iters: u64 = 1;
    let mut total_iters: u64 = 0;
    let mut total_time = Duration::ZERO;
    let ramp_deadline = budget / 4;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total_iters += iters;
        total_time += b.elapsed;
        if b.elapsed >= ramp_deadline || iters >= (1 << 24) {
            break;
        }
        iters *= 2;
    }
    while total_time < budget {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total_iters += iters;
        total_time += b.elapsed;
    }

    let ns_per_iter = total_time.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3e} elem/s)", n as f64 * 1e9 / ns_per_iter),
        Throughput::Bytes(n) => format!(" ({:.3e} B/s)", n as f64 * 1e9 / ns_per_iter),
    });
    println!(
        "  {label}: {ns_per_iter:.1} ns/iter over {total_iters} iters{}",
        rate.unwrap_or_default()
    );
}

/// Bundle benchmark functions into a callable group, as real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion { measure: Duration::from_millis(2) }
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = fast_criterion();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(2u64 + 2));
        });
        assert!(ran);
    }

    #[test]
    fn group_api_composes() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4usize), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
    }
}
