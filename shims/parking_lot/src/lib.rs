//! # parking_lot (offline shim)
//!
//! A stand-in for `parking_lot` written for this workspace's hermetic (no
//! crates.io) build environment, backed by `std::sync`. It reproduces the
//! API property the threaded engine relies on: `lock()` returns the guard
//! directly (no `Result`), and a mutex poisoned by a panicking thread keeps
//! working — the engine's panic-containment path locks mutexes *after*
//! catching a worker panic and must not see poison errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    ///
    /// Unlike `std`, poisoning is ignored: if a previous holder panicked,
    /// the data is handed out anyway (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard for shared read access from [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for exclusive write access from [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poisoned_mutex_keeps_working() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable after a panic.
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
