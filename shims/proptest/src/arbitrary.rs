//! The `any::<T>()` entry point for primitive types.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// A type with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draw one value uniformly from the type's domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary_standard!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
