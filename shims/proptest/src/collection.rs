//! Collection strategies: random-length vectors and hash sets.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = sample_size(&self.size, rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A vector whose length is uniform in `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy for `HashSet<S::Value>` with a target size drawn from `size`.
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let target = sample_size(&self.size, rng);
        let mut set = HashSet::with_capacity(target);
        // Like real proptest, the target is a goal, not a guarantee: bail
        // out after a bounded number of duplicate draws so narrow element
        // domains cannot loop forever.
        let mut attempts = 0;
        while set.len() < target && attempts < 16 * target.max(1) {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

/// A hash set with approximately `size` elements drawn from `element`.
pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, size }
}

fn sample_size(size: &Range<usize>, rng: &mut StdRng) -> usize {
    assert!(size.start < size.end, "empty size range for collection strategy");
    rng.random_range(size.clone())
}
