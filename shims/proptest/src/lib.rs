//! # proptest (offline shim)
//!
//! A small, dependency-light stand-in for the `proptest` crate, written for
//! this workspace's hermetic (no crates.io) build environment. It supports
//! the subset of the real API the workspace uses:
//!
//! * the [`proptest!`] macro (`fn name(x in strategy, ...) { body }`, with an
//!   optional `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`strategy::Strategy`] implementations for integer and float ranges,
//!   tuples, [`strategy::Just`], and [`prop_oneof!`];
//! * [`arbitrary::any`] for the primitive types;
//! * [`collection::vec`] and [`collection::hash_set`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs (via the panic
//!   message of the underlying `assert!`) but is not minimized;
//! * **deterministic** — each test function derives its RNG stream from its
//!   own `module_path!::name`, so failures reproduce exactly across runs;
//!   set `PROPTEST_SEED` to explore a different stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the `proptest!` idiom needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive the deterministic RNG for one property-test function.
///
/// The stream is a pure function of the fully-qualified test name, XORed
/// with `PROPTEST_SEED` when set, so every test draws from its own
/// reproducible sequence.
#[doc(hidden)]
pub fn __seed_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test path.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(extra) = s.parse::<u64>() {
            h ^= extra.rotate_left(17);
        }
    }
    StdRng::seed_from_u64(h)
}

/// Run `cases` deterministic random trials of a property.
///
/// This is the expansion target of [`proptest!`]; each trial samples every
/// declared strategy once and executes the body.
#[macro_export]
macro_rules! proptest {
    (@with $cfg:expr; $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::proptest! { @with $cfg; $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::proptest! { @with $crate::test_runner::ProptestConfig::default(); $($rest)+ }
    };
}

/// Property-test assertion; like `assert!` (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion; like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion; like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        // One vec! keeps a single inference variable for the value type, so
        // `prop_oneof![Just(64u64), Just(512)]` unifies all arms to u64.
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeding_is_deterministic_per_name() {
        use rand::RngCore;
        let a = crate::__seed_rng("x::y").next_u64();
        let b = crate::__seed_rng("x::y").next_u64();
        let c = crate::__seed_rng("x::z").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_tuples_and_oneof_compose(
            n in 1usize..50,
            x in -5i64..5,
            pair in (0u64..10, 1u64..4),
            choice in prop_oneof![Just(1u32), Just(7), Just(9)],
            v in crate::collection::vec(any::<u8>(), 0..20),
            s in crate::collection::hash_set(0u64..100, 0..30),
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((-5..5).contains(&x));
            prop_assert!(pair.0 < 10 && (1..4).contains(&pair.1));
            prop_assert!([1u32, 7, 9].contains(&choice));
            prop_assert!(v.len() < 20);
            prop_assert!(s.len() < 30);
            prop_assert!(s.iter().all(|&e| e < 100));
        }

        #[test]
        fn default_config_form_works(seed in any::<u64>()) {
            let _ = seed;
        }
    }
}
