//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::RngExt;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic sampler over the test's RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Box a strategy, erasing its concrete type but keeping its value type.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Uniform choice among boxed strategies; the expansion of `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
