//! Runner configuration.

/// How many random cases each property runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Real proptest's default: 256 cases.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}
