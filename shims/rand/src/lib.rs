//! # rand (offline shim)
//!
//! A minimal, dependency-free stand-in for the `rand` crate, written for this
//! workspace's hermetic (no crates.io) build environment. It mirrors the
//! post-0.9 `rand` API surface the workspace actually uses:
//!
//! * [`RngCore`] — the raw 32/64-bit generator interface;
//! * [`SeedableRng`] — construction from a 64-bit seed
//!   ([`SeedableRng::seed_from_u64`]);
//! * [`RngExt`] — the documented RNG extension trait providing
//!   [`RngExt::random`], [`RngExt::random_range`], [`RngExt::random_bool`]
//!   (rand 0.9 calls this `Rng`; the workspace imports it as `RngExt`, and
//!   `Rng` is re-exported as an alias);
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64;
//! * [`seq::SliceRandom`] — Fisher–Yates [`seq::SliceRandom::shuffle`] and
//!   [`seq::SliceRandom::choose`].
//!
//! Everything is deterministic: there is deliberately no `from_entropy` /
//! `thread_rng`, because the k-machine simulator requires runs to be pure
//! functions of their seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniformly random machine words.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from its full value domain.
///
/// Backs [`RngExt::random`]. Integers are drawn uniformly over all bit
/// patterns; `bool` is a fair coin; floats are uniform in `[0, 1)`.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that knows how to sample one value uniformly from itself.
///
/// Implemented for `Range` and `RangeInclusive` over the primitive integer
/// and float types, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire): uniform in `[0, span)`.
///
/// The bias is at most `span / 2^64` — unobservable at test scale and, more
/// importantly for this workspace, fully deterministic.
#[inline]
pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX as $t as u64 && start == 0 && <$t>::BITS == 64 {
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX && <$t>::BITS == 64 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + (end - start) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The RNG extension trait: ergonomic sampling methods over any [`RngCore`].
///
/// This is the trait the workspace imports everywhere (`use rand::RngExt`).
/// It is a documented local equivalent of `rand::Rng` (0.9 naming:
/// `random`, `random_range`, `random_bool`), provided as a blanket impl so
/// every generator — notably [`rngs::StdRng`] and `&mut R` — gets it for
/// free.
pub trait RngExt: RngCore {
    /// Sample a value uniformly from the type's full domain.
    ///
    /// Integers are uniform over all bit patterns, `bool` is a fair coin,
    /// floats are uniform in `[0, 1)`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (e.g. `rng.random_range(0..k)`,
    /// `rng.random_range(-10.0..10.0)`, `rng.random_range(0..=max)`).
    ///
    /// # Panics
    /// If the range is empty.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Return `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    /// If `denominator` is zero or `numerator > denominator`.
    #[inline]
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "denominator must be positive");
        assert!(numerator <= denominator, "ratio must be at most 1");
        bounded_u64(self, denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// `rand`'s canonical name for the extension trait.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let mut r3 = StdRng::seed_from_u64(43);
        let s1: Vec<u64> = (0..16).map(|_| r1.next_u64()).collect();
        let s2: Vec<u64> = (0..16).map(|_| r2.next_u64()).collect();
        let s3: Vec<u64> = (0..16).map(|_| r3.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=5);
            assert!(w <= 5);
            let x: i64 = rng.random_range(-50..50);
            assert!((-50..50).contains(&x));
            let f: f64 = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_of_one_value() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(rng.random_range(3u64..4), 3);
            assert_eq!(rng.random_range(9usize..=9), 9);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..4000).filter(|_| rng.random_bool(0.5)).count();
        assert!((1600..2400).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn values_cover_small_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
