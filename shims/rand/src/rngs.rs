//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step, used only to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Small, fast, and statistically strong (Blackman & Vigna, 2018). Unlike
/// `rand`'s ChaCha-based `StdRng` it makes no cryptographic claims — the
/// simulator needs reproducibility and statistical quality, not secrecy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The generator's raw 256-bit state, for serialization (checkpoints).
    /// Feeding the words back through [`StdRng::from_state`] resumes the
    /// stream exactly where it left off.
    #[inline]
    pub fn to_state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by [`StdRng::to_state`].
    /// An all-zero state is a fixed point of xoshiro256++, so it is mapped
    /// to the seed-0 expansion instead of silently generating zeros forever.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            Self::seed_from_u64(0)
        } else {
            StdRng { s }
        }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand via SplitMix64 per the xoshiro authors' recommendation; the
        // all-zero state (unreachable from SplitMix64) would be a fixed point.
        let mut sm = seed;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Alias kept for call sites that name the small generator explicitly.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        for seed in 0..64 {
            let rng = StdRng::seed_from_u64(seed);
            assert_ne!(rng.s, [0, 0, 0, 0]);
        }
    }

    #[test]
    fn state_round_trips_through_accessors() {
        let mut rng = StdRng::seed_from_u64(42);
        rng.next_u64();
        let mut resumed = StdRng::from_state(rng.to_state());
        for _ in 0..16 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // The all-zero fixed point is rejected rather than honored.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn streams_differ_across_seeds() {
        let mut outs = std::collections::HashSet::new();
        for seed in 0..256 {
            outs.insert(StdRng::seed_from_u64(seed).next_u64());
        }
        assert_eq!(outs.len(), 256);
    }
}
