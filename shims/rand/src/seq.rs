//! Sequence helpers: shuffling and random element choice.

use crate::RngCore;

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::bounded_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[crate::bounded_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..32).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(mk(4), mk(4));
        assert_ne!(mk(4), mk(5));
    }

    #[test]
    fn choose_covers_all_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let items = [1u8, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
