//! # rayon (offline shim)
//!
//! A stand-in for `rayon` written for this workspace's hermetic (no
//! crates.io) build environment. `into_par_iter` / `par_iter` return the
//! ordinary sequential iterators, so `.map(...).collect()` pipelines
//! compile and produce byte-identical results — they simply don't use a
//! thread pool. Call sites keep rayon idiom, and swapping the real crate
//! back in (when a registry is available) requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The traits rayon users glob-import.
pub mod prelude {
    /// Sequential substitute for rayon's `IntoParallelIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// "Parallel" iterator over `self` — here, the sequential one.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// Sequential substitute for rayon's `IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed iterator type.
        type Iter: Iterator;

        /// "Parallel" iterator over `&self` — here, the sequential one.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_pipeline_matches_sequential() {
        let par: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * i).collect();
        let seq: Vec<usize> = (0..10usize).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_iter_over_slices() {
        let v = vec![1u64, 2, 3];
        let sum: u64 = v.par_iter().sum();
        assert_eq!(sum, 6);
    }
}
