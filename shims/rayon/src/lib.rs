//! # rayon (offline shim) — a real work-stealing data-parallel pool
//!
//! A stand-in for `rayon` written for this workspace's hermetic (no
//! crates.io) build environment. Unlike the original sequential shim, this
//! version genuinely executes `par_iter` / `into_par_iter` pipelines on
//! multiple scoped worker threads:
//!
//! * **Scheduling** is work-stealing: the input is split into chunks
//!   (several per worker), chunks are dealt round-robin onto per-worker
//!   deques, and a worker that drains its own deque steals from its
//!   neighbors' — so a worker that lands the expensive chunks does not
//!   become the critical path.
//! * **Determinism** is absolute: every chunk remembers the index range it
//!   came from, results are reassembled in input order, and chunk
//!   *boundaries* never influence what a pure `map` computes — so a
//!   pipeline's output is byte-identical to sequential execution at any
//!   pool size. (Closures that mutate shared state through locks can of
//!   course still observe scheduling order; the workspace's pipelines are
//!   pure per item.)
//! * **Pool size** resolves, in order: an enclosing
//!   [`ThreadPool::install`] scope → a [`ThreadPoolBuilder::build_global`]
//!   override → the `RAYON_NUM_THREADS` environment variable → the number
//!   of available CPUs. Size 1 short-circuits to plain sequential
//!   execution with zero thread traffic.
//! * Workers are **scoped threads** spawned per parallel operation
//!   (`std::thread::scope`), so non-`'static` borrows work exactly like
//!   real rayon and a panicking closure propagates to the caller. The
//!   spawn cost (~tens of µs) is noise for the workloads this crate
//!   parallelizes (point generation, shard indexing).
//!
//! Swapping the real crate back in (when a registry is available) requires
//! no source changes at call sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// The traits rayon users glob-import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

// ---------------------------------------------------------------------------
// Pool sizing.
// ---------------------------------------------------------------------------

/// Global pool-size override installed by [`ThreadPoolBuilder::build_global`].
static GLOBAL_POOL_SIZE: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Pool size imposed by an enclosing [`ThreadPool::install`] (0 = none).
    static INSTALLED_POOL_SIZE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn env_pool_size() -> Option<usize> {
    std::env::var("RAYON_NUM_THREADS").ok()?.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Number of worker threads parallel operations on this thread will use.
///
/// Resolution order: enclosing [`ThreadPool::install`] → global override
/// ([`ThreadPoolBuilder::build_global`]) → `RAYON_NUM_THREADS` → available
/// CPUs.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_POOL_SIZE.with(std::cell::Cell::get);
    if installed > 0 {
        return installed;
    }
    if let Some(&n) = GLOBAL_POOL_SIZE.get() {
        return n;
    }
    if let Some(n) = env_pool_size() {
        return n;
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Error returned when a pool cannot be (re)configured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPoolBuildError {
    reason: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error: {}", self.reason)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring rayon's `ThreadPoolBuilder`.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default (auto) sizing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count; `0` keeps automatic sizing (rayon semantics).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    fn resolved(&self) -> usize {
        self.num_threads.or_else(env_pool_size).unwrap_or_else(|| {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        })
    }

    /// Build a pool handle whose size applies inside [`ThreadPool::install`].
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.resolved() })
    }

    /// Install this configuration as the process-global default. Errors if a
    /// global pool was already installed (same contract as rayon).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = self.resolved();
        GLOBAL_POOL_SIZE
            .set(n)
            .map_err(|_| ThreadPoolBuildError { reason: "global pool already initialized" })
    }
}

/// A sized pool handle. The shim has no persistent worker threads — the
/// handle simply pins the worker count for operations run under
/// [`ThreadPool::install`].
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Worker count of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's size governing every parallel operation
    /// (and nested [`join`]) it performs on this thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = INSTALLED_POOL_SIZE.with(|c| c.replace(self.num_threads));
        // Restore on unwind too, so a panicking op does not leak the size
        // into unrelated code on this thread.
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_POOL_SIZE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

// ---------------------------------------------------------------------------
// The work-stealing executor.
// ---------------------------------------------------------------------------

/// Chunks per worker: enough slack for stealing to even out imbalanced
/// items, few enough that per-chunk bookkeeping stays negligible.
const CHUNKS_PER_WORKER: usize = 8;

/// Map `items` through `f` on the current pool, preserving input order.
///
/// The parallel path splits the items into indexed chunks, deals them onto
/// per-worker deques, lets idle workers steal, and reassembles results by
/// chunk index — bit-identical to the sequential path for pure `f`.
fn parallel_map<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into order-tagged chunks.
    let chunk_len = n.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
    let mut chunks: Vec<(usize, Vec<I>)> = Vec::with_capacity(n.div_ceil(chunk_len));
    let mut iter = items.into_iter();
    let mut start = 0;
    loop {
        let chunk: Vec<I> = iter.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        let len = chunk.len();
        chunks.push((start, chunk));
        start += len;
    }

    // Deal contiguous runs of chunks to each worker's deque (locality), let
    // idle workers steal from the back of their neighbors'.
    type Deque<I> = Mutex<VecDeque<(usize, Vec<I>)>>;
    let num_chunks = chunks.len();
    let mut deques: Vec<Deque<I>> = (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, chunk) in chunks.into_iter().enumerate() {
        let owner = i * threads / num_chunks;
        deques[owner.min(threads - 1)].get_mut().expect("fresh deque").push_back(chunk);
    }

    // Workers inherit the caller's resolved pool size (fresh threads have
    // no install scope), so nested parallel operations keep honoring it —
    // real rayon's nested ops likewise stay inside the enclosing pool.
    let inherited = current_num_threads();
    let done = Mutex::new(Vec::with_capacity(threads * CHUNKS_PER_WORKER));
    std::thread::scope(|scope| {
        for w in 0..threads {
            let deques = &deques;
            let done = &done;
            scope.spawn(move || {
                INSTALLED_POOL_SIZE.with(|c| c.set(inherited));
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    // Own deque first (front = original order), then steal
                    // from the back of the others'. The own-deque guard
                    // must drop before stealing (separate statement): a
                    // `pop_front().or_else(steal)` chain would hold it
                    // across the steal and deadlock two mutually-stealing
                    // workers whose deques run dry together.
                    let mut task = deques[w].lock().expect("deque lock").pop_front();
                    if task.is_none() {
                        task = (1..threads).find_map(|off| {
                            deques[(w + off) % threads].lock().expect("deque lock").pop_back()
                        });
                    }
                    let Some((idx, chunk)) = task else { break };
                    local.push((idx, chunk.into_iter().map(f).collect()));
                }
                if !local.is_empty() {
                    done.lock().expect("result lock").extend(local);
                }
            });
        }
    });

    let mut parts = done.into_inner().expect("result lock");
    parts.sort_unstable_by_key(|&(idx, _)| idx);
    let mut out = Vec::with_capacity(n);
    for (_, part) in parts {
        out.extend(part);
    }
    out
}

/// Run the two closures, potentially in parallel, returning both results.
///
/// With a pool size of 1 this is plain sequential `(a(), b())`; otherwise
/// `b` runs on a scoped thread while the caller runs `a`, and a panic in
/// either closure propagates to the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let inherited = current_num_threads();
    if inherited <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(move || {
            INSTALLED_POOL_SIZE.with(|c| c.set(inherited));
            oper_b()
        });
        let ra = oper_a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

// ---------------------------------------------------------------------------
// Parallel iterator facade.
// ---------------------------------------------------------------------------

/// The (small) parallel-iterator interface the workspace uses: `map`,
/// `for_each`, `collect`, `sum`, all order-preserving.
pub trait ParallelIterator: Sized {
    /// Item type produced by the pipeline.
    type Item: Send;

    /// Execute the whole pipeline, returning the items in input order.
    /// Adapter stages (`map`) run on the pool; base stages only enumerate.
    fn run(self) -> Vec<Self::Item>;

    /// Order-preserving parallel map.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Run `f` on every item (scheduling order unspecified, as in rayon).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = self.map(&f).run();
    }

    /// Collect the pipeline's results in input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run().into_iter().collect()
    }

    /// Sum the pipeline's results.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }

    /// Number of items the pipeline will produce.
    fn count(self) -> usize {
        self.run().len()
    }
}

/// Order-preserving parallel map stage.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.base.run(), &self.f)
    }
}

/// Base parallel iterator over an owned collection (or integer range).
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Base parallel iterator borrowing a slice.
pub struct SliceParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceParIter<'data, T> {
    type Item = &'data T;

    fn run(self) -> Vec<&'data T> {
        self.slice.iter().collect()
    }
}

/// Conversion into a parallel iterator, mirroring rayon's
/// `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;

    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = IntoParIter<T>;
    type Item = T;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = IntoParIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> IntoParIter<$t> {
                IntoParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_into_par_iter!(usize, u64, u32, i64, i32);

/// Borrowing conversion, mirroring rayon's `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type (a borrow).
    type Item: Send + 'data;

    /// Parallel iterator over `&self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = SliceParIter<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> SliceParIter<'data, T> {
        SliceParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = SliceParIter<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> SliceParIter<'data, T> {
        SliceParIter { slice: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn with_pool<R>(n: usize, f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new().num_threads(n).build().expect("pool").install(f)
    }

    #[test]
    fn range_pipeline_matches_sequential() {
        let seq: Vec<usize> = (0..10usize).map(|i| i * i).collect();
        for pool in [1, 2, 8] {
            let par: Vec<usize> =
                with_pool(pool, || (0..10usize).into_par_iter().map(|i| i * i).collect());
            assert_eq!(par, seq, "pool size {pool}");
        }
    }

    #[test]
    fn par_iter_over_slices() {
        let v = vec![1u64, 2, 3];
        let sum: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn order_preserved_at_scale_and_any_pool_size() {
        // Large enough to span many chunks; squares are distinct, so any
        // reordering or loss is caught exactly.
        let n = 100_000usize;
        let seq: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(i as u64)).collect();
        for pool in [1, 2, 3, 8, 64] {
            let par: Vec<u64> = with_pool(pool, || {
                (0..n).into_par_iter().map(|i| (i as u64).wrapping_mul(i as u64)).collect()
            });
            assert_eq!(par, seq, "pool size {pool}");
        }
    }

    #[test]
    fn order_preserved_under_skewed_work() {
        // Front-loaded work: the first chunks are ~1000x more expensive, so
        // stealing definitely reshuffles execution order — results must
        // still come back in input order.
        let n = 4_000usize;
        let work = |i: usize| {
            let iters = if i < 100 { 20_000 } else { 20 };
            let mut acc = i as u64;
            for _ in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            (i, acc)
        };
        let seq: Vec<(usize, u64)> = (0..n).map(work).collect();
        let par: Vec<(usize, u64)> = with_pool(8, || (0..n).into_par_iter().map(work).collect());
        assert_eq!(par, seq);
    }

    #[test]
    fn all_items_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let n = 10_000usize;
        with_pool(4, || {
            (0..n).into_par_iter().for_each(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(counter.load(Ordering::Relaxed), n);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> =
            with_pool(8, || Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect());
        assert!(empty.is_empty());
        let one: Vec<u32> = with_pool(8, || vec![41u32].into_par_iter().map(|x| x + 1).collect());
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn join_returns_both_results() {
        for pool in [1, 4] {
            let (a, b) =
                with_pool(pool, || join(|| (0..100u64).sum::<u64>(), || "right".to_string()));
            assert_eq!(a, 4950);
            assert_eq!(b, "right");
        }
    }

    #[test]
    fn join_propagates_panics() {
        let caught = std::panic::catch_unwind(|| with_pool(4, || join(|| 1u32, || panic!("boom"))));
        assert!(caught.is_err());
    }

    #[test]
    fn worker_panic_propagates_from_map() {
        let caught = std::panic::catch_unwind(|| {
            with_pool(4, || {
                let _: Vec<u32> = (0..1000usize)
                    .into_par_iter()
                    .map(|i| if i == 777 { panic!("item panic") } else { i as u32 })
                    .collect();
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn workers_inherit_installed_pool_size() {
        // Nested parallel ops inside a worker must honor the enclosing
        // install scope, like real rayon's pool-bound nested operations.
        let sizes: Vec<usize> =
            with_pool(3, || (0..8usize).into_par_iter().map(|_| current_num_threads()).collect());
        assert!(sizes.iter().all(|&s| s == 3), "workers saw {sizes:?}, expected all 3");
        let (a, b) = with_pool(5, || join(current_num_threads, current_num_threads));
        assert_eq!((a, b), (5, 5));
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let p2 = ThreadPoolBuilder::new().num_threads(2).build().expect("pool");
        let p5 = ThreadPoolBuilder::new().num_threads(5).build().expect("pool");
        let ambient = current_num_threads();
        p2.install(|| {
            assert_eq!(current_num_threads(), 2);
            p5.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
        assert_eq!(current_num_threads(), ambient);
    }

    #[test]
    fn install_restores_after_panic() {
        let ambient = current_num_threads();
        let p = ThreadPoolBuilder::new().num_threads(3).build().expect("pool");
        let _ = std::panic::catch_unwind(|| p.install(|| panic!("boom")));
        assert_eq!(current_num_threads(), ambient);
    }

    #[test]
    fn builder_zero_means_auto() {
        let p = ThreadPoolBuilder::new().num_threads(0).build().expect("pool");
        assert!(p.current_num_threads() >= 1);
    }

    #[test]
    fn map_chains_compose() {
        let seq: Vec<String> = (0..500usize).map(|i| i * 3).map(|i| format!("v{i}")).collect();
        let par: Vec<String> = with_pool(4, || {
            (0..500usize).into_par_iter().map(|i| i * 3).map(|i| format!("v{i}")).collect()
        });
        assert_eq!(par, seq);
    }

    #[test]
    fn repeated_tiny_ops_do_not_deadlock() {
        // Regression: workers whose deques run dry together used to hold
        // their own deque lock while stealing, deadlocking mutually. Tiny
        // inputs (one chunk per worker) maximize simultaneous dry-out.
        for pool in [2usize, 4] {
            for round in 0..300usize {
                let out: Vec<usize> =
                    with_pool(pool, || (0..pool).into_par_iter().map(|i| i + round).collect());
                assert_eq!(out, (0..pool).map(|i| i + round).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn count_counts() {
        assert_eq!(with_pool(4, || (0..12345usize).into_par_iter().count()), 12345);
    }
}
